# SIMD kernel plumbing for the bound/scheduler hot loops
# (docs/PERFORMANCE.md, "SIMD kernels and dispatch").
#
# The engine's data-parallel kernels live behind a function-pointer
# table (src/support/simd_kernels.hh). The portable scalar table is
# always compiled into balance_support; this module decides which
# *vector* translation units to add next to it:
#
#  - x86-64 with a compiler that accepts -mavx2: compile
#    simd_kernels_avx2.cc with AVX2 codegen enabled. The table is
#    only *selected* at runtime when CPUID reports AVX2, so the same
#    binary still runs on pre-AVX2 hosts.
#  - AArch64: NEON is baseline, so simd_kernels_neon.cc compiles with
#    no extra flags and the NEON table is always eligible.
#
# -DBALANCE_SIMD=OFF skips the vector TUs entirely: only the scalar
# table exists and dispatch degenerates to it. Either way the
# BALANCE_SIMD=scalar *environment variable* forces the scalar table
# at runtime for A/B profiling and the CI identical-artifact check.
#
# Results are bitwise identical across all three tables: the kernels
# are integer min/max/compare sweeps plus elementwise IEEE mul/add
# with a fixed association order. -ffp-contract=off is applied
# globally from the top-level CMakeLists so no path ever fuses those
# mul/adds into FMAs behind the scalar code's back.

include(CheckCXXCompilerFlag)

set(BALANCE_SIMD_AVX2 FALSE)
set(BALANCE_SIMD_NEON FALSE)

if(BALANCE_SIMD)
    if(CMAKE_SYSTEM_PROCESSOR MATCHES "(x86_64|AMD64|amd64)")
        check_cxx_compiler_flag("-mavx2" BALANCE_CXX_HAS_MAVX2)
        if(BALANCE_CXX_HAS_MAVX2)
            set(BALANCE_SIMD_AVX2 TRUE)
        endif()
    elseif(CMAKE_SYSTEM_PROCESSOR MATCHES "(aarch64|arm64|ARM64)")
        set(BALANCE_SIMD_NEON TRUE)
    endif()
endif()

# balance_simd_sources(<out-var>)
#
# Appends the vector kernel TUs enabled for this configuration to the
# list variable and records their per-source compile flags. Called by
# src/support/CMakeLists.txt when assembling balance_support.
function(balance_simd_sources out)
    set(srcs "")
    if(BALANCE_SIMD_AVX2)
        list(APPEND srcs simd_kernels_avx2.cc)
        set_property(SOURCE simd_kernels_avx2.cc PROPERTY
            COMPILE_OPTIONS -mavx2)
    endif()
    if(BALANCE_SIMD_NEON)
        list(APPEND srcs simd_kernels_neon.cc)
    endif()
    set(${out} ${srcs} PARENT_SCOPE)
endfunction()

if(BALANCE_SIMD)
    if(BALANCE_SIMD_AVX2)
        message(STATUS "balance: SIMD kernels: scalar + AVX2 "
            "(runtime CPUID dispatch)")
    elseif(BALANCE_SIMD_NEON)
        message(STATUS "balance: SIMD kernels: scalar + NEON")
    else()
        message(STATUS "balance: SIMD kernels: scalar only "
            "(no supported target)")
    endif()
else()
    message(STATUS "balance: SIMD kernels disabled (BALANCE_SIMD=OFF)")
endif()
