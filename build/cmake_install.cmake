# Install script for directory: /root/repo

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/tests/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/bench/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/examples/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/support/libbalance_support.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/machine/libbalance_machine.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/graph/libbalance_graph.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/cfg/libbalance_cfg.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/bounds/libbalance_bounds.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sched/libbalance_sched.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libbalance_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/sim/libbalance_sim.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/workload/libbalance_workload.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/eval/libbalance_eval.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/balance" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hh$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sb_tool" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sb_tool")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sb_tool"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/examples/sb_tool")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sb_tool" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sb_tool")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/sb_tool")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/quickstart" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/quickstart")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/quickstart"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/examples/quickstart")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/quickstart" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/quickstart")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/quickstart")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/paper_figures" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/paper_figures")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/paper_figures"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/examples/paper_figures")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/paper_figures" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/paper_figures")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/paper_figures")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/heuristic_compare" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/heuristic_compare")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/heuristic_compare"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/examples/heuristic_compare")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/heuristic_compare" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/heuristic_compare")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/heuristic_compare")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/compile_pipeline" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/compile_pipeline")
    file(RPATH_CHECK
         FILE "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/compile_pipeline"
         RPATH "")
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/bin" TYPE EXECUTABLE FILES "/root/repo/build/examples/compile_pipeline")
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/compile_pipeline" AND
     NOT IS_SYMLINK "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/compile_pipeline")
    if(CMAKE_INSTALL_DO_STRIP)
      execute_process(COMMAND "/usr/bin/strip" "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/bin/compile_pipeline")
    endif()
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT)
  set(CMAKE_INSTALL_MANIFEST "install_manifest_${CMAKE_INSTALL_COMPONENT}.txt")
else()
  set(CMAKE_INSTALL_MANIFEST "install_manifest.txt")
endif()

string(REPLACE ";" "\n" CMAKE_INSTALL_MANIFEST_CONTENT
       "${CMAKE_INSTALL_MANIFEST_FILES}")
file(WRITE "/root/repo/build/${CMAKE_INSTALL_MANIFEST}"
     "${CMAKE_INSTALL_MANIFEST_CONTENT}")
