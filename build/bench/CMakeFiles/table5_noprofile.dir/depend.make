# Empty dependencies file for table5_noprofile.
# This may be replaced when dependencies are built.
