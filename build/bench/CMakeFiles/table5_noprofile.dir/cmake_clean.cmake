file(REMOVE_RECURSE
  "CMakeFiles/table5_noprofile.dir/table5_noprofile.cc.o"
  "CMakeFiles/table5_noprofile.dir/table5_noprofile.cc.o.d"
  "table5_noprofile"
  "table5_noprofile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_noprofile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
