# Empty dependencies file for table4_optimal.
# This may be replaced when dependencies are built.
