file(REMOVE_RECURSE
  "CMakeFiles/table4_optimal.dir/table4_optimal.cc.o"
  "CMakeFiles/table4_optimal.dir/table4_optimal.cc.o.d"
  "table4_optimal"
  "table4_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
