file(REMOVE_RECURSE
  "CMakeFiles/table1_bounds.dir/table1_bounds.cc.o"
  "CMakeFiles/table1_bounds.dir/table1_bounds.cc.o.d"
  "table1_bounds"
  "table1_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
