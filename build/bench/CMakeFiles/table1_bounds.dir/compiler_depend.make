# Empty compiler generated dependencies file for table1_bounds.
# This may be replaced when dependencies are built.
