file(REMOVE_RECURSE
  "CMakeFiles/table2_bound_complexity.dir/table2_bound_complexity.cc.o"
  "CMakeFiles/table2_bound_complexity.dir/table2_bound_complexity.cc.o.d"
  "table2_bound_complexity"
  "table2_bound_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bound_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
