# Empty dependencies file for table2_bound_complexity.
# This may be replaced when dependencies are built.
