# Empty compiler generated dependencies file for ablation_tw_budget.
# This may be replaced when dependencies are built.
