
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_tw_budget.cc" "bench/CMakeFiles/ablation_tw_budget.dir/ablation_tw_budget.cc.o" "gcc" "bench/CMakeFiles/ablation_tw_budget.dir/ablation_tw_budget.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/balance_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/balance_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/balance_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/balance_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/balance_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/balance_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/balance_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/balance_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/balance_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/balance_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
