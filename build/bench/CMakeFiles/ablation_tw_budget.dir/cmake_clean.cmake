file(REMOVE_RECURSE
  "CMakeFiles/ablation_tw_budget.dir/ablation_tw_budget.cc.o"
  "CMakeFiles/ablation_tw_budget.dir/ablation_tw_budget.cc.o.d"
  "ablation_tw_budget"
  "ablation_tw_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tw_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
