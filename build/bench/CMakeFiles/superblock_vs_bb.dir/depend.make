# Empty dependencies file for superblock_vs_bb.
# This may be replaced when dependencies are built.
