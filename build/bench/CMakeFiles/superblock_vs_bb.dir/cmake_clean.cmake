file(REMOVE_RECURSE
  "CMakeFiles/superblock_vs_bb.dir/superblock_vs_bb.cc.o"
  "CMakeFiles/superblock_vs_bb.dir/superblock_vs_bb.cc.o.d"
  "superblock_vs_bb"
  "superblock_vs_bb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superblock_vs_bb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
