# Empty dependencies file for table6_sched_complexity.
# This may be replaced when dependencies are built.
