file(REMOVE_RECURSE
  "CMakeFiles/table6_sched_complexity.dir/table6_sched_complexity.cc.o"
  "CMakeFiles/table6_sched_complexity.dir/table6_sched_complexity.cc.o.d"
  "table6_sched_complexity"
  "table6_sched_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_sched_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
