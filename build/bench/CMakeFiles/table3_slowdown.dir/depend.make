# Empty dependencies file for table3_slowdown.
# This may be replaced when dependencies are built.
