file(REMOVE_RECURSE
  "CMakeFiles/table3_slowdown.dir/table3_slowdown.cc.o"
  "CMakeFiles/table3_slowdown.dir/table3_slowdown.cc.o.d"
  "table3_slowdown"
  "table3_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
