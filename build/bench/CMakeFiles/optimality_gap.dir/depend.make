# Empty dependencies file for optimality_gap.
# This may be replaced when dependencies are built.
