file(REMOVE_RECURSE
  "CMakeFiles/optimality_gap.dir/optimality_gap.cc.o"
  "CMakeFiles/optimality_gap.dir/optimality_gap.cc.o.d"
  "optimality_gap"
  "optimality_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimality_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
