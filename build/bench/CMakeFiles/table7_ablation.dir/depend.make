# Empty dependencies file for table7_ablation.
# This may be replaced when dependencies are built.
