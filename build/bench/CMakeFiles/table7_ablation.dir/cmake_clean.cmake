file(REMOVE_RECURSE
  "CMakeFiles/table7_ablation.dir/table7_ablation.cc.o"
  "CMakeFiles/table7_ablation.dir/table7_ablation.cc.o.d"
  "table7_ablation"
  "table7_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
