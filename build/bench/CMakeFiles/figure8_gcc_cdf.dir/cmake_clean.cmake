file(REMOVE_RECURSE
  "CMakeFiles/figure8_gcc_cdf.dir/figure8_gcc_cdf.cc.o"
  "CMakeFiles/figure8_gcc_cdf.dir/figure8_gcc_cdf.cc.o.d"
  "figure8_gcc_cdf"
  "figure8_gcc_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure8_gcc_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
