# Empty compiler generated dependencies file for figure8_gcc_cdf.
# This may be replaced when dependencies are built.
