# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1_bounds "/root/repo/build/bench/table1_bounds" "--scale" "0.004")
set_tests_properties(bench_smoke_table1_bounds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2_bound_complexity "/root/repo/build/bench/table2_bound_complexity" "--scale" "0.004")
set_tests_properties(bench_smoke_table2_bound_complexity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_figure8_gcc_cdf "/root/repo/build/bench/figure8_gcc_cdf" "--scale" "0.004")
set_tests_properties(bench_smoke_figure8_gcc_cdf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table3_slowdown "/root/repo/build/bench/table3_slowdown" "--scale" "0.004")
set_tests_properties(bench_smoke_table3_slowdown PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table4_optimal "/root/repo/build/bench/table4_optimal" "--scale" "0.004")
set_tests_properties(bench_smoke_table4_optimal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table5_noprofile "/root/repo/build/bench/table5_noprofile" "--scale" "0.004")
set_tests_properties(bench_smoke_table5_noprofile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table6_sched_complexity "/root/repo/build/bench/table6_sched_complexity" "--scale" "0.004")
set_tests_properties(bench_smoke_table6_sched_complexity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table7_ablation "/root/repo/build/bench/table7_ablation" "--scale" "0.004")
set_tests_properties(bench_smoke_table7_ablation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_optimality_gap "/root/repo/build/bench/optimality_gap" "--scale" "0.004")
set_tests_properties(bench_smoke_optimality_gap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_tw_budget "/root/repo/build/bench/ablation_tw_budget" "--scale" "0.004")
set_tests_properties(bench_smoke_ablation_tw_budget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_superblock_vs_bb "/root/repo/build/bench/superblock_vs_bb" "--scale" "0.004")
set_tests_properties(bench_smoke_superblock_vs_bb PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_micro_kernels "/root/repo/build/bench/micro_kernels" "--benchmark_filter=BM_ListScheduler/25" "--benchmark_min_time=0.01")
set_tests_properties(bench_smoke_micro_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
