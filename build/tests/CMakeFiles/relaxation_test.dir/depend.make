# Empty dependencies file for relaxation_test.
# This may be replaced when dependencies are built.
