file(REMOVE_RECURSE
  "CMakeFiles/relaxation_test.dir/bounds/relaxation_test.cc.o"
  "CMakeFiles/relaxation_test.dir/bounds/relaxation_test.cc.o.d"
  "relaxation_test"
  "relaxation_test.pdb"
  "relaxation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relaxation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
