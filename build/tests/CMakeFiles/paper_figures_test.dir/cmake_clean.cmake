file(REMOVE_RECURSE
  "CMakeFiles/paper_figures_test.dir/workload/paper_figures_test.cc.o"
  "CMakeFiles/paper_figures_test.dir/workload/paper_figures_test.cc.o.d"
  "paper_figures_test"
  "paper_figures_test.pdb"
  "paper_figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
