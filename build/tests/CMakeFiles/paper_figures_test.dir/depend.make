# Empty dependencies file for paper_figures_test.
# This may be replaced when dependencies are built.
