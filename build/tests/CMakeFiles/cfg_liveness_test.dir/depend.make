# Empty dependencies file for cfg_liveness_test.
# This may be replaced when dependencies are built.
