file(REMOVE_RECURSE
  "CMakeFiles/cfg_liveness_test.dir/cfg/liveness_test.cc.o"
  "CMakeFiles/cfg_liveness_test.dir/cfg/liveness_test.cc.o.d"
  "cfg_liveness_test"
  "cfg_liveness_test.pdb"
  "cfg_liveness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_liveness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
