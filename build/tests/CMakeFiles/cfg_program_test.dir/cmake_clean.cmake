file(REMOVE_RECURSE
  "CMakeFiles/cfg_program_test.dir/cfg/program_test.cc.o"
  "CMakeFiles/cfg_program_test.dir/cfg/program_test.cc.o.d"
  "cfg_program_test"
  "cfg_program_test.pdb"
  "cfg_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
