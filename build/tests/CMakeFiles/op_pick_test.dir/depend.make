# Empty dependencies file for op_pick_test.
# This may be replaced when dependencies are built.
