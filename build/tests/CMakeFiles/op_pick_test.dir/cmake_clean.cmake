file(REMOVE_RECURSE
  "CMakeFiles/op_pick_test.dir/core/op_pick_test.cc.o"
  "CMakeFiles/op_pick_test.dir/core/op_pick_test.cc.o.d"
  "op_pick_test"
  "op_pick_test.pdb"
  "op_pick_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/op_pick_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
