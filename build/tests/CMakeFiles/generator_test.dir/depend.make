# Empty dependencies file for generator_test.
# This may be replaced when dependencies are built.
