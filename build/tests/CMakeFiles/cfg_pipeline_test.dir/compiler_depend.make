# Empty compiler generated dependencies file for cfg_pipeline_test.
# This may be replaced when dependencies are built.
