file(REMOVE_RECURSE
  "CMakeFiles/cfg_pipeline_test.dir/cfg/cfg_pipeline_test.cc.o"
  "CMakeFiles/cfg_pipeline_test.dir/cfg/cfg_pipeline_test.cc.o.d"
  "cfg_pipeline_test"
  "cfg_pipeline_test.pdb"
  "cfg_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
