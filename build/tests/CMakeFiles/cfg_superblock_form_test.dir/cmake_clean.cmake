file(REMOVE_RECURSE
  "CMakeFiles/cfg_superblock_form_test.dir/cfg/superblock_form_test.cc.o"
  "CMakeFiles/cfg_superblock_form_test.dir/cfg/superblock_form_test.cc.o.d"
  "cfg_superblock_form_test"
  "cfg_superblock_form_test.pdb"
  "cfg_superblock_form_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_superblock_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
