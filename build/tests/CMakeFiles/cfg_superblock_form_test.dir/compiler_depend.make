# Empty compiler generated dependencies file for cfg_superblock_form_test.
# This may be replaced when dependencies are built.
