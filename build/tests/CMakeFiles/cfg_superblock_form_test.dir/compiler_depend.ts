# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cfg_superblock_form_test.
