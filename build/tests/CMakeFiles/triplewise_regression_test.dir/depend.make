# Empty dependencies file for triplewise_regression_test.
# This may be replaced when dependencies are built.
