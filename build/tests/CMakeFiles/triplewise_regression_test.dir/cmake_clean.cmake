file(REMOVE_RECURSE
  "CMakeFiles/triplewise_regression_test.dir/bounds/triplewise_regression_test.cc.o"
  "CMakeFiles/triplewise_regression_test.dir/bounds/triplewise_regression_test.cc.o.d"
  "triplewise_regression_test"
  "triplewise_regression_test.pdb"
  "triplewise_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triplewise_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
