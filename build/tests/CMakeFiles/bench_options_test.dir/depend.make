# Empty dependencies file for bench_options_test.
# This may be replaced when dependencies are built.
