file(REMOVE_RECURSE
  "CMakeFiles/bench_options_test.dir/eval/bench_options_test.cc.o"
  "CMakeFiles/bench_options_test.dir/eval/bench_options_test.cc.o.d"
  "bench_options_test"
  "bench_options_test.pdb"
  "bench_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
