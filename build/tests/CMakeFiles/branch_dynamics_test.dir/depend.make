# Empty dependencies file for branch_dynamics_test.
# This may be replaced when dependencies are built.
