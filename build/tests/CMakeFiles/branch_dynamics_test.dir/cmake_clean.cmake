file(REMOVE_RECURSE
  "CMakeFiles/branch_dynamics_test.dir/core/branch_dynamics_test.cc.o"
  "CMakeFiles/branch_dynamics_test.dir/core/branch_dynamics_test.cc.o.d"
  "branch_dynamics_test"
  "branch_dynamics_test.pdb"
  "branch_dynamics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
