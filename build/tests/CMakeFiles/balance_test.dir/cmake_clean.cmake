file(REMOVE_RECURSE
  "CMakeFiles/balance_test.dir/core/balance_test.cc.o"
  "CMakeFiles/balance_test.dir/core/balance_test.cc.o.d"
  "balance_test"
  "balance_test.pdb"
  "balance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
