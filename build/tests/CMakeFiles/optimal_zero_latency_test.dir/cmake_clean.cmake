file(REMOVE_RECURSE
  "CMakeFiles/optimal_zero_latency_test.dir/sched/optimal_zero_latency_test.cc.o"
  "CMakeFiles/optimal_zero_latency_test.dir/sched/optimal_zero_latency_test.cc.o.d"
  "optimal_zero_latency_test"
  "optimal_zero_latency_test.pdb"
  "optimal_zero_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_zero_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
