# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for optimal_zero_latency_test.
