# Empty dependencies file for optimal_zero_latency_test.
# This may be replaced when dependencies are built.
