# Empty dependencies file for suite_stats_test.
# This may be replaced when dependencies are built.
