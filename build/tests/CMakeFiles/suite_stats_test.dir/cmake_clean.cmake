file(REMOVE_RECURSE
  "CMakeFiles/suite_stats_test.dir/workload/suite_stats_test.cc.o"
  "CMakeFiles/suite_stats_test.dir/workload/suite_stats_test.cc.o.d"
  "suite_stats_test"
  "suite_stats_test.pdb"
  "suite_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
