# Empty compiler generated dependencies file for triplewise_test.
# This may be replaced when dependencies are built.
