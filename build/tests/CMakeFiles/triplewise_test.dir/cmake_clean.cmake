file(REMOVE_RECURSE
  "CMakeFiles/triplewise_test.dir/bounds/triplewise_test.cc.o"
  "CMakeFiles/triplewise_test.dir/bounds/triplewise_test.cc.o.d"
  "triplewise_test"
  "triplewise_test.pdb"
  "triplewise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triplewise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
