# Empty dependencies file for resource_state_test.
# This may be replaced when dependencies are built.
