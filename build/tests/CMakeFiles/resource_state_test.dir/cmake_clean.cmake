file(REMOVE_RECURSE
  "CMakeFiles/resource_state_test.dir/machine/resource_state_test.cc.o"
  "CMakeFiles/resource_state_test.dir/machine/resource_state_test.cc.o.d"
  "resource_state_test"
  "resource_state_test.pdb"
  "resource_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
