file(REMOVE_RECURSE
  "CMakeFiles/optimal_test.dir/sched/optimal_test.cc.o"
  "CMakeFiles/optimal_test.dir/sched/optimal_test.cc.o.d"
  "optimal_test"
  "optimal_test.pdb"
  "optimal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
