# Empty dependencies file for optimal_test.
# This may be replaced when dependencies are built.
