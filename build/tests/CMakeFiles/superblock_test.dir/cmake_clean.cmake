file(REMOVE_RECURSE
  "CMakeFiles/superblock_test.dir/graph/superblock_test.cc.o"
  "CMakeFiles/superblock_test.dir/graph/superblock_test.cc.o.d"
  "superblock_test"
  "superblock_test.pdb"
  "superblock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superblock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
