# Empty compiler generated dependencies file for superblock_test.
# This may be replaced when dependencies are built.
