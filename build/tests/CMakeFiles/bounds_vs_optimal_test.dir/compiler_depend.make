# Empty compiler generated dependencies file for bounds_vs_optimal_test.
# This may be replaced when dependencies are built.
