# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bounds_vs_optimal_test.
