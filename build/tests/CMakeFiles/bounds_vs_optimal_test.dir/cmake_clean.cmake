file(REMOVE_RECURSE
  "CMakeFiles/bounds_vs_optimal_test.dir/integration/bounds_vs_optimal_test.cc.o"
  "CMakeFiles/bounds_vs_optimal_test.dir/integration/bounds_vs_optimal_test.cc.o.d"
  "bounds_vs_optimal_test"
  "bounds_vs_optimal_test.pdb"
  "bounds_vs_optimal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_vs_optimal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
