# Empty dependencies file for sb_io_test.
# This may be replaced when dependencies are built.
