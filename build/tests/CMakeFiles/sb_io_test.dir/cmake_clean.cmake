file(REMOVE_RECURSE
  "CMakeFiles/sb_io_test.dir/workload/sb_io_test.cc.o"
  "CMakeFiles/sb_io_test.dir/workload/sb_io_test.cc.o.d"
  "sb_io_test"
  "sb_io_test.pdb"
  "sb_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
