file(REMOVE_RECURSE
  "CMakeFiles/list_scheduler_test.dir/sched/list_scheduler_test.cc.o"
  "CMakeFiles/list_scheduler_test.dir/sched/list_scheduler_test.cc.o.d"
  "list_scheduler_test"
  "list_scheduler_test.pdb"
  "list_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
