# Empty dependencies file for motivation_test.
# This may be replaced when dependencies are built.
