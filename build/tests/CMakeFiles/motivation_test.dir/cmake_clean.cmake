file(REMOVE_RECURSE
  "CMakeFiles/motivation_test.dir/integration/motivation_test.cc.o"
  "CMakeFiles/motivation_test.dir/integration/motivation_test.cc.o.d"
  "motivation_test"
  "motivation_test.pdb"
  "motivation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
