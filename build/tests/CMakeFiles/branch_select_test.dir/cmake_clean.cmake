file(REMOVE_RECURSE
  "CMakeFiles/branch_select_test.dir/core/branch_select_test.cc.o"
  "CMakeFiles/branch_select_test.dir/core/branch_select_test.cc.o.d"
  "branch_select_test"
  "branch_select_test.pdb"
  "branch_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
