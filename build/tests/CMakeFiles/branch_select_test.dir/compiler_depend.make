# Empty compiler generated dependencies file for branch_select_test.
# This may be replaced when dependencies are built.
