file(REMOVE_RECURSE
  "CMakeFiles/branch_bounds_test.dir/bounds/branch_bounds_test.cc.o"
  "CMakeFiles/branch_bounds_test.dir/bounds/branch_bounds_test.cc.o.d"
  "branch_bounds_test"
  "branch_bounds_test.pdb"
  "branch_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
