# Empty dependencies file for branch_bounds_test.
# This may be replaced when dependencies are built.
