file(REMOVE_RECURSE
  "CMakeFiles/nonpipelined_test.dir/graph/nonpipelined_test.cc.o"
  "CMakeFiles/nonpipelined_test.dir/graph/nonpipelined_test.cc.o.d"
  "nonpipelined_test"
  "nonpipelined_test.pdb"
  "nonpipelined_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonpipelined_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
