# Empty compiler generated dependencies file for nonpipelined_test.
# This may be replaced when dependencies are built.
