file(REMOVE_RECURSE
  "CMakeFiles/pairwise_test.dir/bounds/pairwise_test.cc.o"
  "CMakeFiles/pairwise_test.dir/bounds/pairwise_test.cc.o.d"
  "pairwise_test"
  "pairwise_test.pdb"
  "pairwise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
