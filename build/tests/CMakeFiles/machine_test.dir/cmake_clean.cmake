file(REMOVE_RECURSE
  "CMakeFiles/machine_test.dir/machine/machine_test.cc.o"
  "CMakeFiles/machine_test.dir/machine/machine_test.cc.o.d"
  "machine_test"
  "machine_test.pdb"
  "machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
