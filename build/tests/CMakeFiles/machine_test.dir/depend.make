# Empty dependencies file for machine_test.
# This may be replaced when dependencies are built.
