# Empty compiler generated dependencies file for superblock_bounds_test.
# This may be replaced when dependencies are built.
