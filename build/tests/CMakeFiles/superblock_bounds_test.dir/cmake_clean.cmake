file(REMOVE_RECURSE
  "CMakeFiles/superblock_bounds_test.dir/bounds/superblock_bounds_test.cc.o"
  "CMakeFiles/superblock_bounds_test.dir/bounds/superblock_bounds_test.cc.o.d"
  "superblock_bounds_test"
  "superblock_bounds_test.pdb"
  "superblock_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superblock_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
