file(REMOVE_RECURSE
  "CMakeFiles/cfg_trace_test.dir/cfg/trace_test.cc.o"
  "CMakeFiles/cfg_trace_test.dir/cfg/trace_test.cc.o.d"
  "cfg_trace_test"
  "cfg_trace_test.pdb"
  "cfg_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
