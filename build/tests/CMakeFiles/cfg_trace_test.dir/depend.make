# Empty dependencies file for cfg_trace_test.
# This may be replaced when dependencies are built.
