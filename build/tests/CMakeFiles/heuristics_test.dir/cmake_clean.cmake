file(REMOVE_RECURSE
  "CMakeFiles/heuristics_test.dir/sched/heuristics_test.cc.o"
  "CMakeFiles/heuristics_test.dir/sched/heuristics_test.cc.o.d"
  "heuristics_test"
  "heuristics_test.pdb"
  "heuristics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
