# Empty compiler generated dependencies file for heuristics_test.
# This may be replaced when dependencies are built.
