file(REMOVE_RECURSE
  "CMakeFiles/cfg_vs_optimal_test.dir/cfg/cfg_vs_optimal_test.cc.o"
  "CMakeFiles/cfg_vs_optimal_test.dir/cfg/cfg_vs_optimal_test.cc.o.d"
  "cfg_vs_optimal_test"
  "cfg_vs_optimal_test.pdb"
  "cfg_vs_optimal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_vs_optimal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
