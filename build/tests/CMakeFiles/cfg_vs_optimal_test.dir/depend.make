# Empty dependencies file for cfg_vs_optimal_test.
# This may be replaced when dependencies are built.
