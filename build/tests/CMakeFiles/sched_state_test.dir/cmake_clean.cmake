file(REMOVE_RECURSE
  "CMakeFiles/sched_state_test.dir/core/sched_state_test.cc.o"
  "CMakeFiles/sched_state_test.dir/core/sched_state_test.cc.o.d"
  "sched_state_test"
  "sched_state_test.pdb"
  "sched_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
