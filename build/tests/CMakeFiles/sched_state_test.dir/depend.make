# Empty dependencies file for sched_state_test.
# This may be replaced when dependencies are built.
