# Empty dependencies file for paper_figures.
# This may be replaced when dependencies are built.
