file(REMOVE_RECURSE
  "CMakeFiles/paper_figures.dir/paper_figures.cpp.o"
  "CMakeFiles/paper_figures.dir/paper_figures.cpp.o.d"
  "paper_figures"
  "paper_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
