file(REMOVE_RECURSE
  "CMakeFiles/compile_pipeline.dir/compile_pipeline.cpp.o"
  "CMakeFiles/compile_pipeline.dir/compile_pipeline.cpp.o.d"
  "compile_pipeline"
  "compile_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
