# Empty compiler generated dependencies file for compile_pipeline.
# This may be replaced when dependencies are built.
