file(REMOVE_RECURSE
  "CMakeFiles/heuristic_compare.dir/heuristic_compare.cpp.o"
  "CMakeFiles/heuristic_compare.dir/heuristic_compare.cpp.o.d"
  "heuristic_compare"
  "heuristic_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
