# Empty compiler generated dependencies file for heuristic_compare.
# This may be replaced when dependencies are built.
