file(REMOVE_RECURSE
  "CMakeFiles/sb_tool.dir/sb_tool.cpp.o"
  "CMakeFiles/sb_tool.dir/sb_tool.cpp.o.d"
  "sb_tool"
  "sb_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
