# Empty dependencies file for sb_tool.
# This may be replaced when dependencies are built.
