file(REMOVE_RECURSE
  "CMakeFiles/balance_bounds.dir/branch_bounds.cc.o"
  "CMakeFiles/balance_bounds.dir/branch_bounds.cc.o.d"
  "CMakeFiles/balance_bounds.dir/pairwise.cc.o"
  "CMakeFiles/balance_bounds.dir/pairwise.cc.o.d"
  "CMakeFiles/balance_bounds.dir/relaxation.cc.o"
  "CMakeFiles/balance_bounds.dir/relaxation.cc.o.d"
  "CMakeFiles/balance_bounds.dir/superblock_bounds.cc.o"
  "CMakeFiles/balance_bounds.dir/superblock_bounds.cc.o.d"
  "CMakeFiles/balance_bounds.dir/triplewise.cc.o"
  "CMakeFiles/balance_bounds.dir/triplewise.cc.o.d"
  "libbalance_bounds.a"
  "libbalance_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
