file(REMOVE_RECURSE
  "libbalance_bounds.a"
)
