# Empty dependencies file for balance_bounds.
# This may be replaced when dependencies are built.
