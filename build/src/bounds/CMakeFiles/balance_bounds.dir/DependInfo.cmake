
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bounds/branch_bounds.cc" "src/bounds/CMakeFiles/balance_bounds.dir/branch_bounds.cc.o" "gcc" "src/bounds/CMakeFiles/balance_bounds.dir/branch_bounds.cc.o.d"
  "/root/repo/src/bounds/pairwise.cc" "src/bounds/CMakeFiles/balance_bounds.dir/pairwise.cc.o" "gcc" "src/bounds/CMakeFiles/balance_bounds.dir/pairwise.cc.o.d"
  "/root/repo/src/bounds/relaxation.cc" "src/bounds/CMakeFiles/balance_bounds.dir/relaxation.cc.o" "gcc" "src/bounds/CMakeFiles/balance_bounds.dir/relaxation.cc.o.d"
  "/root/repo/src/bounds/superblock_bounds.cc" "src/bounds/CMakeFiles/balance_bounds.dir/superblock_bounds.cc.o" "gcc" "src/bounds/CMakeFiles/balance_bounds.dir/superblock_bounds.cc.o.d"
  "/root/repo/src/bounds/triplewise.cc" "src/bounds/CMakeFiles/balance_bounds.dir/triplewise.cc.o" "gcc" "src/bounds/CMakeFiles/balance_bounds.dir/triplewise.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/balance_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/balance_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/balance_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
