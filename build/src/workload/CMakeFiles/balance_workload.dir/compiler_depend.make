# Empty compiler generated dependencies file for balance_workload.
# This may be replaced when dependencies are built.
