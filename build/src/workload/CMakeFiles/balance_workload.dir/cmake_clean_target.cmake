file(REMOVE_RECURSE
  "libbalance_workload.a"
)
