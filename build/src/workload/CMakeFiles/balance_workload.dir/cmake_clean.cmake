file(REMOVE_RECURSE
  "CMakeFiles/balance_workload.dir/generator.cc.o"
  "CMakeFiles/balance_workload.dir/generator.cc.o.d"
  "CMakeFiles/balance_workload.dir/paper_figures.cc.o"
  "CMakeFiles/balance_workload.dir/paper_figures.cc.o.d"
  "CMakeFiles/balance_workload.dir/sb_io.cc.o"
  "CMakeFiles/balance_workload.dir/sb_io.cc.o.d"
  "CMakeFiles/balance_workload.dir/suite.cc.o"
  "CMakeFiles/balance_workload.dir/suite.cc.o.d"
  "libbalance_workload.a"
  "libbalance_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
