
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/balance_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/balance_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/paper_figures.cc" "src/workload/CMakeFiles/balance_workload.dir/paper_figures.cc.o" "gcc" "src/workload/CMakeFiles/balance_workload.dir/paper_figures.cc.o.d"
  "/root/repo/src/workload/sb_io.cc" "src/workload/CMakeFiles/balance_workload.dir/sb_io.cc.o" "gcc" "src/workload/CMakeFiles/balance_workload.dir/sb_io.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/workload/CMakeFiles/balance_workload.dir/suite.cc.o" "gcc" "src/workload/CMakeFiles/balance_workload.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/balance_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/balance_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/balance_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
