file(REMOVE_RECURSE
  "CMakeFiles/balance_graph.dir/analysis.cc.o"
  "CMakeFiles/balance_graph.dir/analysis.cc.o.d"
  "CMakeFiles/balance_graph.dir/builder.cc.o"
  "CMakeFiles/balance_graph.dir/builder.cc.o.d"
  "CMakeFiles/balance_graph.dir/dot.cc.o"
  "CMakeFiles/balance_graph.dir/dot.cc.o.d"
  "CMakeFiles/balance_graph.dir/superblock.cc.o"
  "CMakeFiles/balance_graph.dir/superblock.cc.o.d"
  "libbalance_graph.a"
  "libbalance_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
