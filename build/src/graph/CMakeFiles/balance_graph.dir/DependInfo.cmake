
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/analysis.cc" "src/graph/CMakeFiles/balance_graph.dir/analysis.cc.o" "gcc" "src/graph/CMakeFiles/balance_graph.dir/analysis.cc.o.d"
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/balance_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/balance_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/dot.cc" "src/graph/CMakeFiles/balance_graph.dir/dot.cc.o" "gcc" "src/graph/CMakeFiles/balance_graph.dir/dot.cc.o.d"
  "/root/repo/src/graph/superblock.cc" "src/graph/CMakeFiles/balance_graph.dir/superblock.cc.o" "gcc" "src/graph/CMakeFiles/balance_graph.dir/superblock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/balance_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/balance_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
