# Empty dependencies file for balance_graph.
# This may be replaced when dependencies are built.
