file(REMOVE_RECURSE
  "libbalance_graph.a"
)
