# Empty compiler generated dependencies file for balance_cfg.
# This may be replaced when dependencies are built.
