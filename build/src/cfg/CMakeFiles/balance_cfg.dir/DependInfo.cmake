
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/cfg_gen.cc" "src/cfg/CMakeFiles/balance_cfg.dir/cfg_gen.cc.o" "gcc" "src/cfg/CMakeFiles/balance_cfg.dir/cfg_gen.cc.o.d"
  "/root/repo/src/cfg/liveness.cc" "src/cfg/CMakeFiles/balance_cfg.dir/liveness.cc.o" "gcc" "src/cfg/CMakeFiles/balance_cfg.dir/liveness.cc.o.d"
  "/root/repo/src/cfg/program.cc" "src/cfg/CMakeFiles/balance_cfg.dir/program.cc.o" "gcc" "src/cfg/CMakeFiles/balance_cfg.dir/program.cc.o.d"
  "/root/repo/src/cfg/superblock_form.cc" "src/cfg/CMakeFiles/balance_cfg.dir/superblock_form.cc.o" "gcc" "src/cfg/CMakeFiles/balance_cfg.dir/superblock_form.cc.o.d"
  "/root/repo/src/cfg/trace.cc" "src/cfg/CMakeFiles/balance_cfg.dir/trace.cc.o" "gcc" "src/cfg/CMakeFiles/balance_cfg.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/balance_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/balance_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/balance_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
