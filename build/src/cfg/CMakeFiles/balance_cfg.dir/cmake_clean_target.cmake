file(REMOVE_RECURSE
  "libbalance_cfg.a"
)
