file(REMOVE_RECURSE
  "CMakeFiles/balance_cfg.dir/cfg_gen.cc.o"
  "CMakeFiles/balance_cfg.dir/cfg_gen.cc.o.d"
  "CMakeFiles/balance_cfg.dir/liveness.cc.o"
  "CMakeFiles/balance_cfg.dir/liveness.cc.o.d"
  "CMakeFiles/balance_cfg.dir/program.cc.o"
  "CMakeFiles/balance_cfg.dir/program.cc.o.d"
  "CMakeFiles/balance_cfg.dir/superblock_form.cc.o"
  "CMakeFiles/balance_cfg.dir/superblock_form.cc.o.d"
  "CMakeFiles/balance_cfg.dir/trace.cc.o"
  "CMakeFiles/balance_cfg.dir/trace.cc.o.d"
  "libbalance_cfg.a"
  "libbalance_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
