# Empty compiler generated dependencies file for balance_sim.
# This may be replaced when dependencies are built.
