file(REMOVE_RECURSE
  "libbalance_sim.a"
)
