file(REMOVE_RECURSE
  "CMakeFiles/balance_sim.dir/simulator.cc.o"
  "CMakeFiles/balance_sim.dir/simulator.cc.o.d"
  "libbalance_sim.a"
  "libbalance_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
