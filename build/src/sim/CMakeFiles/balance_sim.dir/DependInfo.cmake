
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/balance_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/balance_sim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/balance_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/balance_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/balance_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/balance_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/balance_bounds.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
