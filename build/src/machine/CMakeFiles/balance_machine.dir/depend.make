# Empty dependencies file for balance_machine.
# This may be replaced when dependencies are built.
