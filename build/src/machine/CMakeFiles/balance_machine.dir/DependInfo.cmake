
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/machine_model.cc" "src/machine/CMakeFiles/balance_machine.dir/machine_model.cc.o" "gcc" "src/machine/CMakeFiles/balance_machine.dir/machine_model.cc.o.d"
  "/root/repo/src/machine/op_class.cc" "src/machine/CMakeFiles/balance_machine.dir/op_class.cc.o" "gcc" "src/machine/CMakeFiles/balance_machine.dir/op_class.cc.o.d"
  "/root/repo/src/machine/resource_state.cc" "src/machine/CMakeFiles/balance_machine.dir/resource_state.cc.o" "gcc" "src/machine/CMakeFiles/balance_machine.dir/resource_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/balance_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
