file(REMOVE_RECURSE
  "CMakeFiles/balance_machine.dir/machine_model.cc.o"
  "CMakeFiles/balance_machine.dir/machine_model.cc.o.d"
  "CMakeFiles/balance_machine.dir/op_class.cc.o"
  "CMakeFiles/balance_machine.dir/op_class.cc.o.d"
  "CMakeFiles/balance_machine.dir/resource_state.cc.o"
  "CMakeFiles/balance_machine.dir/resource_state.cc.o.d"
  "libbalance_machine.a"
  "libbalance_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
