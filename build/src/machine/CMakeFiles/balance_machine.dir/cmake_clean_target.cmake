file(REMOVE_RECURSE
  "libbalance_machine.a"
)
