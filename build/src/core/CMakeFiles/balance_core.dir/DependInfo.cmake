
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/balance_scheduler.cc" "src/core/CMakeFiles/balance_core.dir/balance_scheduler.cc.o" "gcc" "src/core/CMakeFiles/balance_core.dir/balance_scheduler.cc.o.d"
  "/root/repo/src/core/branch_dynamics.cc" "src/core/CMakeFiles/balance_core.dir/branch_dynamics.cc.o" "gcc" "src/core/CMakeFiles/balance_core.dir/branch_dynamics.cc.o.d"
  "/root/repo/src/core/branch_select.cc" "src/core/CMakeFiles/balance_core.dir/branch_select.cc.o" "gcc" "src/core/CMakeFiles/balance_core.dir/branch_select.cc.o.d"
  "/root/repo/src/core/op_pick.cc" "src/core/CMakeFiles/balance_core.dir/op_pick.cc.o" "gcc" "src/core/CMakeFiles/balance_core.dir/op_pick.cc.o.d"
  "/root/repo/src/core/sched_state.cc" "src/core/CMakeFiles/balance_core.dir/sched_state.cc.o" "gcc" "src/core/CMakeFiles/balance_core.dir/sched_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/balance_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/balance_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/balance_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/balance_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/balance_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
