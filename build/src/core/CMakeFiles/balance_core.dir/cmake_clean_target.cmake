file(REMOVE_RECURSE
  "libbalance_core.a"
)
