# Empty compiler generated dependencies file for balance_core.
# This may be replaced when dependencies are built.
