file(REMOVE_RECURSE
  "CMakeFiles/balance_core.dir/balance_scheduler.cc.o"
  "CMakeFiles/balance_core.dir/balance_scheduler.cc.o.d"
  "CMakeFiles/balance_core.dir/branch_dynamics.cc.o"
  "CMakeFiles/balance_core.dir/branch_dynamics.cc.o.d"
  "CMakeFiles/balance_core.dir/branch_select.cc.o"
  "CMakeFiles/balance_core.dir/branch_select.cc.o.d"
  "CMakeFiles/balance_core.dir/op_pick.cc.o"
  "CMakeFiles/balance_core.dir/op_pick.cc.o.d"
  "CMakeFiles/balance_core.dir/sched_state.cc.o"
  "CMakeFiles/balance_core.dir/sched_state.cc.o.d"
  "libbalance_core.a"
  "libbalance_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
