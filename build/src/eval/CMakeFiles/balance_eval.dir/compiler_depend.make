# Empty compiler generated dependencies file for balance_eval.
# This may be replaced when dependencies are built.
