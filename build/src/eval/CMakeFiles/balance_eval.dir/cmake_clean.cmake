file(REMOVE_RECURSE
  "CMakeFiles/balance_eval.dir/bench_options.cc.o"
  "CMakeFiles/balance_eval.dir/bench_options.cc.o.d"
  "CMakeFiles/balance_eval.dir/bounds_eval.cc.o"
  "CMakeFiles/balance_eval.dir/bounds_eval.cc.o.d"
  "CMakeFiles/balance_eval.dir/experiment.cc.o"
  "CMakeFiles/balance_eval.dir/experiment.cc.o.d"
  "libbalance_eval.a"
  "libbalance_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
