file(REMOVE_RECURSE
  "libbalance_eval.a"
)
