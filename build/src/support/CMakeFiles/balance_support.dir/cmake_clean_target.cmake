file(REMOVE_RECURSE
  "libbalance_support.a"
)
