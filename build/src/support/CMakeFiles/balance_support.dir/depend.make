# Empty dependencies file for balance_support.
# This may be replaced when dependencies are built.
