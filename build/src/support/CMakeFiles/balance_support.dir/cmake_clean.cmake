file(REMOVE_RECURSE
  "CMakeFiles/balance_support.dir/bitset.cc.o"
  "CMakeFiles/balance_support.dir/bitset.cc.o.d"
  "CMakeFiles/balance_support.dir/diagnostics.cc.o"
  "CMakeFiles/balance_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/balance_support.dir/rng.cc.o"
  "CMakeFiles/balance_support.dir/rng.cc.o.d"
  "CMakeFiles/balance_support.dir/stats.cc.o"
  "CMakeFiles/balance_support.dir/stats.cc.o.d"
  "CMakeFiles/balance_support.dir/strings.cc.o"
  "CMakeFiles/balance_support.dir/strings.cc.o.d"
  "CMakeFiles/balance_support.dir/table.cc.o"
  "CMakeFiles/balance_support.dir/table.cc.o.d"
  "libbalance_support.a"
  "libbalance_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
