
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/best_scheduler.cc" "src/sched/CMakeFiles/balance_sched.dir/best_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/balance_sched.dir/best_scheduler.cc.o.d"
  "/root/repo/src/sched/heuristics.cc" "src/sched/CMakeFiles/balance_sched.dir/heuristics.cc.o" "gcc" "src/sched/CMakeFiles/balance_sched.dir/heuristics.cc.o.d"
  "/root/repo/src/sched/list_scheduler.cc" "src/sched/CMakeFiles/balance_sched.dir/list_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/balance_sched.dir/list_scheduler.cc.o.d"
  "/root/repo/src/sched/optimal.cc" "src/sched/CMakeFiles/balance_sched.dir/optimal.cc.o" "gcc" "src/sched/CMakeFiles/balance_sched.dir/optimal.cc.o.d"
  "/root/repo/src/sched/priorities.cc" "src/sched/CMakeFiles/balance_sched.dir/priorities.cc.o" "gcc" "src/sched/CMakeFiles/balance_sched.dir/priorities.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/sched/CMakeFiles/balance_sched.dir/schedule.cc.o" "gcc" "src/sched/CMakeFiles/balance_sched.dir/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bounds/CMakeFiles/balance_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/balance_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/balance_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/balance_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
