file(REMOVE_RECURSE
  "CMakeFiles/balance_sched.dir/best_scheduler.cc.o"
  "CMakeFiles/balance_sched.dir/best_scheduler.cc.o.d"
  "CMakeFiles/balance_sched.dir/heuristics.cc.o"
  "CMakeFiles/balance_sched.dir/heuristics.cc.o.d"
  "CMakeFiles/balance_sched.dir/list_scheduler.cc.o"
  "CMakeFiles/balance_sched.dir/list_scheduler.cc.o.d"
  "CMakeFiles/balance_sched.dir/optimal.cc.o"
  "CMakeFiles/balance_sched.dir/optimal.cc.o.d"
  "CMakeFiles/balance_sched.dir/priorities.cc.o"
  "CMakeFiles/balance_sched.dir/priorities.cc.o.d"
  "CMakeFiles/balance_sched.dir/schedule.cc.o"
  "CMakeFiles/balance_sched.dir/schedule.cc.o.d"
  "libbalance_sched.a"
  "libbalance_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balance_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
