# Empty dependencies file for balance_sched.
# This may be replaced when dependencies are built.
