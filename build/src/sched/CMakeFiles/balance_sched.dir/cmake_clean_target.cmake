file(REMOVE_RECURSE
  "libbalance_sched.a"
)
