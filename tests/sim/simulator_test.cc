#include "sim/simulator.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "core/balance_scheduler.hh"
#include "sched/heuristics.hh"
#include "workload/generator.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

TEST(Simulator, SingleExitIsDeterministic)
{
    Superblock sb = paperFigure6();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    Schedule s = CriticalPathScheduler().run(ctx, m);
    Rng rng(1);
    SimResult r = simulateSuperblock(sb, s, 100, rng);
    EXPECT_EQ(r.traversals, 100);
    EXPECT_DOUBLE_EQ(r.meanCycles(), s.wct(sb));
    EXPECT_EQ(r.exitCounts[0], 100);
}

TEST(Simulator, MeanConvergesToWct)
{
    Superblock sb = paperFigure4(0.3);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    Schedule s = BalanceScheduler().run(ctx, m);
    Rng rng(2);
    SimResult r = simulateSuperblock(sb, s, 200000, rng);
    // Monte Carlo error ~ stddev/sqrt(n): well under 1%.
    EXPECT_NEAR(r.meanCycles(), s.wct(sb), 0.01 * s.wct(sb));
}

TEST(Simulator, ExitCountsFollowProfile)
{
    Superblock sb = paperFigure1(0.25);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    Schedule s = SuccessiveRetirementScheduler().run(ctx, m);
    Rng rng(3);
    SimResult r = simulateSuperblock(sb, s, 100000, rng);
    EXPECT_NEAR(double(r.exitCounts[0]) / r.traversals, 0.25, 0.01);
    EXPECT_NEAR(double(r.exitCounts[1]) / r.traversals, 0.75, 0.01);
}

TEST(Simulator, BetterScheduleSimulatesFaster)
{
    // Balance vs CP on Figure 1: CP delays the frequent side exit...
    // with a heavy side exit, CP's dynamic cycles must exceed SR's.
    Superblock sb = paperFigure1(0.6);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    Schedule cp = CriticalPathScheduler().run(ctx, m);
    Schedule sr = SuccessiveRetirementScheduler().run(ctx, m);
    Rng rngA(4);
    Rng rngB(4);
    SimResult a = simulateSuperblock(sb, cp, 50000, rngA);
    SimResult b = simulateSuperblock(sb, sr, 50000, rngB);
    EXPECT_GT(a.meanCycles(), b.meanCycles());
}

TEST(Simulator, ProgramAccumulatesByFrequency)
{
    Rng gen(5);
    GeneratorParams params;
    Superblock sb1 = generateSuperblock(gen, params, "p1");
    Superblock sb2 = generateSuperblock(gen, params, "p2");
    GraphContext ctx1(sb1);
    GraphContext ctx2(sb2);
    MachineModel m = MachineModel::fs4();
    Schedule s1 = DhasyScheduler().run(ctx1, m);
    Schedule s2 = DhasyScheduler().run(ctx2, m);

    Rng rng(6);
    ProgramSimResult r = simulateProgram(
        {{&sb1, &s1}, {&sb2, &s2}}, 1.0, rng);
    long long want = std::llround(sb1.execFrequency()) +
                     std::llround(sb2.execFrequency());
    EXPECT_NEAR(double(r.executions), double(want), 2.0);
    EXPECT_GT(r.totalCycles, 0.0);
}

TEST(Simulator, RejectsPartialSchedule)
{
    Superblock sb = paperFigure6();
    Schedule partial(sb.numOps());
    Rng rng(7);
    EXPECT_DEATH(simulateSuperblock(sb, partial, 1, rng), "partial");
}

} // namespace
} // namespace balance
