#include "eval/bench_options.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

BenchOptions
parse(std::vector<const char *> args, double defaultScale = 1.0)
{
    args.insert(args.begin(), "bench");
    return parseBenchOptions(int(args.size()),
                             const_cast<char **>(args.data()),
                             defaultScale);
}

TEST(BenchOptions, Defaults)
{
    BenchOptions o = parse({}, 0.25);
    EXPECT_DOUBLE_EQ(o.suite.scale, 0.25);
    EXPECT_EQ(o.machines.size(), 6u);
}

TEST(BenchOptions, ScaleAndSeed)
{
    BenchOptions o = parse({"--scale", "0.5", "--seed", "99"});
    EXPECT_DOUBLE_EQ(o.suite.scale, 0.5);
    EXPECT_EQ(o.suite.seed, 99u);
}

TEST(BenchOptions, ConfigRepeatable)
{
    BenchOptions o = parse({"--config", "GP1", "--config", "FS8"});
    ASSERT_EQ(o.machines.size(), 2u);
    EXPECT_EQ(o.machines[0].name(), "GP1");
    EXPECT_EQ(o.machines[1].name(), "FS8");
}

TEST(BenchOptions, BuildsScaledSuite)
{
    BenchOptions o = parse({"--scale", "0.004"});
    auto suite = o.buildSuitePopulation();
    EXPECT_EQ(suite.size(), 8u);
    EXPECT_GT(suiteSize(suite), 0);
    EXPECT_LT(suiteSize(suite), 100);
}

TEST(BenchOptions, ThreadsParsesAndDefaultsToAuto)
{
    EXPECT_EQ(parse({}).threads, 0); // auto: hardware concurrency
    EXPECT_EQ(parse({"--threads", "8"}).threads, 8);
    EXPECT_EQ(parse({"--threads", "0"}).threads, 0); // explicit auto
    EXPECT_EQ(parse({"--threads", "4", "--threads", "2"}).threads, 2);
}

TEST(BenchOptions, BadThreadsExits)
{
    EXPECT_DEATH({ auto o = parse({"--threads", "-3"}); (void)o; },
                 ".*");
    EXPECT_DEATH({ auto o = parse({"--threads", "abc"}); (void)o; },
                 ".*");
    EXPECT_DEATH({ auto o = parse({"--threads", "9999"}); (void)o; },
                 ".*");
}

TEST(BenchOptions, BadScaleExits)
{
    EXPECT_DEATH({ auto o = parse({"--scale", "2.0"}); (void)o; },
                 "bad --scale value '2.0'");
    EXPECT_DEATH({ auto o = parse({"--scale", "abc"}); (void)o; },
                 "bad --scale value 'abc'");
    EXPECT_DEATH({ auto o = parse({"--scale", "0"}); (void)o; },
                 "number in \\(0, 1\\]");
}

TEST(BenchOptions, BadSeedExits)
{
    EXPECT_DEATH({ auto o = parse({"--seed", "banana"}); (void)o; },
                 "bad --seed value 'banana'");
    EXPECT_DEATH({ auto o = parse({"--seed", "-1"}); (void)o; },
                 "unsigned 64-bit integer");
    // One past u64 max.
    EXPECT_DEATH(
        { auto o = parse({"--seed", "18446744073709551616"}); (void)o; },
        "bad --seed value");
}

TEST(BenchOptions, FullRangeSeedParses)
{
    BenchOptions o = parse({"--seed", "18446744073709551615"});
    EXPECT_EQ(o.suite.seed, 18446744073709551615ull);
}

TEST(BenchOptions, UnknownOptionExits)
{
    EXPECT_DEATH({ auto o = parse({"--bogus"}); (void)o; }, ".*");
}

// ---------------------------------------------------------------
// The checked option-parse helpers shared by every bench CLI.

TEST(BenchOptionHelpers, AcceptWellFormedValues)
{
    EXPECT_EQ(parseIntOption("t", "--top", "5", 1, 100), 5);
    EXPECT_EQ(parseIntOption("t", "--n", "-3", -10, 10), -3);
    EXPECT_EQ(parseUint64Option("t", "--seed", "18446744073709551615"),
              18446744073709551615ull);
    EXPECT_DOUBLE_EQ(parseDoubleOption("t", "--scale", "0.25"), 0.25);
    EXPECT_DOUBLE_EQ(parseDoubleOption("t", "--scale", "1e-3"), 1e-3);
}

TEST(BenchOptionHelpers, RejectWithOneLineErrorAndNonzeroExit)
{
    // atoi would have turned these into 0 silently; stod/stoull
    // would have thrown uncaught. Now: diagnostic naming the tool,
    // the option, and the offending text.
    EXPECT_DEATH(parseIntOption("t", "--top", "garbage", 1, 100),
                 "t: bad --top value 'garbage'");
    EXPECT_DEATH(parseIntOption("t", "--top", "7x", 1, 100),
                 "integer in \\[1, 100\\]");
    EXPECT_DEATH(parseIntOption("t", "--top", "0", 1, 100),
                 "bad --top value '0'");
    EXPECT_DEATH(parseIntOption("t", "--top", "101", 1, 100),
                 "bad --top value '101'");
    EXPECT_DEATH(parseUint64Option("t", "--seed", "0x10"),
                 "unsigned 64-bit integer");
    EXPECT_DEATH(parseUint64Option("t", "--seed", ""),
                 "unsigned 64-bit integer");
    EXPECT_DEATH(parseDoubleOption("t", "--scale", "fast"),
                 "finite number");
    EXPECT_DEATH(parseDoubleOption("t", "--scale", "1e999"),
                 "finite number");
    EXPECT_DEATH(parseDoubleOption("t", "--scale", "nan"),
                 "finite number");
}

} // namespace
} // namespace balance
