#include "eval/bench_options.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

BenchOptions
parse(std::vector<const char *> args, double defaultScale = 1.0)
{
    args.insert(args.begin(), "bench");
    return parseBenchOptions(int(args.size()),
                             const_cast<char **>(args.data()),
                             defaultScale);
}

TEST(BenchOptions, Defaults)
{
    BenchOptions o = parse({}, 0.25);
    EXPECT_DOUBLE_EQ(o.suite.scale, 0.25);
    EXPECT_EQ(o.machines.size(), 6u);
}

TEST(BenchOptions, ScaleAndSeed)
{
    BenchOptions o = parse({"--scale", "0.5", "--seed", "99"});
    EXPECT_DOUBLE_EQ(o.suite.scale, 0.5);
    EXPECT_EQ(o.suite.seed, 99u);
}

TEST(BenchOptions, ConfigRepeatable)
{
    BenchOptions o = parse({"--config", "GP1", "--config", "FS8"});
    ASSERT_EQ(o.machines.size(), 2u);
    EXPECT_EQ(o.machines[0].name(), "GP1");
    EXPECT_EQ(o.machines[1].name(), "FS8");
}

TEST(BenchOptions, BuildsScaledSuite)
{
    BenchOptions o = parse({"--scale", "0.004"});
    auto suite = o.buildSuitePopulation();
    EXPECT_EQ(suite.size(), 8u);
    EXPECT_GT(suiteSize(suite), 0);
    EXPECT_LT(suiteSize(suite), 100);
}

TEST(BenchOptions, ThreadsParsesAndDefaultsToAuto)
{
    EXPECT_EQ(parse({}).threads, 0); // auto: hardware concurrency
    EXPECT_EQ(parse({"--threads", "8"}).threads, 8);
    EXPECT_EQ(parse({"--threads", "0"}).threads, 0); // explicit auto
    EXPECT_EQ(parse({"--threads", "4", "--threads", "2"}).threads, 2);
}

TEST(BenchOptions, BadThreadsExits)
{
    EXPECT_DEATH({ auto o = parse({"--threads", "-3"}); (void)o; },
                 ".*");
    EXPECT_DEATH({ auto o = parse({"--threads", "abc"}); (void)o; },
                 ".*");
    EXPECT_DEATH({ auto o = parse({"--threads", "9999"}); (void)o; },
                 ".*");
}

TEST(BenchOptions, BadScaleExits)
{
    EXPECT_DEATH({ auto o = parse({"--scale", "2.0"}); (void)o; },
                 ".*");
}

TEST(BenchOptions, UnknownOptionExits)
{
    EXPECT_DEATH({ auto o = parse({"--bogus"}); (void)o; }, ".*");
}

} // namespace
} // namespace balance
