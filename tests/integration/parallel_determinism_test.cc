/**
 * Extends determinism_test.cc to the parallel experiment runner:
 * the whole eval pipeline must produce bitwise-identical
 * per-superblock and aggregate results for every --threads value.
 * Tasks write into pre-sized slots and the reduction runs serially
 * in suite order, so this holds exactly (==, not near).
 */

#include <gtest/gtest.h>

#include "eval/bounds_eval.hh"
#include "eval/experiment.hh"
#include "support/parallel_for.hh"
#include "support/rng.hh"

namespace balance
{
namespace
{

/** Per-superblock observations captured through the observer. */
struct Captured
{
    std::vector<WctBounds> bounds;
    std::vector<double> tightest;
    std::vector<std::vector<double>> wct;
    std::vector<std::string> names;
};

Captured
runAt(const std::vector<BenchmarkProgram> &suite,
      const MachineModel &machine, int threads)
{
    HeuristicSet set = HeuristicSet::paperSet();
    Captured out;
    evaluatePopulation(
        suite, machine, set, {},
        [&](const Superblock &sb, const SuperblockEval &eval) {
            out.names.push_back(sb.name());
            out.bounds.push_back(eval.bounds);
            out.tightest.push_back(eval.tightest);
            out.wct.push_back(eval.wct);
        },
        threads);
    return out;
}

TEST(ParallelDeterminism, PerSuperblockResultsAreThreadInvariant)
{
    SuiteOptions opts;
    opts.scale = 0.004;
    auto suite = buildSuite(opts);
    MachineModel machine = MachineModel::fs6();

    Captured serial = runAt(suite, machine, 1);
    ASSERT_FALSE(serial.names.empty());

    for (int threads : {2, 8}) {
        Captured par = runAt(suite, machine, threads);
        // Observer order is the suite order, independent of which
        // worker evaluated which superblock.
        ASSERT_EQ(par.names, serial.names) << "threads=" << threads;
        for (std::size_t i = 0; i < serial.names.size(); ++i) {
            EXPECT_EQ(par.tightest[i], serial.tightest[i]);
            EXPECT_EQ(par.bounds[i].cp, serial.bounds[i].cp);
            EXPECT_EQ(par.bounds[i].hu, serial.bounds[i].hu);
            EXPECT_EQ(par.bounds[i].rj, serial.bounds[i].rj);
            EXPECT_EQ(par.bounds[i].lc, serial.bounds[i].lc);
            EXPECT_EQ(par.bounds[i].pw, serial.bounds[i].pw);
            EXPECT_EQ(par.bounds[i].tw, serial.bounds[i].tw);
            ASSERT_EQ(par.wct[i].size(), serial.wct[i].size());
            for (std::size_t h = 0; h < serial.wct[i].size(); ++h)
                EXPECT_EQ(par.wct[i][h], serial.wct[i][h])
                    << serial.names[i] << " heuristic " << h
                    << " threads " << threads;
        }
    }
}

TEST(ParallelDeterminism, AggregateMetricsAreThreadInvariant)
{
    SuiteOptions opts;
    opts.scale = 0.004;
    auto suite = buildSuite(opts);
    HeuristicSet set = HeuristicSet::paperSet();

    for (const MachineModel &machine :
         {MachineModel::gp1(), MachineModel::fs8()}) {
        PopulationMetrics serial = evaluatePopulation(
            suite, machine, set, {}, nullptr, /*threads=*/1);
        for (int threads : {2, 8}) {
            PopulationMetrics par = evaluatePopulation(
                suite, machine, set, {}, nullptr, threads);
            // Bitwise equality: the float accumulation order is
            // pinned by the in-order reduction.
            EXPECT_EQ(par.boundCycles, serial.boundCycles);
            EXPECT_EQ(par.trivialCycleFraction,
                      serial.trivialCycleFraction);
            EXPECT_EQ(par.superblocks, serial.superblocks);
            EXPECT_EQ(par.trivialSuperblocks,
                      serial.trivialSuperblocks);
            EXPECT_EQ(par.nontrivialSlowdown,
                      serial.nontrivialSlowdown);
            EXPECT_EQ(par.optimalNontrivialFraction,
                      serial.optimalNontrivialFraction);
            EXPECT_EQ(par.optimalFraction, serial.optimalFraction);
        }
    }
}

TEST(ParallelDeterminism, BoundEvalIsThreadInvariant)
{
    SuiteOptions opts;
    opts.scale = 0.004;
    auto suite = buildSuite(opts);
    MachineModel machine = MachineModel::fs4();

    auto serialQ = evaluateBoundQuality(suite, machine, {}, 1);
    auto serialC = evaluateBoundCost(suite, machine, {}, 1);
    ASSERT_FALSE(serialQ.empty());
    for (int threads : {2, 8}) {
        auto parQ = evaluateBoundQuality(suite, machine, {}, threads);
        ASSERT_EQ(parQ.size(), serialQ.size());
        for (std::size_t i = 0; i < serialQ.size(); ++i) {
            EXPECT_EQ(parQ[i].name, serialQ[i].name);
            EXPECT_EQ(parQ[i].avgGapPercent, serialQ[i].avgGapPercent);
            EXPECT_EQ(parQ[i].maxGapPercent, serialQ[i].maxGapPercent);
            EXPECT_EQ(parQ[i].belowPercent, serialQ[i].belowPercent);
        }
        auto parC = evaluateBoundCost(suite, machine, {}, threads);
        ASSERT_EQ(parC.size(), serialC.size());
        for (std::size_t i = 0; i < serialC.size(); ++i) {
            EXPECT_EQ(parC[i].averageTrips, serialC[i].averageTrips);
            EXPECT_EQ(parC[i].medianTrips, serialC[i].medianTrips);
        }
    }
}

TEST(ParallelDeterminism, RngStreamsAreInstanceNotThreadKeyed)
{
    // The seed-derivation scheme: stream(seed, i) depends only on
    // (seed, i), so parallel workers drawing instance streams in any
    // order reproduce the serial bits.
    const std::uint64_t seed = 0xabcdef1234567890ULL;
    std::vector<std::uint64_t> serial(64);
    for (std::size_t i = 0; i < serial.size(); ++i)
        serial[i] = Rng::stream(seed, i).next();

    std::vector<std::uint64_t> par(serial.size());
    parallelFor(
        par.size(),
        [&](std::size_t i) { par[i] = Rng::stream(seed, i).next(); },
        8);
    EXPECT_EQ(par, serial);

    // Distinct instances get distinct streams (and none collides
    // with the parent seed's own stream).
    Rng parent(seed);
    std::uint64_t parentFirst = parent.next();
    for (std::size_t i = 1; i < serial.size(); ++i) {
        EXPECT_NE(serial[i], serial[i - 1]);
        EXPECT_NE(serial[i], parentFirst);
    }
}

} // namespace
} // namespace balance
