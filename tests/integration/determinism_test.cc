/**
 * Reproducibility: every scheduler and every bound is a pure
 * function of (superblock, machine) — two runs must agree bit for
 * bit, and suite construction must be byte-stable for a seed. The
 * experiment tables depend on this.
 */

#include <gtest/gtest.h>

#include "eval/experiment.hh"
#include "workload/sb_io.hh"

namespace balance
{
namespace
{

TEST(Determinism, SchedulersArePureFunctions)
{
    SuiteOptions opts;
    opts.scale = 0.003;
    auto suite = buildSuite(opts);
    HeuristicSet set = HeuristicSet::paperSet();
    for (const auto &prog : suite) {
        for (const auto &sb : prog.superblocks) {
            MachineModel m = MachineModel::fs6();
            SuperblockEval a = evaluateSuperblock(sb, m, set);
            SuperblockEval b = evaluateSuperblock(sb, m, set);
            EXPECT_EQ(a.tightest, b.tightest);
            ASSERT_EQ(a.wct.size(), b.wct.size());
            for (std::size_t h = 0; h < a.wct.size(); ++h)
                EXPECT_EQ(a.wct[h], b.wct[h]) << sb.name();
        }
    }
}

TEST(Determinism, SuiteSerializationIsByteStable)
{
    SuiteOptions opts;
    opts.scale = 0.002;
    auto a = buildSuite(opts);
    auto b = buildSuite(opts);
    std::string textA;
    std::string textB;
    for (std::size_t p = 0; p < a.size(); ++p) {
        for (std::size_t i = 0; i < a[p].superblocks.size(); ++i) {
            textA += writeSuperblock(a[p].superblocks[i]);
            textB += writeSuperblock(b[p].superblocks[i]);
        }
    }
    EXPECT_EQ(textA, textB);
    EXPECT_FALSE(textA.empty());
}

} // namespace
} // namespace balance
