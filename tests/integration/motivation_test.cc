/**
 * End-to-end checks of the paper's motivating claims (Sections 1-3)
 * on the figure fixtures, pinning the qualitative story the
 * reproduction must tell.
 */

#include <gtest/gtest.h>

#include "bounds/superblock_bounds.hh"
#include "core/balance_scheduler.hh"
#include "sched/heuristics.hh"
#include "sched/optimal.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

TEST(Motivation, Figure1StoryHolds)
{
    // CP delays the side exit; SR is optimal; the bound knows both
    // exits can make (2, 8).
    Superblock sb = paperFigure1(0.2);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();

    WctBounds bounds = computeWctBounds(ctx, m);
    double lb = 0.2 * 3 + 0.8 * 9;
    EXPECT_NEAR(bounds.tightest(), lb, 1e-9);

    double sr = SuccessiveRetirementScheduler().run(ctx, m).wct(sb);
    double cp = CriticalPathScheduler().run(ctx, m).wct(sb);
    double bal = BalanceScheduler().run(ctx, m).wct(sb);
    EXPECT_NEAR(sr, lb, 1e-9);
    EXPECT_GT(cp, lb + 1e-9);
    EXPECT_NEAR(bal, lb, 1e-9);
}

TEST(Motivation, Figure2HelpCountingIsOutperformed)
{
    // Observation 1: Balance reaches the optimum (2, 3); a pure
    // help-count pick (Help with dependence bounds only) may give
    // the three block-1 feeders priority and lose a cycle on the
    // final exit. Balance must match the exact optimum.
    Superblock sb = paperFigure2(0.4);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    OptimalResult opt = optimalSchedule(ctx, m);
    ASSERT_TRUE(opt.proven);
    EXPECT_NEAR(BalanceScheduler().run(ctx, m).wct(sb), opt.wct, 1e-9);
    EXPECT_NEAR(opt.wct, 0.4 * 3 + 0.6 * 4, 1e-9);
}

TEST(Motivation, Figure3BoundsComponentMatters)
{
    // Observation 2: with RC bounds Balance is optimal; the
    // DC-bounds ablation can miss that op 4 must issue in cycle 0.
    Superblock sb = paperFigure3(0.4);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    OptimalResult opt = optimalSchedule(ctx, m);
    ASSERT_TRUE(opt.proven);

    double withBounds = BalanceScheduler().run(ctx, m).wct(sb);
    EXPECT_NEAR(withBounds, opt.wct, 1e-9);

    BalanceConfig noBounds;
    noBounds.useRcBounds = false;
    noBounds.useTradeoff = false;
    double without =
        BalanceScheduler(noBounds, "noBounds").run(ctx, m).wct(sb);
    EXPECT_GE(without, withBounds - 1e-9);
}

TEST(Motivation, Figure4OptimalDependsOnProbability)
{
    // Observation 3: three probability regimes, two distinct branch
    // time frontiers.
    MachineModel m = MachineModel::gp2();
    auto issueTimes = [&](double p) {
        Superblock sb = paperFigure4(p);
        GraphContext ctx(sb);
        OptimalResult opt = optimalSchedule(ctx, m);
        EXPECT_TRUE(opt.proven);
        return std::pair<int, int>(
            opt.schedule.issueOf(sb.branches()[0]),
            opt.schedule.issueOf(sb.branches()[1]));
    };
    auto low = issueTimes(0.2);
    EXPECT_EQ(low.first, 3);
    EXPECT_EQ(low.second, 4);
    auto high = issueTimes(0.8);
    EXPECT_EQ(high.first, 2);
    EXPECT_EQ(high.second, 5);
}

TEST(Motivation, Figure4BalanceTracksOptimal)
{
    MachineModel m = MachineModel::gp2();
    for (double p : {0.1, 0.3, 0.45, 0.55, 0.7, 0.9}) {
        Superblock sb = paperFigure4(p);
        GraphContext ctx(sb);
        OptimalResult opt = optimalSchedule(ctx, m);
        ASSERT_TRUE(opt.proven);
        double bal = BalanceScheduler().run(ctx, m).wct(sb);
        EXPECT_NEAR(bal, opt.wct, 1e-9) << "P = " << p;
    }
}

TEST(Motivation, Figure6HuBeatsNaiveCount)
{
    Superblock sb = paperFigure6();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    WctBounds bounds = computeWctBounds(ctx, m);
    // Naive resource count says 4; the ERC bound says 5.
    EXPECT_NEAR(bounds.cp, 5.0, 1e-9); // EarlyDC = 4, +1 latency
    EXPECT_NEAR(bounds.hu, 6.0, 1e-9);
    OptimalResult opt = optimalSchedule(ctx, m);
    ASSERT_TRUE(opt.proven);
    EXPECT_NEAR(opt.wct, 6.0, 1e-9);
}

} // namespace
} // namespace balance
