/**
 * Differential harness on small superblocks: for seeded random
 * instances of <= 12 operations the exact branch-and-bound oracle is
 * cheap, so the whole invariant chain can be checked end to end:
 *
 *   LB(RJ) <= LB(Pairwise) <= LB(Triplewise)
 *          <= optimal WCT  <= every heuristic WCT
 *
 * (Balance in particular), with Schedule::validate() run on every
 * heuristic schedule so a structurally illegal schedule can never
 * report a good WCT. Each instance draws its RNG stream from
 * Rng::stream(seed, instance) — the same per-instance derivation the
 * parallel experiment runner uses — so the population is identical
 * no matter how many workers evaluate it or in which order.
 */

#include <gtest/gtest.h>

#include "bounds/superblock_bounds.hh"
#include "core/balance_scheduler.hh"
#include "eval/experiment.hh"
#include "sched/bnb/bnb.hh"
#include "sched/optimal.hh"
#include "support/parallel_for.hh"
#include "support/rng.hh"
#include "workload/generator.hh"

namespace balance
{
namespace
{

constexpr std::uint64_t kSeed = 0xd1ffe2e47a151ULL;
constexpr int kInstances = 60;

/** Small-instance shape: a few short blocks, <= 12 ops total. */
GeneratorParams
smallParams()
{
    GeneratorParams params;
    params.blockGeoP = 0.55;
    params.opsPerBlockMu = 0.9;
    params.opsPerBlockSigma = 0.5;
    params.maxOps = 12;
    params.maxBlocks = 4;
    return params;
}

Superblock
instanceAt(std::size_t i)
{
    Rng rng = Rng::stream(kSeed, i);
    return generateSuperblock(rng, smallParams(),
                              "diff.sb" + std::to_string(i));
}

class DifferentialSmall : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DifferentialSmall, BoundChainOracleAndHeuristicsAgree)
{
    MachineModel machine = MachineModel::byName(GetParam());
    HeuristicSet set = HeuristicSet::paperSet(/*withBest=*/false);

    struct Outcome
    {
        int numOps = 0;
        bool proven = false;
        double rj = 0.0, pw = 0.0, tw = 0.0;
        double optimal = 0.0;
        double balance = 0.0;
        std::vector<double> heuristicWct;
        bool bnbProven = false;
        bool bnbExhausted = false;
        double bnbWct = 0.0;
        double bnbLower = 0.0;
    };
    std::vector<Outcome> slots(kInstances);

    // The harness itself uses the deterministic parallel pattern:
    // per-instance slots, order-independent generation, serial
    // assertions afterwards (gtest expectations are not thread-safe).
    parallelFor(slots.size(), [&](std::size_t i) {
        Superblock sb = instanceAt(i);
        slots[i].numOps = sb.numOps();
        GraphContext ctx(sb);

        WctBounds bounds = computeWctBounds(ctx, machine);
        Outcome &out = slots[i];
        out.rj = bounds.rj;
        out.pw = bounds.pw;
        out.tw = bounds.tw;

        OptimalOptions oo;
        oo.maxNodes = 500000;
        OptimalResult opt = optimalSchedule(ctx, machine, oo);
        out.proven = opt.proven;
        if (opt.proven) {
            opt.schedule.validate(sb, machine);
            out.optimal = opt.wct;
        }

        // The branch-and-bound engine explores the same schedule
        // space; both oracles must certify the same optimum. The
        // toolkit lends EarlyRC floors, the tightest static bound
        // floors the certificate — exactly how eval drives it.
        BoundsToolkit toolkit(ctx, machine);
        BnbOptions bo;
        bo.maxNodes = 500000;
        bo.threads = 1; // the harness already runs instances in parallel
        BnbRequest breq;
        breq.toolkit = &toolkit;
        breq.staticLowerBound = bounds.tightest();
        BnbResult bnb = bnbSchedule(ctx, machine, bo, breq);
        bnb.schedule.validate(sb, machine);
        out.bnbProven = bnb.proven;
        out.bnbExhausted = bnb.exhausted;
        out.bnbWct = bnb.wct;
        out.bnbLower = bnb.lowerBound;

        for (const auto &sched : set.primaries) {
            Schedule s = sched->run(ctx, machine);
            // Every heuristic schedule must be structurally legal:
            // complete, dependence-latency clean, within resources.
            s.validate(sb, machine);
            double w = s.wct(sb);
            out.heuristicWct.push_back(w);
            if (sched->name() == "Balance")
                out.balance = w;
        }
    });

    int proven = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const Outcome &out = slots[i];
        ASSERT_LE(out.numOps, 12) << "instance " << i;
        // Lower bounds tighten monotonically along the chain.
        EXPECT_LE(out.rj, out.pw + 1e-9) << "instance " << i;
        EXPECT_LE(out.pw, out.tw + 1e-9) << "instance " << i;
        if (!out.proven)
            continue;
        ++proven;
        // Every bound stays below the true optimum...
        EXPECT_LE(out.tw, out.optimal + 1e-9) << "instance " << i;
        // ...and no heuristic (Balance included) beats it.
        EXPECT_GE(out.balance, out.optimal - 1e-9) << "instance " << i;
        for (std::size_t h = 0; h < out.heuristicWct.size(); ++h)
            EXPECT_GE(out.heuristicWct[h], out.optimal - 1e-9)
                << "instance " << i << " heuristic " << h;
        // Cross-engine oracle: B&B certifies the same optimum the
        // exhaustive search does, its certificate closes (lower
        // bound meets the incumbent), and the full ladder
        // RJ <= PW <= TW <= B&B <= every heuristic holds.
        EXPECT_TRUE(out.bnbProven) << "instance " << i;
        EXPECT_TRUE(out.bnbExhausted) << "instance " << i;
        EXPECT_NEAR(out.bnbWct, out.optimal, 1e-9) << "instance " << i;
        EXPECT_NEAR(out.bnbLower, out.bnbWct, 1e-9) << "instance " << i;
        EXPECT_LE(out.tw, out.bnbLower + 1e-9) << "instance " << i;
        for (std::size_t h = 0; h < out.heuristicWct.size(); ++h)
            EXPECT_LE(out.bnbWct, out.heuristicWct[h] + 1e-9)
                << "instance " << i << " heuristic " << h;
    }
    // <= 12 ops: the oracle budget must suffice essentially always.
    EXPECT_GE(proven, kInstances * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(Machines, DifferentialSmall,
                         ::testing::Values("GP1", "GP2", "FS4", "FS8"));

TEST(DifferentialSmall, PopulationIsSeedStable)
{
    // The per-instance stream derivation pins the population bytes:
    // regenerating any instance reproduces it exactly.
    for (std::size_t i : {std::size_t(0), std::size_t(17),
                          std::size_t(59)}) {
        Superblock a = instanceAt(i);
        Superblock b = instanceAt(i);
        ASSERT_EQ(a.numOps(), b.numOps());
        for (OpId v = 0; v < a.numOps(); ++v) {
            EXPECT_EQ(a.op(v).cls, b.op(v).cls);
            EXPECT_EQ(a.op(v).latency, b.op(v).latency);
        }
    }
}

} // namespace
} // namespace balance
