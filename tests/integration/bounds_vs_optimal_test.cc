/**
 * The library's strongest property test: on a population of random
 * small superblocks, for every machine configuration,
 *
 *   every lower bound <= exact optimum <= every heuristic schedule,
 *
 * with all schedules structurally validated. A violation on either
 * side means a real bug (an unsound bound or an illegal schedule),
 * so this test is the one to trust when touching Section 4 or 5
 * code.
 */

#include <gtest/gtest.h>

#include "bounds/superblock_bounds.hh"
#include "eval/experiment.hh"
#include "sched/optimal.hh"
#include "workload/generator.hh"

namespace balance
{
namespace
{

struct Config
{
    std::uint64_t seed;
    const char *machine;
};

class BoundsVsOptimal : public ::testing::TestWithParam<Config>
{
};

TEST_P(BoundsVsOptimal, Sandwich)
{
    Config cfg = GetParam();
    MachineModel machine = MachineModel::byName(cfg.machine);

    Rng rng(cfg.seed);
    GeneratorParams params;
    // Small superblocks keep the exact search tractable.
    params.blockGeoP = 0.6;
    params.opsPerBlockMu = 0.9;
    params.opsPerBlockSigma = 0.5;
    params.maxOps = 13;
    params.maxBlocks = 4;

    HeuristicSet set = HeuristicSet::paperSet(/*withBest=*/false);

    int proven = 0;
    for (int trial = 0; trial < 25; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(
            child, params, "s" + std::to_string(trial));
        GraphContext ctx(sb);

        WctBounds bounds = computeWctBounds(ctx, machine);
        double tightest = bounds.tightest();

        OptimalOptions opts;
        opts.maxNodes = 500000;
        OptimalResult opt = optimalSchedule(ctx, machine, opts);
        if (!opt.proven)
            continue;
        ++proven;
        opt.schedule.validate(sb, machine);

        // Lower bounds never exceed the optimum.
        for (double b : {bounds.cp, bounds.hu, bounds.rj, bounds.lc,
                         bounds.pw, bounds.tw}) {
            EXPECT_LE(b, opt.wct + 1e-6)
                << sb.name() << " on " << machine.name();
        }
        EXPECT_LE(tightest, opt.wct + 1e-6);

        // Heuristics never beat the optimum.
        for (const auto &sched : set.primaries) {
            Schedule s = sched->run(ctx, machine);
            s.validate(sb, machine);
            EXPECT_GE(s.wct(sb), opt.wct - 1e-6)
                << sched->name() << " on " << sb.name() << "/"
                << machine.name();
        }
    }
    // The population must be meaningful.
    EXPECT_GE(proven, 15);
}

INSTANTIATE_TEST_SUITE_P(
    Population, BoundsVsOptimal,
    ::testing::Values(Config{11, "GP1"}, Config{12, "GP2"},
                      Config{13, "GP4"}, Config{14, "FS4"},
                      Config{15, "FS6"}, Config{16, "FS8"},
                      Config{17, "GP2"}, Config{18, "FS4"}),
    [](const ::testing::TestParamInfo<Config> &info) {
        return std::string(info.param.machine) + "_" +
               std::to_string(info.param.seed);
    });

} // namespace
} // namespace balance
