/**
 * The telemetry never-perturb contract (docs/OBSERVABILITY.md): with
 * metrics collection and decision-log capture on, every schedule,
 * bound, and Table 2 trip count is bitwise identical to a run with
 * telemetry off, at every --threads value — and the telemetry output
 * itself (metrics snapshot bytes, decision-log bytes) is
 * thread-invariant, because all hot-path accounting lands in
 * per-superblock slots folded serially in suite order.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "eval/bounds_eval.hh"
#include "eval/experiment.hh"
#include "graph/analysis.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/perf_counters.hh"
#include "support/telemetry.hh"

namespace balance
{
namespace
{

/** Force both capture switches off on scope exit. */
struct TelemetryGuard
{
    ~TelemetryGuard()
    {
        setMetricsCollection(false);
        setDecisionLogCapture(false);
    }
};

/** Per-superblock results plus rendered decision logs, suite order. */
struct Captured
{
    std::vector<std::string> names;
    std::vector<WctBounds> bounds;
    std::vector<double> tightest;
    std::vector<std::vector<double>> wct;
    std::vector<std::string> decisionLogs;
};

Captured
runAt(const std::vector<BenchmarkProgram> &suite,
      const MachineModel &machine, int threads)
{
    HeuristicSet set = HeuristicSet::paperSet();
    Captured out;
    evaluatePopulation(
        suite, machine, set, {},
        [&](const Superblock &sb, const SuperblockEval &eval) {
            out.names.push_back(sb.name());
            out.bounds.push_back(eval.bounds);
            out.tightest.push_back(eval.tightest);
            out.wct.push_back(eval.wct);
            out.decisionLogs.push_back(
                eval.telemetry ? eval.telemetry->decisionLog
                               : std::string());
        },
        threads);
    return out;
}

std::vector<BenchmarkProgram>
tinySuite()
{
    SuiteOptions opts;
    opts.scale = 0.004;
    return buildSuite(opts);
}

void
expectSameResults(const Captured &a, const Captured &b)
{
    ASSERT_EQ(a.names, b.names);
    for (std::size_t i = 0; i < a.names.size(); ++i) {
        EXPECT_EQ(a.tightest[i], b.tightest[i]) << a.names[i];
        EXPECT_EQ(a.bounds[i].cp, b.bounds[i].cp);
        EXPECT_EQ(a.bounds[i].hu, b.bounds[i].hu);
        EXPECT_EQ(a.bounds[i].rj, b.bounds[i].rj);
        EXPECT_EQ(a.bounds[i].lc, b.bounds[i].lc);
        EXPECT_EQ(a.bounds[i].pw, b.bounds[i].pw);
        EXPECT_EQ(a.bounds[i].tw, b.bounds[i].tw);
        ASSERT_EQ(a.wct[i].size(), b.wct[i].size());
        for (std::size_t h = 0; h < a.wct[i].size(); ++h)
            EXPECT_EQ(a.wct[i][h], b.wct[i][h])
                << a.names[i] << " heuristic " << h;
    }
}

TEST(TelemetryDeterminism, TelemetryOnNeverPerturbsResults)
{
    TelemetryGuard guard;
    auto suite = tinySuite();
    MachineModel machine = MachineModel::fs6();

    setMetricsCollection(false);
    setDecisionLogCapture(false);
    Captured off = runAt(suite, machine, 1);
    ASSERT_FALSE(off.names.empty());
    for (const std::string &log : off.decisionLogs)
        EXPECT_TRUE(log.empty()) << "capture off must record nothing";

    setMetricsCollection(true);
    setDecisionLogCapture(true, /*json=*/true);
    for (int threads : {1, 8}) {
        Captured on = runAt(suite, machine, threads);
        expectSameResults(off, on);
    }
}

TEST(TelemetryDeterminism, MetricsSnapshotBytesAreThreadInvariant)
{
    TelemetryGuard guard;
    auto suite = tinySuite();
    MachineModel machine = MachineModel::fs6();
    setMetricsCollection(true);

    auto snapshotAt = [&](int threads) {
        MetricRegistry::global().reset();
        runAt(suite, machine, threads);
        evaluateBoundCost(suite, machine, {}, threads);
        return MetricRegistry::global().snapshotJson();
    };

    std::string serial = snapshotAt(1);
    EXPECT_TRUE(jsonLooksValid(serial));
    for (const char *name :
         {"sched.balance.decisions", "sched.list.decisions",
          "bounds.pair_skeleton.", "bounds.relax.epoch_resets",
          "bounds.scratch.high_water_bytes", "bounds.trips.tw"})
        EXPECT_NE(serial.find(name), std::string::npos) << name;

    EXPECT_EQ(snapshotAt(8), serial);
}

TEST(TelemetryDeterminism, DecisionLogBytesAreThreadInvariant)
{
    TelemetryGuard guard;
    auto suite = tinySuite();
    MachineModel machine = MachineModel::fs4();

    for (bool json : {false, true}) {
        setMetricsCollection(false);
        setDecisionLogCapture(true, json);
        Captured serial = runAt(suite, machine, 1);
        Captured par = runAt(suite, machine, 8);
        ASSERT_EQ(serial.decisionLogs, par.decisionLogs)
            << "json=" << json;

        bool sawSteps = false;
        for (const std::string &log : serial.decisionLogs) {
            if (log.empty())
                continue;
            sawSteps = true;
            if (!json)
                continue;
            // Every line of the JSON rendering is a valid document.
            std::size_t pos = 0;
            while (pos < log.size()) {
                std::size_t nl = log.find('\n', pos);
                ASSERT_NE(nl, std::string::npos);
                EXPECT_TRUE(
                    jsonLooksValid(log.substr(pos, nl - pos)))
                    << log.substr(pos, nl - pos);
                pos = nl + 1;
            }
        }
        EXPECT_TRUE(sawSteps) << "capture produced no decision steps";
    }
}

TEST(TelemetryDeterminism, HwCountersNeverPerturbResultsOrBytes)
{
    TelemetryGuard guard;
    auto suite = tinySuite();
    MachineModel machine = MachineModel::fs6();
    setMetricsCollection(true);

    // Baseline with the profiler off: results plus the exact
    // metrics-snapshot bytes every later configuration must match.
    PerfProfiler &profiler = PerfProfiler::global();
    profiler.disable();
    MetricRegistry::global().reset();
    Captured off = runAt(suite, machine, 1);
    evaluateBoundCost(suite, machine, {}, 1);
    std::string offSnapshot = MetricRegistry::global().snapshotJson();
    ASSERT_FALSE(off.names.empty());

    // Counters on: schedules, bounds, WCTs, Table 2 trips, and the
    // non-counter telemetry bytes stay bitwise identical at every
    // thread count. Only hwcounters output itself may vary (its
    // measured values are nondeterministic by nature), and even
    // there the per-phase entry counts are exact.
    profiler.enable();
    std::vector<long long> entriesAtOneThread;
    for (int threads : {1, 8}) {
        profiler.reset();
        MetricRegistry::global().reset();
        Captured on = runAt(suite, machine, threads);
        evaluateBoundCost(suite, machine, {}, threads);
        expectSameResults(off, on);
        EXPECT_EQ(MetricRegistry::global().snapshotJson(),
                  offSnapshot)
            << "threads=" << threads;

        PerfSnapshot snap = profiler.snapshot();
        std::string doc = snap.toJson();
        EXPECT_TRUE(jsonLooksValid(doc)) << doc;
        std::vector<long long> entries;
        for (int p = 0; p < numPerfPhases; ++p)
            entries.push_back(snap.phases[std::size_t(p)].entries);
        if (threads == 1)
            entriesAtOneThread = entries;
        else
            EXPECT_EQ(entries, entriesAtOneThread)
                << "per-phase region entries must be exact sums, "
                   "independent of the worker count";
    }
    profiler.disable();
}

TEST(TelemetryDeterminism, TripCountersMatchBoundCounterSums)
{
    TelemetryGuard guard;
    auto suite = tinySuite();
    MachineModel machine = MachineModel::fs6();

    setMetricsCollection(true);
    MetricRegistry::global().reset();
    evaluateBoundCost(suite, machine, {}, 8);

    // Recompute the Table 2 totals serially, straight from
    // BoundCounters, the way bench/table2 reports them.
    long long expected[8] = {};
    for (const BenchmarkProgram &prog : suite) {
        for (const Superblock &sb : prog.superblocks) {
            GraphContext ctx(sb);
            for (int bi = 0; bi < sb.numBranches(); ++bi)
                expected[0] += sb.numOps() + sb.numEdges();

            BoundCounters hu;
            huEarly(ctx, machine, &hu);
            expected[1] += hu.trips;

            BoundCounters rj;
            rjEarly(ctx, machine, &rj);
            expected[2] += rj.trips;

            BoundCounters lc;
            std::vector<int> earlyRC =
                lcEarlyRCForSuperblock(ctx, machine, {}, &lc);
            expected[3] += lc.trips;

            BoundCounters lcOrig;
            LcOptions noTheorem1;
            noTheorem1.useTheorem1 = false;
            lcEarlyRCForSuperblock(ctx, machine, noTheorem1, &lcOrig);
            expected[4] += lcOrig.trips;

            BoundCounters lcRev;
            std::vector<std::vector<int>> lateRCs;
            for (int bi = 0; bi < sb.numBranches(); ++bi)
                lateRCs.push_back(
                    lateRCFor(ctx, machine, bi, earlyRC, &lcRev));
            expected[5] += lcRev.trips;

            BoundCounters pwC;
            PairwiseBounds pw(ctx, machine, earlyRC, lateRCs, {},
                              &pwC);
            expected[6] += pwC.trips;

            BoundCounters twC;
            computeTriplewise(ctx, machine, earlyRC, lateRCs, pw, {},
                              &twC);
            expected[7] += twC.trips;
        }
    }

    static const char *metricNames[8] = {
        "bounds.trips.cp",          "bounds.trips.hu",
        "bounds.trips.rj",          "bounds.trips.lc",
        "bounds.trips.lc_original", "bounds.trips.lc_reverse",
        "bounds.trips.pw",          "bounds.trips.tw"};
    MetricRegistry &reg = MetricRegistry::global();
    for (int i = 0; i < 8; ++i) {
        EXPECT_GT(expected[i], 0) << metricNames[i];
        EXPECT_EQ(reg.counter(metricNames[i]).value(), expected[i])
            << metricNames[i];
    }
}

} // namespace
} // namespace balance
