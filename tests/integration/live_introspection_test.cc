/**
 * Live introspection end to end (docs/OBSERVABILITY.md): hammering
 * the diagnostics server's /metrics and /progress endpoints from
 * several threads during a full parallel evaluation must leave every
 * schedule, bound, and telemetry byte identical to a server-off run
 * (the non-perturbation guarantee); /progress must reflect the eval
 * sweep and the branch-and-bound publications; and the metrics
 * timeline's final sample must equal the at-rest snapshot exactly.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.hh"
#include "graph/analysis.hh"
#include "sched/bnb/bnb.hh"
#include "support/debug_server.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/metrics_timeline.hh"
#include "support/progress.hh"
#include "support/telemetry.hh"

namespace balance
{
namespace
{

/** Force capture switches and the tracker off on scope exit. */
struct IntrospectionGuard
{
    ~IntrospectionGuard()
    {
        setMetricsCollection(false);
        setDecisionLogCapture(false);
        ProgressTracker::global().disable();
    }
};

/** One blocking HTTP GET against 127.0.0.1:@p port. */
std::string
httpGet(int port, const std::string &path)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return "";
    }
    std::string req = "GET " + path + " HTTP/1.1\r\n"
                      "Connection: close\r\n\r\n";
    ::send(fd, req.data(), req.size(), 0);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, std::size_t(n));
    ::close(fd);
    return resp;
}

/** Per-superblock results, suite order. */
struct Captured
{
    std::vector<std::string> names;
    std::vector<double> tightest;
    std::vector<std::vector<double>> wct;
};

Captured
runAt(const std::vector<BenchmarkProgram> &suite,
      const MachineModel &machine, int threads)
{
    HeuristicSet set = HeuristicSet::paperSet();
    Captured out;
    evaluatePopulation(
        suite, machine, set, {},
        [&](const Superblock &sb, const SuperblockEval &eval) {
            out.names.push_back(sb.name());
            out.tightest.push_back(eval.tightest);
            out.wct.push_back(eval.wct);
        },
        threads);
    return out;
}

std::vector<BenchmarkProgram>
tinySuite()
{
    SuiteOptions opts;
    opts.scale = 0.004;
    return buildSuite(opts);
}

void
expectSameResults(const Captured &a, const Captured &b)
{
    ASSERT_EQ(a.names, b.names);
    for (std::size_t i = 0; i < a.names.size(); ++i) {
        EXPECT_EQ(a.tightest[i], b.tightest[i]) << a.names[i];
        ASSERT_EQ(a.wct[i].size(), b.wct[i].size());
        for (std::size_t h = 0; h < a.wct[i].size(); ++h)
            EXPECT_EQ(a.wct[i][h], b.wct[i][h])
                << a.names[i] << " heuristic " << h;
    }
}

TEST(LiveIntrospection, ConcurrentScrapesNeverPerturbResults)
{
    IntrospectionGuard guard;
    auto suite = tinySuite();
    MachineModel machine = MachineModel::fs6();
    setMetricsCollection(true);

    // Baseline: server off.
    MetricRegistry::global().reset();
    Captured off = runAt(suite, machine, 8);
    std::string offSnapshot = MetricRegistry::global().snapshotJson();
    ASSERT_FALSE(off.names.empty());

    // Server on, scrapers hammering /metrics and /progress the whole
    // time the evaluation runs.
    DebugServer server;
    DebugServerOptions opts;
    ASSERT_TRUE(server.start(opts));
    std::atomic<bool> stopScrape{false};
    std::atomic<long long> scrapes{0};
    std::vector<std::thread> scrapers;
    for (int t = 0; t < 4; ++t) {
        scrapers.emplace_back([&] {
            while (!stopScrape.load(std::memory_order_relaxed)) {
                std::string m = httpGet(server.port(), "/metrics");
                std::string p = httpGet(server.port(), "/progress");
                if (!m.empty() && !p.empty())
                    scrapes.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    MetricRegistry::global().reset();
    Captured on = runAt(suite, machine, 8);
    std::string onSnapshot = MetricRegistry::global().snapshotJson();

    stopScrape.store(true, std::memory_order_relaxed);
    for (std::thread &t : scrapers)
        t.join();
    server.stop();

    EXPECT_GT(scrapes.load(), 0)
        << "the scrapers never completed a request; the test did not "
           "actually exercise concurrent scraping";
    expectSameResults(off, on);
    EXPECT_EQ(onSnapshot, offSnapshot)
        << "scraping must not change a single metrics byte";
}

TEST(LiveIntrospection, ProgressReflectsEvalSweep)
{
    IntrospectionGuard guard;
    auto suite = tinySuite();
    MachineModel machine = MachineModel::fs4();

    ProgressTracker &tracker = ProgressTracker::global();
    tracker.enable();
    tracker.reset();
    Captured run = runAt(suite, machine, 4);

    PhaseProgress &eval = tracker.phase("eval");
    EXPECT_FALSE(eval.active()) << "sweep finished";
    EXPECT_EQ(eval.total(), (long long)(run.names.size()));
    EXPECT_EQ(eval.done(), eval.total());
    EXPECT_GE(eval.starts(), 1);

    std::string doc = tracker.snapshotJson();
    EXPECT_TRUE(jsonLooksValid(doc)) << doc;
    EXPECT_NE(doc.find("\"name\":\"eval\""), std::string::npos);
}

TEST(LiveIntrospection, ProgressReflectsBnbRounds)
{
    IntrospectionGuard guard;
    auto suite = tinySuite();
    ASSERT_FALSE(suite.empty());
    ASSERT_FALSE(suite[0].superblocks.empty());
    const Superblock &sb = suite[0].superblocks[0];
    MachineModel machine = MachineModel::gp4();

    ProgressTracker &tracker = ProgressTracker::global();
    tracker.enable();
    tracker.reset();

    GraphContext ctx(sb);
    BnbOptions opts;
    opts.maxNodes = 20000;
    opts.threads = 2;
    BnbResult result = bnbSchedule(ctx, machine, opts, {});

    BnbProgress progress = tracker.bnbProgress();
    EXPECT_EQ(progress.searches, 1);
    EXPECT_EQ(progress.nodesExpanded, result.counters.nodesExpanded);
    EXPECT_DOUBLE_EQ(progress.incumbent, result.wct);
    EXPECT_DOUBLE_EQ(progress.certifiedFloor, result.lowerBound);
    // Every published delta sums into nodesTotal, and a single
    // search was published since reset(), so the totals agree.
    EXPECT_EQ(progress.nodesTotal, result.counters.nodesExpanded);
}

TEST(LiveIntrospection, BnbResultIdenticalWithTrackerOnAndOff)
{
    IntrospectionGuard guard;
    auto suite = tinySuite();
    const Superblock &sb = suite[0].superblocks[0];
    MachineModel machine = MachineModel::gp4();
    GraphContext ctx(sb);
    BnbOptions opts;
    opts.maxNodes = 20000;
    opts.threads = 2;

    ProgressTracker::global().disable();
    BnbResult off = bnbSchedule(ctx, machine, opts, {});
    ProgressTracker::global().enable();
    BnbResult on = bnbSchedule(ctx, machine, opts, {});

    EXPECT_EQ(off.wct, on.wct);
    EXPECT_EQ(off.lowerBound, on.lowerBound);
    EXPECT_EQ(off.counters.nodesExpanded, on.counters.nodesExpanded);
    EXPECT_EQ(off.counters.rounds, on.counters.rounds);
}

TEST(LiveIntrospection, TimelineFinalSampleEqualsSnapshot)
{
    MetricRegistry reg;
    reg.counter("timeline.test").add(7);
    reg.histogram("timeline.hist").observe(12);

    std::string path =
        "/tmp/balance_timeline_test." + std::to_string(getpid()) +
        ".jsonl";
    {
        MetricsTimeline timeline(reg, path, 5);
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        reg.counter("timeline.test").add(3);
        timeline.stop();
        EXPECT_GE(timeline.samplesWritten(), 1);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line, last;
    long long expectSeq = 0;
    while (std::getline(in, line)) {
        ASSERT_TRUE(jsonLooksValid(line)) << line;
        EXPECT_NE(line.find("\"seq\":" + std::to_string(expectSeq)),
                  std::string::npos)
            << "seq must be dense: " << line;
        ++expectSeq;
        last = line;
    }
    ASSERT_FALSE(last.empty());
    // The final sample is taken after writers quiesced: its metrics
    // document is byte-identical to the registry snapshot.
    EXPECT_NE(last.find(reg.snapshotJson()), std::string::npos)
        << "final sample:\n" << last << "\nsnapshot:\n"
        << reg.snapshotJson();
    std::remove(path.c_str());
}

TEST(LiveIntrospection, FlusherIsIdempotent)
{
    // With no sinks configured this is a pure no-op; the contract
    // under test is that calling it repeatedly (atexit + signal
    // watcher + tests) is safe.
    TelemetryFlusher::flushAll();
    TelemetryFlusher::flushAll();
}

} // namespace
} // namespace balance
