/**
 * Integration tests of the experiment drivers that back the bench
 * binaries: population metrics, bound quality/cost tables, and the
 * no-profile experiment.
 */

#include <gtest/gtest.h>

#include "eval/bounds_eval.hh"
#include "eval/experiment.hh"

namespace balance
{
namespace
{

std::vector<BenchmarkProgram>
tinySuite()
{
    SuiteOptions opts;
    opts.scale = 0.004;
    return buildSuite(opts);
}

TEST(Experiment, EvaluateSuperblockSandwich)
{
    auto suite = tinySuite();
    HeuristicSet set = HeuristicSet::paperSet();
    const Superblock &sb = suite[0].superblocks[0];
    SuperblockEval eval =
        evaluateSuperblock(sb, MachineModel::fs4(), set);
    ASSERT_EQ(eval.wct.size(), set.names().size());
    for (double w : eval.wct)
        EXPECT_GE(w, eval.tightest - 1e-9);
    // Best is last and at least as good as every primary.
    double best = eval.wct.back();
    for (std::size_t h = 0; h + 1 < eval.wct.size(); ++h)
        EXPECT_LE(best, eval.wct[h] + 1e-9);
}

TEST(Experiment, PopulationMetricsConsistent)
{
    auto suite = tinySuite();
    HeuristicSet set = HeuristicSet::paperSet();
    PopulationMetrics m =
        evaluatePopulation(suite, MachineModel::gp2(), set);
    EXPECT_EQ(m.superblocks, suiteSize(suite));
    EXPECT_GE(m.trivialSuperblocks, 0);
    EXPECT_LE(m.trivialSuperblocks, m.superblocks);
    EXPECT_GE(m.trivialCycleFraction, 0.0);
    EXPECT_LE(m.trivialCycleFraction, 1.0);
    EXPECT_GT(m.boundCycles, 0.0);
    for (std::size_t h = 0; h < m.heuristics.size(); ++h) {
        EXPECT_GE(m.nontrivialSlowdown[h], -1e-9) << m.heuristics[h];
        EXPECT_GE(m.optimalFraction[h], 0.0);
        EXPECT_LE(m.optimalFraction[h], 1.0);
    }
}

TEST(Experiment, PerSuperblockObserverSeesAll)
{
    auto suite = tinySuite();
    HeuristicSet set = HeuristicSet::paperSet(false);
    int seen = 0;
    evaluatePopulation(suite, MachineModel::gp4(), set, {},
                       [&](const Superblock &,
                           const SuperblockEval &) { ++seen; });
    EXPECT_EQ(seen, suiteSize(suite));
}

TEST(Experiment, NoProfileWeightsShape)
{
    auto suite = tinySuite();
    const Superblock &sb = suite[0].superblocks[0];
    auto w = noProfileWeights(sb);
    ASSERT_EQ(int(w.size()), sb.numBranches());
    EXPECT_DOUBLE_EQ(w.back(), 1000.0);
    for (std::size_t i = 0; i + 1 < w.size(); ++i)
        EXPECT_DOUBLE_EQ(w[i], 1.0);
}

TEST(Experiment, NoProfileSteeringRuns)
{
    auto suite = tinySuite();
    HeuristicSet set = HeuristicSet::paperSet();
    EvalOptions opts;
    opts.noProfileSteering = true;
    PopulationMetrics m =
        evaluatePopulation(suite, MachineModel::fs6(), set, opts);
    EXPECT_EQ(m.superblocks, suiteSize(suite));
    // SR and CP ignore the steering weights entirely, so their
    // slowdowns are still well defined and non-negative.
    for (double s : m.nontrivialSlowdown)
        EXPECT_GE(s, -1e-9);
}

TEST(BoundsEval, QualityTableShape)
{
    auto suite = tinySuite();
    auto rows = evaluateBoundQuality(suite, MachineModel::fs4());
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].name, "CP");
    EXPECT_EQ(rows[5].name, "TW");
    for (const auto &r : rows) {
        EXPECT_GE(r.avgGapPercent, 0.0);
        EXPECT_LE(r.avgGapPercent, r.maxGapPercent + 1e-9);
        EXPECT_GE(r.belowPercent, 0.0);
        EXPECT_LE(r.belowPercent, 100.0);
    }
    // CP is the weakest bound by a wide margin.
    EXPECT_GT(rows[0].avgGapPercent, rows[3].avgGapPercent);
}

TEST(BoundsEval, CostTableShape)
{
    auto suite = tinySuite();
    auto rows = evaluateBoundCost(suite, MachineModel::gp2());
    ASSERT_EQ(rows.size(), 8u);
    for (const auto &r : rows) {
        EXPECT_GE(r.averageTrips, 0.0);
        EXPECT_GE(r.averageTrips, r.medianTrips * 0.0);
    }
    // Theorem 1 saves work: LC <= LC-original.
    EXPECT_LE(rows[3].averageTrips, rows[4].averageTrips);
    // PW costs more than LC.
    EXPECT_GT(rows[6].averageTrips, rows[3].averageTrips);
}

} // namespace
} // namespace balance
