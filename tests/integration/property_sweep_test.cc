/**
 * Parameterized property sweeps over (machine config x generator
 * seed): structural validity of every heuristic's schedule, bound
 * ordering, and the heuristic-vs-bound sandwich on arbitrary-size
 * populations (no oracle needed, so superblocks can be large).
 */

#include <gtest/gtest.h>

#include "eval/experiment.hh"
#include "workload/generator.hh"

namespace balance
{
namespace
{

struct SweepConfig
{
    const char *machine;
    std::uint64_t seed;
    double blockGeoP;
    double opsMu;
};

class PropertySweep : public ::testing::TestWithParam<SweepConfig>
{
  protected:
    std::vector<Superblock>
    population(int count) const
    {
        SweepConfig cfg = GetParam();
        GeneratorParams params;
        params.blockGeoP = cfg.blockGeoP;
        params.opsPerBlockMu = cfg.opsMu;
        Rng rng(cfg.seed);
        std::vector<Superblock> out;
        for (int i = 0; i < count; ++i) {
            Rng child = rng.fork();
            out.push_back(generateSuperblock(
                child, params, "sweep" + std::to_string(i)));
        }
        return out;
    }
};

TEST_P(PropertySweep, SchedulesValidAndAboveBounds)
{
    MachineModel machine = MachineModel::byName(GetParam().machine);
    HeuristicSet set = HeuristicSet::paperSet(/*withBest=*/false);
    for (const Superblock &sb : population(10)) {
        // evaluateSuperblock validates every schedule and asserts
        // the bound sandwich internally.
        SuperblockEval eval = evaluateSuperblock(sb, machine, set);
        for (double w : eval.wct)
            EXPECT_GE(w, eval.tightest - 1e-9) << sb.name();
    }
}

TEST_P(PropertySweep, BoundOrdering)
{
    MachineModel machine = MachineModel::byName(GetParam().machine);
    for (const Superblock &sb : population(10)) {
        GraphContext ctx(sb);
        WctBounds b = computeWctBounds(ctx, machine);
        EXPECT_GE(b.hu, b.cp - 1e-9) << sb.name();
        EXPECT_GE(b.rj, b.cp - 1e-9) << sb.name();
        EXPECT_GE(b.lc, b.rj - 1e-9) << sb.name();
        EXPECT_GE(b.pw, b.lc - 1e-9) << sb.name();
    }
}

TEST_P(PropertySweep, BalanceMatchesAcrossUpdatePolicies)
{
    // Light vs full dynamic updates must agree decision for
    // decision, whatever the machine and workload shape.
    MachineModel machine = MachineModel::byName(GetParam().machine);
    BalanceConfig light;
    BalanceConfig full;
    full.useLightUpdate = false;
    BalanceScheduler a(light, "light");
    BalanceScheduler b(full, "full");
    for (const Superblock &sb : population(6)) {
        GraphContext ctx(sb);
        Schedule sa = a.run(ctx, machine);
        Schedule sf = b.run(ctx, machine);
        for (OpId v = 0; v < sb.numOps(); ++v)
            ASSERT_EQ(sa.issueOf(v), sf.issueOf(v)) << sb.name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PropertySweep,
    ::testing::Values(
        SweepConfig{"GP1", 101, 0.40, 1.6},
        SweepConfig{"GP2", 102, 0.40, 1.6},
        SweepConfig{"GP4", 103, 0.40, 1.6},
        SweepConfig{"FS4", 104, 0.40, 1.6},
        SweepConfig{"FS6", 105, 0.40, 1.6},
        SweepConfig{"FS8", 106, 0.40, 1.6},
        SweepConfig{"GP2", 107, 0.25, 2.2}, // large branchy blocks
        SweepConfig{"FS4", 108, 0.25, 2.2},
        SweepConfig{"GP1", 109, 0.65, 0.9}, // small tight blocks
        SweepConfig{"FS8", 110, 0.65, 0.9}),
    [](const ::testing::TestParamInfo<SweepConfig> &info) {
        return std::string(info.param.machine) + "_" +
               std::to_string(info.param.seed);
    });

} // namespace
} // namespace balance
