/**
 * Torture tests for the scheduling service (service/server.hh): the
 * full socket stack under concurrent clients, hostile inputs
 * (oversized, truncated, malformed bodies and frames), both wire
 * protocols on one port, admission-control shedding, and the
 * bitwise-determinism contract across the cache and thread knobs.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/server.hh"
#include "support/json.hh"
#include "workload/generator.hh"
#include "workload/paper_figures.hh"
#include "workload/sb_io.hh"

namespace balance
{
namespace
{

int
connectTo(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

std::string
readAll(int fd)
{
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, std::size_t(n));
    return resp;
}

/** One raw exchange: send @p wire, read to close. */
std::string
rawExchange(int port, const std::string &wire)
{
    int fd = connectTo(port);
    if (fd < 0)
        return "";
    if (!wire.empty())
        ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
    std::string resp = readAll(fd);
    ::close(fd);
    return resp;
}

struct Reply
{
    int status = 0;
    std::string body;
    std::string cacheHeader;
};

Reply
parseReply(const std::string &raw)
{
    Reply r;
    std::size_t headEnd = raw.find("\r\n\r\n");
    if (headEnd == std::string::npos)
        return r;
    r.status = std::atoi(raw.c_str() + raw.find(' ') + 1);
    r.body = raw.substr(headEnd + 4);
    std::size_t h = raw.find("X-Balance-Cache: ");
    if (h != std::string::npos && h < headEnd) {
        std::size_t start = h + std::strlen("X-Balance-Cache: ");
        r.cacheHeader =
            raw.substr(start, raw.find("\r\n", start) - start);
    }
    return r;
}

Reply
post(int port, const std::string &target, const std::string &body)
{
    std::string wire = "POST " + target + " HTTP/1.1\r\n"
                       "Host: 127.0.0.1\r\n"
                       "Content-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body;
    return parseReply(rawExchange(port, wire));
}

Reply
get(int port, const std::string &target)
{
    return parseReply(rawExchange(
        port, "GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n"));
}

std::string
scheduleBody(const Superblock &sb)
{
    JsonWriter w;
    w.beginObject()
        .key("superblock").value(writeSuperblock(sb))
        .key("machine").value("GP4")
        .key("scheduler").value("balance")
        .endObject();
    return w.str();
}

std::vector<Superblock>
population(int n)
{
    GeneratorParams params;
    Rng rng(0x70757265f00dULL);
    std::vector<Superblock> out;
    for (int i = 0; i < n; ++i)
        out.push_back(generateSuperblock(
            rng, params, "torture_sb_" + std::to_string(i)));
    return out;
}

/** Send one SBP1 frame and read one framed response. */
bool
frameExchange(int fd, const std::string &payload, std::string &reply)
{
    char header[8] = {'S', 'B', 'P', '1'};
    std::uint32_t len = std::uint32_t(payload.size());
    header[4] = char((len >> 24) & 0xff);
    header[5] = char((len >> 16) & 0xff);
    header[6] = char((len >> 8) & 0xff);
    header[7] = char(len & 0xff);
    if (::send(fd, header, sizeof(header), MSG_NOSIGNAL) !=
        ssize_t(sizeof(header)))
        return false;
    if (::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL) !=
        ssize_t(payload.size()))
        return false;

    char respHeader[8];
    std::size_t got = 0;
    while (got < sizeof(respHeader)) {
        ssize_t n = ::recv(fd, respHeader + got,
                           sizeof(respHeader) - got, 0);
        if (n <= 0)
            return false;
        got += std::size_t(n);
    }
    if (std::memcmp(respHeader, "SBP1", 4) != 0)
        return false;
    std::uint32_t respLen =
        (std::uint32_t(std::uint8_t(respHeader[4])) << 24) |
        (std::uint32_t(std::uint8_t(respHeader[5])) << 16) |
        (std::uint32_t(std::uint8_t(respHeader[6])) << 8) |
        std::uint32_t(std::uint8_t(respHeader[7]));
    reply.resize(respLen);
    got = 0;
    while (got < respLen) {
        ssize_t n = ::recv(fd, reply.data() + got, respLen - got, 0);
        if (n <= 0)
            return false;
        got += std::size_t(n);
    }
    return true;
}

TEST(ServiceTorture, ConcurrentClientsDuringThreadedEvaluation)
{
    ServiceServer server;
    ServiceServerOptions opts;
    opts.handlerThreads = 8;
    opts.maxInflight = 16;
    opts.threads = 0; // batch fan-out on all cores
    ASSERT_TRUE(server.start(opts));

    std::vector<Superblock> sbs = population(6);
    std::vector<std::string> bodies;
    for (const Superblock &sb : sbs)
        bodies.push_back(scheduleBody(sb));

    // Reference responses, serially, before the storm.
    std::vector<std::string> expected;
    for (const std::string &b : bodies) {
        Reply r = post(server.port(), "/schedule", b);
        ASSERT_EQ(r.status, 200) << r.body;
        expected.push_back(r.body);
    }

    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 8; ++c) {
        clients.emplace_back([&, c] {
            for (int round = 0; round < 5; ++round) {
                std::size_t i =
                    std::size_t(c + round) % bodies.size();
                Reply r =
                    post(server.port(), "/schedule", bodies[i]);
                if (r.status != 200)
                    failures.fetch_add(1);
                else if (r.body != expected[i])
                    mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mismatches.load(), 0)
        << "responses under concurrency diverged from serial ones";
    server.stop();
}

TEST(ServiceTorture, CacheHitIsBitwiseIdenticalToMiss)
{
    ServiceServer server;
    ServiceServerOptions opts;
    ASSERT_TRUE(server.start(opts));
    std::string body = scheduleBody(paperFigure6());

    Reply miss = post(server.port(), "/schedule", body);
    Reply hit = post(server.port(), "/schedule", body);
    server.stop();

    ASSERT_EQ(miss.status, 200) << miss.body;
    ASSERT_EQ(hit.status, 200);
    EXPECT_EQ(miss.cacheHeader, "miss");
    EXPECT_EQ(hit.cacheHeader, "hit");
    EXPECT_EQ(miss.body, hit.body);
    // The body must not leak the cache disposition anywhere.
    EXPECT_EQ(miss.body.find("cache"), std::string::npos);
}

TEST(ServiceTorture, HostileBodiesGetTheRightStatuses)
{
    ServiceServer server;
    ServiceServerOptions opts;
    opts.maxBodyBytes = 2048;
    opts.recvTimeoutMs = 300;
    ASSERT_TRUE(server.start(opts));
    int port = server.port();

    // Declared length over the limit: 413 without reading the body.
    EXPECT_EQ(post(port, "/schedule", std::string(4096, 'x')).status,
              413);

    // Truncated body: Content-Length promises more than arrives;
    // the receive deadline turns it into 408 instead of a wedge.
    std::string truncated = "POST /schedule HTTP/1.1\r\n"
                            "Content-Length: 100\r\n\r\nonly-this";
    EXPECT_NE(rawExchange(port, truncated).find("408"),
              std::string::npos);

    // Bytes beyond the declared length are a framing violation.
    std::string overlong = "POST /schedule HTTP/1.1\r\n"
                           "Content-Length: 2\r\n\r\nfour";
    EXPECT_NE(rawExchange(port, overlong).find("400"),
              std::string::npos);

    // Malformed JSON, valid HTTP: 400 with a JSON error body.
    Reply bad = post(port, "/schedule", "{\"superblock\":");
    EXPECT_EQ(bad.status, 400);
    EXPECT_TRUE(jsonLooksValid(bad.body)) << bad.body;
    EXPECT_NE(bad.body.find("error"), std::string::npos);

    // Semantically bad request: unknown machine.
    Reply unknown = post(
        port, "/schedule",
        "{\"superblock\":\"superblock x\\nop 0 int 1\\n"
        "branch 1 1.0 1\\nend\\n\",\"machine\":\"vliw99\"}");
    EXPECT_EQ(unknown.status, 400);
    EXPECT_NE(unknown.body.find("machine"), std::string::npos);

    // Garbage request line: 400; unknown path keeps 404; bad method
    // on a scheduling path: 405.
    EXPECT_NE(rawExchange(port, "GARBAGE\r\n\r\n").find("400"),
              std::string::npos);
    EXPECT_EQ(get(port, "/nope").status, 404);
    EXPECT_NE(rawExchange(port, "PUT /schedule HTTP/1.1\r\n"
                                "Content-Length: 0\r\n\r\n")
                  .find("405"),
              std::string::npos);
    server.stop();
}

TEST(ServiceTorture, FrameProtocolServesBatchesAndRejectsGarbage)
{
    ServiceServer server;
    ServiceServerOptions opts;
    ASSERT_TRUE(server.start(opts));
    std::string body = scheduleBody(paperFigure6());

    // HTTP and frames answer identically on one port.
    Reply viaHttp = post(server.port(), "/schedule", body);
    ASSERT_EQ(viaHttp.status, 200);

    int fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    std::string first, second;
    ASSERT_TRUE(frameExchange(fd, body, first));
    // Same connection carries another frame.
    ASSERT_TRUE(frameExchange(fd, body, second));
    ::close(fd);
    EXPECT_EQ(first, viaHttp.body);
    EXPECT_EQ(second, viaHttp.body);

    // Zero-length frame: framed JSON error.
    fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    std::string err;
    EXPECT_TRUE(frameExchange(fd, "", err));
    EXPECT_NE(err.find("error"), std::string::npos) << err;
    ::close(fd);

    // A frame body that is not valid JSON comes back as a framed
    // parse error, not a closed connection.
    fd = connectTo(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(frameExchange(fd, "not json at all", err));
    EXPECT_NE(err.find("error"), std::string::npos);
    ::close(fd);
    server.stop();
}

TEST(ServiceTorture, QueueOverflowSheds503)
{
    // One handler thread, queue of one: a stalling client pins the
    // handler, a second fills the queue, the third must be shed.
    ServiceServer server;
    ServiceServerOptions opts;
    opts.handlerThreads = 1;
    opts.maxQueue = 1;
    opts.recvTimeoutMs = 2000;
    ASSERT_TRUE(server.start(opts));

    int staller = connectTo(server.port());
    ASSERT_GE(staller, 0);
    // Give the handler time to adopt the stalled connection.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    int queued = connectTo(server.port());
    ASSERT_GE(queued, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::string resp = rawExchange(server.port(), "");
    EXPECT_NE(resp.find("503"), std::string::npos) << resp;
    EXPECT_NE(resp.find("overloaded"), std::string::npos);

    ::close(staller);
    ::close(queued);
    server.stop();
}

TEST(ServiceTorture, InflightOverflowSheds429)
{
    ServiceServer server;
    ServiceServerOptions opts;
    opts.handlerThreads = 8;
    opts.maxInflight = 1;
    ASSERT_TRUE(server.start(opts));

    // Weighty batch bodies so evaluations overlap; with eight
    // handlers racing into a single admission slot, some round must
    // observe a 429. Retry a few rounds to dodge lucky serialization.
    std::vector<Superblock> sbs = population(8);
    JsonWriter w;
    w.beginObject().key("requests").beginArray();
    for (const Superblock &sb : sbs) {
        w.beginObject()
            .key("superblock").value(writeSuperblock(sb))
            .endObject();
    }
    w.endArray().endObject();
    std::string body = w.str();

    std::atomic<int> got429{0}, got200{0};
    for (int round = 0; round < 20 && got429.load() == 0; ++round) {
        std::vector<std::thread> clients;
        for (int c = 0; c < 8; ++c) {
            clients.emplace_back([&] {
                Reply r = post(server.port(), "/schedule", body);
                if (r.status == 429)
                    got429.fetch_add(1);
                else if (r.status == 200)
                    got200.fetch_add(1);
            });
        }
        for (std::thread &t : clients)
            t.join();
    }
    EXPECT_GT(got429.load(), 0)
        << "no request was ever shed with maxInflight=1";
    EXPECT_GT(got200.load(), 0) << "no request was ever admitted";

    // The service recovers: a lone request is served normally.
    EXPECT_EQ(post(server.port(), "/schedule",
                   scheduleBody(paperFigure6()))
                  .status,
              200);
    server.stop();
}

TEST(ServiceTorture, StatsAndMetricsStayServedAndValid)
{
    ServiceServer server;
    ServiceServerOptions opts;
    ASSERT_TRUE(server.start(opts));
    post(server.port(), "/schedule", scheduleBody(paperFigure6()));

    Reply health = get(server.port(), "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(health.body, "ok\n");

    Reply stats = get(server.port(), "/stats");
    EXPECT_EQ(stats.status, 200);
    EXPECT_TRUE(jsonLooksValid(stats.body)) << stats.body;
    EXPECT_NE(stats.body.find("\"served\""), std::string::npos);
    EXPECT_NE(stats.body.find("\"cache\""), std::string::npos);

    Reply metrics = get(server.port(), "/metrics");
    EXPECT_EQ(metrics.status, 200);
    EXPECT_NE(
        metrics.body.find("balance_service_request_latency_us"),
        std::string::npos)
        << "request-latency histogram missing from /metrics";
    server.stop();
}

} // namespace
} // namespace balance
