/**
 * Thread-count invariance of the branch-and-bound scheduler. The
 * engine's contract is bitwise reproducibility: the returned
 * schedule, the certified bounds, every counter, and the rendered
 * certificate must be identical whether the search runs on one
 * thread or many. The test pins that by running each instance at
 * several thread counts and comparing results field by field with
 * exact equality — no tolerances.
 *
 * Carries the `parallel` label so the sanitizer CI job replays the
 * shared-incumbent snapshot protocol under TSAN.
 */

#include <gtest/gtest.h>

#include "bounds/superblock_bounds.hh"
#include "sched/bnb/bnb.hh"
#include "support/rng.hh"
#include "workload/generator.hh"

namespace balance
{
namespace
{

constexpr std::uint64_t kSeed = 0xde7e2815117ULL;
constexpr int kInstances = 8;

/** Big enough that the split frontier and rounds actually engage. */
GeneratorParams
shapeParams()
{
    GeneratorParams params;
    params.blockGeoP = 0.4;
    params.opsPerBlockMu = 1.6;
    params.opsPerBlockSigma = 0.6;
    params.maxOps = 40;
    params.maxBlocks = 6;
    return params;
}

struct Fingerprint
{
    double wct = 0.0;
    double lowerBound = 0.0;
    bool proven = false;
    bool exhausted = false;
    std::vector<int> issue;
    BnbCounters counters;
    std::string certificate;
};

Fingerprint
runAt(const GraphContext &ctx, const MachineModel &machine,
      const BoundsToolkit &toolkit, double staticLower,
      BnbOptions opts, int threads)
{
    opts.threads = threads;
    BnbRequest req;
    req.toolkit = &toolkit;
    req.staticLowerBound = staticLower;
    BnbResult r = bnbSchedule(ctx, machine, opts, req);

    Fingerprint fp;
    fp.wct = r.wct;
    fp.lowerBound = r.lowerBound;
    fp.proven = r.proven;
    fp.exhausted = r.exhausted;
    for (OpId v = 0; v < ctx.sb().numOps(); ++v)
        fp.issue.push_back(r.schedule.issueOf(v));
    fp.counters = r.counters;
    fp.certificate = r.certificate();
    return fp;
}

void
expectIdentical(const Fingerprint &a, const Fingerprint &b,
                int threads)
{
    SCOPED_TRACE("threads=" + std::to_string(threads));
    // Bitwise, not approximate: the determinism contract says the
    // parallel search computes the same arithmetic as the serial one.
    EXPECT_EQ(a.wct, b.wct);
    EXPECT_EQ(a.lowerBound, b.lowerBound);
    EXPECT_EQ(a.proven, b.proven);
    EXPECT_EQ(a.exhausted, b.exhausted);
    EXPECT_EQ(a.issue, b.issue);
    EXPECT_EQ(a.counters.nodesExpanded, b.counters.nodesExpanded);
    EXPECT_EQ(a.counters.prunedByBound, b.counters.prunedByBound);
    EXPECT_EQ(a.counters.prunedByDominance,
              b.counters.prunedByDominance);
    EXPECT_EQ(a.counters.incumbentUpdates,
              b.counters.incumbentUpdates);
    EXPECT_EQ(a.counters.tasksCompleted, b.counters.tasksCompleted);
    EXPECT_EQ(a.counters.tasksAborted, b.counters.tasksAborted);
    EXPECT_EQ(a.counters.rounds, b.counters.rounds);
    EXPECT_EQ(a.certificate, b.certificate);
}

void
checkAcrossThreadCounts(const BnbOptions &opts, const char *machineName)
{
    MachineModel machine = MachineModel::byName(machineName);
    for (int i = 0; i < kInstances; ++i) {
        SCOPED_TRACE("instance " + std::to_string(i));
        Rng rng = Rng::stream(kSeed, std::size_t(i));
        Superblock sb = generateSuperblock(
            rng, shapeParams(), "bnbdet.sb" + std::to_string(i));
        GraphContext ctx(sb);
        BoundsToolkit toolkit(ctx, machine);
        double staticLower = computeWctBounds(ctx, machine).tightest();

        Fingerprint serial =
            runAt(ctx, machine, toolkit, staticLower, opts, 1);
        for (int threads : {2, 4}) {
            Fingerprint parallel =
                runAt(ctx, machine, toolkit, staticLower, opts,
                      threads);
            expectIdentical(serial, parallel, threads);
        }
    }
}

TEST(BnbDeterminism, RoomyBudgetMatchesSerialBitwise)
{
    BnbOptions opts;
    opts.maxNodes = 60000;
    opts.taskChunk = 2000;
    opts.splitTarget = 32;
    checkAcrossThreadCounts(opts, "GP2");
}

TEST(BnbDeterminism, StarvedBudgetMatchesSerialBitwise)
{
    // Small chunks and a tight cap force multiple rounds, aborted
    // tasks, and chunk-doubling requeues — the paths where a racy
    // incumbent would first show up as drift.
    BnbOptions opts;
    opts.maxNodes = 4000;
    opts.taskChunk = 120;
    opts.splitTarget = 24;
    checkAcrossThreadCounts(opts, "FS6");
}

TEST(BnbDeterminism, DefaultThreadsMatchesSerialBitwise)
{
    // threads = 0 delegates to the pool's native width; the result
    // must still be byte-identical to the serial run.
    MachineModel machine = MachineModel::byName("FS4");
    Rng rng = Rng::stream(kSeed, 101);
    Superblock sb = generateSuperblock(rng, shapeParams(),
                                       "bnbdet.sb101");
    GraphContext ctx(sb);
    BoundsToolkit toolkit(ctx, machine);
    double staticLower = computeWctBounds(ctx, machine).tightest();

    BnbOptions opts;
    opts.maxNodes = 30000;
    opts.taskChunk = 1000;
    opts.splitTarget = 24;
    Fingerprint serial =
        runAt(ctx, machine, toolkit, staticLower, opts, 1);
    Fingerprint pooled =
        runAt(ctx, machine, toolkit, staticLower, opts, 0);
    expectIdentical(serial, pooled, 0);
}

} // namespace
} // namespace balance
