/**
 * @file
 * The perf-budget gate: budget parsing, glob specificity, and
 * compareRuns verdicts — zero-tolerance counters regress on any
 * increase, ungated metrics never gate, a gated metric that
 * disappears from the current run is itself a regression, and wall
 * clocks gate only when the budget says so.
 */

#include "report/compare.hh"

#include <gtest/gtest.h>

#include <string>

#include "support/json.hh"

namespace balance
{
namespace
{

PerfBudget
parseBudget(const std::string &doc)
{
    JsonParseResult parsed = parseJson(doc);
    EXPECT_TRUE(parsed.ok()) << parsed.error.describe();
    PerfBudget budget;
    std::string error;
    EXPECT_TRUE(PerfBudget::fromJson(parsed.value, &budget, &error))
        << error;
    return budget;
}

/** In-memory run: a metrics snapshot plus optional wall clocks. */
RunArtifacts
makeRun(const std::string &metricsJson,
        std::vector<MachineWall> wall = {})
{
    RunArtifacts run;
    JsonParseResult parsed = parseJson(metricsJson);
    EXPECT_TRUE(parsed.ok()) << parsed.error.describe();
    run.metrics = parsed.value;
    run.manifest.wall = std::move(wall);
    return run;
}

const CompareLine *
findLine(const CompareResult &result, const std::string &metric)
{
    for (const CompareLine &line : result.lines)
        if (line.metric == metric)
            return &line;
    return nullptr;
}

TEST(PerfBudget, FromJsonParsesToleranceMap)
{
    PerfBudget budget = parseBudget(
        "{\"wall_time_tolerance_pct\": 250,"
        " \"metrics\": {\"bounds.trips.*\": 0,"
        "               \"sched.balance.loop_trips\": 5.5}}");
    EXPECT_DOUBLE_EQ(budget.wallTolerancePct, 250.0);
    ASSERT_EQ(budget.metrics.size(), 2u);

    double tol = -1.0;
    ASSERT_TRUE(budget.toleranceFor("sched.balance.loop_trips", &tol));
    EXPECT_DOUBLE_EQ(tol, 5.5);
    ASSERT_TRUE(budget.toleranceFor("bounds.trips.tw", &tol));
    EXPECT_DOUBLE_EQ(tol, 0.0);
    EXPECT_FALSE(budget.toleranceFor("trace.ring_dropped", &tol));
}

TEST(PerfBudget, WallToleranceDefaultsToNeverGate)
{
    PerfBudget budget = parseBudget("{\"metrics\": {}}");
    EXPECT_LT(budget.wallTolerancePct, 0.0);
}

TEST(PerfBudget, MostSpecificPatternWins)
{
    PerfBudget budget = parseBudget(
        "{\"metrics\": {\"bounds.*\": 50,"
        "               \"bounds.trips.*\": 10,"
        "               \"bounds.trips.tw\": 0}}");
    double tol = -1.0;
    ASSERT_TRUE(budget.toleranceFor("bounds.trips.tw", &tol));
    EXPECT_DOUBLE_EQ(tol, 0.0) << "exact beats every glob";
    ASSERT_TRUE(budget.toleranceFor("bounds.trips.rj", &tol));
    EXPECT_DOUBLE_EQ(tol, 10.0) << "longer glob beats shorter";
    ASSERT_TRUE(budget.toleranceFor("bounds.scratch.bytes", &tol));
    EXPECT_DOUBLE_EQ(tol, 50.0);
    EXPECT_FALSE(budget.toleranceFor("sched.balance.decisions", &tol));
}

TEST(PerfBudget, CommittedBudgetFileShapeParses)
{
    // The shape tools/perf_budgets.json actually uses, including the
    // ignored "_comment" member.
    PerfBudget budget = parseBudget(
        "{\"_comment\": [\"why\"],"
        " \"wall_time_tolerance_pct\": 400,"
        " \"metrics\": {\"bounds.trips.*\": 0}}");
    EXPECT_DOUBLE_EQ(budget.wallTolerancePct, 400.0);
    EXPECT_EQ(budget.metrics.size(), 1u);
}

TEST(CompareRuns, SelfComparisonNeverRegresses)
{
    RunArtifacts run = makeRun(
        "{\"counters\":{\"bounds.trips.tw\":49189414,"
        "\"sched.balance.loop_trips\":302930},"
        "\"gauges\":{\"bounds.scratch.high_water_bytes\":4096}}",
        {{"GP4", 100.0}});
    PerfBudget budget = parseBudget(
        "{\"wall_time_tolerance_pct\": 0,"
        " \"metrics\": {\"bounds.trips.*\": 0,"
        "               \"sched.balance.loop_trips\": 0}}");
    CompareResult result = compareRuns(run, run, budget);
    EXPECT_TRUE(result.ok);
    for (const CompareLine &line : result.lines)
        EXPECT_FALSE(line.regressed) << line.metric;
    const CompareLine *tw = findLine(result, "bounds.trips.tw");
    ASSERT_NE(tw, nullptr);
    EXPECT_TRUE(tw->gated);
    EXPECT_DOUBLE_EQ(tw->base, 49189414.0);
}

TEST(CompareRuns, ZeroToleranceCounterRegressesOnAnyIncrease)
{
    RunArtifacts base = makeRun(
        "{\"counters\":{\"sched.balance.loop_trips\":302930}}");
    RunArtifacts worse = makeRun(
        "{\"counters\":{\"sched.balance.loop_trips\":302931}}");
    PerfBudget budget = parseBudget(
        "{\"metrics\": {\"sched.balance.loop_trips\": 0}}");

    CompareResult result = compareRuns(base, worse, budget);
    EXPECT_FALSE(result.ok);
    const CompareLine *line =
        findLine(result, "sched.balance.loop_trips");
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->regressed);
    EXPECT_NE(result.render().find("sched.balance.loop_trips"),
              std::string::npos);

    // A decrease is an improvement, never a regression.
    EXPECT_TRUE(compareRuns(worse, base, budget).ok);
}

TEST(CompareRuns, ToleranceAllowsBoundedGrowth)
{
    RunArtifacts base =
        makeRun("{\"counters\":{\"sched.balance.candidates\":1000}}");
    RunArtifacts withinTol =
        makeRun("{\"counters\":{\"sched.balance.candidates\":1049}}");
    RunArtifacts pastTol =
        makeRun("{\"counters\":{\"sched.balance.candidates\":1051}}");
    PerfBudget budget = parseBudget(
        "{\"metrics\": {\"sched.balance.candidates\": 5}}");
    EXPECT_TRUE(compareRuns(base, withinTol, budget).ok);
    EXPECT_FALSE(compareRuns(base, pastTol, budget).ok);
}

TEST(CompareRuns, UngatedMetricsAreInformationalOnly)
{
    RunArtifacts base =
        makeRun("{\"counters\":{\"trace.ring_dropped\":0}}");
    RunArtifacts worse =
        makeRun("{\"counters\":{\"trace.ring_dropped\":5000}}");
    PerfBudget budget = parseBudget("{\"metrics\": {}}");
    CompareResult result = compareRuns(base, worse, budget);
    EXPECT_TRUE(result.ok);
    const CompareLine *line = findLine(result, "trace.ring_dropped");
    ASSERT_NE(line, nullptr);
    EXPECT_FALSE(line->gated);
    EXPECT_FALSE(line->regressed);
}

TEST(CompareRuns, GatedMetricMissingFromCurrentRegresses)
{
    // The gate must not silently lose coverage: a budgeted counter
    // that vanishes from the current snapshot fails the comparison.
    RunArtifacts base =
        makeRun("{\"counters\":{\"bounds.trips.tw\":100}}");
    RunArtifacts missing = makeRun("{\"counters\":{}}");
    PerfBudget budget =
        parseBudget("{\"metrics\": {\"bounds.trips.*\": 0}}");
    CompareResult result = compareRuns(base, missing, budget);
    EXPECT_FALSE(result.ok);
    const CompareLine *line = findLine(result, "bounds.trips.tw");
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->regressed);
}

TEST(CompareRuns, MetricsNewInCurrentAreInformational)
{
    RunArtifacts base = makeRun("{\"counters\":{}}");
    RunArtifacts extra =
        makeRun("{\"counters\":{\"bounds.trips.tw\":100}}");
    PerfBudget budget =
        parseBudget("{\"metrics\": {\"bounds.trips.*\": 0}}");
    CompareResult result = compareRuns(base, extra, budget);
    EXPECT_TRUE(result.ok) << "no base value, nothing to regress from";
    const CompareLine *line = findLine(result, "bounds.trips.tw");
    ASSERT_NE(line, nullptr);
    EXPECT_FALSE(line->regressed);
}

TEST(CompareRuns, WallClockGatesOnlyWhenBudgeted)
{
    RunArtifacts base = makeRun("{\"counters\":{}}", {{"GP4", 100.0}});
    RunArtifacts slower =
        makeRun("{\"counters\":{}}", {{"GP4", 300.0}});

    PerfBudget ungated = parseBudget("{\"metrics\": {}}");
    EXPECT_TRUE(compareRuns(base, slower, ungated).ok);

    PerfBudget gated = parseBudget(
        "{\"wall_time_tolerance_pct\": 100, \"metrics\": {}}");
    CompareResult result = compareRuns(base, slower, gated);
    EXPECT_FALSE(result.ok) << "3x is past the 100% tolerance";
    const CompareLine *line = findLine(result, "wall_ms.GP4");
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->gated);
    EXPECT_TRUE(line->regressed);

    RunArtifacts ok = makeRun("{\"counters\":{}}", {{"GP4", 150.0}});
    EXPECT_TRUE(compareRuns(base, ok, gated).ok);
}

/** Attach a parsed hwcounters.json document to @p run. */
RunArtifacts
withHw(RunArtifacts run, const std::string &hwJson)
{
    JsonParseResult parsed = parseJson(hwJson);
    EXPECT_TRUE(parsed.ok()) << parsed.error.describe();
    run.hwCounters = parsed.value;
    return run;
}

/** A minimal single-phase hwcounters document. */
std::string
hwDoc(const std::string &tier, double cpi, double branchMissRate)
{
    return "{\"version\":1,\"tier\":\"" + tier +
           "\",\"multiplexed\":false,\"phases\":"
           "{\"bounds.rj_relax\":{\"entries\":10,"
           "\"cpi\":" + std::to_string(cpi) +
           ",\"branch_miss_rate\":" + std::to_string(branchMissRate) +
           ",\"cache_miss_rate\":0.02}}}";
}

TEST(PerfBudget, InteriorGlobMatchesHwRateLines)
{
    PerfBudget budget = parseBudget(
        "{\"metrics\": {\"hw.*.cpi\": 25,"
        "               \"hw.bounds.rj_relax.cpi\": 10}}");
    double tol = -1.0;
    ASSERT_TRUE(budget.toleranceFor("hw.sched.balance.cpi", &tol));
    EXPECT_DOUBLE_EQ(tol, 25.0) << "* spans dots";
    ASSERT_TRUE(budget.toleranceFor("hw.bounds.rj_relax.cpi", &tol));
    EXPECT_DOUBLE_EQ(tol, 10.0) << "exact beats interior glob";
    EXPECT_FALSE(
        budget.toleranceFor("hw.bounds.rj_relax.ipc", &tol));
}

TEST(CompareRuns, HwEfficiencyBudgetGatesAtHardwareTier)
{
    // A 50% CPI jump past a 25% budget: both runs measured on real
    // hardware counters, so the efficiency regression fails the gate.
    RunArtifacts base = withHw(makeRun("{\"counters\":{}}"),
                               hwDoc("hardware", 1.0, 0.01));
    RunArtifacts worse = withHw(makeRun("{\"counters\":{}}"),
                                hwDoc("hardware", 1.5, 0.01));
    PerfBudget budget = parseBudget(
        "{\"metrics\": {\"hw.*.cpi\": 25,"
        "               \"hw.*.branch_miss_rate\": 30}}");

    CompareResult result = compareRuns(base, worse, budget);
    EXPECT_FALSE(result.ok);
    const CompareLine *line =
        findLine(result, "hw.bounds.rj_relax.cpi");
    ASSERT_NE(line, nullptr);
    EXPECT_TRUE(line->gated);
    EXPECT_TRUE(line->regressed);

    // Within tolerance passes, and improvement never regresses.
    RunArtifacts withinTol = withHw(makeRun("{\"counters\":{}}"),
                                    hwDoc("hardware", 1.2, 0.01));
    EXPECT_TRUE(compareRuns(base, withinTol, budget).ok);
    EXPECT_TRUE(compareRuns(worse, base, budget).ok);
}

TEST(CompareRuns, HwLinesAreInformationalOffHardwareTier)
{
    // Fallback artifacts carry zeroed hardware columns; comparing
    // their rates (or a fallback run against a hardware baseline)
    // must never gate, whatever the budget says.
    PerfBudget budget =
        parseBudget("{\"metrics\": {\"hw.*.cpi\": 0}}");
    RunArtifacts hwBase = withHw(makeRun("{\"counters\":{}}"),
                                 hwDoc("hardware", 1.0, 0.01));
    RunArtifacts fbBase = withHw(makeRun("{\"counters\":{}}"),
                                 hwDoc("fallback", 0.0, 0.0));
    RunArtifacts fbWorse = withHw(makeRun("{\"counters\":{}}"),
                                  hwDoc("fallback", 9.0, 0.5));

    auto expectInformational = [&](const RunArtifacts &b,
                                   const RunArtifacts &c) {
        CompareResult result = compareRuns(b, c, budget);
        EXPECT_TRUE(result.ok);
        const CompareLine *line =
            findLine(result, "hw.bounds.rj_relax.cpi");
        ASSERT_NE(line, nullptr);
        EXPECT_FALSE(line->gated);
        EXPECT_FALSE(line->regressed);
    };
    expectInformational(fbBase, fbWorse);
    expectInformational(hwBase, fbWorse);

    // Runs with no hw artifact at all stay clean too.
    EXPECT_TRUE(
        compareRuns(makeRun("{\"counters\":{}}"),
                    makeRun("{\"counters\":{}}"), budget)
            .ok);
}

TEST(CompareRuns, RenderMarksRegressions)
{
    RunArtifacts base =
        makeRun("{\"counters\":{\"bounds.trips.rj\":10}}");
    RunArtifacts worse =
        makeRun("{\"counters\":{\"bounds.trips.rj\":11}}");
    PerfBudget budget =
        parseBudget("{\"metrics\": {\"bounds.trips.rj\": 0}}");
    std::string table = compareRuns(base, worse, budget).render();
    EXPECT_NE(table.find("bounds.trips.rj"), std::string::npos)
        << table;
    EXPECT_NE(table.find("REGRESSED"), std::string::npos) << table;
}

} // namespace
} // namespace balance
