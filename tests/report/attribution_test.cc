/**
 * @file
 * Bound-gap attribution on synthetic runs: the ladder decomposition
 * (RJ -> PW -> TW -> achieved), the dominant-cause classifier on
 * hand-built decision logs, trip-total aggregation, the cost/quality
 * frontier, outlier selection, and the gap histogram.
 */

#include "report/attribution.hh"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sched/decision_log.hh"
#include "support/json.hh"

namespace balance
{
namespace
{

/** A compact description of one per-superblock row. */
struct RowSpec
{
    std::string program = "gcc";
    std::string superblock;
    std::string machine = "GP4";
    double frequency = 1.0;
    int ops = 10;
    double rj = 10.0, pw = 10.0, tw = 10.0;
    double balance = 10.0, cp = 12.0;
    long long rjTrips = 50, twTrips = 100;
    long long loopTrips = 7;
    /** branch_detail JSON array text. */
    std::string branchDetail = "[]";
};

JsonValue
makeRow(const RowSpec &r)
{
    std::ostringstream doc;
    doc << "{\"program\":\"" << r.program << "\",\"superblock\":\""
        << r.superblock << "\",\"machine\":\"" << r.machine
        << "\",\"ops\":" << r.ops << ",\"branches\":1,\"frequency\":"
        << r.frequency << ",\"bounds\":{\"rj\":" << r.rj
        << ",\"pw\":" << r.pw << ",\"tw\":" << r.tw
        << "},\"wct\":{\"Balance\":" << r.balance << ",\"CP\":" << r.cp
        << "},\"trips\":{\"rj\":" << r.rjTrips << ",\"tw\":"
        << r.twTrips << "},\"balance\":{\"loop_trips\":" << r.loopTrips
        << "},\"branch_detail\":" << r.branchDetail << "}";
    JsonParseResult parsed = parseJson(doc.str());
    EXPECT_TRUE(parsed.ok()) << parsed.error.describe() << "\n"
                             << doc.str();
    return parsed.value;
}

/** One weighted branch that issued late (issue > lc_early). */
const char *lateBranch =
    "[{\"idx\":0,\"weight\":1.0,\"dep_height\":5,\"rj_early\":8,"
    "\"lc_early\":8,\"issue\":12,\"latency\":1}]";

/** Decision records of @p log, parsed like loadRunArtifacts would. */
void
appendRecords(std::vector<JsonValue> *out, const DecisionLog &log)
{
    JsonParseError err;
    std::vector<JsonValue> records =
        parseJsonLines(log.toJsonLines(), &err);
    ASSERT_TRUE(err.message.empty()) << err.describe();
    for (JsonValue &rec : records)
        out->push_back(std::move(rec));
}

/** A run with GP4 decision logs and the given rows. */
RunArtifacts
makeRun(const std::vector<RowSpec> &rows,
        std::vector<JsonValue> gp4Decisions = {})
{
    RunArtifacts run;
    run.manifest.machines = {"GP4"};
    run.manifest.heuristics = {"Balance", "CP"};
    for (const RowSpec &r : rows)
        run.superblocks.push_back(makeRow(r));
    if (!gp4Decisions.empty()) {
        run.manifest.decisionLogs = {{"GP4", "decisions.GP4.jsonl"}};
        run.decisions.push_back(std::move(gp4Decisions));
    }
    return run;
}

const SuperblockAttribution *
findOutlier(const MachineAttribution &m, const std::string &sb)
{
    for (const SuperblockAttribution &s : m.outliers)
        if (s.superblock == sb)
            return &s;
    return nullptr;
}

TEST(Attribution, LadderDecomposesAndWeightsByFrequency)
{
    RowSpec r;
    r.superblock = "gcc.sb0";
    r.frequency = 2.0;
    r.rj = 10.0;
    r.pw = 12.0;
    r.tw = 13.0;
    r.balance = 15.0;
    AttributionReport report = attributeRun(makeRun({r}));

    ASSERT_EQ(report.machines.size(), 1u);
    const MachineAttribution &m = report.machines[0];
    EXPECT_EQ(m.machine, "GP4");
    EXPECT_EQ(m.superblocks, 1);
    EXPECT_EQ(m.atBound, 0);
    EXPECT_DOUBLE_EQ(m.rjToPw.mean, 2.0);
    EXPECT_DOUBLE_EQ(m.pwToTw.mean, 1.0);
    EXPECT_DOUBLE_EQ(m.twToAchieved.mean, 2.0);

    ASSERT_EQ(m.outliers.size(), 1u);
    const SuperblockAttribution &sba = m.outliers[0];
    EXPECT_DOUBLE_EQ(sba.rjToPw, 2.0);
    EXPECT_DOUBLE_EQ(sba.pwToTw, 1.0);
    EXPECT_DOUBLE_EQ(sba.twToAchieved, 2.0);
    EXPECT_DOUBLE_EQ(sba.weightedGap, 4.0) << "frequency * gap";
}

TEST(Attribution, AtBoundSuperblocksAreCountedAndLabeled)
{
    RowSpec r;
    r.superblock = "gcc.sb0"; // defaults: achieved == tw == 10
    AttributionReport report = attributeRun(makeRun({r}));
    const MachineAttribution &m = report.machines[0];
    EXPECT_EQ(m.atBound, 1);
    EXPECT_EQ(m.causes.at("at-bound"), 1);
    EXPECT_EQ(m.outliers[0].dominantCause, "at-bound");
}

TEST(Attribution, NoDecisionDataWhenNothingCanExplainTheGap)
{
    RowSpec r;
    r.superblock = "gcc.sb0";
    r.balance = 12.0; // gap, but no branch detail and no log
    AttributionReport report = attributeRun(makeRun({r}));
    EXPECT_EQ(report.machines[0].outliers[0].dominantCause,
              "no-decision-data");
}

TEST(Attribution, DeniedTradeoffsDominateWhenDelaysOutnumberGrants)
{
    RowSpec r;
    r.superblock = "gcc.sb0";
    r.balance = 12.0;
    r.branchDetail = lateBranch;

    DecisionLog log("gcc.sb0");
    for (int cycle = 3; cycle <= 4; ++cycle) {
        DecisionStep &s = log.beginStep(cycle);
        s.pick = OpId(cycle);
        s.candidates = {OpId(cycle), OpId(cycle + 10)};
        s.branches.push_back(
            {0, 1.0, 9, 1, 0, DecisionOutcome::Delayed});
    }
    std::vector<JsonValue> decisions;
    appendRecords(&decisions, log);
    AttributionReport report =
        attributeRun(makeRun({r}, std::move(decisions)));

    const SuperblockAttribution &sba = report.machines[0].outliers[0];
    EXPECT_EQ(sba.dominantCause, "denied-tradeoffs");
    EXPECT_EQ(sba.steps, 2);
    EXPECT_EQ(sba.denials, 2);
    EXPECT_DOUBLE_EQ(sba.denialRatio, 1.0);
    ASSERT_EQ(sba.branches.size(), 1u);
    EXPECT_TRUE(sba.branches[0].late);
    EXPECT_EQ(sba.branches[0].delayed, 2);
    EXPECT_EQ(sba.branches[0].appearances, 2);
}

TEST(Attribution, GrantedTradeoffsWhenThePairwisePassTradedAway)
{
    RowSpec r;
    r.superblock = "gcc.sb0";
    r.balance = 12.0;
    r.branchDetail = lateBranch;

    DecisionLog log("gcc.sb0");
    DecisionStep &s = log.beginStep(3);
    s.pick = 4;
    s.candidates = {4};
    s.branches.push_back(
        {0, 1.0, 9, 1, 0, DecisionOutcome::DelayedOk});
    s.tradeoffs.push_back({0, 1, 11, 8, 9});
    std::vector<JsonValue> decisions;
    appendRecords(&decisions, log);
    AttributionReport report =
        attributeRun(makeRun({r}, std::move(decisions)));

    const SuperblockAttribution &sba = report.machines[0].outliers[0];
    EXPECT_EQ(sba.dominantCause, "granted-tradeoffs");
    EXPECT_EQ(sba.tradeoffGrants, 1);
    EXPECT_EQ(sba.denials, 0);
    // The outlier's excerpt shows the grant.
    ASSERT_FALSE(sba.excerpt.empty());
    EXPECT_NE(sba.excerpt[0].find("delayedOK 0 vs 1 (pair=11)"),
              std::string::npos)
        << sba.excerpt[0];
}

TEST(Attribution, ResourcePressureWhenNeedEachSaturates)
{
    RowSpec r;
    r.superblock = "gcc.sb0";
    r.balance = 12.0;
    r.branchDetail = lateBranch;

    DecisionLog log("gcc.sb0");
    for (int cycle = 0; cycle < 2; ++cycle) {
        DecisionStep &s = log.beginStep(cycle);
        s.pick = OpId(cycle);
        s.branches.push_back(
            {0, 1.0, 9, 2, 0, DecisionOutcome::Selected});
    }
    std::vector<JsonValue> decisions;
    appendRecords(&decisions, log);
    AttributionReport report =
        attributeRun(makeRun({r}, std::move(decisions)));

    const SuperblockAttribution &sba = report.machines[0].outliers[0];
    EXPECT_DOUBLE_EQ(sba.meanNeedEach, 2.0);
    EXPECT_EQ(sba.dominantCause, "resource-pressure");
}

TEST(Attribution, DependenceHeightIsTheQuietDefault)
{
    RowSpec r;
    r.superblock = "gcc.sb0";
    r.balance = 12.0;
    r.branchDetail = lateBranch;

    DecisionLog log("gcc.sb0");
    DecisionStep &s = log.beginStep(0);
    s.pick = 1;
    s.branches.push_back({0, 1.0, 9, 1, 0, DecisionOutcome::Selected});
    std::vector<JsonValue> decisions;
    appendRecords(&decisions, log);
    AttributionReport report =
        attributeRun(makeRun({r}, std::move(decisions)));
    EXPECT_EQ(report.machines[0].outliers[0].dominantCause,
              "dependence-height");
}

TEST(Attribution, TripTotalsSumPerMachineAndOverall)
{
    RowSpec a;
    a.superblock = "gcc.sb0";
    a.rjTrips = 50;
    a.twTrips = 100;
    RowSpec b = a;
    b.superblock = "gcc.sb1";
    b.rjTrips = 7;
    b.twTrips = 3;
    b.loopTrips = 11;
    AttributionReport report = attributeRun(makeRun({a, b}));

    EXPECT_EQ(report.tripTotals.at("rj"), 57);
    EXPECT_EQ(report.tripTotals.at("tw"), 103);
    const MachineAttribution &m = report.machines[0];
    EXPECT_EQ(m.tripTotals.at("rj"), 57);
    EXPECT_EQ(m.balanceTotals.at("loop_trips"), 18);
}

TEST(Attribution, MachinesGroupInFirstAppearanceOrder)
{
    RowSpec gp4;
    gp4.superblock = "gcc.sb0";
    RowSpec playdoh = gp4;
    playdoh.machine = "PlayDoh";
    playdoh.twTrips = 999;
    AttributionReport report = attributeRun(makeRun({gp4, playdoh}));

    ASSERT_EQ(report.machines.size(), 2u);
    EXPECT_EQ(report.machines[0].machine, "GP4");
    EXPECT_EQ(report.machines[1].machine, "PlayDoh");
    EXPECT_EQ(report.machines[0].tripTotals.at("tw"), 100);
    EXPECT_EQ(report.machines[1].tripTotals.at("tw"), 999);
    EXPECT_EQ(report.tripTotals.at("tw"), 1099) << "overall = both";
}

TEST(Attribution, OutliersAreTopKByWeightedGap)
{
    std::vector<RowSpec> rows;
    for (int i = 0; i < 4; ++i) {
        RowSpec r;
        r.superblock = "gcc.sb" + std::to_string(i);
        r.balance = r.tw + double(i); // gaps 0, 1, 2, 3
        rows.push_back(r);
    }
    AttributionOptions opts;
    opts.topK = 2;
    AttributionReport report = attributeRun(makeRun(rows), opts);

    const MachineAttribution &m = report.machines[0];
    ASSERT_EQ(m.outliers.size(), 2u);
    EXPECT_EQ(m.outliers[0].superblock, "gcc.sb3");
    EXPECT_EQ(m.outliers[1].superblock, "gcc.sb2");
    EXPECT_EQ(findOutlier(m, "gcc.sb0"), nullptr);
}

TEST(Attribution, FrontierIsFrequencyWeightedSlowdownOverTw)
{
    RowSpec r;
    r.superblock = "gcc.sb0";
    r.tw = 10.0;
    r.balance = 11.0;
    r.cp = 15.0;
    AttributionReport report = attributeRun(makeRun({r}));

    const MachineAttribution &m = report.machines[0];
    ASSERT_EQ(m.heuristicSlowdown.size(), 2u);
    EXPECT_EQ(m.heuristicSlowdown[0].first, "Balance");
    EXPECT_NEAR(m.heuristicSlowdown[0].second, 10.0, 1e-9);
    EXPECT_EQ(m.heuristicSlowdown[1].first, "CP");
    EXPECT_NEAR(m.heuristicSlowdown[1].second, 50.0, 1e-9);
}

TEST(GapHistogramTest, BucketsByPercentWithOpenTail)
{
    GapHistogram h;
    h.add(0.0);   // first bucket (== 0%)
    h.add(0.5);   // <= 1%
    h.add(1.5);   // <= 2%
    h.add(4.0);   // <= 5%
    h.add(100.0); // open tail
    ASSERT_EQ(h.counts.size(), GapHistogram::edges().size() + 1);
    EXPECT_EQ(h.counts[0], 1);
    EXPECT_EQ(h.counts[1], 1);
    EXPECT_EQ(h.counts[2], 1);
    EXPECT_EQ(h.counts[3], 1);
    EXPECT_EQ(h.counts.back(), 1);
}

TEST(AttributionDeathTest, RowlessRunPanics)
{
    RunArtifacts run;
    EXPECT_DEATH(attributeRun(run), "no per-superblock rows");
}

} // namespace
} // namespace balance
