/**
 * @file
 * End-to-end report pipeline (the acceptance contract of the report
 * subsystem, docs/REPORTING.md): capture a small suite run, load it
 * back through the manifest, and pin
 *
 *  - every ladder stage >= 0 on every machine (the bounds are
 *    ordered, and no valid schedule beats a valid bound);
 *  - the Table 2 trip totals summed over the rows equal the metrics
 *    snapshot counters bit for bit;
 *  - `compare` of a run against itself under the committed
 *    zero-tolerance budget passes, and the same compare against a
 *    tampered snapshot (inflated sched.balance.loop_trips) fails;
 *  - the rendered Markdown report flags no consistency mismatch;
 *  - artifacts are byte-identical across thread counts.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "report/attribution.hh"
#include "report/capture.hh"
#include "report/compare.hh"
#include "report/manifest.hh"
#include "report/render.hh"
#include "support/json.hh"

namespace balance
{
namespace
{

/** The committed budget's gate set (tools/perf_budgets.json). */
PerfBudget
committedStyleBudget()
{
    PerfBudget budget;
    budget.metrics = {{"bounds.trips.*", 0.0},
                      {"sched.balance.loop_trips", 0.0},
                      {"sched.balance.decisions", 0.0},
                      {"sched.balance.full_updates", 0.0},
                      {"sched.balance.light_updates", 0.0},
                      {"sched.balance.selection_passes", 0.0},
                      {"sched.balance.candidates", 0.0},
                      {"report.superblocks", 0.0}};
    budget.wallTolerancePct = -1.0; // walls never gate in-process
    return budget;
}

std::string
captureInto(const std::string &dir, double scale, int threads,
            bool hwCounters = false)
{
    ::mkdir(dir.c_str(), 0755);
    CaptureOptions opts;
    opts.suite.scale = scale;
    opts.threads = threads;
    opts.outDir = dir;
    opts.hwCounters = hwCounters;
    return captureRun(opts).manifestPath;
}

/** One pipeline run shared by the assertions below. */
class ReportPipelineTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        run = new RunArtifacts();
        // ctest runs each discovered case as its own process, and
        // each process re-runs this suite setup — key the directory
        // on the pid so parallel ctest jobs never write into each
        // other's capture.
        std::string manifestPath = captureInto(
            "/tmp/balance_report_pipeline." + std::to_string(getpid()),
            0.05, 0);
        std::string error;
        ASSERT_TRUE(loadRunArtifacts(manifestPath, run, &error))
            << error;
    }

    static void
    TearDownTestSuite()
    {
        delete run;
        run = nullptr;
    }

    static RunArtifacts *run;
};

RunArtifacts *ReportPipelineTest::run = nullptr;

TEST_F(ReportPipelineTest, CaptureProducesEveryArtifact)
{
    EXPECT_FALSE(run->metrics.isNull());
    EXPECT_FALSE(run->superblocks.empty());
    ASSERT_EQ(run->manifest.machines.size(), 1u) << "default = GP4";
    EXPECT_EQ(run->manifest.machines[0], "GP4");
    ASSERT_EQ(run->decisions.size(), 1u);
    EXPECT_FALSE(run->decisions[0].empty());
    EXPECT_EQ(run->superblocks.size(),
              (std::size_t)(run->metrics.get("counters")
                                .get("report.superblocks").asInt()));
    ASSERT_EQ(run->manifest.wall.size(), 1u);
    EXPECT_GT(run->manifest.wall[0].ms, 0.0);
}

TEST_F(ReportPipelineTest, LadderStagesAreNonNegativeEverywhere)
{
    AttributionReport attr = attributeRun(*run);
    ASSERT_EQ(attr.machines.size(), 1u);
    for (const MachineAttribution &m : attr.machines) {
        EXPECT_GE(m.rjToPw.mean, 0.0);
        EXPECT_GE(m.pwToTw.mean, 0.0);
        EXPECT_GE(m.twToAchieved.mean, 0.0);
        EXPECT_GT(m.superblocks, 0);
        for (const SuperblockAttribution &sba : m.outliers) {
            EXPECT_GE(sba.rjToPw, 0.0) << sba.superblock;
            EXPECT_GE(sba.pwToTw, 0.0) << sba.superblock;
            EXPECT_GE(sba.twToAchieved, 0.0) << sba.superblock;
            EXPECT_FALSE(sba.dominantCause.empty());
        }
    }
    // The per-row ladder holds on EVERY row, not just outliers.
    for (const JsonValue &row : run->superblocks) {
        const JsonValue &bounds = row.get("bounds");
        double rj = bounds.get("rj").asDouble();
        double pw = bounds.get("pw").asDouble();
        double tw = bounds.get("tw").asDouble();
        double achieved = row.get("wct").get("Balance").asDouble();
        EXPECT_LE(rj, pw + 1e-9);
        EXPECT_LE(pw, tw + 1e-9);
        EXPECT_LE(tw, achieved + 1e-9);
    }
}

TEST_F(ReportPipelineTest, TripTotalsMatchSnapshotBitForBit)
{
    AttributionReport attr = attributeRun(*run);
    const JsonValue &counters = run->metrics.get("counters");
    ASSERT_FALSE(attr.tripTotals.empty());
    for (const auto &kv : attr.tripTotals) {
        const JsonValue *snap =
            counters.find("bounds.trips." + kv.first);
        ASSERT_NE(snap, nullptr) << kv.first;
        EXPECT_EQ(snap->asInt(), kv.second)
            << "bounds.trips." << kv.first
            << ": rows and snapshot disagree";
    }
}

TEST_F(ReportPipelineTest, RenderedReportShowsNoMismatch)
{
    AttributionReport attr = attributeRun(*run);
    std::string md = renderReport(*run, attr);
    EXPECT_NE(md.find("# Balance run report"), std::string::npos);
    EXPECT_NE(md.find("## Trip totals vs metrics snapshot"),
              std::string::npos);
    EXPECT_NE(md.find("bounds.trips.tw"), std::string::npos);
    EXPECT_EQ(md.find("| NO"), std::string::npos)
        << "a consistency row flagged NO";
}

TEST_F(ReportPipelineTest, CompareAgainstSelfPasses)
{
    CompareResult result =
        compareRuns(*run, *run, committedStyleBudget());
    EXPECT_TRUE(result.ok) << result.render();
    bool sawGated = false;
    for (const CompareLine &line : result.lines)
        sawGated = sawGated || line.gated;
    EXPECT_TRUE(sawGated) << "the budget matched nothing";
}

TEST_F(ReportPipelineTest, CompareFlagsInflatedLoopTrips)
{
    RunArtifacts tampered = *run;
    JsonValue counters = tampered.metrics.get("counters");
    long long trips =
        counters.get("sched.balance.loop_trips").asInt();
    counters.set("sched.balance.loop_trips",
                 JsonValue::makeInt(trips + 1000));
    tampered.metrics.set("counters", counters);

    CompareResult result =
        compareRuns(*run, tampered, committedStyleBudget());
    EXPECT_FALSE(result.ok)
        << "a 0-tolerance counter grew and the gate stayed green";
    bool flagged = false;
    for (const CompareLine &line : result.lines) {
        if (line.metric == "sched.balance.loop_trips") {
            EXPECT_TRUE(line.regressed);
            flagged = line.regressed;
        }
    }
    EXPECT_TRUE(flagged);

    // The tampered run regressed; the original (as "current" against
    // the tampered base) only improved, which passes.
    EXPECT_TRUE(compareRuns(tampered, *run, committedStyleBudget()).ok);
}

TEST(ReportHwCounters, CaptureBindsArtifactWithoutPerturbingRows)
{
    std::string pid = std::to_string(getpid());
    std::string plainDir = "/tmp/balance_report_hw_off." + pid;
    std::string hwDir = "/tmp/balance_report_hw_on." + pid;
    std::string plainManifest = captureInto(plainDir, 0.02, 2);
    std::string hwManifest =
        captureInto(hwDir, 0.02, 2, /*hwCounters=*/true);

    std::string error;
    RunArtifacts plain, hw;
    ASSERT_TRUE(loadRunArtifacts(plainManifest, &plain, &error))
        << error;
    ASSERT_TRUE(loadRunArtifacts(hwManifest, &hw, &error)) << error;

    // Off by default: no artifact, no manifest key, Null on load.
    EXPECT_TRUE(plain.manifest.hwCountersPath.empty());
    EXPECT_TRUE(plain.hwCounters.isNull());

    // On: the manifest binds hwcounters.json and the loaded document
    // carries the full schema with real phase attributions.
    EXPECT_EQ(hw.manifest.hwCountersPath, "hwcounters.json");
    ASSERT_TRUE(hw.hwCounters.isObject());
    const JsonValue *tier = hw.hwCounters.find("tier");
    ASSERT_NE(tier, nullptr);
    EXPECT_TRUE(tier->asString() == "hardware" ||
                tier->asString() == "fallback");
    const JsonValue &phases = hw.hwCounters.get("phases");
    EXPECT_GT(phases.get("bounds.pair_sweep").get("entries").asInt(),
              0);
    EXPECT_GT(phases.get("sched.balance").get("entries").asInt(), 0);

    // Observation only: row and snapshot artifacts are bitwise
    // identical with and without counters.
    for (const char *name :
         {"metrics.json", "superblocks.jsonl", "decisions.GP4.jsonl"}) {
        std::string off, on;
        ASSERT_TRUE(readTextFile(plainDir + "/" + std::string(name),
                                 &off, &error))
            << error;
        ASSERT_TRUE(readTextFile(hwDir + "/" + std::string(name), &on,
                                 &error))
            << error;
        EXPECT_EQ(off, on) << name;
    }
}

TEST(ReportDeterminism, ArtifactsAreByteIdenticalAcrossThreadCounts)
{
    std::string serialDir = "/tmp/balance_report_serial";
    std::string threadedDir = "/tmp/balance_report_threaded";
    captureInto(serialDir, 0.02, 1);
    captureInto(threadedDir, 0.02, 4);

    std::string error;
    for (const char *name :
         {"metrics.json", "superblocks.jsonl", "decisions.GP4.jsonl"}) {
        std::string serial, threaded;
        ASSERT_TRUE(readTextFile(serialDir + "/" + std::string(name),
                                 &serial, &error))
            << error;
        ASSERT_TRUE(readTextFile(threadedDir + "/" + std::string(name),
                                 &threaded, &error))
            << error;
        EXPECT_EQ(serial, threaded) << name;
    }
}

} // namespace
} // namespace balance
