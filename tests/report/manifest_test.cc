/**
 * @file
 * Run-manifest round trip: toJson -> parseJson -> fromJson must be
 * the identity on every field (including a seed above int64 range),
 * and loadRunArtifacts must load exactly the artifacts the manifest
 * references, treating absent paths as empty slots and unreadable
 * referenced paths as hard errors.
 */

#include "report/manifest.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <sys/stat.h>

#include "support/json.hh"

namespace balance
{
namespace
{

RunManifest
filledManifest()
{
    RunManifest man;
    man.bench = "report_tool";
    man.seed = 18364758544493064720ULL; // > INT64_MAX
    man.scale = 0.05;
    man.threads = 4;
    man.withBest = true;
    man.machines = {"GP4", "PlayDoh"};
    man.heuristics = {"Balance", "CP", "SH"};
    man.metricsPath = "metrics.json";
    man.superblocksPath = "superblocks.jsonl";
    man.benchJsonPath = "BENCH_bounds.json";
    man.tracePath = "trace.json";
    man.decisionLogs = {{"GP4", "decisions.GP4.jsonl"},
                        {"PlayDoh", "decisions.PlayDoh.jsonl"}};
    man.wall = {{"GP4", 12.5}, {"PlayDoh", 31.25}};
    return man;
}

TEST(RunManifest, JsonRoundTripIsIdentity)
{
    RunManifest man = filledManifest();
    JsonParseResult parsed = parseJson(man.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error.describe();

    RunManifest back;
    std::string error;
    ASSERT_TRUE(RunManifest::fromJson(parsed.value, &back, &error))
        << error;
    EXPECT_EQ(back.version, RunManifest::currentVersion);
    EXPECT_EQ(back.bench, man.bench);
    EXPECT_EQ(back.seed, man.seed) << "u64 seed survives exactly";
    EXPECT_DOUBLE_EQ(back.scale, man.scale);
    EXPECT_EQ(back.threads, man.threads);
    EXPECT_EQ(back.withBest, man.withBest);
    EXPECT_EQ(back.machines, man.machines);
    EXPECT_EQ(back.heuristics, man.heuristics);
    EXPECT_EQ(back.metricsPath, man.metricsPath);
    EXPECT_EQ(back.superblocksPath, man.superblocksPath);
    EXPECT_EQ(back.benchJsonPath, man.benchJsonPath);
    EXPECT_EQ(back.tracePath, man.tracePath);
    ASSERT_EQ(back.decisionLogs.size(), 2u);
    EXPECT_EQ(back.decisionLogs[1].machine, "PlayDoh");
    EXPECT_EQ(back.decisionLogs[1].path, "decisions.PlayDoh.jsonl");
    ASSERT_EQ(back.wall.size(), 2u);
    EXPECT_EQ(back.wall[0].machine, "GP4");
    EXPECT_DOUBLE_EQ(back.wall[1].ms, 31.25);

    // And the re-serialization is byte-identical: the manifest is
    // one of the documents the parser round-trips exactly.
    EXPECT_EQ(back.toJson(), man.toJson());
}

TEST(RunManifest, SeedSerializesAsDecimalString)
{
    RunManifest man;
    man.seed = 18364758544493064720ULL;
    JsonParseResult parsed = parseJson(man.toJson());
    ASSERT_TRUE(parsed.ok());
    const JsonValue &seed = parsed.value.get("seed");
    ASSERT_TRUE(seed.isString())
        << "u64 does not fit JSON's exact-int64 range";
    EXPECT_EQ(seed.asString(), "18364758544493064720");
}

TEST(RunManifest, FromJsonRejectsMissingAndMistypedMembers)
{
    RunManifest man = filledManifest();
    std::string error;
    RunManifest out;

    JsonParseResult base = parseJson(man.toJson());
    ASSERT_TRUE(base.ok());

    JsonValue noSeed = base.value;
    noSeed.set("seed", JsonValue::makeNull());
    EXPECT_FALSE(RunManifest::fromJson(noSeed, &out, &error));
    EXPECT_NE(error.find("seed"), std::string::npos) << error;

    JsonValue badScale = base.value;
    badScale.set("scale", JsonValue::makeString("fast"));
    EXPECT_FALSE(RunManifest::fromJson(badScale, &out, &error));
    EXPECT_NE(error.find("scale"), std::string::npos) << error;

    EXPECT_FALSE(
        RunManifest::fromJson(JsonValue::makeArray(), &out, &error));
}

TEST(ArtifactPaths, ResolveAgainstTheManifestDirectory)
{
    EXPECT_EQ(resolveArtifactPath("/runs/a", "metrics.json"),
              "/runs/a/metrics.json");
    EXPECT_EQ(resolveArtifactPath("", "metrics.json"), "metrics.json");
    EXPECT_EQ(resolveArtifactPath("/runs/a", "/abs/metrics.json"),
              "/abs/metrics.json")
        << "absolute artifact paths are kept as-is";
}

TEST(ArtifactPaths, ReadWriteTextFileRoundTrip)
{
    std::string path = "/tmp/balance_manifest_test_rw.txt";
    std::string error;
    ASSERT_TRUE(writeTextFile(path, "line1\nline2\n", &error)) << error;
    std::string back;
    ASSERT_TRUE(readTextFile(path, &back, &error)) << error;
    EXPECT_EQ(back, "line1\nline2\n");
    std::remove(path.c_str());

    EXPECT_FALSE(readTextFile("/tmp/balance_manifest_test_missing_xyz",
                              &back, &error));
    EXPECT_FALSE(error.empty());
}

/** A run directory on disk with just the pieces the test wants. */
class LoadArtifactsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = "/tmp/balance_manifest_test_dir";
        ::mkdir(dir.c_str(), 0755);
        std::remove((dir + "/manifest.json").c_str());
        std::remove((dir + "/metrics.json").c_str());
        std::remove((dir + "/superblocks.jsonl").c_str());
        std::remove((dir + "/decisions.GP4.jsonl").c_str());
    }

    void
    write(const std::string &name, const std::string &text)
    {
        std::string error;
        ASSERT_TRUE(writeTextFile(dir + "/" + name, text, &error))
            << error;
    }

    std::string dir;
};

TEST_F(LoadArtifactsTest, LoadsEveryReferencedArtifact)
{
    RunManifest man;
    man.machines = {"GP4"};
    man.heuristics = {"Balance"};
    man.metricsPath = "metrics.json";
    man.superblocksPath = "superblocks.jsonl";
    man.decisionLogs = {{"GP4", "decisions.GP4.jsonl"}};
    write("manifest.json", man.toJson());
    write("metrics.json", "{\"counters\":{\"report.superblocks\":2}}");
    write("superblocks.jsonl",
          "{\"superblock\":\"gcc.sb0\"}\n{\"superblock\":\"gcc.sb1\"}\n");
    write("decisions.GP4.jsonl",
          "{\"superblock\":\"gcc.sb0\",\"cycle\":0}\n");

    RunArtifacts run;
    std::string error;
    ASSERT_TRUE(loadRunArtifacts(dir + "/manifest.json", &run, &error))
        << error;
    EXPECT_EQ(run.dir, dir);
    EXPECT_EQ(run.metrics.get("counters")
                  .get("report.superblocks").asInt(),
              2);
    ASSERT_EQ(run.superblocks.size(), 2u);
    EXPECT_EQ(run.superblocks[1].get("superblock").asString(),
              "gcc.sb1");
    ASSERT_EQ(run.decisions.size(), 1u);
    ASSERT_EQ(run.decisions[0].size(), 1u);
    EXPECT_EQ(run.decisions[0][0].get("cycle").asInt(), 0);
    EXPECT_TRUE(run.benchJson.isNull()) << "absent path, empty slot";
}

TEST_F(LoadArtifactsTest, MetricsOnlyBaselineLoads)
{
    // The committed CI baseline carries only manifest + metrics
    // (docs/REPORTING.md): everything else must stay empty, not fail.
    RunManifest man;
    man.metricsPath = "metrics.json";
    write("manifest.json", man.toJson());
    write("metrics.json", "{\"counters\":{}}");

    RunArtifacts run;
    std::string error;
    ASSERT_TRUE(loadRunArtifacts(dir + "/manifest.json", &run, &error))
        << error;
    EXPECT_TRUE(run.superblocks.empty());
    EXPECT_TRUE(run.decisions.empty());
}

TEST_F(LoadArtifactsTest, ReferencedButMissingArtifactIsAnError)
{
    RunManifest man;
    man.metricsPath = "metrics.json"; // never written
    write("manifest.json", man.toJson());

    RunArtifacts run;
    std::string error;
    EXPECT_FALSE(
        loadRunArtifacts(dir + "/manifest.json", &run, &error));
    EXPECT_NE(error.find("metrics.json"), std::string::npos) << error;
}

TEST_F(LoadArtifactsTest, MalformedArtifactReportsTheFile)
{
    RunManifest man;
    man.metricsPath = "metrics.json";
    write("manifest.json", man.toJson());
    write("metrics.json", "{\"counters\":"); // truncated

    RunArtifacts run;
    std::string error;
    EXPECT_FALSE(
        loadRunArtifacts(dir + "/manifest.json", &run, &error));
    EXPECT_NE(error.find("metrics.json"), std::string::npos) << error;
}

} // namespace
} // namespace balance
