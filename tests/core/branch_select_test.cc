#include "core/branch_select.hh"

#include <gtest/gtest.h>

#include "bounds/superblock_bounds.hh"
#include "graph/builder.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

/** Six independent int ops feeding two branches (GP2). */
Superblock
twoBranchSb()
{
    SuperblockBuilder b("sel");
    for (int i = 0; i < 3; ++i)
        b.addOp(OpClass::IntAlu, 1);
    OpId s = b.addBranch(0.5);
    for (OpId v = 0; v < 3; ++v)
        b.addEdge(v, s);
    for (int i = 0; i < 2; ++i)
        b.addOp(OpClass::IntAlu, 1);
    OpId f = b.addBranch(0.5);
    b.addEdge(4, f);
    b.addEdge(5, f);
    return b.build();
}

BranchNeeds
needsOf(int branchIdx, double weight, std::vector<OpId> each,
        std::vector<std::vector<OpId>> one)
{
    BranchNeeds n;
    n.branchIdx = branchIdx;
    n.weight = weight;
    n.needEach = std::move(each);
    n.needOne = std::move(one);
    return n;
}

TEST(SelectPass, IgnoredWithoutNeeds)
{
    Superblock sb = twoBranchSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    std::vector<BranchNeeds> needs = {needsOf(0, 0.5, {}, {{}}),
                                      needsOf(1, 0.5, {}, {{}})};
    SelectionResult sel = selectPass(state, needs, {0, 1});
    EXPECT_EQ(sel.outcome[0], BranchOutcome::Ignored);
    EXPECT_EQ(sel.outcome[1], BranchOutcome::Ignored);
    EXPECT_TRUE(sel.unconstrained());
    EXPECT_DOUBLE_EQ(sel.rank, 0.0);
}

TEST(SelectPass, CompatibleNeedsBothSelected)
{
    Superblock sb = twoBranchSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    // Branch 0 needs op 0 now; branch 1 needs one of {4, 5}.
    std::vector<BranchNeeds> needs = {
        needsOf(0, 0.6, {0}, {{}}),
        needsOf(1, 0.4, {}, {{4, 5}}),
    };
    SelectionResult sel = selectPass(state, needs, {0, 1});
    EXPECT_EQ(sel.outcome[0], BranchOutcome::Selected);
    EXPECT_EQ(sel.outcome[1], BranchOutcome::Selected);
    ASSERT_EQ(sel.takeEach.size(), 1u);
    EXPECT_EQ(sel.takeEach[0], 0);
    ASSERT_EQ(sel.takeOne[0].size(), 2u);
    EXPECT_DOUBLE_EQ(sel.rank, 1.0);
    auto cands = sel.candidateOps();
    EXPECT_EQ(cands.size(), 3u);
}

TEST(SelectPass, ResourceExhaustionDelaysLater)
{
    Superblock sb = twoBranchSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    // Branch 0 claims both GP2 slots; branch 1's resource need
    // cannot be accommodated on top.
    std::vector<BranchNeeds> needs = {
        needsOf(0, 0.6, {0, 1}, {{}}),
        needsOf(1, 0.4, {}, {{4, 5}}),
    };
    SelectionResult sel = selectPass(state, needs, {0, 1});
    EXPECT_EQ(sel.outcome[0], BranchOutcome::Selected);
    EXPECT_EQ(sel.outcome[1], BranchOutcome::Delayed);
    EXPECT_DOUBLE_EQ(sel.rank, 0.6 - 0.4);
}

TEST(SelectPass, OrderDecidesWinnerUnderContention)
{
    Superblock sb = twoBranchSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    std::vector<BranchNeeds> needs = {
        needsOf(0, 0.6, {0, 1}, {{}}),
        needsOf(1, 0.4, {4, 5}, {{}}),
    };
    SelectionResult first = selectPass(state, needs, {0, 1});
    EXPECT_EQ(first.outcome[0], BranchOutcome::Selected);
    EXPECT_EQ(first.outcome[1], BranchOutcome::Delayed);
    SelectionResult second = selectPass(state, needs, {1, 0});
    EXPECT_EQ(second.outcome[0], BranchOutcome::Delayed);
    EXPECT_EQ(second.outcome[1], BranchOutcome::Selected);
}

TEST(SelectPass, TakeOneIntersection)
{
    Superblock sb = twoBranchSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    // Both branches have resource needs with overlap {1}.
    std::vector<BranchNeeds> needs = {
        needsOf(0, 0.6, {}, {{0, 1}}),
        needsOf(1, 0.4, {}, {{1, 4}}),
    };
    SelectionResult sel = selectPass(state, needs, {0, 1});
    EXPECT_EQ(sel.outcome[0], BranchOutcome::Selected);
    EXPECT_EQ(sel.outcome[1], BranchOutcome::Selected);
    ASSERT_EQ(sel.takeOne[0].size(), 1u);
    EXPECT_EQ(sel.takeOne[0][0], 1);
}

TEST(SelectPass, DisjointTakeOneDelays)
{
    Superblock sb = twoBranchSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    std::vector<BranchNeeds> needs = {
        needsOf(0, 0.6, {}, {{0}}),
        needsOf(1, 0.4, {}, {{4}}),
    };
    // Disjoint singleton needs in the same pool: both fit in GP2's
    // two slots? Each TakeOne needs one slot; two needs in the same
    // pool cannot be tracked jointly by a single intersection, so
    // the second branch is delayed.
    SelectionResult sel = selectPass(state, needs, {0, 1});
    EXPECT_EQ(sel.outcome[0], BranchOutcome::Selected);
    EXPECT_EQ(sel.outcome[1], BranchOutcome::Delayed);
}

TEST(SelectPass, NeedMetByTakeEachIsFree)
{
    Superblock sb = twoBranchSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    // Branch 1's resource need is already satisfied by branch 0's
    // dependence need for op 0.
    std::vector<BranchNeeds> needs = {
        needsOf(0, 0.6, {0, 1}, {{}}),
        needsOf(1, 0.4, {}, {{0, 4}}),
    };
    SelectionResult sel = selectPass(state, needs, {0, 1});
    EXPECT_EQ(sel.outcome[0], BranchOutcome::Selected);
    EXPECT_EQ(sel.outcome[1], BranchOutcome::Selected);
}

TEST(SelectPass, UnreadyNeedEachDelays)
{
    Superblock sb = twoBranchSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    // Branch 1 "needs" its own branch op, which is not dep-ready.
    std::vector<BranchNeeds> needs = {
        needsOf(1, 0.9, {sb.branches()[1]}, {{}}),
    };
    SelectionResult sel = selectPass(state, needs, {0});
    EXPECT_EQ(sel.outcome[0], BranchOutcome::Delayed);
}

TEST(SelectCompatible, TradeoffMarksDelayedOk)
{
    // Figure 4 at P = 0.26: the pairwise point is (3, 4) -- the
    // optimal joint solution delays the side exit past its
    // individual bound of 2. When the selection cannot serve both,
    // the delayed side exit must be revised to delayedOK and its
    // weight must flip from penalty to reward in the rank.
    Superblock sb = paperFigure4(0.26);
    GraphContext ctx(sb);
    MachineModel machine = MachineModel::gp2();
    BoundsToolkit toolkit(ctx, machine);
    ASSERT_NE(toolkit.pairwise(), nullptr);
    const PairPoint &pt = toolkit.pairwise()->pair(0, 1);
    ASSERT_EQ(pt.x, 3);
    ASSERT_EQ(pt.y, 4);

    SchedState state(sb, machine);
    // Conflicting dependence needs: the side exit claims two int
    // feeders, the final exit claims its chain head plus a feeder;
    // three ops do not fit GP2's two slots.
    std::vector<BranchNeeds> needs = {
        needsOf(0, sb.exitProb(sb.branches()[0]), {0, 1}, {{}}),
        needsOf(1, sb.exitProb(sb.branches()[1]), {5, 2}, {{}}),
    };
    needs[0].dynEarly = 2;
    needs[1].dynEarly = 4;

    TradeoffInputs tradeoff;
    tradeoff.pairwise = toolkit.pairwise();
    tradeoff.earlyRC = &toolkit.earlyRC();
    tradeoff.sb = &sb;
    SelectionResult sel =
        selectCompatibleBranches(state, needs, tradeoff);
    EXPECT_EQ(sel.outcome[1], BranchOutcome::Selected);
    EXPECT_EQ(sel.outcome[0], BranchOutcome::DelayedOk);
    EXPECT_NEAR(sel.rank, 0.26 + 0.74, 1e-12);

    // Without tradeoff inputs the same selection penalizes the
    // delayed branch instead.
    TradeoffInputs none;
    SelectionResult plain = selectCompatibleBranches(state, needs, none);
    EXPECT_EQ(plain.outcome[0], BranchOutcome::Delayed);
    EXPECT_NEAR(plain.rank, 0.74 - 0.26, 1e-12);
}

TEST(SelectCompatible, OrdersByWeight)
{
    Superblock sb = twoBranchSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    std::vector<BranchNeeds> needs = {
        needsOf(0, 0.2, {0, 1}, {{}}),
        needsOf(1, 0.8, {4, 5}, {{}}),
    };
    TradeoffInputs none;
    SelectionResult sel = selectCompatibleBranches(state, needs, none);
    // The heavier branch wins the contention.
    EXPECT_EQ(sel.outcome[1], BranchOutcome::Selected);
    EXPECT_EQ(sel.outcome[0], BranchOutcome::Delayed);
}

} // namespace
} // namespace balance
