#include "core/sched_state.hh"

#include <gtest/gtest.h>

#include "graph/builder.hh"

namespace balance
{
namespace
{

Superblock
chainSb()
{
    SuperblockBuilder b("chain");
    OpId x = b.addOp(OpClass::IntAlu, 1);
    OpId y = b.addOp(OpClass::Memory, 2);
    OpId f = b.addBranch(1.0);
    b.addEdge(x, y);
    b.addEdge(y, f);
    return b.build();
}

TEST(SchedState, InitialReadiness)
{
    Superblock sb = chainSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    EXPECT_EQ(state.cycle(), 0);
    EXPECT_TRUE(state.canIssueNow(0));
    EXPECT_FALSE(state.canIssueNow(1)); // depends on op 0
    EXPECT_FALSE(state.canIssueNow(2));
    auto ready = state.depReadyOps();
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], 0);
}

TEST(SchedState, ScheduleAdvancesReadiness)
{
    Superblock sb = chainSb();
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    state.scheduleNow(0);
    EXPECT_TRUE(state.isScheduled(0));
    EXPECT_EQ(state.issueOf(0), 0);
    EXPECT_FALSE(state.isDepReady(1)); // latency 1 -> next cycle
    state.advanceCycle();
    EXPECT_TRUE(state.canIssueNow(1));
    state.scheduleNow(1);
    // Load latency 2: branch ready at cycle 3.
    state.advanceCycle();
    EXPECT_FALSE(state.isDepReady(2));
    state.advanceCycle();
    EXPECT_TRUE(state.canIssueNow(2));
    state.scheduleNow(2);
    EXPECT_TRUE(state.done());
    Schedule s = state.toSchedule();
    s.validate(sb, MachineModel::gp2());
}

TEST(SchedState, ResourceLimitsGateIssue)
{
    SuperblockBuilder b("wide");
    b.addOp(OpClass::IntAlu, 1);
    b.addOp(OpClass::IntAlu, 1);
    b.addBranch(1.0);
    Superblock sb = b.build(true);
    MachineModel machine = MachineModel::gp1();
    SchedState state(sb, machine);
    EXPECT_TRUE(state.canIssueNow(0));
    state.scheduleNow(0);
    EXPECT_TRUE(state.isDepReady(1));
    EXPECT_FALSE(state.canIssueNow(1)); // GP1 slot used
    EXPECT_FALSE(state.anyIssuableNow());
}

TEST(SchedState, AdvanceReportsLostSlots)
{
    SuperblockBuilder b("slots");
    b.addOp(OpClass::IntAlu, 1);
    b.addBranch(1.0);
    Superblock sb = b.build(true);
    MachineModel machine = MachineModel::fs6();
    SchedState state(sb, machine);
    state.scheduleNow(0); // one int slot of two used
    auto lost = state.advanceCycle();
    ASSERT_EQ(lost.size(), 4u);
    EXPECT_EQ(lost[0], 1); // int pool lost one
    EXPECT_EQ(lost[1], 2); // memory pool fully unused
    EXPECT_EQ(lost[3], 1); // branch pool unused
}

TEST(SchedState, FreeNowTracksCurrentCycle)
{
    SuperblockBuilder b("free");
    b.addOp(OpClass::IntAlu, 1);
    b.addOp(OpClass::IntAlu, 1);
    b.addBranch(1.0);
    Superblock sb = b.build(true);
    MachineModel machine = MachineModel::gp2();
    SchedState state(sb, machine);
    EXPECT_EQ(state.freeNow(0), 2);
    state.scheduleNow(0);
    EXPECT_EQ(state.freeNow(0), 1);
    state.scheduleNow(1);
    EXPECT_EQ(state.freeNow(0), 0);
    state.advanceCycle();
    EXPECT_EQ(state.freeNow(0), 2);
}

} // namespace
} // namespace balance
