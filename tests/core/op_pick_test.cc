#include "core/op_pick.hh"

#include <gtest/gtest.h>

#include "bounds/branch_bounds.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

/** DC-based dynamics for the Figure 2 fixture. */
struct PickFixture
{
    Superblock sb;
    GraphContext ctx;
    MachineModel machine;
    std::vector<std::vector<int>> lateDCs;
    std::vector<std::unique_ptr<BranchDynamics>> dyn;
    std::vector<double> weights;

    explicit PickFixture(double sideProb)
        : sb(paperFigure2(sideProb)), ctx(sb),
          machine(MachineModel::gp2())
    {
        for (int bi = 0; bi < sb.numBranches(); ++bi) {
            OpId b = sb.branches()[std::size_t(bi)];
            lateDCs.push_back(
                computeLateDC(sb, b, ctx.earlyDC()[std::size_t(b)]));
            weights.push_back(sb.exitProb(b));
        }
        for (int bi = 0; bi < sb.numBranches(); ++bi) {
            dyn.push_back(std::make_unique<BranchDynamics>(
                ctx, machine, bi, ctx.earlyDC(),
                lateDCs[std::size_t(bi)]));
        }
    }

    void
    update(const SchedState &state)
    {
        for (auto &d : dyn)
            d->fullUpdate(state, nullptr);
    }
};

TEST(OpPick, PrefersOpHelpingHeavierBranch)
{
    PickFixture f(0.3); // final exit carries 0.7
    SchedState state(f.sb, f.machine);
    f.update(state);
    // Op 4 is dependence-critical for the heavy final exit; the
    // block-1 feeders only help the light side exit (once tight).
    OpId pick = pickBestOp(state, f.dyn, f.weights, {0, 4});
    EXPECT_EQ(pick, 4);
}

TEST(OpPick, HelpedCountBreaksTies)
{
    PickFixture f(0.5);
    SchedState state(f.sb, f.machine);
    f.update(state);
    // With equal weights, op 4 helps one branch via dependence; op 0
    // helps none yet (no tight ERC): op 4 wins on priority.
    OpId pick = pickBestOp(state, f.dyn, f.weights, {0, 1, 4});
    EXPECT_EQ(pick, 4);
}

TEST(OpPick, ProgramOrderIsFinalTieBreak)
{
    PickFixture f(0.5);
    SchedState state(f.sb, f.machine);
    f.update(state);
    // Ops 0, 1, 2 are symmetric in every respect.
    OpId pick = pickBestOp(state, f.dyn, f.weights, {1, 2, 0});
    EXPECT_EQ(pick, 0);
}

TEST(OpPick, HlpDelPenalizesWasters)
{
    PickFixture f(0.6); // heavy side exit
    SchedState state(f.sb, f.machine);
    state.scheduleNow(4); // tighten the side exit's int ERC
    f.update(state);
    // Op 5 is not ready yet; candidates are the feeders and nothing
    // else, so build an artificial comparison: op 0 (helps side) vs
    // op 1 (also helps side). Both help; with HlpDel nothing
    // changes between them.
    OpPickConfig cfg;
    cfg.useHlpDel = true;
    OpId pick = pickBestOp(state, f.dyn, f.weights, {0, 1}, cfg);
    EXPECT_EQ(pick, 0);
}

} // namespace
} // namespace balance
