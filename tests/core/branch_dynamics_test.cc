#include "core/branch_dynamics.hh"

#include <gtest/gtest.h>

#include "bounds/branch_bounds.hh"
#include "graph/builder.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

/** Bundle that prepares DC-based statics for one superblock. */
struct DynFixture
{
    Superblock sb;
    GraphContext ctx;
    MachineModel machine;
    std::vector<int> earlyRC;
    std::vector<std::vector<int>> lateRCs;

    explicit DynFixture(Superblock s,
                        MachineModel m = MachineModel::gp2())
        : sb(std::move(s)), ctx(sb), machine(std::move(m)),
          earlyRC(lcEarlyRCForSuperblock(ctx, machine))
    {
        for (int bi = 0; bi < sb.numBranches(); ++bi)
            lateRCs.push_back(lateRCFor(ctx, machine, bi, earlyRC));
    }

    BranchDynamics
    dyn(int bi) const
    {
        return BranchDynamics(ctx, machine, bi, earlyRC,
                              lateRCs[std::size_t(bi)]);
    }
};

TEST(BranchDynamics, InitialBoundsMatchStatics)
{
    DynFixture f(paperFigure2(0.4));
    SchedState state(f.sb, f.machine);

    BranchDynamics d0 = f.dyn(0);
    BranchDynamics d1 = f.dyn(1);
    d0.fullUpdate(state, nullptr);
    d1.fullUpdate(state, nullptr);
    EXPECT_EQ(d0.dynEarly(), 2); // branch 3: ceil(3/2) preds
    EXPECT_EQ(d1.dynEarly(), 3); // branch 6: ceil(6/2) resource
}

TEST(BranchDynamics, NeedSetsOfFigure2)
{
    // In cycle 0 branch 6 needs op 4 by dependence (late 0) and
    // branch 3 needs one of {0,1,2} by resources.
    DynFixture f(paperFigure2(0.4));
    SchedState state(f.sb, f.machine);

    BranchDynamics d1 = f.dyn(1);
    d1.fullUpdate(state, nullptr);
    auto each = d1.needEach(state);
    ASSERT_EQ(each.size(), 1u);
    EXPECT_EQ(each[0], 4);

    BranchDynamics d0 = f.dyn(0);
    d0.fullUpdate(state, nullptr);
    EXPECT_TRUE(d0.needEach(state).empty());
    // With all slots still free there is one spare slot in branch
    // 3's window, so no resource need yet.
    EXPECT_FALSE(d0.hasTightErc(state));

    // After op 4 takes a cycle-0 slot the window {0,1,2} by cycle 1
    // becomes exact: branch 3 now needs one of them per decision.
    state.scheduleNow(4);
    d0.fullUpdate(state, nullptr);
    auto one = d0.needOne(state, f.machine.poolOf(OpClass::IntAlu));
    ASSERT_EQ(one.size(), 3u);
    EXPECT_EQ(one[0], 0);
    EXPECT_EQ(one[2], 2);
}

TEST(BranchDynamics, DelayDetectedAfterBadDecisions)
{
    DynFixture f(paperFigure2(0.4));
    SchedState state(f.sb, f.machine);

    // Issue 0 and 1 in cycle 0: op 4 missed its window; branch 6
    // slips to 4 on the next full update.
    state.scheduleNow(0);
    state.scheduleNow(1);
    BranchDynamics d1 = f.dyn(1);
    d1.fullUpdate(state, nullptr);
    // Cycle 0 is full, so op 4 misses its deadline-0 window and the
    // ERC delay pushes the branch: 1 + chain(3) = 4.
    EXPECT_EQ(d1.dynEarly(), 4);
    state.advanceCycle();
    d1.fullUpdate(state, nullptr);
    EXPECT_EQ(d1.dynEarly(), 4);
}

TEST(BranchDynamics, RetiresWithBranch)
{
    SuperblockBuilder b("tiny");
    OpId x = b.addOp(OpClass::IntAlu, 1);
    OpId br = b.addBranch(1.0);
    b.addEdge(x, br);
    DynFixture f(b.build());
    SchedState state(f.sb, f.machine);
    BranchDynamics d = f.dyn(0);
    d.fullUpdate(state, nullptr);
    EXPECT_FALSE(d.retired());
    state.scheduleNow(x);
    EXPECT_TRUE(d.lightUpdateOnOp(state, x, nullptr));
    state.advanceCycle();
    EXPECT_TRUE(d.lightUpdateOnCycleAdvance(
        state, std::vector<int>{1}, nullptr));
    state.scheduleNow(br);
    EXPECT_TRUE(d.lightUpdateOnOp(state, br, nullptr));
    EXPECT_TRUE(d.retired());
}

TEST(BranchDynamics, LightUpdateMatchesFullUpdateNeeds)
{
    // Light updates must preserve the tight-ERC structure whenever
    // they report success; cross-check against a fresh full update.
    DynFixture f(paperFigure1(0.3));
    SchedState state(f.sb, f.machine);

    BranchDynamics light = f.dyn(1);
    light.fullUpdate(state, nullptr);

    // Schedule the two chain heads (helping the final exit).
    state.scheduleNow(4);
    bool ok = light.lightUpdateOnOp(state, 4, nullptr);
    if (!ok)
        light.fullUpdate(state, nullptr);

    BranchDynamics fresh = f.dyn(1);
    fresh.fullUpdate(state, nullptr);
    EXPECT_EQ(light.dynEarly(), fresh.dynEarly());
    EXPECT_EQ(light.needEach(state), fresh.needEach(state));
    for (int r = 0; r < f.machine.numResources(); ++r)
        EXPECT_EQ(light.needOne(state, r), fresh.needOne(state, r));
}

TEST(BranchDynamics, WasteTriggersFullUpdateSignal)
{
    // Figure 1 on GP2: the final exit has zero slack in cycles 0..7
    // after one wasted slot... its ERC empties shrink via light
    // updates and eventually demand a recomputation.
    DynFixture f(paperFigure1(0.3));
    SchedState state(f.sb, f.machine);
    BranchDynamics d = f.dyn(1);
    d.fullUpdate(state, nullptr);

    // The 16-pred exit at bound 8 has exactly one empty slot in its
    // widest ERC (17 slots needed in 16+2 available)... waste slots
    // by scheduling nothing and advancing cycles: each advance loses
    // two slots and must eventually invalidate.
    bool invalidated = false;
    for (int i = 0; i < 4 && !invalidated; ++i) {
        auto lost = state.advanceCycle();
        invalidated = !d.lightUpdateOnCycleAdvance(state, lost, nullptr);
    }
    EXPECT_TRUE(invalidated);
}

TEST(BranchDynamics, NeedOneVacuousWhenPoolFull)
{
    // Regression: with every unit of a pool already reserved in the
    // current cycle, a tight ERC imposes no need on this decision --
    // nothing can be taken from or wasted against the window. The
    // selection must not mark the branch incompatible (which used to
    // drop its genuine dependence needs on FS8).
    DynFixture f(paperFigure2(0.4));
    SchedState state(f.sb, f.machine);
    state.scheduleNow(4);
    BranchDynamics d0 = f.dyn(0);
    d0.fullUpdate(state, nullptr);
    ResourceId intPool = f.machine.poolOf(OpClass::IntAlu);
    ASSERT_FALSE(d0.needOne(state, intPool).empty());

    // Fill the remaining GP2 slot: the need becomes vacuous.
    state.scheduleNow(0);
    d0.fullUpdate(state, nullptr);
    EXPECT_EQ(state.freeNow(intPool), 0);
    EXPECT_TRUE(d0.needOne(state, intPool).empty());
}

TEST(BranchDynamics, HelpsAndWastes)
{
    DynFixture f(paperFigure2(0.4));
    SchedState state(f.sb, f.machine);
    BranchDynamics d0 = f.dyn(0);
    BranchDynamics d1 = f.dyn(1);
    d0.fullUpdate(state, nullptr);
    d1.fullUpdate(state, nullptr);

    // Op 4 helps branch 6 (dependence-critical now).
    EXPECT_TRUE(d1.helps(state, 4));
    // Op 4 is outside branch 3's closure and its window still has a
    // spare slot: no help, no waste yet.
    EXPECT_FALSE(d0.helps(state, 4));
    EXPECT_FALSE(d0.wastes(state, 4));

    // Once op 4 consumes a cycle-0 slot, branch 3's ERC tightens.
    state.scheduleNow(4);
    d0.fullUpdate(state, nullptr);
    EXPECT_TRUE(d0.hasTightErc(state));
    // Ops 0..2 help branch 3 (members of its tight ERC).
    EXPECT_TRUE(d0.helps(state, 0));
    // Op 5 would waste one of branch 3's critical int slots.
    EXPECT_TRUE(d0.wastes(state, 5));
    // Members do not waste.
    EXPECT_FALSE(d0.wastes(state, 1));
}

} // namespace
} // namespace balance
