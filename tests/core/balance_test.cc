#include "core/balance_scheduler.hh"

#include <gtest/gtest.h>

#include "workload/generator.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

TEST(Help, FindsFigure1Optimum)
{
    Superblock sb = paperFigure1(0.2);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    Schedule s = HelpScheduler().run(ctx, m);
    s.validate(sb, m);
    EXPECT_EQ(s.issueOf(sb.branches()[0]), 2);
    EXPECT_EQ(s.issueOf(sb.branches()[1]), 8);
}

TEST(Balance, FindsFigure2Optimum)
{
    // Observation 1: the need-aware decision issues {0-or-1-or-2, 4}
    // in cycle 0 and reaches (2, 3).
    Superblock sb = paperFigure2(0.4);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    Schedule s = BalanceScheduler().run(ctx, m);
    s.validate(sb, m);
    EXPECT_EQ(s.issueOf(sb.branches()[0]), 2);
    EXPECT_EQ(s.issueOf(sb.branches()[1]), 3);
}

TEST(Balance, FindsFigure3Optimum)
{
    // Observation 2: LateRC reveals that op 4 must issue in cycle 0.
    Superblock sb = paperFigure3(0.4);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    Schedule s = BalanceScheduler().run(ctx, m);
    s.validate(sb, m);
    EXPECT_EQ(s.issueOf(sb.branches()[0]), 2);
    EXPECT_EQ(s.issueOf(sb.branches()[1]), 5);
}

TEST(Balance, Figure4TradeoffFollowsProbability)
{
    // Observation 3: which exit yields depends on the probability.
    MachineModel m = MachineModel::gp2();
    {
        Superblock sb = paperFigure4(0.3);
        GraphContext ctx(sb);
        Schedule s = BalanceScheduler().run(ctx, m);
        s.validate(sb, m);
        EXPECT_NEAR(s.wct(sb), 0.3 * 4 + 0.7 * 5, 1e-9);
    }
    {
        Superblock sb = paperFigure4(0.8);
        GraphContext ctx(sb);
        Schedule s = BalanceScheduler().run(ctx, m);
        s.validate(sb, m);
        EXPECT_NEAR(s.wct(sb), 0.8 * 3 + 0.2 * 6, 1e-9);
    }
}

TEST(Balance, AllAblationsProduceValidSchedules)
{
    Rng rng(808);
    GeneratorParams params;
    for (int trial = 0; trial < 8; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "a" + std::to_string(trial));
        GraphContext ctx(sb);
        for (const MachineModel &m :
             {MachineModel::gp1(), MachineModel::gp2(),
              MachineModel::fs6()}) {
            for (int mask = 0; mask < 32; ++mask) {
                BalanceConfig cfg;
                cfg.useRcBounds = mask & 1;
                cfg.useHlpDel = mask & 2;
                cfg.useTradeoff = (mask & 4) && cfg.useRcBounds;
                cfg.useSelection = mask & 8;
                cfg.updatePerOp = mask & 16;
                BalanceScheduler sched(cfg, "ablate");
                Schedule s = sched.run(ctx, m);
                s.validate(sb, m);
            }
        }
    }
}

TEST(Balance, LightUpdateMatchesFullRecompute)
{
    // The light update is an optimization, not an approximation:
    // schedules must be identical with and without it.
    Rng rng(606);
    GeneratorParams params;
    for (int trial = 0; trial < 12; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "l" + std::to_string(trial));
        GraphContext ctx(sb);
        for (const MachineModel &m :
             {MachineModel::gp2(), MachineModel::fs4()}) {
            BalanceConfig lightCfg;
            BalanceConfig fullCfg;
            fullCfg.useLightUpdate = false;
            Schedule light =
                BalanceScheduler(lightCfg, "light").run(ctx, m);
            Schedule full =
                BalanceScheduler(fullCfg, "full").run(ctx, m);
            for (OpId v = 0; v < sb.numOps(); ++v) {
                ASSERT_EQ(light.issueOf(v), full.issueOf(v))
                    << sb.name() << " op " << v << " on " << m.name();
            }
        }
    }
}

TEST(Balance, RunWithToolkitMatchesSelfComputed)
{
    Superblock sb = paperFigure4(0.3);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    BalanceScheduler sched;
    BoundsToolkit toolkit(ctx, m, sched.config().bounds);
    Schedule a = sched.run(ctx, m);
    Schedule b = sched.runWithToolkit(ctx, m, toolkit);
    for (OpId v = 0; v < sb.numOps(); ++v)
        EXPECT_EQ(a.issueOf(v), b.issueOf(v));
}

TEST(Balance, StatsAccumulate)
{
    Superblock sb = paperFigure1(0.3);
    GraphContext ctx(sb);
    SchedulerStats stats;
    ScheduleRequest req;
    req.stats = &stats;
    BalanceScheduler().run(ctx, MachineModel::gp2(), req);
    EXPECT_EQ(stats.decisions, sb.numOps());
    EXPECT_GT(stats.loopTrips, 0);
}

TEST(Balance, NoProfileSteeringStillValid)
{
    Rng rng(404);
    GeneratorParams params;
    for (int trial = 0; trial < 6; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "n" + std::to_string(trial));
        GraphContext ctx(sb);
        ScheduleRequest req;
        req.branchWeights.assign(std::size_t(sb.numBranches()), 1.0);
        req.branchWeights.back() = 1000.0;
        Schedule s =
            BalanceScheduler().run(ctx, MachineModel::fs4(), req);
        s.validate(sb, MachineModel::fs4());
    }
}

} // namespace
} // namespace balance
