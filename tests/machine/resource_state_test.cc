#include "machine/resource_state.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

TEST(ResourceState, FreshTableIsFree)
{
    MachineModel m = MachineModel::fs4();
    ResourceState t(m);
    EXPECT_EQ(t.freeSlots(0, OpClass::IntAlu), 1);
    EXPECT_EQ(t.freeSlots(100, OpClass::Memory), 1);
    EXPECT_TRUE(t.hasSlot(3, OpClass::Branch));
    EXPECT_EQ(t.usedInCycle(5), 0);
}

TEST(ResourceState, ReserveAndRelease)
{
    MachineModel m = MachineModel::gp2();
    ResourceState t(m);
    t.reserve(0, OpClass::IntAlu);
    EXPECT_EQ(t.freeSlots(0, OpClass::Memory), 1); // same pool
    t.reserve(0, OpClass::Memory);
    EXPECT_FALSE(t.hasSlot(0, OpClass::Branch));
    EXPECT_EQ(t.usedInCycle(0), 2);
    t.release(0, OpClass::IntAlu);
    EXPECT_TRUE(t.hasSlot(0, OpClass::Branch));
}

TEST(ResourceState, PoolsAreIndependent)
{
    MachineModel m = MachineModel::fs4();
    ResourceState t(m);
    t.reserve(0, OpClass::IntAlu);
    EXPECT_FALSE(t.hasSlot(0, OpClass::IntAlu));
    EXPECT_TRUE(t.hasSlot(0, OpClass::Memory));
    EXPECT_TRUE(t.hasSlot(0, OpClass::Branch));
}

TEST(ResourceState, EarliestFreeSkipsFullCycles)
{
    MachineModel m = MachineModel::gp1();
    ResourceState t(m);
    t.reserve(0, OpClass::IntAlu);
    t.reserve(1, OpClass::IntAlu);
    t.reserve(3, OpClass::IntAlu);
    EXPECT_EQ(t.earliestFree(0, OpClass::Memory), 2);
    EXPECT_EQ(t.earliestFree(3, OpClass::Memory), 4);
}

TEST(ResourceState, AvailableInWindow)
{
    MachineModel m = MachineModel::gp2();
    ResourceState t(m);
    t.reserve(1, OpClass::IntAlu);
    // Cycles 0..2 hold 6 slots, one used.
    EXPECT_EQ(t.availableInWindow(0, 2, 0), 5);
    EXPECT_EQ(t.availableInWindow(2, 1, 0), 0); // empty window
    // Untouched future cycles count full width.
    EXPECT_EQ(t.availableInWindow(10, 11, 0), 4);
}

TEST(ResourceState, ClearForgetsEverything)
{
    MachineModel m = MachineModel::gp1();
    ResourceState t(m);
    t.reserve(0, OpClass::IntAlu);
    t.clear();
    EXPECT_TRUE(t.hasSlot(0, OpClass::IntAlu));
}

} // namespace
} // namespace balance
