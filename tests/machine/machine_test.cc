#include "machine/machine_model.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

TEST(MachineModel, GeneralPurposePoolsEverything)
{
    MachineModel m = MachineModel::gp2();
    EXPECT_EQ(m.name(), "GP2");
    EXPECT_EQ(m.numResources(), 1);
    EXPECT_EQ(m.totalWidth(), 2);
    for (int c = 0; c < numOpClasses; ++c) {
        EXPECT_EQ(m.poolOf(OpClass(c)), 0);
        EXPECT_EQ(m.widthOf(OpClass(c)), 2);
    }
}

TEST(MachineModel, PaperFsMixes)
{
    MachineModel fs4 = MachineModel::fs4();
    EXPECT_EQ(fs4.numResources(), 4);
    EXPECT_EQ(fs4.totalWidth(), 4);
    EXPECT_EQ(fs4.widthOf(OpClass::IntAlu), 1);
    EXPECT_EQ(fs4.widthOf(OpClass::Memory), 1);
    EXPECT_EQ(fs4.widthOf(OpClass::FloatAlu), 1);
    EXPECT_EQ(fs4.widthOf(OpClass::Branch), 1);

    MachineModel fs6 = MachineModel::fs6();
    EXPECT_EQ(fs6.totalWidth(), 6);
    EXPECT_EQ(fs6.widthOf(OpClass::IntAlu), 2);
    EXPECT_EQ(fs6.widthOf(OpClass::Memory), 2);
    EXPECT_EQ(fs6.widthOf(OpClass::FloatAlu), 1);
    EXPECT_EQ(fs6.widthOf(OpClass::Branch), 1);

    MachineModel fs8 = MachineModel::fs8();
    EXPECT_EQ(fs8.totalWidth(), 8);
    EXPECT_EQ(fs8.widthOf(OpClass::IntAlu), 3);
    EXPECT_EQ(fs8.widthOf(OpClass::Memory), 2);
    EXPECT_EQ(fs8.widthOf(OpClass::FloatAlu), 2);
    EXPECT_EQ(fs8.widthOf(OpClass::Branch), 1);
}

TEST(MachineModel, SixPaperConfigs)
{
    auto configs = MachineModel::paperConfigs();
    ASSERT_EQ(configs.size(), 6u);
    EXPECT_EQ(configs[0].name(), "GP1");
    EXPECT_EQ(configs[5].name(), "FS8");
}

TEST(MachineModel, ByName)
{
    EXPECT_EQ(MachineModel::byName("FS6").totalWidth(), 6);
    EXPECT_EQ(MachineModel::byName("GP1").totalWidth(), 1);
}

TEST(MachineModel, CustomMapping)
{
    // Two pools: branches separate, everything else shared.
    MachineModel m = MachineModel::custom("X", {3, 1}, {0, 0, 0, 1});
    EXPECT_EQ(m.widthOf(OpClass::IntAlu), 3);
    EXPECT_EQ(m.widthOf(OpClass::Branch), 1);
    EXPECT_EQ(m.totalWidth(), 4);
}

TEST(OpClass, NamesRoundTrip)
{
    for (int c = 0; c < numOpClasses; ++c) {
        OpClass parsed;
        ASSERT_TRUE(parseOpClass(opClassName(OpClass(c)), parsed));
        EXPECT_EQ(parsed, OpClass(c));
    }
    OpClass out;
    EXPECT_FALSE(parseOpClass("bogus", out));
}

} // namespace
} // namespace balance
