#include "sched/schedule.hh"

#include <gtest/gtest.h>

#include "graph/builder.hh"

namespace balance
{
namespace
{

Superblock
chainSb()
{
    SuperblockBuilder b("chain");
    OpId x = b.addOp(OpClass::IntAlu, 1);
    OpId y = b.addOp(OpClass::Memory, 2);
    OpId f = b.addBranch(1.0);
    b.addEdge(x, y);
    b.addEdge(y, f);
    return b.build();
}

TEST(Schedule, StartsUnscheduled)
{
    Schedule s(3);
    EXPECT_EQ(s.numOps(), 3);
    EXPECT_FALSE(s.isScheduled(0));
    EXPECT_EQ(s.issueOf(2), -1);
    EXPECT_FALSE(s.complete());
    EXPECT_EQ(s.makespan(), 0);
}

TEST(Schedule, SetAndQuery)
{
    Schedule s(3);
    s.setIssue(0, 0);
    s.setIssue(1, 1);
    s.setIssue(2, 3);
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.makespan(), 4);
    EXPECT_EQ(s.issueOf(1), 1);
}

TEST(Schedule, WctWeightsBranches)
{
    SuperblockBuilder b("two");
    OpId x = b.addOp(OpClass::IntAlu, 1);
    OpId s0 = b.addBranch(0.25);
    OpId s1 = b.addBranch(0.75);
    b.addEdge(x, s0);
    Superblock sb = b.build();
    (void)s1;

    Schedule s(3);
    s.setIssue(0, 0);
    s.setIssue(1, 1);
    s.setIssue(2, 2);
    EXPECT_NEAR(s.wct(sb), 0.25 * 2 + 0.75 * 3, 1e-12);
}

TEST(Schedule, ValidateAcceptsLegalSchedule)
{
    Superblock sb = chainSb();
    Schedule s(3);
    s.setIssue(0, 0);
    s.setIssue(1, 1);
    s.setIssue(2, 3); // respects the 2-cycle load latency
    EXPECT_NO_FATAL_FAILURE(s.validate(sb, MachineModel::gp1()));
}

TEST(Schedule, ValidateRejectsLatencyViolation)
{
    Superblock sb = chainSb();
    Schedule s(3);
    s.setIssue(0, 0);
    s.setIssue(1, 1);
    s.setIssue(2, 2); // load result not ready
    EXPECT_DEATH(s.validate(sb, MachineModel::gp1()),
                 "dependence violated");
}

TEST(Schedule, ValidateRejectsResourceOverflow)
{
    SuperblockBuilder b("wide");
    b.addOp(OpClass::IntAlu, 1);
    b.addOp(OpClass::IntAlu, 1);
    b.addBranch(1.0);
    Superblock sb = b.build(true);

    Schedule s(3);
    s.setIssue(0, 0);
    s.setIssue(1, 0); // two int ops, GP1 has one slot
    s.setIssue(2, 1);
    EXPECT_DEATH(s.validate(sb, MachineModel::gp1()),
                 "resource overflow");
}

TEST(Schedule, ValidateRejectsConsumerBeforeProducer)
{
    // Not just a short latency: the consumer issues strictly before
    // its producer. The dependence sweep must still catch it.
    Superblock sb = chainSb();
    Schedule s(3);
    s.setIssue(0, 5);
    s.setIssue(1, 0);
    s.setIssue(2, 7);
    EXPECT_DEATH(s.validate(sb, MachineModel::gp1()),
                 "dependence violated");
}

TEST(Schedule, ValidateRejectsOversubscriptionInLaterCycle)
{
    // The reservation-table check must apply to every cycle, not
    // only cycle 0: pack three independent int ops into cycle 4 on
    // GP2 (two universal slots).
    SuperblockBuilder b("late");
    b.addOp(OpClass::IntAlu, 1);
    b.addOp(OpClass::IntAlu, 1);
    b.addOp(OpClass::IntAlu, 1);
    b.addBranch(1.0);
    Superblock sb = b.build(true);

    Schedule s(4);
    s.setIssue(0, 4);
    s.setIssue(1, 4);
    s.setIssue(2, 4);
    s.setIssue(3, 5);
    EXPECT_DEATH(s.validate(sb, MachineModel::gp2()),
                 "resource overflow");
}

TEST(Schedule, ValidateRejectsMemoryPoolOversubscription)
{
    // Class-specific pools: FS4 has dedicated memory units; exceed
    // only that pool while plenty of integer slots stay free.
    MachineModel fs4 = MachineModel::fs4();
    int memUnits = fs4.widthOf(OpClass::Memory);
    SuperblockBuilder b("mem");
    for (int i = 0; i < memUnits + 1; ++i)
        b.addOp(OpClass::Memory, 2);
    b.addBranch(1.0);
    Superblock sb = b.build(true);

    Schedule s(sb.numOps());
    for (OpId v = 0; v < memUnits + 1; ++v)
        s.setIssue(v, 0);
    s.setIssue(OpId(memUnits + 1), 2);
    EXPECT_DEATH(s.validate(sb, fs4), "resource overflow");
}

TEST(Schedule, ValidateRejectsSizeMismatch)
{
    Superblock sb = chainSb();
    Schedule s(2); // one op short
    s.setIssue(0, 0);
    s.setIssue(1, 1);
    EXPECT_DEATH(s.validate(sb, MachineModel::gp1()),
                 "size mismatch");
}

TEST(Schedule, ValidateRejectsIncomplete)
{
    Superblock sb = chainSb();
    Schedule s(3);
    s.setIssue(0, 0);
    EXPECT_DEATH(s.validate(sb, MachineModel::gp1()), "incomplete");
}

TEST(Schedule, DoubleAssignIsFatal)
{
    Schedule s(2);
    s.setIssue(0, 0);
    EXPECT_DEATH(s.setIssue(0, 1), "already scheduled");
}

TEST(Schedule, RenderMentionsCyclesAndProbs)
{
    Superblock sb = chainSb();
    Schedule s(3);
    s.setIssue(0, 0);
    s.setIssue(1, 1);
    s.setIssue(2, 3);
    std::string out = s.render(sb, MachineModel::gp1());
    EXPECT_NE(out.find("cycle 0"), std::string::npos);
    EXPECT_NE(out.find("cycle 3"), std::string::npos);
    EXPECT_NE(out.find("p=1.00"), std::string::npos);
}

} // namespace
} // namespace balance
