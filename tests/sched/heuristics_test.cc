#include "sched/heuristics.hh"

#include <gtest/gtest.h>

#include "sched/best_scheduler.hh"
#include "sched/priorities.hh"
#include "workload/generator.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

TEST(Priorities, CriticalPathKeyIsDependenceHeight)
{
    Superblock sb = paperFigure1();
    GraphContext ctx(sb);
    auto key = criticalPathKey(ctx);
    // The head of the 7-op chain has the largest height: six
    // chain edges plus the edge into the final branch.
    EXPECT_DOUBLE_EQ(key[4], 7.0);
    EXPECT_DOUBLE_EQ(key[sb.branches()[1]], 0.0);
}

TEST(Priorities, SuccessiveRetirementKeyTiersBlocks)
{
    Superblock sb = paperFigure1();
    GraphContext ctx(sb);
    auto key = successiveRetirementKey(ctx);
    // Any block-0 op dominates every block-1 op.
    for (OpId v = 0; v <= sb.branches()[0]; ++v) {
        for (OpId w = sb.branches()[0] + 1; w < sb.numOps(); ++w)
            EXPECT_GT(key[std::size_t(v)], key[std::size_t(w)]);
    }
}

TEST(Priorities, DhasyKeyWeightsByProbability)
{
    Superblock heavy = paperFigure1(0.9);
    Superblock light = paperFigure1(0.1);
    GraphContext ctxHeavy(heavy);
    GraphContext ctxLight(light);
    auto keyHeavy = dhasyKey(ctxHeavy);
    auto keyLight = dhasyKey(ctxLight);
    // Side-exit feeders gain priority with the side probability.
    EXPECT_GT(keyHeavy[0], keyLight[0]);
}

TEST(Priorities, DhasyKeyAcceptsOverrideWeights)
{
    Superblock sb = paperFigure1(0.5);
    GraphContext ctx(sb);
    auto base = dhasyKey(ctx);
    auto skewed = dhasyKey(ctx, {0.0, 1.0});
    EXPECT_NE(base[0], skewed[0]);
}

TEST(Priorities, NormalizeKeyBoundsToUnit)
{
    auto n = normalizeKey({-2.0, 1.0, 4.0});
    EXPECT_DOUBLE_EQ(n[2], 1.0);
    EXPECT_DOUBLE_EQ(n[0], -0.5);
    auto zeros = normalizeKey({0.0, 0.0});
    EXPECT_DOUBLE_EQ(zeros[0], 0.0);
}

TEST(Heuristics, Figure1SuccessiveRetirementOptimal)
{
    // The paper: SR schedules both exits as early as possible
    // (side at 2, final at 8) on GP2.
    Superblock sb = paperFigure1(0.2);
    GraphContext ctx(sb);
    Schedule s = SuccessiveRetirementScheduler().run(
        ctx, MachineModel::gp2());
    s.validate(sb, MachineModel::gp2());
    EXPECT_EQ(s.issueOf(sb.branches()[0]), 2);
    EXPECT_EQ(s.issueOf(sb.branches()[1]), 8);
}

TEST(Heuristics, Figure1CriticalPathDelaysSideExit)
{
    // The paper: CP favors the final exit and delays the side exit.
    Superblock sb = paperFigure1(0.2);
    GraphContext ctx(sb);
    Schedule s =
        CriticalPathScheduler().run(ctx, MachineModel::gp2());
    s.validate(sb, MachineModel::gp2());
    EXPECT_EQ(s.issueOf(sb.branches()[1]), 8);
    EXPECT_GT(s.issueOf(sb.branches()[0]), 2);
}

TEST(Heuristics, AllValidOnRandomPopulation)
{
    Rng rng(909);
    GeneratorParams params;
    std::vector<std::unique_ptr<Scheduler>> scheds;
    scheds.push_back(std::make_unique<CriticalPathScheduler>());
    scheds.push_back(std::make_unique<SuccessiveRetirementScheduler>());
    scheds.push_back(std::make_unique<DhasyScheduler>());
    scheds.push_back(std::make_unique<GStarScheduler>());
    scheds.push_back(std::make_unique<ComboScheduler>(0.3, 0.3, 0.4));

    for (int trial = 0; trial < 15; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "h" + std::to_string(trial));
        GraphContext ctx(sb);
        for (const MachineModel &m :
             {MachineModel::gp1(), MachineModel::gp4(),
              MachineModel::fs6()}) {
            for (const auto &sched : scheds) {
                Schedule s = sched->run(ctx, m);
                s.validate(sb, m);
            }
        }
    }
}

TEST(Heuristics, GStarMatchesCpWithSingleCriticalBranch)
{
    // With no-profile weighting (last branch dominant) G* selects
    // only the final exit as critical and degenerates to CP; the
    // paper uses this in Table 5.
    Rng rng(31337);
    GeneratorParams params;
    for (int trial = 0; trial < 10; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "g" + std::to_string(trial));
        GraphContext ctx(sb);
        ScheduleRequest req;
        req.branchWeights.assign(std::size_t(sb.numBranches()), 1.0);
        req.branchWeights.back() = 1e9;
        MachineModel m = MachineModel::gp2();
        double gstar = GStarScheduler().run(ctx, m, req).wct(sb);
        double cp = CriticalPathScheduler().run(ctx, m, req).wct(sb);
        // Every op precedes the final exit, so its closure is the
        // whole graph and one tier remains: G* degenerates to CP.
        EXPECT_DOUBLE_EQ(gstar, cp);
    }
}

TEST(Best, EnvelopeNeverWorseThanPrimaries)
{
    Rng rng(2222);
    GeneratorParams params;
    auto cp = std::make_shared<CriticalPathScheduler>();
    auto sr = std::make_shared<SuccessiveRetirementScheduler>();
    auto dh = std::make_shared<DhasyScheduler>();
    BestScheduler best({cp, sr, dh});
    EXPECT_EQ(best.runsPerSuperblock(), 3 + 121);

    for (int trial = 0; trial < 8; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "b" + std::to_string(trial));
        GraphContext ctx(sb);
        MachineModel m = MachineModel::fs4();
        Schedule s = best.run(ctx, m);
        s.validate(sb, m);
        double envelope = s.wct(sb);
        EXPECT_LE(envelope, cp->run(ctx, m).wct(sb) + 1e-9);
        EXPECT_LE(envelope, sr->run(ctx, m).wct(sb) + 1e-9);
        EXPECT_LE(envelope, dh->run(ctx, m).wct(sb) + 1e-9);
    }
}

} // namespace
} // namespace balance
