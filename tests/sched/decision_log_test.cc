#include "sched/decision_log.hh"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "support/json.hh"

namespace balance
{
namespace
{

DecisionLog
sampleLog()
{
    DecisionLog log("bench0/sb3");
    DecisionStep &s0 = log.beginStep(2);
    s0.pick = 17;
    s0.candidates = {5, 9, 17};
    s0.rank = 1.25;
    s0.reorders = 1;
    s0.branches.push_back({0, 0.75, 6, 2, 3, DecisionOutcome::Selected});
    s0.branches.push_back(
        {1, 0.25, 9, 1, 0, DecisionOutcome::DelayedOk});
    s0.tradeoffs.push_back({1, 0, 10, 8, 9});
    s0.fullUpdates = 1;
    s0.lightUpdates = 3;

    DecisionStep &s1 = log.beginStep(3);
    s1.pick = 4;
    s1.candidates = {4};
    return log;
}

TEST(DecisionLog, RecordsStepsInOrder)
{
    DecisionLog log = sampleLog();
    ASSERT_EQ(log.steps().size(), 2u);
    EXPECT_EQ(log.label(), "bench0/sb3");
    EXPECT_EQ(log.steps()[0].cycle, 2);
    EXPECT_EQ(log.steps()[0].pick, OpId(17));
    EXPECT_EQ(log.steps()[1].cycle, 3);
}

TEST(DecisionLog, TextRenderingCarriesEveryField)
{
    std::string text = sampleLog().toText();
    EXPECT_NE(text.find("superblock bench0/sb3: 2 steps"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("cycle 2: pick 17 of 3 candidates [5 9 17]"),
              std::string::npos);
    EXPECT_NE(text.find("rank 1.25"), std::string::npos);
    EXPECT_NE(text.find("reorders 1"), std::string::npos);
    EXPECT_NE(text.find("branch 0"), std::string::npos);
    EXPECT_NE(text.find("-> selected"), std::string::npos);
    EXPECT_NE(text.find("-> delayedOK"), std::string::npos);
    EXPECT_NE(text.find("(vs branch 0: pair=10 static=8 dyn=9)"),
              std::string::npos);
    EXPECT_NE(text.find("updates: full=1 light=3"), std::string::npos);
}

TEST(DecisionLog, JsonLinesAreIndividuallyValid)
{
    std::string lines = sampleLog().toJsonLines();
    std::istringstream in(lines);
    std::string line;
    int n = 0;
    while (std::getline(in, line)) {
        EXPECT_TRUE(jsonLooksValid(line)) << line;
        ++n;
    }
    EXPECT_EQ(n, 2) << "one JSON document per step";
    EXPECT_NE(lines.find("\"outcome\":\"delayedOK\""),
              std::string::npos);
    EXPECT_NE(lines.find("\"pairBound\":10"), std::string::npos);
}

TEST(DecisionLog, EveryJsonLineCarriesJoinIdentity)
{
    // Attribution joins decision records to per-superblock rows on
    // (program, superblock) — never by file position — so EVERY
    // record must carry both fields (docs/REPORTING.md).
    DecisionLog log("gcc.sb7");
    log.beginStep(0).pick = 1;
    log.beginStep(1).pick = 2;
    std::string lines = log.toJsonLines();
    std::istringstream in(lines);
    std::string line;
    int n = 0;
    while (std::getline(in, line)) {
        EXPECT_NE(line.find("\"program\":\"gcc\""), std::string::npos)
            << line;
        EXPECT_NE(line.find("\"superblock\":\"gcc.sb7\""),
                  std::string::npos)
            << line;
        ++n;
    }
    EXPECT_EQ(n, 2);
}

TEST(DecisionLog, ProgramDerivesFromLabelPrefix)
{
    // Suite superblocks are named "<program>.sb<i>".
    DecisionLog suiteStyle("perl.sb12");
    EXPECT_EQ(suiteStyle.program(), "perl");
    EXPECT_EQ(suiteStyle.superblock(), "perl.sb12");

    // No dot: the whole label stands in for the program.
    DecisionLog bare("kernel");
    EXPECT_EQ(bare.program(), "kernel");
    EXPECT_EQ(bare.superblock(), "kernel");
}

TEST(DecisionLog, SetIdentityOverridesBothFields)
{
    DecisionLog log("placeholder");
    log.setIdentity("vortex", "vortex.sb3");
    EXPECT_EQ(log.program(), "vortex");
    EXPECT_EQ(log.superblock(), "vortex.sb3");
    EXPECT_EQ(log.label(), "vortex.sb3");
    log.beginStep(0).pick = 5;
    std::string lines = log.toJsonLines();
    EXPECT_NE(lines.find("\"program\":\"vortex\""), std::string::npos);
    EXPECT_NE(lines.find("\"superblock\":\"vortex.sb3\""),
              std::string::npos);
    EXPECT_EQ(lines.find("placeholder"), std::string::npos);
}

TEST(DecisionLog, OutcomeNamesAreStable)
{
    EXPECT_STREQ(decisionOutcomeName(DecisionOutcome::Selected),
                 "selected");
    EXPECT_STREQ(decisionOutcomeName(DecisionOutcome::Delayed),
                 "delayed");
    EXPECT_STREQ(decisionOutcomeName(DecisionOutcome::DelayedOk),
                 "delayedOK");
    EXPECT_STREQ(decisionOutcomeName(DecisionOutcome::Ignored),
                 "ignored");
}

TEST(DecisionLog, EmptyLogRendersHeaderOnly)
{
    DecisionLog log("empty");
    EXPECT_EQ(log.toText(), "superblock empty: 0 steps\n");
    EXPECT_EQ(log.toJsonLines(), "");
}

} // namespace
} // namespace balance
