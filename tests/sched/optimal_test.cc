#include "sched/optimal.hh"

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "sched/heuristics.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

TEST(Optimal, TrivialChain)
{
    SuperblockBuilder b("chain");
    OpId x = b.addOp(OpClass::IntAlu, 1);
    OpId f = b.addBranch(1.0);
    b.addEdge(x, f);
    Superblock sb = b.build();
    GraphContext ctx(sb);
    OptimalResult r = optimalSchedule(ctx, MachineModel::gp1());
    ASSERT_TRUE(r.proven);
    r.schedule.validate(sb, MachineModel::gp1());
    EXPECT_DOUBLE_EQ(r.wct, 2.0); // x@0, f@1, completion 2
}

TEST(Optimal, Figure2Optimum)
{
    // The need-aware optimum: side at 2, final at 3.
    Superblock sb = paperFigure2(0.4);
    GraphContext ctx(sb);
    OptimalResult r = optimalSchedule(ctx, MachineModel::gp2());
    ASSERT_TRUE(r.proven);
    r.schedule.validate(sb, MachineModel::gp2());
    EXPECT_EQ(r.schedule.issueOf(sb.branches()[0]), 2);
    EXPECT_EQ(r.schedule.issueOf(sb.branches()[1]), 3);
}

TEST(Optimal, Figure4CrossoverBelow)
{
    // P = 0.3 < 0.5: optimal delays the side exit -> (3, 4).
    Superblock sb = paperFigure4(0.3);
    GraphContext ctx(sb);
    OptimalResult r = optimalSchedule(ctx, MachineModel::gp2());
    ASSERT_TRUE(r.proven);
    EXPECT_NEAR(r.wct, 0.3 * 4 + 0.7 * 5, 1e-9);
    EXPECT_EQ(r.schedule.issueOf(sb.branches()[0]), 3);
    EXPECT_EQ(r.schedule.issueOf(sb.branches()[1]), 4);
}

TEST(Optimal, Figure4CrossoverAbove)
{
    // P = 0.8 > 0.5: optimal serves the side exit first -> (2, 5).
    Superblock sb = paperFigure4(0.8);
    GraphContext ctx(sb);
    OptimalResult r = optimalSchedule(ctx, MachineModel::gp2());
    ASSERT_TRUE(r.proven);
    EXPECT_NEAR(r.wct, 0.8 * 3 + 0.2 * 6, 1e-9);
    EXPECT_EQ(r.schedule.issueOf(sb.branches()[0]), 2);
    EXPECT_EQ(r.schedule.issueOf(sb.branches()[1]), 5);
}

TEST(Optimal, SeedPrunesButKeepsOptimum)
{
    Superblock sb = paperFigure4(0.3);
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    double heuristicWct =
        CriticalPathScheduler().run(ctx, m).wct(sb);
    OptimalOptions opts;
    opts.seedWct = heuristicWct;
    OptimalResult r = optimalSchedule(ctx, m, opts);
    ASSERT_TRUE(r.proven);
    EXPECT_NEAR(r.wct, 0.3 * 4 + 0.7 * 5, 1e-9);
}

TEST(Optimal, NodeBudgetGivesUpGracefully)
{
    Superblock sb = paperFigure1(0.3);
    GraphContext ctx(sb);
    OptimalOptions opts;
    opts.maxNodes = 3;
    OptimalResult r = optimalSchedule(ctx, MachineModel::gp2(), opts);
    EXPECT_FALSE(r.proven);
    EXPECT_LE(r.nodes, 4);
}

TEST(Optimal, SpecializedPools)
{
    SuperblockBuilder b("fs");
    OpId m0 = b.addOp(OpClass::Memory, 1);
    OpId m1 = b.addOp(OpClass::Memory, 1);
    OpId i0 = b.addOp(OpClass::IntAlu, 1);
    OpId f = b.addBranch(1.0);
    b.addEdge(m0, f);
    b.addEdge(m1, f);
    b.addEdge(i0, f);
    Superblock sb = b.build();
    GraphContext ctx(sb);
    OptimalResult r = optimalSchedule(ctx, MachineModel::fs4());
    ASSERT_TRUE(r.proven);
    r.schedule.validate(sb, MachineModel::fs4());
    // Memory ops serialize (one unit) -> branch at 2, completion 3.
    EXPECT_DOUBLE_EQ(r.wct, 3.0);
}

} // namespace
} // namespace balance
