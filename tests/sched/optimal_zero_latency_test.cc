/**
 * Zero-latency (anti dependence) edges: the exact oracle and every
 * forward scheduler serialize them to the next cycle, so they all
 * explore one schedule space; the bounds may still exploit
 * same-cycle placement (they are relaxations, so that is sound).
 */

#include <gtest/gtest.h>

#include "bounds/superblock_bounds.hh"
#include "core/balance_scheduler.hh"
#include "graph/builder.hh"
#include "sched/optimal.hh"

namespace balance
{
namespace
{

/** reader -> redefinition with a latency-0 anti edge. */
Superblock
antiDepSb()
{
    SuperblockBuilder b("anti");
    OpId def = b.addOp(OpClass::IntAlu, 1, "def");
    OpId reader = b.addOp(OpClass::IntAlu, 1, "reader");
    OpId redef = b.addOp(OpClass::IntAlu, 1, "redef");
    OpId exit = b.addBranch(1.0);
    b.addEdge(def, reader);
    b.addEdge(reader, redef, 0); // anti dependence
    b.addEdge(reader, exit);
    b.addEdge(redef, exit);
    return b.build();
}

TEST(OptimalZeroLatency, OracleSerializes)
{
    Superblock sb = antiDepSb();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp4();
    OptimalResult r = optimalSchedule(ctx, m);
    ASSERT_TRUE(r.proven);
    r.schedule.validate(sb, m);
    // def@0, reader@1, redef no earlier than the next cycle after
    // the reader under the shared serialization policy.
    EXPECT_GT(r.schedule.issueOf(2), r.schedule.issueOf(1));
}

TEST(OptimalZeroLatency, BalanceAgreesWithOracleSpace)
{
    Superblock sb = antiDepSb();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp4();
    Schedule s = BalanceScheduler().run(ctx, m);
    s.validate(sb, m);
    EXPECT_GT(s.issueOf(2), s.issueOf(1));
    OptimalResult r = optimalSchedule(ctx, m);
    ASSERT_TRUE(r.proven);
    EXPECT_GE(s.wct(sb), r.wct - 1e-9);
}

TEST(OptimalZeroLatency, ValidatorAllowsSameCycle)
{
    // The machine semantics (reads before writes) allow same-cycle
    // anti-dependent pairs; only the schedulers are conservative.
    Superblock sb = antiDepSb();
    MachineModel m = MachineModel::gp4();
    Schedule s(sb.numOps());
    s.setIssue(0, 0);
    s.setIssue(1, 1);
    s.setIssue(2, 1); // same cycle as the reader: legal
    s.setIssue(3, 2);
    EXPECT_NO_FATAL_FAILURE(s.validate(sb, m));
}

TEST(OptimalZeroLatency, BoundsRemainSound)
{
    Superblock sb = antiDepSb();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp4();
    WctBounds b = computeWctBounds(ctx, m);
    OptimalResult r = optimalSchedule(ctx, m);
    ASSERT_TRUE(r.proven);
    EXPECT_LE(b.tightest(), r.wct + 1e-9);
}

} // namespace
} // namespace balance
