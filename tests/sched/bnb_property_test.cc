/**
 * Randomized certified-gap invariants for the branch-and-bound
 * scheduler, across all six machine configurations and fixed
 * Rng::stream seeds. Two regimes per machine:
 *
 *  - a roomy budget, where most instances certify exactly;
 *  - a starvation budget (few hundred nodes, tiny chunks), where the
 *    search must degrade to an explicit gap certificate.
 *
 * In both, every result must satisfy: the incumbent is a feasible
 * complete schedule whose recomputed WCT matches the reported one;
 * the certified gap is non-negative; the node budget is a hard cap;
 * the certificate ladder RJ <= PW <= TW <= lowerBound <= wct is
 * monotone; proven results have a closed gap; and the certificate
 * renders as valid JSON.
 */

#include <gtest/gtest.h>

#include "bounds/superblock_bounds.hh"
#include "sched/bnb/bnb.hh"
#include "support/json.hh"
#include "support/parallel_for.hh"
#include "support/rng.hh"
#include "workload/generator.hh"

namespace balance
{
namespace
{

constexpr std::uint64_t kSeed = 0xb0bb5eed5ca1edULL;
constexpr int kInstances = 24;

/** Mid-size shape: enough ops that pruning and splitting matter. */
GeneratorParams
midParams()
{
    GeneratorParams params;
    params.blockGeoP = 0.45;
    params.opsPerBlockMu = 1.4;
    params.opsPerBlockSigma = 0.6;
    params.maxOps = 32;
    params.maxBlocks = 6;
    return params;
}

Superblock
instanceAt(std::size_t i)
{
    Rng rng = Rng::stream(kSeed, i);
    return generateSuperblock(rng, midParams(),
                              "bnbprop.sb" + std::to_string(i));
}

struct Outcome
{
    WctBounds bounds;
    BnbResult result;
    double recomputedWct = 0.0;
    bool scheduleComplete = false;
    bool certificateJson = false;
};

Outcome
runInstance(std::size_t i, const MachineModel &machine,
            const BnbOptions &opts)
{
    Superblock sb = instanceAt(i);
    GraphContext ctx(sb);
    BoundsToolkit toolkit(ctx, machine);

    Outcome out;
    out.bounds = computeWctBounds(ctx, machine);
    BnbRequest req;
    req.toolkit = &toolkit;
    req.staticLowerBound = out.bounds.tightest();
    out.result = bnbSchedule(ctx, machine, opts, req);
    out.scheduleComplete = out.result.schedule.complete();
    // Feasibility: validate panics on any dependence or resource
    // violation, so reaching the next line is the assertion.
    out.result.schedule.validate(sb, machine);
    out.recomputedWct = out.result.schedule.wct(sb);
    out.certificateJson = jsonLooksValid(out.result.certificate());
    return out;
}

void
checkInvariants(const Outcome &out, long long maxNodes,
                std::size_t instance)
{
    const BnbResult &r = out.result;
    SCOPED_TRACE("instance " + std::to_string(instance));

    // Incumbent feasibility and self-consistency.
    EXPECT_TRUE(out.scheduleComplete);
    EXPECT_EQ(r.wct, out.recomputedWct);

    // Certified gap is never negative and closes exactly when the
    // result claims proven.
    EXPECT_LE(r.lowerBound, r.wct + 1e-12);
    EXPECT_GE(r.gap(), -1e-12);
    if (r.proven) {
        EXPECT_LE(r.gap(), 1e-9);
    }
    if (r.exhausted) {
        EXPECT_TRUE(r.proven);
    }

    // The node budget is a hard cap, not a hint.
    EXPECT_LE(r.counters.nodesExpanded, maxNodes);
    EXPECT_GE(r.counters.nodesExpanded, 0);
    EXPECT_GE(r.counters.prunedByBound, 0);
    EXPECT_GE(r.counters.prunedByDominance, 0);
    EXPECT_GE(r.counters.incumbentUpdates, 0);
    EXPECT_GE(r.counters.tasksCompleted, 0);
    EXPECT_GE(r.counters.tasksAborted, 0);
    EXPECT_GE(r.counters.rounds, 0);

    // Certificate ladder: RJ <= PW <= TW <= lowerBound <= wct.
    EXPECT_LE(out.bounds.rj, out.bounds.pw + 1e-9);
    EXPECT_LE(out.bounds.pw, out.bounds.tw + 1e-9);
    EXPECT_LE(out.bounds.tw, r.lowerBound + 1e-9);
    EXPECT_LE(out.bounds.tightest(), r.lowerBound + 1e-9);

    EXPECT_TRUE(out.certificateJson);
}

class BnbProperty : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BnbProperty, RoomyBudgetCertifiesWithInvariants)
{
    MachineModel machine = MachineModel::byName(GetParam());
    BnbOptions opts;
    opts.maxNodes = 200000;
    opts.threads = 1; // the harness parallelizes over instances
    std::vector<Outcome> slots(kInstances);
    parallelFor(slots.size(), [&](std::size_t i) {
        slots[i] = runInstance(i, machine, opts);
    });

    int proven = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        checkInvariants(slots[i], opts.maxNodes, i);
        if (slots[i].result.proven)
            ++proven;
    }
    // The roomy budget must certify a solid majority of 32-op
    // instances (in practice: all of them).
    EXPECT_GE(proven, kInstances * 3 / 4);
}

TEST_P(BnbProperty, StarvationBudgetStillCertifiesAGap)
{
    MachineModel machine = MachineModel::byName(GetParam());
    BnbOptions opts;
    opts.maxNodes = 300;
    opts.taskChunk = 50;
    opts.splitTarget = 8;
    opts.threads = 1;
    std::vector<Outcome> slots(kInstances);
    parallelFor(slots.size(), [&](std::size_t i) {
        slots[i] = runInstance(i, machine, opts);
    });

    for (std::size_t i = 0; i < slots.size(); ++i)
        checkInvariants(slots[i], opts.maxNodes, i);
}

TEST_P(BnbProperty, NoSeedSearchStillReturnsFeasibleIncumbent)
{
    // With seeding off and a tiny budget, the emergency fallback
    // must still hand back a feasible schedule with a sane
    // certificate.
    MachineModel machine = MachineModel::byName(GetParam());
    BnbOptions opts;
    opts.maxNodes = 40;
    opts.taskChunk = 20;
    opts.splitTarget = 4;
    opts.threads = 1;
    opts.seedWithBest = false;
    std::vector<Outcome> slots(kInstances);
    parallelFor(slots.size(), [&](std::size_t i) {
        slots[i] = runInstance(i, machine, opts);
    });
    for (std::size_t i = 0; i < slots.size(); ++i)
        checkInvariants(slots[i], opts.maxNodes, i);
}

INSTANTIATE_TEST_SUITE_P(Machines, BnbProperty,
                         ::testing::Values("GP1", "GP2", "GP4", "FS4",
                                           "FS6", "FS8"));

} // namespace
} // namespace balance
