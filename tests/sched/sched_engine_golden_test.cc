/**
 * @file
 * Golden equivalence between the allocation-free scheduler engine and
 * the retained naive reference (sched/reference/reference.hh). The
 * engine promises *bitwise identical* schedules, weighted completion
 * times, and SchedulerStats — same issue cycles, same doubles, same
 * trip counts — across a seeded workload covering all eight program
 * profiles and the six paper machine configurations, with one
 * SchedScratch reused across every (superblock, machine) pair, and
 * for every thread count of the parallel evaluation driver.
 */

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/balance_scheduler.hh"
#include "eval/experiment.hh"
#include "machine/machine_model.hh"
#include "sched/best_scheduler.hh"
#include "sched/heuristics.hh"
#include "sched/reference/reference.hh"
#include "sched/sched_scratch.hh"
#include "workload/suite.hh"

namespace balance
{
namespace
{

void
expectScheduleIdentical(const Schedule &got, const Schedule &want,
                        const Superblock &sb, const std::string &where)
{
    ASSERT_EQ(got.numOps(), want.numOps()) << where;
    for (OpId v = 0; v < sb.numOps(); ++v) {
        ASSERT_EQ(got.issueOf(v), want.issueOf(v))
            << where << " op " << v;
    }
    // EXPECT_EQ on doubles is exact comparison: bitwise identity is
    // the contract, not closeness.
    EXPECT_EQ(got.wct(sb), want.wct(sb)) << where;
}

void
expectStatsIdentical(const SchedulerStats &got,
                     const SchedulerStats &want,
                     const std::string &where)
{
    EXPECT_EQ(got.decisions, want.decisions) << where;
    EXPECT_EQ(got.loopTrips, want.loopTrips) << where;
    EXPECT_EQ(got.cycles, want.cycles) << where;
    EXPECT_EQ(got.readySum, want.readySum) << where;
    EXPECT_EQ(got.fullUpdates, want.fullUpdates) << where;
    EXPECT_EQ(got.lightUpdates, want.lightUpdates) << where;
    EXPECT_EQ(got.selectionPasses, want.selectionPasses) << where;
    EXPECT_EQ(got.candidatesSum, want.candidatesSum) << where;
}

void
expectKeyIdentical(const std::vector<double> &got,
                   const std::vector<double> &want,
                   const std::string &where)
{
    ASSERT_EQ(got.size(), want.size()) << where;
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << where << " index " << i;
}

/** The reference Best envelope's primary lineup, in its order. */
std::vector<std::shared_ptr<const Scheduler>>
bestPrimaries()
{
    return {std::make_shared<SuccessiveRetirementScheduler>(),
            std::make_shared<CriticalPathScheduler>(),
            std::make_shared<GStarScheduler>(),
            std::make_shared<DhasyScheduler>()};
}

TEST(SchedEngineGolden, SuiteBitwiseIdenticalAcrossMachines)
{
    // All eight program profiles at a sampled scale; every machine
    // config from the paper. One SchedScratch reused across every
    // superblock — stale cached priority tables or grid memory bleed
    // between calls would show up as a mismatch here.
    std::vector<BenchmarkProgram> suite =
        buildSuite({0x5eedbeefcafe1995ULL, 0.005});
    ASSERT_EQ(suite.size(), 8u);

    std::vector<MachineModel> machines = MachineModel::paperConfigs();
    ASSERT_EQ(machines.size(), 6u);

    CriticalPathScheduler cp;
    SuccessiveRetirementScheduler sr;
    DhasyScheduler dhasy;
    GStarScheduler gstar;
    BestScheduler best(bestPrimaries());

    for (const MachineModel &m : machines) {
        SchedScratch scratch;
        for (const BenchmarkProgram &prog : suite) {
            ASSERT_FALSE(prog.superblocks.empty()) << prog.name;
            for (const Superblock &sb : prog.superblocks) {
                GraphContext ctx(sb);
                std::string where =
                    prog.name + "/" + sb.name() + "/" + m.name();
                std::vector<double> weights =
                    steeringWeights(sb, {});

                // The cached priority tables themselves.
                expectKeyIdentical(scratch.cpKey(ctx),
                                   sched_reference::criticalPathKey(ctx),
                                   where + " cpKey");
                expectKeyIdentical(
                    scratch.srKey(ctx),
                    sched_reference::successiveRetirementKey(ctx),
                    where + " srKey");
                expectKeyIdentical(
                    scratch.dhKey(ctx, weights),
                    sched_reference::dhasyKey(ctx, weights),
                    where + " dhKey");

                ScheduleRequest req;
                req.scratch = &scratch;

                struct Case
                {
                    const char *tag;
                    const Scheduler *engine;
                    Schedule ref;
                    SchedulerStats refStats;
                };
                std::vector<Case> cases;
                cases.push_back({"CP", &cp, {}, {}});
                cases.back().ref = sched_reference::listSchedule(
                    sb, m, sched_reference::criticalPathKey(ctx),
                    &cases.back().refStats);
                cases.push_back({"SR", &sr, {}, {}});
                cases.back().ref = sched_reference::listSchedule(
                    sb, m,
                    sched_reference::successiveRetirementKey(ctx),
                    &cases.back().refStats);
                cases.push_back({"DHASY", &dhasy, {}, {}});
                cases.back().ref = sched_reference::listSchedule(
                    sb, m, sched_reference::dhasyKey(ctx, weights),
                    &cases.back().refStats);
                cases.push_back({"G*", &gstar, {}, {}});
                cases.back().ref = sched_reference::gstarSchedule(
                    ctx, m, weights, &cases.back().refStats);
                cases.push_back({"Best", &best, {}, {}});
                cases.back().ref = sched_reference::bestSchedule(
                    ctx, m, weights, &cases.back().refStats);

                for (Case &c : cases) {
                    SchedulerStats engineStats;
                    req.stats = &engineStats;
                    Schedule got = c.engine->run(ctx, m, req);
                    got.validate(sb, m);
                    expectScheduleIdentical(got, c.ref, sb,
                                            where + " " + c.tag);
                    expectStatsIdentical(engineStats, c.refStats,
                                         where + " " + c.tag);
                }
            }
        }
    }
}

TEST(SchedEngineGolden, GridDedupActuallySkipsRuns)
{
    // The dedup memory must be doing real work (otherwise the perf
    // claim is vacuous) while the suite above pins correctness.
    std::vector<BenchmarkProgram> suite =
        buildSuite({0x5eedbeefcafe1995ULL, 0.005});
    const MachineModel m = MachineModel::gp4();
    SchedScratch scratch;
    BestScheduler best(bestPrimaries());

    for (const BenchmarkProgram &prog : suite) {
        for (const Superblock &sb : prog.superblocks) {
            GraphContext ctx(sb);
            ScheduleRequest req;
            req.scratch = &scratch;
            best.run(ctx, m, req);
        }
    }
    // Every grid point is either scheduled or deduplicated.
    long long total =
        scratch.stats.gridRuns + scratch.stats.gridSkipped;
    EXPECT_EQ(total % 121, 0) << "11x11 grid points per superblock";
    EXPECT_GT(scratch.stats.gridSkipped, 0);
    EXPECT_GT(scratch.stats.tableHits, 0);
    EXPECT_GT(scratch.highWaterBytes(), 0u);
}

TEST(SchedEngineGolden, ScratchVsNoScratchIdentity)
{
    // Passing a SchedScratch (and reusing it) must not change any
    // schedule or stat relative to the thread-local fallback — for
    // the grid-based Best, for Balance (RC bounds, the coreExt
    // extension), and for Help (DC mode, the dcLate buffers).
    std::vector<BenchmarkProgram> suite =
        buildSuite({0xfeedULL, 0.005});
    BestScheduler best(bestPrimaries());
    BalanceScheduler bal;
    HelpScheduler help;
    const Scheduler *schedulers[] = {&best, &bal, &help};

    for (const MachineModel &m :
         {MachineModel::gp4(), MachineModel::fs8()}) {
        SchedScratch scratch;
        for (const Superblock &sb : suite.front().superblocks) {
            GraphContext ctx(sb);
            std::string where = sb.name() + "/" + m.name();
            for (const Scheduler *s : schedulers) {
                SchedulerStats plainStats;
                ScheduleRequest plain;
                plain.stats = &plainStats;
                Schedule baseline = s->run(ctx, m, plain);

                // Twice through the same scratch: the second run
                // exercises every rebind/reset path.
                for (int round = 0; round < 2; ++round) {
                    SchedulerStats scratchStats;
                    ScheduleRequest withScratch;
                    withScratch.stats = &scratchStats;
                    withScratch.scratch = &scratch;
                    Schedule got = s->run(ctx, m, withScratch);
                    std::string tag = where + " " + s->name() +
                                      " round " +
                                      std::to_string(round);
                    expectScheduleIdentical(got, baseline, sb, tag);
                    expectStatsIdentical(scratchStats, plainStats,
                                         tag);
                }
            }
        }
    }
}

TEST(SchedEngineGolden, ThreadCountsBitwiseIdentical)
{
    // The full evaluation driver at --threads 1 and --threads N must
    // produce bitwise-identical per-superblock WCT vectors and
    // aggregate metrics: per-superblock scratches keep the engine's
    // caching invisible to the parallel schedule of work.
    std::vector<BenchmarkProgram> suite =
        buildSuite({0x5eedbeefcafe1995ULL, 0.005});
    HeuristicSet set = HeuristicSet::paperSet(true);

    for (const MachineModel &m :
         {MachineModel::gp4(), MachineModel::fs8()}) {
        std::vector<std::vector<double>> serialWcts, parallelWcts;
        PopulationMetrics serial = evaluatePopulation(
            suite, m, set, {},
            [&](const Superblock &, const SuperblockEval &eval) {
                serialWcts.push_back(eval.wct);
            },
            1);
        PopulationMetrics parallel = evaluatePopulation(
            suite, m, set, {},
            [&](const Superblock &, const SuperblockEval &eval) {
                parallelWcts.push_back(eval.wct);
            },
            0);

        ASSERT_EQ(serialWcts.size(), parallelWcts.size()) << m.name();
        for (std::size_t i = 0; i < serialWcts.size(); ++i) {
            ASSERT_EQ(serialWcts[i].size(), parallelWcts[i].size());
            for (std::size_t h = 0; h < serialWcts[i].size(); ++h) {
                EXPECT_EQ(serialWcts[i][h], parallelWcts[i][h])
                    << m.name() << " superblock " << i
                    << " heuristic " << h;
            }
        }
        EXPECT_EQ(serial.boundCycles, parallel.boundCycles);
        EXPECT_EQ(serial.nontrivialSlowdown,
                  parallel.nontrivialSlowdown);
        EXPECT_EQ(serial.optimalFraction, parallel.optimalFraction);
    }
}

} // namespace
} // namespace balance
