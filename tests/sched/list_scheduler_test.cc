#include "sched/list_scheduler.hh"

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "sched/priorities.hh"
#include "workload/generator.hh"

namespace balance
{
namespace
{

Superblock
makeDiamond()
{
    SuperblockBuilder b("diamond");
    OpId o0 = b.addOp(OpClass::IntAlu, 1);
    OpId o1 = b.addOp(OpClass::IntAlu, 1);
    OpId o2 = b.addOp(OpClass::IntAlu, 1);
    OpId f = b.addBranch(1.0);
    b.addEdge(o0, o1);
    b.addEdge(o0, o2);
    b.addEdge(o1, f);
    b.addEdge(o2, f);
    return b.build();
}

TEST(ListScheduler, RespectsDependences)
{
    Superblock sb = makeDiamond();
    std::vector<double> priority(4, 0.0);
    Schedule s = listSchedule(sb, MachineModel::gp2(), priority);
    s.validate(sb, MachineModel::gp2());
    EXPECT_EQ(s.issueOf(0), 0);
    EXPECT_EQ(s.issueOf(3), 2);
}

TEST(ListScheduler, PriorityOrdersWithinCycle)
{
    // Two independent ops on GP1: the higher priority goes first.
    SuperblockBuilder b("pair");
    b.addOp(OpClass::IntAlu, 1);
    b.addOp(OpClass::IntAlu, 1);
    b.addBranch(1.0);
    Superblock sb = b.build(true);

    Schedule s = listSchedule(sb, MachineModel::gp1(), {0.0, 5.0, 0.0});
    EXPECT_EQ(s.issueOf(1), 0);
    EXPECT_EQ(s.issueOf(0), 1);
}

TEST(ListScheduler, TieBreaksByProgramOrder)
{
    SuperblockBuilder b("tie");
    b.addOp(OpClass::IntAlu, 1);
    b.addOp(OpClass::IntAlu, 1);
    b.addBranch(1.0);
    Superblock sb = b.build(true);

    Schedule s = listSchedule(sb, MachineModel::gp1(), {1.0, 1.0, 0.0});
    EXPECT_EQ(s.issueOf(0), 0);
    EXPECT_EQ(s.issueOf(1), 1);
}

TEST(ListScheduler, HonorsLatencies)
{
    SuperblockBuilder b("lat");
    OpId ld = b.addOp(OpClass::Memory, 2);
    OpId use = b.addOp(OpClass::IntAlu, 1);
    OpId f = b.addBranch(1.0);
    b.addEdge(ld, use);
    b.addEdge(use, f);
    Superblock sb = b.build();

    Schedule s = listSchedule(sb, MachineModel::gp4(),
                              std::vector<double>(3, 0.0));
    EXPECT_EQ(s.issueOf(ld), 0);
    EXPECT_EQ(s.issueOf(use), 2);
    EXPECT_EQ(s.issueOf(f), 3);
}

TEST(ListScheduler, SpecializedPoolsConstrainClasses)
{
    SuperblockBuilder b("fs");
    b.addOp(OpClass::Memory, 1);
    b.addOp(OpClass::Memory, 1);
    b.addOp(OpClass::IntAlu, 1);
    b.addBranch(1.0);
    Superblock sb = b.build(true);

    // FS4 has one memory unit: the two memory ops serialize while
    // the int op shares cycle 0.
    Schedule s = listSchedule(sb, MachineModel::fs4(),
                              std::vector<double>(4, 0.0));
    s.validate(sb, MachineModel::fs4());
    EXPECT_EQ(std::min(s.issueOf(0), s.issueOf(1)), 0);
    EXPECT_EQ(std::max(s.issueOf(0), s.issueOf(1)), 1);
    EXPECT_EQ(s.issueOf(2), 0);
}

TEST(ListScheduler, ValidOnRandomPopulation)
{
    Rng rng(55);
    GeneratorParams params;
    for (int trial = 0; trial < 25; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "x" + std::to_string(trial));
        GraphContext ctx(sb);
        for (const MachineModel &m : MachineModel::paperConfigs()) {
            Schedule s =
                listSchedule(sb, m, criticalPathKey(ctx));
            s.validate(sb, m);
        }
    }
}

TEST(ListSchedulerSubset, SchedulesOnlySubset)
{
    Superblock sb = makeDiamond();
    GraphContext ctx(sb);
    DynBitset subset(4);
    subset.set(0);
    subset.set(1);
    auto issue = listScheduleSubset(sb, MachineModel::gp1(), subset,
                                    std::vector<double>(4, 0.0));
    EXPECT_EQ(issue[0], 0);
    EXPECT_EQ(issue[1], 1);
    EXPECT_EQ(issue[2], -1);
    EXPECT_EQ(issue[3], -1);
}

TEST(ListScheduler, StatsCountDecisions)
{
    Superblock sb = makeDiamond();
    SchedulerStats stats;
    listSchedule(sb, MachineModel::gp2(),
                 std::vector<double>(4, 0.0), &stats);
    EXPECT_EQ(stats.decisions, 4);
    EXPECT_GE(stats.loopTrips, 4);
}

} // namespace
} // namespace balance
