/**
 * ProgressTracker (support/progress.hh): phase lifecycle, the B&B
 * publication contract, snapshot JSON validity, and the disabled
 * default (instrumentation sees enabled() == false until something —
 * normally the debug server — turns the tracker on).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/json.hh"
#include "support/progress.hh"

namespace balance
{
namespace
{

TEST(Progress, PhaseLifecycle)
{
    ProgressTracker tracker;
    tracker.enable();
    PhaseProgress &eval = tracker.phase("eval");
    EXPECT_EQ(eval.total(), 0);
    EXPECT_FALSE(eval.active());

    eval.start(10);
    EXPECT_TRUE(eval.active());
    EXPECT_EQ(eval.total(), 10);
    EXPECT_EQ(eval.done(), 0);
    EXPECT_EQ(eval.starts(), 1);

    eval.tick();
    eval.tick(3);
    EXPECT_EQ(eval.done(), 4);
    eval.finish();
    EXPECT_FALSE(eval.active());
    EXPECT_EQ(eval.done(), 4) << "completed count survives finish()";

    // Re-registration returns the same handle; restart bumps the
    // generation and zeroes the completed count.
    PhaseProgress &again = tracker.phase("eval");
    EXPECT_EQ(&again, &eval);
    again.start(5);
    EXPECT_EQ(again.starts(), 2);
    EXPECT_EQ(again.done(), 0);
}

TEST(Progress, TicksFromManyThreadsSum)
{
    ProgressTracker tracker;
    tracker.enable();
    PhaseProgress &phase = tracker.phase("capture:gp4");
    phase.start(800);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&phase] {
            for (int i = 0; i < 100; ++i)
                phase.tick();
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(phase.done(), 800);
}

TEST(Progress, BnbPublication)
{
    ProgressTracker tracker;
    BnbProgress none = tracker.bnbProgress();
    EXPECT_EQ(none.searches, 0);
    EXPECT_LT(none.incumbent, 0.0) << "no incumbent yet";
    EXPECT_LT(none.certifiedFloor, 0.0);

    tracker.enable();
    tracker.publishBnb(100, 100, 2, 12.5, 10.0, false);
    BnbProgress mid = tracker.bnbProgress();
    EXPECT_EQ(mid.searches, 0) << "searches count completions only";
    EXPECT_EQ(mid.rounds, 2);
    EXPECT_EQ(mid.nodesExpanded, 100);
    EXPECT_EQ(mid.nodesTotal, 100);
    EXPECT_DOUBLE_EQ(mid.incumbent, 12.5);
    EXPECT_DOUBLE_EQ(mid.certifiedFloor, 10.0);

    tracker.publishBnb(250, 150, 3, 11.0, 11.0, true);
    BnbProgress done = tracker.bnbProgress();
    EXPECT_EQ(done.searches, 1);
    EXPECT_EQ(done.nodesExpanded, 250);
    EXPECT_EQ(done.nodesTotal, 250) << "deltas accumulate";
    EXPECT_DOUBLE_EQ(done.incumbent, 11.0);
}

TEST(Progress, SnapshotJsonShape)
{
    ProgressTracker tracker;
    tracker.enable();
    PhaseProgress &eval = tracker.phase("eval");
    eval.start(7);
    eval.tick(2);
    tracker.publishBnb(42, 42, 1, 9.0, 8.5, true);

    std::string doc = tracker.snapshotJson();
    EXPECT_TRUE(jsonLooksValid(doc)) << doc;
    for (const char *needle :
         {"\"enabled\":true", "\"phases\":", "\"name\":\"eval\"",
          "\"total\":7", "\"done\":2", "\"bnb\":",
          "\"nodes_expanded\":42", "\"certified_gap\":"})
        EXPECT_NE(doc.find(needle), std::string::npos)
            << needle << " missing from " << doc;
}

TEST(Progress, DisabledByDefaultAndResettable)
{
    ProgressTracker tracker;
    EXPECT_FALSE(tracker.enabled())
        << "instrumentation must see 'off' until a server enables it";
    tracker.enable();
    EXPECT_TRUE(tracker.enabled());
    tracker.phase("eval").start(3);
    tracker.publishBnb(5, 5, 1, 1.0, 1.0, true);
    tracker.reset();
    EXPECT_EQ(tracker.phase("eval").total(), 0);
    EXPECT_EQ(tracker.bnbProgress().nodesTotal, 0);
    tracker.disable();
    EXPECT_FALSE(tracker.enabled());
}

} // namespace
} // namespace balance
