#include "support/stats.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, TracksMoments)
{
    RunningStat s;
    s.add(2.0);
    s.add(-1.0);
    s.add(5.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleStat, MedianOddEven)
{
    SampleStat s;
    for (double v : {5.0, 1.0, 3.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    s.add(7.0);
    // Nearest-rank median of {1,3,5,7} is the 2nd element.
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleStat, Percentiles)
{
    SampleStat s;
    for (int i = 1; i <= 100; ++i)
        s.add(double(i));
    EXPECT_DOUBLE_EQ(s.percentile(1), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(90), 90.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SampleStat, InterleavedAddAndQuery)
{
    SampleStat s;
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
    s.add(0.0);
    s.add(20.0);
    EXPECT_DOUBLE_EQ(s.median(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(SurvivalCurve, WeightedFractions)
{
    SurvivalCurve c;
    c.add(0.0, 1.0);
    c.add(1.0, 1.0);
    c.add(10.0, 2.0);
    EXPECT_DOUBLE_EQ(c.totalWeight(), 4.0);
    auto f = c.fractionAtOrBelow({-1.0, 0.0, 1.0, 9.9, 10.0, 100.0});
    EXPECT_DOUBLE_EQ(f[0], 0.0);
    EXPECT_DOUBLE_EQ(f[1], 0.25);
    EXPECT_DOUBLE_EQ(f[2], 0.5);
    EXPECT_DOUBLE_EQ(f[3], 0.5);
    EXPECT_DOUBLE_EQ(f[4], 1.0);
    EXPECT_DOUBLE_EQ(f[5], 1.0);
}

TEST(SurvivalCurve, EmptyCurve)
{
    SurvivalCurve c;
    auto f = c.fractionAtOrBelow({0.0, 1.0});
    EXPECT_DOUBLE_EQ(f[0], 0.0);
    EXPECT_DOUBLE_EQ(f[1], 0.0);
}

} // namespace
} // namespace balance
