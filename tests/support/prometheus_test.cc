/**
 * Prometheus text exposition rendering (support/prometheus.hh): name
 * mapping, HELP/label escaping, cumulative-bucket monotonicity, and
 * the exact at-rest round-trip — `_count`/`_sum` in the exposition
 * equal the registry snapshot's merged values to the digit.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "support/metrics.hh"
#include "support/prometheus.hh"

namespace balance
{
namespace
{

/** Split @p text into lines, dropping the trailing empty one. */
std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

/** @return the value of the sample line starting with "@p name ". */
long long
sampleValue(const std::string &text, const std::string &name)
{
    for (const std::string &line : lines(text)) {
        if (line.rfind(name + " ", 0) == 0)
            return std::stoll(line.substr(name.size() + 1));
    }
    ADD_FAILURE() << "no sample line for " << name;
    return -1;
}

TEST(Prometheus, MetricNameMapping)
{
    EXPECT_EQ(promMetricName("bnb.nodes_expanded"),
              "balance_bnb_nodes_expanded");
    EXPECT_EQ(promMetricName("sched.best.grid_runs"),
              "balance_sched_best_grid_runs");
    // Colons are legal in exposition names and survive; anything
    // else outside [a-zA-Z0-9_] does not.
    EXPECT_EQ(promMetricName("a:b-c d/e"), "balance_a:b_c_d_e");
    EXPECT_EQ(promMetricName(""), "balance_");
}

TEST(Prometheus, HelpAndLabelEscaping)
{
    EXPECT_EQ(promEscapeHelp("plain"), "plain");
    EXPECT_EQ(promEscapeHelp("a\\b\nc"), "a\\\\b\\nc");
    EXPECT_EQ(promEscapeLabel("say \"hi\"\n\\"),
              "say \\\"hi\\\"\\n\\\\");
}

TEST(Prometheus, CountersAndGaugesRender)
{
    MetricRegistry reg;
    reg.counter("bounds.trips.lc").add(41);
    reg.counter("bounds.trips.lc").add(1);
    reg.gauge("sched.scratch.high_water_bytes").observeMax(1 << 20);

    std::string text = renderPrometheusText(reg);
    EXPECT_NE(text.find("# HELP balance_bounds_trips_lc Counter "
                        "bounds.trips.lc\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("# TYPE balance_bounds_trips_lc counter\n"),
              std::string::npos);
    EXPECT_EQ(sampleValue(text, "balance_bounds_trips_lc"), 42);
    EXPECT_NE(
        text.find(
            "# TYPE balance_sched_scratch_high_water_bytes gauge\n"),
        std::string::npos);
    EXPECT_EQ(
        sampleValue(text, "balance_sched_scratch_high_water_bytes"),
        1 << 20);
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndMonotone)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("eval.wct");
    for (long long v : {0, 1, 1, 3, 3, 3, 100, 5000})
        h.observe(v);

    std::string text = renderPrometheusText(reg);
    long long prev = -1;
    int bucketLines = 0;
    bool sawInf = false;
    for (const std::string &line : lines(text)) {
        if (line.rfind("balance_eval_wct_bucket{le=\"", 0) != 0)
            continue;
        ++bucketLines;
        long long v = std::stoll(line.substr(line.find("} ") + 2));
        EXPECT_GE(v, prev) << "buckets must be cumulative: " << line;
        prev = v;
        if (line.find("le=\"+Inf\"") != std::string::npos) {
            sawInf = true;
            EXPECT_EQ(v, h.count())
                << "+Inf bucket must equal the total count";
        }
    }
    EXPECT_GE(bucketLines, 2);
    EXPECT_TRUE(sawInf);
}

TEST(Prometheus, CountAndSumRoundTripExactly)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("bnb.nodes");
    long long expectSum = 0;
    for (long long v = 1; v <= 257; v += 8) {
        h.observe(v * 13);
        expectSum += v * 13;
    }

    MetricSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, h.count());
    EXPECT_EQ(snap.histograms[0].sum, expectSum);

    std::string text = renderPrometheusText(snap);
    EXPECT_EQ(sampleValue(text, "balance_bnb_nodes_count"),
              snap.histograms[0].count);
    EXPECT_EQ(sampleValue(text, "balance_bnb_nodes_sum"),
              snap.histograms[0].sum);
    // And against the live registry, at rest: identical.
    EXPECT_EQ(sampleValue(text, "balance_bnb_nodes_count"), h.count());
    EXPECT_EQ(sampleValue(text, "balance_bnb_nodes_sum"), h.sum());
}

TEST(Prometheus, EmptyHistogramStillWellFormed)
{
    MetricRegistry reg;
    reg.histogram("eval.empty");
    std::string text = renderPrometheusText(reg);
    EXPECT_NE(text.find("balance_eval_empty_bucket{le=\"+Inf\"} 0\n"),
              std::string::npos)
        << text;
    EXPECT_EQ(sampleValue(text, "balance_eval_empty_count"), 0);
    EXPECT_EQ(sampleValue(text, "balance_eval_empty_sum"), 0);
}

TEST(Prometheus, RegistrationOrderIsStable)
{
    MetricRegistry reg;
    reg.counter("z.second");
    reg.counter("a.first");
    std::string text = renderPrometheusText(reg);
    // Registration order, not lexicographic: z.second came first.
    EXPECT_LT(text.find("balance_z_second"),
              text.find("balance_a_first"));
}

} // namespace
} // namespace balance
