#include "support/trace.hh"

#include <gtest/gtest.h>

#include <string>

#include "support/json.hh"
#include "support/metrics.hh"
#include "support/parallel_for.hh"

namespace balance
{
namespace
{

/** Restore the global session to a pristine state around each test. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        TraceSession::global().disable();
        TraceSession::global().clear();
    }

    void
    TearDown() override
    {
        TraceSession::global().disable();
        TraceSession::global().clear();
    }
};

TEST_F(TraceTest, DisabledSpansRecordNothing)
{
    TraceSession &s = TraceSession::global();
    std::size_t before = s.bufferedEvents();
    {
        TraceSpan span("noop");
    }
    EXPECT_EQ(s.bufferedEvents(), before);
}

TEST_F(TraceTest, EnabledSpansLandInTheBuffer)
{
    TraceSession &s = TraceSession::global();
    s.enable();
    std::size_t before = s.bufferedEvents();
    {
        TraceSpan outer("outer", 7);
        TraceSpan inner("inner");
    }
    s.disable();
    EXPECT_EQ(s.bufferedEvents(), before + 2);
}

TEST_F(TraceTest, JsonIsValidAndCarriesTheSpanData)
{
    TraceSession &s = TraceSession::global();
    s.enable();
    {
        TraceSpan span("unit_span", 42);
    }
    s.disable();
    std::string doc = s.toJson();
    EXPECT_TRUE(jsonLooksValid(doc)) << doc;
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"unit_span\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"arg\":42"), std::string::npos);
    EXPECT_NE(doc.find("thread_name"), std::string::npos);
}

TEST_F(TraceTest, EmptySessionStillEmitsValidJson)
{
    std::string doc = TraceSession::global().toJson();
    EXPECT_TRUE(jsonLooksValid(doc)) << doc;
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
}

TEST_F(TraceTest, DirectRecordRoundTrips)
{
    TraceSession &s = TraceSession::global();
    s.enable();
    s.record("manual", 10, 5, -1);
    s.disable();
    std::string doc = s.toJson();
    EXPECT_NE(doc.find("\"manual\""), std::string::npos);
    EXPECT_NE(doc.find("\"ts\":10"), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":5"), std::string::npos);
    // arg = -1 means "no payload": no args object for this event.
    EXPECT_EQ(doc.find("\"arg\":-1"), std::string::npos);
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDropped)
{
    TraceSession &s = TraceSession::global();
    s.enable();
    const std::size_t extra = 10;
    for (std::size_t i = 0; i < TraceSession::ringCapacity + extra; ++i)
        s.record("spin", (std::int64_t)(i), 1, -1);
    s.disable();
    EXPECT_EQ(s.droppedEvents(), (long long)(extra));
    // The buffer holds the *latest* ringCapacity events: the oldest
    // surviving timestamp is exactly `extra`.
    std::string doc = s.toJson();
    EXPECT_TRUE(jsonLooksValid(doc)) << "huge doc omitted";
    EXPECT_EQ(doc.find("\"ts\":5,"), std::string::npos);
    EXPECT_NE(doc.find("\"ts\":10,"), std::string::npos);
    EXPECT_NE(doc.find("trace_ring_dropped"), std::string::npos);
}

TEST_F(TraceTest, RingOverflowTicksDroppedCounter)
{
    // Every overwritten span must surface in the metric registry as
    // trace.ring_dropped, so a run whose trace silently wrapped is
    // visible in the metrics snapshot (and gateable by the report
    // compare budget). The registry is process-global, so assert on
    // the delta.
    MetricRegistry &reg = MetricRegistry::global();
    long long before = reg.counter("trace.ring_dropped").value();

    TraceSession &s = TraceSession::global();
    s.enable();
    const std::size_t extra = 23;
    for (std::size_t i = 0; i < TraceSession::ringCapacity + extra; ++i)
        s.record("overflow", (std::int64_t)(i), 1, -1);
    s.disable();

    EXPECT_EQ(s.droppedEvents(), (long long)(extra));
    EXPECT_EQ(reg.counter("trace.ring_dropped").value() - before,
              (long long)(extra));
}

TEST_F(TraceTest, ClearDropsEverything)
{
    TraceSession &s = TraceSession::global();
    s.enable();
    s.record("gone", 0, 1, -1);
    s.disable();
    s.clear();
    EXPECT_EQ(s.bufferedEvents(), 0u);
    EXPECT_EQ(s.droppedEvents(), 0);
}

TEST_F(TraceTest, ConcurrentSpansAllSurvive)
{
    TraceSession &s = TraceSession::global();
    s.enable();
    constexpr std::size_t n = 512;
    parallelFor(n, [&](std::size_t i) {
        TraceSpan span("worker_span", (std::int64_t)(i));
    });
    s.disable();
    EXPECT_EQ(s.bufferedEvents(), n);
    std::string doc = s.toJson();
    EXPECT_TRUE(jsonLooksValid(doc));
    EXPECT_NE(doc.find("worker_span"), std::string::npos);
}

} // namespace
} // namespace balance
