#include "support/strings.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  hi "), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto v = split("a,,b,", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "");
    EXPECT_EQ(v[2], "b");
    EXPECT_EQ(v[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpties)
{
    auto v = splitWhitespace("  one\ttwo   three ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "one");
    EXPECT_EQ(v[1], "two");
    EXPECT_EQ(v[2], "three");
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("superblock x", "superblock"));
    EXPECT_FALSE(startsWith("sup", "superblock"));
    EXPECT_TRUE(startsWith("abc", ""));
}

TEST(Strings, ParseInt)
{
    long long v = 0;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-7", v));
    EXPECT_EQ(v, -7);
    EXPECT_FALSE(parseInt("4x", v));
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("3.5", v));
}

TEST(Strings, ParseDouble)
{
    double v = 0.0;
    EXPECT_TRUE(parseDouble("0.25", v));
    EXPECT_DOUBLE_EQ(v, 0.25);
    EXPECT_TRUE(parseDouble("-1e3", v));
    EXPECT_DOUBLE_EQ(v, -1000.0);
    EXPECT_FALSE(parseDouble("abc", v));
    EXPECT_FALSE(parseDouble("1.5x", v));
    EXPECT_FALSE(parseDouble("", v));
}

} // namespace
} // namespace balance
