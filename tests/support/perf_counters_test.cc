#include "support/perf_counters.hh"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "support/json.hh"
#include "support/parallel_for.hh"

namespace balance
{
namespace
{

/** Leave the global profiler off and empty on scope exit. */
struct ProfilerGuard
{
    ~ProfilerGuard()
    {
        PerfProfiler::global().disable();
        PerfProfiler::global().reset();
    }
};

TEST(PerfCounters, PhaseAndTierNamesAreStable)
{
    // The artifact schema keys on these strings; renames are schema
    // breaks and must show up here.
    EXPECT_STREQ(perfPhaseName(PerfPhase::PairSweep),
                 "bounds.pair_sweep");
    EXPECT_STREQ(perfPhaseName(PerfPhase::TripleSweep),
                 "bounds.triple_sweep");
    EXPECT_STREQ(perfPhaseName(PerfPhase::RjRelax),
                 "bounds.rj_relax");
    EXPECT_STREQ(perfPhaseName(PerfPhase::ListSched), "sched.list");
    EXPECT_STREQ(perfPhaseName(PerfPhase::BestGrid),
                 "sched.best_grid");
    EXPECT_STREQ(perfPhaseName(PerfPhase::Balance), "sched.balance");
    EXPECT_STREQ(perfPhaseName(PerfPhase::Bnb), "bnb.search");

    EXPECT_STREQ(perfTierName(PerfTier::Disabled), "off");
    EXPECT_STREQ(perfTierName(PerfTier::Hardware), "hardware");
    EXPECT_STREQ(perfTierName(PerfTier::Fallback), "fallback");
}

TEST(PerfCounters, DeltaClampsAtZero)
{
    PerfCounterValues a;
    PerfCounterValues b;
    a.cycles = 5;
    b.cycles = 9; // a counter that appears to run backwards
    b.wallNs = 3;
    PerfCounterValues d = PerfCounterValues::delta(a, b);
    EXPECT_EQ(d.cycles, 0u) << "never underflow to huge unsigned";
    EXPECT_EQ(d.wallNs, 0u);
    a.wallNs = 10;
    d = PerfCounterValues::delta(a, b);
    EXPECT_EQ(d.wallNs, 7u);
}

TEST(PerfCounters, DisabledRegionsRecordNothing)
{
    ProfilerGuard guard;
    PerfProfiler &prof = PerfProfiler::global();
    prof.disable();
    prof.reset();
    {
        PerfRegion r(PerfPhase::PairSweep);
    }
    PerfSnapshot snap = prof.snapshot();
    for (int p = 0; p < numPerfPhases; ++p)
        EXPECT_EQ(snap.phases[std::size_t(p)].entries, 0);
}

TEST(PerfCounters, EntriesAreExactAcrossThreads)
{
    ProfilerGuard guard;
    PerfProfiler &prof = PerfProfiler::global();
    prof.enable();
    EXPECT_TRUE(prof.enabled());
    EXPECT_NE(prof.tier(), PerfTier::Disabled);

    constexpr std::size_t n = 2000;
    auto entriesAfterRun = [&] {
        prof.reset();
        parallelFor(n, [](std::size_t i) {
            PerfRegion r(PerfPhase::RjRelax);
            if (i % 2 == 0) {
                PerfRegion nested(PerfPhase::ListSched);
            }
        });
        return prof.snapshot();
    };

    PerfSnapshot snap = entriesAfterRun();
    EXPECT_EQ(
        snap.phases[std::size_t(PerfPhase::RjRelax)].entries,
        (long long)(n));
    EXPECT_EQ(
        snap.phases[std::size_t(PerfPhase::ListSched)].entries,
        (long long)(n) / 2);
    EXPECT_EQ(
        snap.phases[std::size_t(PerfPhase::Balance)].entries, 0);

    // Exactness holds on repetition: no lost updates, no carryover.
    PerfSnapshot again = entriesAfterRun();
    for (int p = 0; p < numPerfPhases; ++p)
        EXPECT_EQ(again.phases[std::size_t(p)].entries,
                  snap.phases[std::size_t(p)].entries);
}

TEST(PerfCounters, SnapshotJsonKeepsFullSchemaOnEveryTier)
{
    ProfilerGuard guard;
    PerfProfiler &prof = PerfProfiler::global();
    prof.enable();
    prof.reset();
    {
        PerfRegion r(PerfPhase::Balance);
    }
    std::string doc = prof.snapshot().toJson();
    EXPECT_TRUE(jsonLooksValid(doc)) << doc;
    // Every phase is present even when unvisited, so downstream
    // tooling (compare, render) never branches on key existence.
    for (int p = 0; p < numPerfPhases; ++p) {
        std::string key = std::string("\"") +
                          perfPhaseName(PerfPhase(p)) + "\"";
        EXPECT_NE(doc.find(key), std::string::npos) << key;
    }
    for (const char *key :
         {"\"version\"", "\"tier\"", "\"multiplexed\"", "\"entries\"",
          "\"wall_ns\"", "\"task_clock_ns\"", "\"cycles\"",
          "\"instructions\"", "\"branches\"", "\"branch_misses\"",
          "\"cache_references\"", "\"cache_misses\"",
          "\"time_running_frac\"", "\"ipc\"", "\"cpi\"",
          "\"branch_miss_rate\"", "\"cache_miss_rate\""})
        EXPECT_NE(doc.find(key), std::string::npos) << key;
}

TEST(PerfCounters, EnvOverrideForcesFallbackSampler)
{
    ASSERT_EQ(setenv("BALANCE_PERF", "fallback", 1), 0);
    {
        PerfSampler sampler;
        EXPECT_EQ(sampler.tier(), PerfTier::Fallback);
        PerfCounterValues a = sampler.now();
        PerfCounterValues b = sampler.now();
        EXPECT_GE(b.wallNs, a.wallNs);
        EXPECT_EQ(b.cycles, 0u)
            << "fallback has no hardware columns";
    }
    unsetenv("BALANCE_PERF");
}

TEST(PerfCounters, ForcedFallbackSamplerSkipsProbe)
{
    PerfSampler sampler(PerfTier::Fallback);
    EXPECT_EQ(sampler.tier(), PerfTier::Fallback);
    PerfCounterValues a = sampler.now();
    PerfCounterValues b = sampler.now();
    EXPECT_GE(b.wallNs, a.wallNs);
    EXPECT_GE(b.taskClockNs, a.taskClockNs);
}

TEST(PerfCounters, SamplerNowIsMonotonic)
{
    PerfSampler sampler; // whatever tier this machine grants
    PerfCounterValues prev = sampler.now();
    for (int i = 0; i < 100; ++i) {
        PerfCounterValues cur = sampler.now();
        EXPECT_GE(cur.wallNs, prev.wallNs);
        EXPECT_GE(cur.cycles, prev.cycles);
        EXPECT_GE(cur.instructions, prev.instructions);
        prev = cur;
    }
}

} // namespace
} // namespace balance
