#include "support/metrics.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/json.hh"
#include "support/parallel_for.hh"

namespace balance
{
namespace
{

TEST(Counter, AccumulatesAcrossAdds)
{
    MetricRegistry reg;
    Counter &c = reg.counter("test.counter");
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    EXPECT_EQ(c.name(), "test.counter");
}

TEST(Counter, RegistryReturnsSameInstanceByName)
{
    MetricRegistry reg;
    Counter &a = reg.counter("same");
    Counter &b = reg.counter("same");
    EXPECT_EQ(&a, &b);
    a.add(7);
    EXPECT_EQ(b.value(), 7);
}

TEST(Gauge, SetAndObserveMax)
{
    MetricRegistry reg;
    Gauge &g = reg.gauge("g");
    g.set(10);
    EXPECT_EQ(g.value(), 10);
    g.observeMax(5);
    EXPECT_EQ(g.value(), 10) << "observeMax never lowers";
    g.observeMax(25);
    EXPECT_EQ(g.value(), 25);
}

TEST(Histogram, PowerOfTwoBuckets)
{
    EXPECT_EQ(Histogram::bucketOf(-5), 0);
    EXPECT_EQ(Histogram::bucketOf(0), 0);
    EXPECT_EQ(Histogram::bucketOf(1), 1);
    EXPECT_EQ(Histogram::bucketOf(2), 2);
    EXPECT_EQ(Histogram::bucketOf(3), 2);
    EXPECT_EQ(Histogram::bucketOf(4), 3);
    EXPECT_EQ(Histogram::bucketOf(1023), 10);
    EXPECT_EQ(Histogram::bucketOf(1024), 11);
    // Huge values clamp into the last bucket instead of overflowing.
    EXPECT_EQ(Histogram::bucketOf((1LL << 62)),
              Histogram::numBuckets - 1);
}

TEST(Histogram, CountSumAndBuckets)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("h");
    h.observe(0);
    h.observe(1);
    h.observe(3);
    h.observe(3);
    EXPECT_EQ(h.count(), 4);
    EXPECT_EQ(h.sum(), 7);
    std::vector<long long> b = h.buckets();
    EXPECT_EQ(b[0], 1);
    EXPECT_EQ(b[1], 1);
    EXPECT_EQ(b[2], 2);
}

TEST(Histogram, BucketUpperBounds)
{
    EXPECT_EQ(Histogram::bucketUpperBound(0), 0);
    EXPECT_EQ(Histogram::bucketUpperBound(-1), 0);
    EXPECT_EQ(Histogram::bucketUpperBound(1), 1);
    EXPECT_EQ(Histogram::bucketUpperBound(2), 3);
    EXPECT_EQ(Histogram::bucketUpperBound(10), 1023);
}

TEST(Histogram, PercentilesFromBuckets)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("p");
    EXPECT_EQ(h.percentile(0.5), 0) << "empty histogram";

    h.observe(1); // bucket 1
    h.observe(2); // bucket 2
    h.observe(4); // bucket 3
    h.observe(8); // bucket 4
    // Rank ceil(q * 4) in cumulative bucket order; the reported
    // quantile is the inclusive upper bound of the rank's bucket.
    EXPECT_EQ(h.percentile(0.25), 1); // rank 1 -> bucket 1
    EXPECT_EQ(h.percentile(0.5), 3);  // rank 2 -> bucket 2
    EXPECT_EQ(h.percentile(0.75), 7); // rank 3 -> bucket 3
    EXPECT_EQ(h.percentile(0.99), 15); // rank 4 -> bucket 4
    EXPECT_EQ(h.percentile(1.0), 15);
}

TEST(Histogram, PercentilesOverUniformRange)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("u");
    for (long long v = 1; v <= 1000; ++v)
        h.observe(v);
    // p50: rank 500; cumulative counts reach 511 at bucket 9
    // (values 256..511), so the quantile reports 2^9 - 1.
    EXPECT_EQ(h.percentile(0.5), 511);
    EXPECT_EQ(h.percentile(0.9), 1023);
    EXPECT_EQ(h.percentile(0.99), 1023);
}

TEST(Histogram, SnapshotCarriesDerivedPercentiles)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("lat");
    for (long long v = 1; v <= 100; ++v)
        h.observe(v);
    std::string doc = reg.snapshotJson();
    EXPECT_TRUE(jsonLooksValid(doc)) << doc;
    // The snapshot serializes the derived quantiles alongside
    // count/sum so downstream tooling never re-derives them.
    std::string p50 =
        "\"p50\":" + std::to_string(h.percentile(0.5));
    std::string p90 =
        "\"p90\":" + std::to_string(h.percentile(0.9));
    std::string p99 =
        "\"p99\":" + std::to_string(h.percentile(0.99));
    std::string p999 =
        "\"p999\":" + std::to_string(h.percentile(0.999));
    EXPECT_NE(doc.find(p50), std::string::npos) << doc;
    EXPECT_NE(doc.find(p90), std::string::npos) << doc;
    EXPECT_NE(doc.find(p99), std::string::npos) << doc;
    EXPECT_NE(doc.find(p999), std::string::npos) << doc;
    // Derivation happens at serialization: keys appear even for an
    // empty histogram, as zeros.
    MetricRegistry empty;
    empty.histogram("none");
    std::string emptyDoc = empty.snapshotJson();
    EXPECT_NE(emptyDoc.find("\"p50\":0"), std::string::npos)
        << emptyDoc;
    EXPECT_NE(emptyDoc.find("\"p999\":0"), std::string::npos)
        << emptyDoc;
}

TEST(Histogram, P999SeparatesExtremeTail)
{
    MetricRegistry reg;
    Histogram &h = reg.histogram("tail");
    // 999 fast observations and one 100x outlier: p99 stays in the
    // body's bucket while p999 must reach the outlier's.
    for (int i = 0; i < 999; ++i)
        h.observe(10);
    h.observe(1000);
    EXPECT_EQ(h.percentile(0.99), 15);
    EXPECT_EQ(h.percentile(0.999), 15);
    h.observe(1000); // now two outliers; rank passes into the tail
    EXPECT_GE(h.percentile(0.999), 1000);
    EXPECT_EQ(h.count(), 1001);
    EXPECT_EQ(h.sum(), 999 * 10 + 2000);
}

TEST(MetricRegistry, ResetZeroesKeepingRegistrations)
{
    MetricRegistry reg;
    reg.counter("c").add(3);
    reg.gauge("g").set(5);
    reg.histogram("h").observe(9);
    reg.reset();
    EXPECT_EQ(reg.counter("c").value(), 0);
    EXPECT_EQ(reg.gauge("g").value(), 0);
    EXPECT_EQ(reg.histogram("h").count(), 0);
    EXPECT_EQ(reg.histogram("h").sum(), 0);
}

TEST(MetricRegistry, SnapshotIsValidJsonInRegistrationOrder)
{
    MetricRegistry reg;
    reg.counter("z.second").add(2);
    reg.counter("a.first").add(1);
    reg.gauge("mid").set(-3);
    reg.histogram("spread").observe(5);

    std::string doc = reg.snapshotJson();
    EXPECT_TRUE(jsonLooksValid(doc)) << doc;
    // Registration order, not alphabetical.
    EXPECT_LT(doc.find("z.second"), doc.find("a.first"));
    EXPECT_NE(doc.find("\"counters\""), std::string::npos);
    EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
    EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
    EXPECT_NE(doc.find("\"mid\":-3"), std::string::npos);
}

TEST(MetricRegistry, SnapshotBytesStableAcrossEquivalentRuns)
{
    auto run = [] {
        MetricRegistry reg;
        reg.counter("runs").add(3);
        reg.histogram("sizes").observe(17);
        reg.gauge("peak").observeMax(12);
        return reg.snapshotJson();
    };
    EXPECT_EQ(run(), run());
}

TEST(MetricRegistry, ConcurrentAddsMergeExactly)
{
    MetricRegistry reg;
    Counter &c = reg.counter("parallel.adds");
    Histogram &h = reg.histogram("parallel.obs");
    constexpr std::size_t n = 10000;
    parallelFor(n, [&](std::size_t i) {
        c.add(1);
        h.observe((long long)(i % 7));
    });
    EXPECT_EQ(c.value(), (long long)(n));
    EXPECT_EQ(h.count(), (long long)(n));
    // Sharded sums are integral, so the merged totals are exact no
    // matter which worker performed which increment.
    long long expectedSum = 0;
    for (std::size_t i = 0; i < n; ++i)
        expectedSum += (long long)(i % 7);
    EXPECT_EQ(h.sum(), expectedSum);
}

TEST(MetricRegistryDeathTest, KindMismatchPanics)
{
    MetricRegistry reg;
    reg.counter("name");
    EXPECT_DEATH(reg.gauge("name"), "different kind");
}

} // namespace
} // namespace balance
