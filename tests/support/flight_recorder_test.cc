/**
 * The flight recorder (support/flight_recorder.hh): event recording,
 * ring wrap-around, the async-signal-safe dump format, FlightScope
 * phase nesting, and the crash path itself — a forked child dies on
 * SIGSEGV and must leave a crash-<pid>.txt naming the active phase
 * and the newest events.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "support/flight_recorder.hh"

namespace balance
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(FlightRecorder, DisabledRecordsNothing)
{
    FlightRecorder rec;
    rec.record(FlightEventType::Mark, "ignored", 1, 2);
    EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorder, RecordsEventsInOrder)
{
    FlightRecorder rec;
    rec.enable();
    rec.record(FlightEventType::Mark, "first", 1);
    rec.record(FlightEventType::Superblock, "second", 10, 3);
    auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_STREQ(events[0].label, "first");
    EXPECT_EQ(events[0].a, 1);
    EXPECT_EQ(events[1].type, FlightEventType::Superblock);
    EXPECT_EQ(events[1].a, 10);
    EXPECT_EQ(events[1].b, 3);
    EXPECT_LE(events[0].tsUs, events[1].tsUs);
}

TEST(FlightRecorder, RingWrapsKeepingNewest)
{
    FlightRecorder rec;
    rec.enable();
    const int total = FlightRecorder::ringCapacity + 50;
    for (int i = 0; i < total; ++i)
        rec.record(FlightEventType::Mark, "wrap", i);
    auto events = rec.snapshot();
    ASSERT_EQ(events.size(),
              std::size_t(FlightRecorder::ringCapacity));
    // Oldest surviving event is number total - capacity; newest is
    // total - 1; ordering within the slot is oldest to newest.
    EXPECT_EQ(events.front().a, total - FlightRecorder::ringCapacity);
    EXPECT_EQ(events.back().a, total - 1);
}

TEST(FlightRecorder, ThreadsGetDistinctSlots)
{
    FlightRecorder rec;
    rec.enable();
    rec.record(FlightEventType::Mark, "main", 0);
    std::thread other([&rec] {
        rec.record(FlightEventType::Mark, "worker", 1);
        rec.setThreadPhase("worker-phase");
    });
    other.join();
    auto events = rec.snapshot();
    EXPECT_EQ(events.size(), 2u);
}

TEST(FlightRecorder, DumpFormat)
{
    FlightRecorder rec;
    rec.enable();
    rec.setThreadPhase("bnb:search");
    rec.record(FlightEventType::BnbRound, "bnb", 123, 4);

    std::string path =
        "/tmp/balance_flight_dump." + std::to_string(getpid());
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    rec.dumpTo(fd);
    ::close(fd);

    std::string dump = slurp(path);
    std::remove(path.c_str());
    for (const char *needle :
         {"flight recorder", "active phase: bnb:search", "events: 1",
          "bnb_round", "a=123", "b=4"})
        EXPECT_NE(dump.find(needle), std::string::npos)
            << needle << " missing from:\n" << dump;
}

TEST(FlightRecorder, FlightScopeNestsAndRestores)
{
    FlightRecorder &rec = FlightRecorder::global();
    bool wasEnabled = rec.enabled();
    rec.enable();
    rec.clear();
    rec.setThreadPhase(nullptr);
    {
        FlightScope outer("outer", 1);
        EXPECT_STREQ(rec.threadPhase(), "outer");
        {
            FlightScope inner("inner", 2);
            EXPECT_STREQ(rec.threadPhase(), "inner");
        }
        EXPECT_STREQ(rec.threadPhase(), "outer");
    }
    EXPECT_EQ(rec.threadPhase(), nullptr);

    // enter/leave pairs, stack order.
    auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].type, FlightEventType::PhaseEnter);
    EXPECT_STREQ(events[0].label, "outer");
    EXPECT_EQ(events[1].type, FlightEventType::PhaseEnter);
    EXPECT_STREQ(events[1].label, "inner");
    EXPECT_EQ(events[2].type, FlightEventType::PhaseLeave);
    EXPECT_STREQ(events[2].label, "inner");
    EXPECT_EQ(events[3].type, FlightEventType::PhaseLeave);
    EXPECT_STREQ(events[3].label, "outer");

    rec.clear();
    if (!wasEnabled)
        rec.disable();
}

TEST(FlightRecorder, CrashDumpNamesActivePhaseAndEvents)
{
    std::string dir =
        "/tmp/balance_crash_test." + std::to_string(getpid());
    ASSERT_EQ(mkdir(dir.c_str(), 0777), 0) << strerror(errno);

    pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: crash-<pid>.txt lands in the cwd.
        if (chdir(dir.c_str()) != 0)
            _exit(10);
        installCrashHandlers();
        FlightRecorder &rec = FlightRecorder::global();
        rec.setThreadPhase("bnb:round");
        rec.record(FlightEventType::BnbRound, "bnb", 777, 3);
        ::raise(SIGSEGV);
        _exit(11); // unreachable: SA_RESETHAND re-raise kills us
    }

    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child must die by signal, status=" << status;
    EXPECT_EQ(WTERMSIG(status), SIGSEGV);

    std::string path =
        dir + "/crash-" + std::to_string(child) + ".txt";
    std::string report = slurp(path);
    ASSERT_FALSE(report.empty()) << "no crash report at " << path;
    for (const char *needle :
         {"fatal signal", "SIGSEGV", "active phase: bnb:round",
          "bnb_round", "a=777"})
        EXPECT_NE(report.find(needle), std::string::npos)
            << needle << " missing from:\n" << report;

    std::remove(path.c_str());
    rmdir(dir.c_str());
}

TEST(FlightRecorder, InstallIsIdempotent)
{
    installCrashHandlers();
    EXPECT_TRUE(crashHandlersInstalled());
    installCrashHandlers(); // second call is a no-op
    EXPECT_TRUE(crashHandlersInstalled());
    EXPECT_TRUE(FlightRecorder::global().enabled())
        << "installing the handlers turns the recorder on";
}

} // namespace
} // namespace balance
