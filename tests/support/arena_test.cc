#include "support/arena.hh"

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

namespace balance
{
namespace
{

TEST(ScratchArena, StartsEmpty)
{
    ScratchArena arena;
    EXPECT_EQ(arena.capacityBytes(), 0u);
}

TEST(ScratchArena, ZeroSizeAllocIsEmptySpan)
{
    ScratchArena arena;
    std::span<int> s = arena.alloc<int>(0);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(arena.capacityBytes(), 0u);
}

TEST(ScratchArena, SpansAreUsableAndDisjoint)
{
    ScratchArena arena(128);
    std::span<int> a = arena.alloc<int>(10);
    std::span<int> b = arena.alloc<int>(10);
    ASSERT_EQ(a.size(), 10u);
    ASSERT_EQ(b.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        a[std::size_t(i)] = i;
        b[std::size_t(i)] = 100 + i;
    }
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(a[std::size_t(i)], i);
        EXPECT_EQ(b[std::size_t(i)], 100 + i);
    }
}

TEST(ScratchArena, AlignmentRespected)
{
    ScratchArena arena(256);
    arena.alloc<char>(1); // misalign the bump pointer
    std::span<double> d = arena.alloc<double>(3);
    auto addr = reinterpret_cast<std::uintptr_t>(d.data());
    EXPECT_EQ(addr % alignof(double), 0u);

    arena.alloc<char>(3);
    std::span<std::int64_t> q = arena.alloc<std::int64_t>(2);
    addr = reinterpret_cast<std::uintptr_t>(q.data());
    EXPECT_EQ(addr % alignof(std::int64_t), 0u);
}

TEST(ScratchArena, ResetKeepsCapacity)
{
    ScratchArena arena(64);
    arena.alloc<int>(200); // forces growth past the first block
    std::size_t cap = arena.capacityBytes();
    EXPECT_GT(cap, 0u);
    arena.reset();
    EXPECT_EQ(arena.capacityBytes(), cap);
    // The high-water allocation fits again without growing.
    arena.alloc<int>(200);
    EXPECT_EQ(arena.capacityBytes(), cap);
}

TEST(ScratchArena, GrowsGeometricallyAcrossBlocks)
{
    ScratchArena arena(64);
    // Many small allocations spanning several blocks all stay live
    // until reset: writing through earlier spans after later allocs
    // must not corrupt them.
    std::vector<std::span<int>> spans;
    for (int i = 0; i < 50; ++i) {
        spans.push_back(arena.alloc<int>(17));
        for (int k = 0; k < 17; ++k)
            spans.back()[std::size_t(k)] = i * 1000 + k;
    }
    for (int i = 0; i < 50; ++i) {
        for (int k = 0; k < 17; ++k)
            EXPECT_EQ(spans[std::size_t(i)][std::size_t(k)],
                      i * 1000 + k);
    }
}

TEST(ScratchArena, OversizedRequestGetsOwnBlock)
{
    ScratchArena arena(64);
    std::span<int> big = arena.alloc<int>(100000);
    ASSERT_EQ(big.size(), 100000u);
    big[0] = 7;
    big[99999] = 9;
    EXPECT_EQ(big[0], 7);
    EXPECT_EQ(big[99999], 9);
}

TEST(ScratchArena, ReuseAfterResetReturnsSameMemory)
{
    ScratchArena arena(1 << 12);
    std::span<int> first = arena.alloc<int>(64);
    const int *p = first.data();
    arena.reset();
    std::span<int> second = arena.alloc<int>(64);
    // Same block, same offset: the whole point of the arena.
    EXPECT_EQ(second.data(), p);
}

} // namespace
} // namespace balance
