#include "support/thread_pool.hh"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "support/parallel_for.hh"

namespace balance
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    TaskGroup group(pool);
    for (int i = 0; i < 100; ++i)
        group.run([&] { count.fetch_add(1); });
    group.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleWorkerCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i)
        group.run([&] { count.fetch_add(1); });
    group.wait();
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WaitIsIdempotentAndReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    TaskGroup group(pool);
    group.run([&] { count.fetch_add(1); });
    group.wait();
    group.wait(); // nothing outstanding: returns immediately
    group.run([&] { count.fetch_add(1); });
    group.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, PropagatesTaskException)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    std::atomic<int> survivors{0};
    for (int i = 0; i < 8; ++i) {
        group.run([&, i] {
            if (i == 3)
                throw std::runtime_error("task 3 failed");
            survivors.fetch_add(1);
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    // wait() drained the group before rethrowing: every non-throwing
    // task ran to completion.
    EXPECT_EQ(survivors.load(), 7);
}

TEST(ThreadPool, FirstExceptionWinsAndGroupStaysUsable)
{
    ThreadPool pool(2);
    TaskGroup group(pool);
    group.run([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
    // The error was consumed; a fresh batch must succeed.
    std::atomic<int> ran{0};
    group.run([&] { ran.fetch_add(1); });
    group.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock)
{
    // A pool task spawns and waits on subtasks; the waiting worker
    // must help execute them. Run on a 1-worker pool, where any
    // blocking wait would deadlock immediately.
    ThreadPool pool(1);
    std::atomic<int> leaves{0};
    TaskGroup outer(pool);
    for (int i = 0; i < 4; ++i) {
        outer.run([&] {
            TaskGroup inner(pool);
            for (int j = 0; j < 8; ++j)
                inner.run([&] { leaves.fetch_add(1); });
            inner.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(leaves.load(), 32);
}

TEST(ThreadPool, DeeplyNestedTaskTree)
{
    ThreadPool pool(3);
    std::atomic<int> leaves{0};
    // Recursive fan-out: depth 4, branching 3 => 81 leaves.
    std::function<void(int)> spawn = [&](int depth) {
        if (depth == 0) {
            leaves.fetch_add(1);
            return;
        }
        TaskGroup group(pool);
        for (int i = 0; i < 3; ++i)
            group.run([&, depth] { spawn(depth - 1); });
        group.wait();
    };
    spawn(4);
    EXPECT_EQ(leaves.load(), 81);
}

TEST(ThreadPool, StressThousandsOfTinyTasks)
{
    ThreadPool pool(8);
    std::atomic<long> sum{0};
    TaskGroup group(pool);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        group.run([&sum, i] { sum.fetch_add(i); });
    group.wait();
    EXPECT_EQ(sum.load(), long(n) * (n - 1) / 2);
}

TEST(ThreadPool, GroupDestructorWaitsForMembers)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    {
        TaskGroup group(pool);
        for (int i = 0; i < 16; ++i)
            group.run([&] { done.fetch_add(1); });
        // No explicit wait: the destructor must block until all 16
        // members finished (otherwise they would race the counter's
        // destruction).
    }
    EXPECT_EQ(done.load(), 16);
}

TEST(ParallelFor, FillsEverySlotExactlyOnce)
{
    for (int threads : {1, 2, 4, 8}) {
        std::vector<int> hits(1000, 0);
        parallelFor(
            hits.size(), [&](std::size_t i) { ++hits[i]; }, threads);
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
            << "threads=" << threads;
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << i;
    }
}

TEST(ParallelFor, MatchesSerialResultBitwise)
{
    auto compute = [](int threads) {
        std::vector<double> slots(500);
        parallelFor(
            slots.size(),
            [&](std::size_t i) {
                double x = double(i) * 0.1;
                slots[i] = x * x / (x + 1.0);
            },
            threads);
        // In-order reduction, as the eval drivers do.
        double acc = 0.0;
        for (double v : slots)
            acc += v;
        return acc;
    };
    double serial = compute(1);
    for (int threads : {2, 3, 8})
        EXPECT_EQ(serial, compute(threads)) << "threads=" << threads;
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges)
{
    int ran = 0;
    parallelFor(0, [&](std::size_t) { ++ran; }, 4);
    EXPECT_EQ(ran, 0);
    std::atomic<int> one{0};
    parallelFor(1, [&](std::size_t) { one.fetch_add(1); }, 4);
    EXPECT_EQ(one.load(), 1);
}

TEST(ParallelFor, MoreThreadsThanHardwareStillCorrect)
{
    // Requests beyond the global pool size run on a dedicated pool.
    int requested = ThreadPool::hardwareThreads() * 4;
    std::atomic<long> sum{0};
    parallelFor(
        257, [&](std::size_t i) { sum.fetch_add(long(i)); }, requested);
    EXPECT_EQ(sum.load(), 257L * 256 / 2);
}

TEST(ParallelFor, PropagatesException)
{
    EXPECT_THROW(
        parallelFor(
            100,
            [](std::size_t i) {
                if (i == 42)
                    throw std::runtime_error("slot 42");
            },
            4),
        std::runtime_error);
}

} // namespace
} // namespace balance
