/**
 * @file
 * The JSON parser satellite of the report subsystem: round-trip
 * every document type the repo emits (metrics snapshots, bench
 * JSON, decision-log JSON lines, Chrome traces) through
 * parseJson/parseJsonLines, and pin the malformed-input behavior —
 * truncation, bad escapes, duplicate keys, the depth limit — with
 * position-accurate errors.
 */

#include "support/json.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sched/decision_log.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace balance
{
namespace
{

// ---------------------------------------------------------------
// DOM basics.

TEST(JsonValue, KindsAndAccessors)
{
    EXPECT_TRUE(JsonValue().isNull());
    EXPECT_TRUE(JsonValue::makeBool(true).asBool());
    EXPECT_EQ(JsonValue::makeInt(42).asInt(), 42);
    EXPECT_TRUE(JsonValue::makeInt(42).isNumber());
    EXPECT_DOUBLE_EQ(JsonValue::makeInt(42).asDouble(), 42.0);
    EXPECT_DOUBLE_EQ(JsonValue::makeDouble(1.5).asDouble(), 1.5);
    EXPECT_EQ(JsonValue::makeString("hi").asString(), "hi");
}

TEST(JsonValue, ObjectPreservesInsertionOrderAndOverwrites)
{
    JsonValue obj = JsonValue::makeObject();
    obj.set("z", JsonValue::makeInt(1));
    obj.set("a", JsonValue::makeInt(2));
    obj.set("z", JsonValue::makeInt(3)); // overwrite keeps position
    ASSERT_EQ(obj.size(), 2u);
    EXPECT_EQ(obj.members()[0].first, "z");
    EXPECT_EQ(obj.members()[1].first, "a");
    EXPECT_EQ(obj.get("z").asInt(), 3);
    EXPECT_EQ(obj.find("missing"), nullptr);
    EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
}

TEST(JsonValue, BuiltDomRoundTripsThroughDump)
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("name", JsonValue::makeString("run"));
    doc.set("ok", JsonValue::makeBool(true));
    doc.set("none", JsonValue::makeNull());
    JsonValue &arr = doc.set("data", JsonValue::makeArray());
    arr.append(JsonValue::makeInt(-7));
    arr.append(JsonValue::makeDouble(0.25));

    JsonParseResult r = parseJson(doc.dump());
    ASSERT_TRUE(r.ok()) << r.error.describe();
    EXPECT_TRUE(r.value == doc);
}

// ---------------------------------------------------------------
// Numbers: exact integers vs doubles.

TEST(JsonParser, IntegralTokensParseAsInt64Exactly)
{
    JsonParseResult r = parseJson("9223372036854775807");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value.isInt());
    EXPECT_EQ(r.value.asInt(), 9223372036854775807LL);

    r = parseJson("-9223372036854775808");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value.isInt());
    EXPECT_EQ(r.value.asInt(), -9223372036854775807LL - 1);
}

TEST(JsonParser, BeyondInt64FallsBackToDouble)
{
    JsonParseResult r = parseJson("9223372036854775808");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value.kind() == JsonValue::Kind::Double);
    EXPECT_DOUBLE_EQ(r.value.asDouble(), 9223372036854775808.0);
}

TEST(JsonParser, FractionsAndExponentsAreDoubles)
{
    EXPECT_TRUE(parseJson("1.5").value.kind() ==
                JsonValue::Kind::Double);
    JsonParseResult r = parseJson("1e3");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value.kind() == JsonValue::Kind::Double);
    EXPECT_DOUBLE_EQ(r.value.asDouble(), 1000.0);
}

// ---------------------------------------------------------------
// Strings and escapes.

TEST(JsonParser, EscapesDecode)
{
    JsonParseResult r =
        parseJson("\"a\\n\\t\\\\\\\"\\u0041\\u00e9\"");
    ASSERT_TRUE(r.ok()) << r.error.describe();
    // é is U+00E9 (é): two UTF-8 bytes, not a raw Latin-1 0xe9.
    EXPECT_EQ(r.value.asString(), "a\n\t\\\"A\xc3\xa9");
}

TEST(JsonParser, UnicodeEscapesDecodeToUtf8)
{
    // Two-byte (U+0416 Ж), three-byte (U+20AC €), and a surrogate
    // pair (U+1F600), all in one string.
    JsonParseResult r = parseJson("\"\\u0416 \\u20ac \\ud83d\\ude00\"");
    ASSERT_TRUE(r.ok()) << r.error.describe();
    EXPECT_EQ(r.value.asString(),
              "\xd0\x96 \xe2\x82\xac \xf0\x9f\x98\x80");
}

TEST(JsonWriter, NonAsciiStringsEscapeToPureAscii)
{
    // Raw UTF-8 in, \uXXXX escapes out: the document is pure ASCII
    // (hence trivially valid UTF-8) and decodes back byte-exactly.
    std::string original = "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80";
    JsonWriter w;
    w.value(original);
    EXPECT_EQ(w.str(), "\"caf\\u00e9 \\u20ac \\ud83d\\ude00\"");
    for (char c : w.str())
        EXPECT_LT((unsigned char)(c), 0x80u);
    EXPECT_TRUE(jsonLooksValid(w.str()));
    JsonParseResult r = parseJson(w.str());
    ASSERT_TRUE(r.ok()) << r.error.describe();
    EXPECT_EQ(r.value.asString(), original);
}

TEST(JsonParser, LowercaseEscapeDocumentsAreDumpStable)
{
    // parse -> dump reproduces the bytes of a document whose \u
    // escapes are lowercase (the form the writer emits), including
    // surrogate pairs.
    std::string doc = "{\"s\":\"\\u00e9\\u20ac\\ud83d\\ude00\"}";
    JsonParseResult r = parseJson(doc);
    ASSERT_TRUE(r.ok()) << r.error.describe();
    EXPECT_EQ(r.value.dump(), doc);
}

TEST(JsonParser, StringRoundTripsThroughWriterAndBack)
{
    std::string original = "tab\there \"quoted\" back\\slash\n";
    JsonWriter w;
    w.value(original);
    JsonParseResult r = parseJson(w.str());
    ASSERT_TRUE(r.ok()) << r.error.describe();
    EXPECT_EQ(r.value.asString(), original);
}

// ---------------------------------------------------------------
// Round-trip of every emitted document type.

TEST(JsonParser, MetricsSnapshotRoundTripsByteExact)
{
    MetricRegistry reg;
    reg.counter("bounds.trips.tw").add(49189414);
    reg.counter("sched.balance.loop_trips").add(302930);
    reg.gauge("bounds.scratch.high_water_bytes").observeMax(123456);
    Histogram &h = reg.histogram("sched.balance.decisions");
    h.observe(12);
    h.observe(700);

    std::string doc = reg.snapshotJson();
    JsonParseResult r = parseJson(doc);
    ASSERT_TRUE(r.ok()) << r.error.describe();

    // Counter values survive exactly (they parse as Int, not via a
    // double), so "bit for bit" comparisons downstream are sound.
    EXPECT_EQ(r.value.get("counters").get("bounds.trips.tw").asInt(),
              49189414);
    const JsonValue &hist =
        r.value.get("histograms").get("sched.balance.decisions");
    EXPECT_EQ(hist.get("count").asInt(), 2);
    // Exact count/sum plus the full derived-quantile ladder: every
    // field parses back as Int with its original value, p999
    // included (the tail quantile sits in the 700-observation's
    // power-of-two bucket, upper bound 1023).
    EXPECT_EQ(hist.get("sum").asInt(), 712);
    EXPECT_EQ(hist.get("p50").asInt(), h.percentile(0.5));
    EXPECT_EQ(hist.get("p90").asInt(), h.percentile(0.9));
    EXPECT_EQ(hist.get("p99").asInt(), h.percentile(0.99));
    EXPECT_EQ(hist.get("p999").asInt(), h.percentile(0.999));
    EXPECT_EQ(hist.get("p999").asInt(), 1023);

    // Snapshots are integer-only documents: the DOM re-serializes
    // them byte-identically.
    EXPECT_EQ(r.value.dump(), doc);
}

TEST(JsonParser, BenchStyleDocumentIsDumpStable)
{
    // The shape bounds_perf emits (doubles included): one parse ->
    // dump -> parse cycle must be a fixed point of the DOM (the
    // writer's %.12g is re-parse idempotent).
    JsonWriter w;
    w.beginObject().key("bench").value("bounds_perf");
    w.key("runs").beginArray();
    w.beginObject().key("name").value("pw").key("ms").value(1.25)
        .key("trips").value(150031).endObject();
    w.beginObject().key("name").value("tw").key("ms").value(0.3333333)
        .key("trips").value(49189414).endObject();
    w.endArray().endObject();

    JsonParseResult first = parseJson(w.str());
    ASSERT_TRUE(first.ok()) << first.error.describe();
    std::string dumped = first.value.dump();
    JsonParseResult second = parseJson(dumped);
    ASSERT_TRUE(second.ok()) << second.error.describe();
    EXPECT_TRUE(first.value == second.value);
    EXPECT_EQ(second.value.dump(), dumped);
}

TEST(JsonParser, DecisionLogLinesParseOneRecordPerStep)
{
    DecisionLog log("gcc.sb4");
    DecisionStep &s0 = log.beginStep(2);
    s0.pick = 17;
    s0.candidates = {5, 9, 17};
    s0.branches.push_back(
        {0, 0.75, 6, 2, 3, DecisionOutcome::Selected});
    s0.tradeoffs.push_back({1, 0, 10, 8, 9});
    log.beginStep(3).pick = 4;

    JsonParseError err;
    std::vector<JsonValue> records =
        parseJsonLines(log.toJsonLines(), &err);
    EXPECT_TRUE(err.message.empty()) << err.describe();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].get("program").asString(), "gcc");
    EXPECT_EQ(records[0].get("superblock").asString(), "gcc.sb4");
    EXPECT_EQ(records[0].get("cycle").asInt(), 2);
    EXPECT_EQ(records[0].get("candidates").size(), 3u);
    EXPECT_EQ(records[0].get("branches").at(0).get("outcome")
                  .asString(),
              "selected");
    EXPECT_EQ(records[0].get("tradeoffs").at(0).get("pairBound")
                  .asInt(),
              10);
    EXPECT_EQ(records[1].get("cycle").asInt(), 3);
}

TEST(JsonParser, TraceDocumentParses)
{
    TraceSession &s = TraceSession::global();
    s.disable();
    s.clear();
    s.enable();
    s.record("span_a", 10, 5, 42);
    s.disable();
    JsonParseResult r = parseJson(s.toJson());
    s.clear();
    ASSERT_TRUE(r.ok()) << r.error.describe();
    const JsonValue &events = r.value.get("traceEvents");
    ASSERT_TRUE(events.isArray());
    bool found = false;
    for (const JsonValue &e : events.elements()) {
        const JsonValue *name = e.find("name");
        if (name && name->isString() &&
            name->asString() == "span_a") {
            found = true;
            EXPECT_EQ(e.get("ts").asInt(), 10);
            EXPECT_EQ(e.get("dur").asInt(), 5);
        }
    }
    EXPECT_TRUE(found);
}

TEST(JsonParser, ParseJsonLinesSkipsBlankLinesAndReportsLine)
{
    JsonParseError err;
    std::vector<JsonValue> ok =
        parseJsonLines("{}\n\n  \n{\"a\":1}\n", &err);
    EXPECT_TRUE(err.message.empty());
    EXPECT_EQ(ok.size(), 2u);

    std::vector<JsonValue> bad =
        parseJsonLines("{}\n\n{\"a\":1}\nnot json\n", &err);
    EXPECT_EQ(bad.size(), 2u) << "records before the error survive";
    EXPECT_FALSE(err.message.empty());
    EXPECT_EQ(err.line, 4) << "absolute line number in the file";
}

// ---------------------------------------------------------------
// Malformed inputs: every rejection carries an accurate position.

TEST(JsonParser, TruncatedDocuments)
{
    JsonParseResult r = parseJson("{\"a\": 1");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("unterminated object"),
              std::string::npos)
        << r.error.describe();
    EXPECT_EQ(r.error.line, 1);
    EXPECT_EQ(r.error.column, 8);

    r = parseJson("[1, 2");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("unterminated array"),
              std::string::npos);

    r = parseJson("\"no close");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("unterminated string"),
              std::string::npos);

    r = parseJson("");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("unexpected end of input"),
              std::string::npos);
    EXPECT_EQ(r.error.line, 1);
    EXPECT_EQ(r.error.column, 1);
}

TEST(JsonParser, BadEscapes)
{
    JsonParseResult r = parseJson("\"a\\q\"");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("invalid escape"),
              std::string::npos);

    r = parseJson("\"\\u12GZ\"");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("bad \\u escape"),
              std::string::npos);

    r = parseJson("\"dangling\\");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("truncated escape"),
              std::string::npos);
}

TEST(JsonParser, MalformedSurrogatesRejectedWithPosition)
{
    // Lone high surrogate: nothing follows.
    JsonParseResult r = parseJson("\"\\ud83d\"");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("high surrogate"),
              std::string::npos)
        << r.error.describe();

    // High surrogate followed by a non-escape character.
    r = parseJson("\"\\ud83dx\"");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("high surrogate"),
              std::string::npos);

    // High surrogate followed by a non-surrogate escape.
    r = parseJson("\"\\ud83d\\u0041\"");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("low surrogate"),
              std::string::npos);

    // Lone low surrogate.
    r = parseJson("\"\\ude00\"");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("unpaired low surrogate"),
              std::string::npos);
    EXPECT_EQ(r.error.line, 1);

    // The structural checker agrees with the parser on all of these
    // and on their well-formed counterpart.
    EXPECT_FALSE(jsonLooksValid("\"\\ud83d\""));
    EXPECT_FALSE(jsonLooksValid("\"\\ud83dx\""));
    EXPECT_FALSE(jsonLooksValid("\"\\ud83d\\u0041\""));
    EXPECT_FALSE(jsonLooksValid("\"\\ude00\""));
    EXPECT_TRUE(jsonLooksValid("\"\\ud83d\\ude00\""));
}

TEST(JsonParser, DuplicateKeysRejectedAtTheSecondKey)
{
    JsonParseResult r = parseJson("{\"x\":1,\"x\":2}");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("duplicate key 'x'"),
              std::string::npos);
    // The error points at the offending (second) key, not at the
    // end of the object.
    EXPECT_EQ(r.error.column, 8);
}

TEST(JsonParser, DepthLimit)
{
    std::string deep(300, '[');
    deep += "1";
    deep.append(300, ']');
    JsonParseResult r = parseJson(deep);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("nesting deeper than 256"),
              std::string::npos);

    // A custom limit; the scalar itself occupies the final level,
    // so three arrays + the number is exactly depth four.
    EXPECT_FALSE(parseJson("[[[[1]]]]", 4).ok());
    EXPECT_TRUE(parseJson("[[[1]]]", 4).ok());
}

TEST(JsonParser, TrailingContentRejected)
{
    JsonParseResult r = parseJson("{} x");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.message.find("trailing content"),
              std::string::npos);
    EXPECT_EQ(r.error.column, 4);
}

TEST(JsonParser, MultiLineErrorPositionIsExact)
{
    // The '?' sits on line 3, column 8.
    std::string doc = "{\n  \"a\": 1,\n  \"b\": ?\n}\n";
    JsonParseResult r = parseJson(doc);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error.line, 3);
    EXPECT_EQ(r.error.column, 8);
    EXPECT_NE(r.error.describe().find("line 3, column 8"),
              std::string::npos)
        << r.error.describe();
}

TEST(JsonParser, AcceptsWhatTheStructuralCheckerAccepts)
{
    // parseJson mirrors the jsonLooksValid grammar: spot-check both
    // directions on tricky inputs.
    const char *good[] = {"0", "-0", "[]", "{}", "null",
                          " [ 1 , { \"k\" : [true, false] } ] "};
    for (const char *doc : good) {
        EXPECT_TRUE(jsonLooksValid(doc)) << doc;
        EXPECT_TRUE(parseJson(doc).ok()) << doc;
    }
    const char *bad[] = {"01", "+1", "1.", ".5", "[1,]", "{\"k\":}",
                         "'single'", "tru"};
    for (const char *doc : bad) {
        EXPECT_FALSE(jsonLooksValid(doc)) << doc;
        EXPECT_FALSE(parseJson(doc).ok()) << doc;
    }
}

} // namespace
} // namespace balance
