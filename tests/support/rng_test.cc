#include "support/rng.hh"

#include <gtest/gtest.h>

#include <cmath>

namespace balance
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniformInt(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
    }
    // Degenerate range.
    EXPECT_EQ(rng.uniformInt(3, 3), 3);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 5000; ++i)
        ++hits[std::size_t(rng.uniformInt(0, 9))];
    for (int h : hits)
        EXPECT_GT(h, 300); // expectation 500 each
}

TEST(Rng, UniformDoubleInUnit)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniformDouble();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgesAndMean)
{
    Rng rng(17);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, GeometricMean)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        auto g = rng.geometric(0.25);
        EXPECT_GE(g, 0);
        sum += double(g);
    }
    // Mean of failures-before-success = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, NormalMoments)
{
    Rng rng(23);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.06);
}

TEST(Rng, LogNormalPositive)
{
    Rng rng(29);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.logNormal(1.0, 0.5), 0.0);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(31);
    std::vector<double> w = {0.0, 1.0, 3.0};
    std::vector<int> hits(3, 0);
    for (int i = 0; i < 8000; ++i)
        ++hits[rng.weightedIndex(w)];
    EXPECT_EQ(hits[0], 0);
    EXPECT_NEAR(double(hits[2]) / hits[1], 3.0, 0.4);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(37);
    std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(41);
    Rng childA = parent.fork();
    Rng childB = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += childA.next() == childB.next();
    EXPECT_LT(same, 4);
}

} // namespace
} // namespace balance
