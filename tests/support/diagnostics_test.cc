#include "support/diagnostics.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

TEST(Warn, WritesPrefixedMessageToStderr)
{
    ::testing::internal::CaptureStderr();
    warn("resource table looks odd");
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(err, "warn: resource table looks odd\n");
}

TEST(Warn, StreamsArbitraryMessages)
{
    ::testing::internal::CaptureStderr();
    warn(detail::concat("value ", 42, " out of range [", 0.5, ", ",
                        true, ")"));
    std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(err, "warn: value 42 out of range [0.5, 1)\n");
}

TEST(DiagnosticsDeathTest, PanicAbortsWithMessageAndLocation)
{
    EXPECT_DEATH(bsPanic("invariant ", 7, " broken"),
                 "panic: invariant 7 broken(.|\n)*diagnostics_test");
}

TEST(DiagnosticsDeathTest, AssertFailureRoutesThroughPanic)
{
    int widths = -1;
    EXPECT_DEATH(bsAssert(widths >= 0, "bad widths ", widths),
                 "assertion failed: widths >= 0 bad widths -1");
}

TEST(DiagnosticsDeathTest, AssertPassesSilently)
{
    // Must not abort nor print.
    ::testing::internal::CaptureStderr();
    bsAssert(2 + 2 == 4, "arithmetic");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(DiagnosticsDeathTest, FatalExitsCleanlyWithStatusOne)
{
    EXPECT_EXIT(bsFatal("cannot open '", "input.sb", "'"),
                ::testing::ExitedWithCode(1),
                "fatal: cannot open 'input.sb'");
}

} // namespace
} // namespace balance
