#include "support/bitset.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

TEST(DynBitset, StartsEmpty)
{
    DynBitset s(100);
    EXPECT_EQ(s.size(), 100u);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(s.test(i));
}

TEST(DynBitset, SetResetTest)
{
    DynBitset s(130); // spans three words
    s.set(0);
    s.set(63);
    s.set(64);
    s.set(129);
    EXPECT_TRUE(s.test(0));
    EXPECT_TRUE(s.test(63));
    EXPECT_TRUE(s.test(64));
    EXPECT_TRUE(s.test(129));
    EXPECT_FALSE(s.test(1));
    EXPECT_EQ(s.count(), 4u);
    s.reset(63);
    EXPECT_FALSE(s.test(63));
    EXPECT_EQ(s.count(), 3u);
}

TEST(DynBitset, SetAllRespectsUniverse)
{
    DynBitset s(70);
    s.setAll();
    EXPECT_EQ(s.count(), 70u);
    s.clearAll();
    EXPECT_TRUE(s.empty());
}

TEST(DynBitset, UnionIntersectionDifference)
{
    DynBitset a(80);
    DynBitset b(80);
    a.set(1);
    a.set(70);
    b.set(70);
    b.set(3);

    DynBitset u = a | b;
    EXPECT_EQ(u.count(), 3u);
    EXPECT_TRUE(u.test(1));
    EXPECT_TRUE(u.test(3));
    EXPECT_TRUE(u.test(70));

    DynBitset i = a & b;
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(70));

    DynBitset d = a;
    d.subtract(b);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_TRUE(d.test(1));
}

TEST(DynBitset, IntersectsAndSubset)
{
    DynBitset a(64);
    DynBitset b(64);
    a.set(10);
    EXPECT_FALSE(a.intersects(b));
    b.set(10);
    EXPECT_TRUE(a.intersects(b));
    EXPECT_TRUE(a.isSubsetOf(b));
    a.set(11);
    EXPECT_FALSE(a.isSubsetOf(b));
    EXPECT_TRUE(b.isSubsetOf(a));
}

TEST(DynBitset, FindFirstWalksWords)
{
    DynBitset s(200);
    EXPECT_EQ(s.findFirst(), 200u);
    s.set(5);
    s.set(150);
    EXPECT_EQ(s.findFirst(), 5u);
    EXPECT_EQ(s.findFirst(6), 150u);
    EXPECT_EQ(s.findFirst(151), 200u);
}

TEST(DynBitset, ForEachAndToIndices)
{
    DynBitset s(100);
    s.set(2);
    s.set(64);
    s.set(99);
    std::vector<std::size_t> seen;
    s.forEach([&](std::size_t i) { seen.push_back(i); });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], 2u);
    EXPECT_EQ(seen[1], 64u);
    EXPECT_EQ(seen[2], 99u);

    auto idx = s.toIndices();
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx[2], 99u);
}

TEST(DynBitset, EqualityIncludesUniverse)
{
    DynBitset a(10);
    DynBitset b(10);
    EXPECT_EQ(a, b);
    a.set(3);
    EXPECT_FALSE(a == b);
    b.set(3);
    EXPECT_EQ(a, b);
    DynBitset c(11);
    c.set(3);
    EXPECT_FALSE(a == c);
}

} // namespace
} // namespace balance
