/**
 * The diagnostics HTTP server (support/debug_server.hh): ephemeral
 * port binding, every endpoint's status and content type, unknown
 * paths, the HTTP framing itself (a raw-socket client, no libcurl),
 * and idempotent stop.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "support/debug_server.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/progress.hh"

namespace balance
{
namespace
{

/** One blocking HTTP/1.1 GET against 127.0.0.1:@p port. */
std::string
httpGet(int port, const std::string &path)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return "";
    }
    std::string req = "GET " + path + " HTTP/1.1\r\n"
                      "Host: 127.0.0.1\r\n"
                      "Connection: close\r\n\r\n";
    ::send(fd, req.data(), req.size(), 0);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, std::size_t(n));
    ::close(fd);
    return resp;
}

/** @return the response body (after the blank line). */
std::string
bodyOf(const std::string &resp)
{
    std::size_t pos = resp.find("\r\n\r\n");
    return pos == std::string::npos ? "" : resp.substr(pos + 4);
}

TEST(DebugServer, BindsEphemeralPortAndServesHealth)
{
    DebugServer server;
    DebugServerOptions opts;
    opts.port = 0;
    ASSERT_TRUE(server.start(opts));
    EXPECT_TRUE(server.active());
    EXPECT_GT(server.port(), 0);
    EXPECT_EQ(server.address(), "http://127.0.0.1:" +
                                    std::to_string(server.port()));

    std::string resp = httpGet(server.port(), "/healthz");
    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
    EXPECT_NE(resp.find("Content-Length: 3"), std::string::npos);
    EXPECT_EQ(bodyOf(resp), "ok\n");
    server.stop();
    EXPECT_FALSE(server.active());
}

TEST(DebugServer, MetricsEndpointSpeaksExpositionFormat)
{
    MetricRegistry::global().counter("debug_server_test.hits").add(5);
    DebugServer server;
    DebugServerOptions opts;
    ASSERT_TRUE(server.start(opts));
    std::string resp = httpGet(server.port(), "/metrics");
    server.stop();

    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(resp.find(
                  "Content-Type: text/plain; version=0.0.4; "
                  "charset=utf-8"),
              std::string::npos)
        << resp;
    std::string body = bodyOf(resp);
    EXPECT_NE(body.find("# TYPE balance_debug_server_test_hits "
                        "counter"),
              std::string::npos)
        << body;
    EXPECT_NE(body.find("balance_debug_server_test_hits 5"),
              std::string::npos);
}

TEST(DebugServer, ProgressEndpointServesTrackerJson)
{
    DebugServer server;
    DebugServerOptions opts;
    ASSERT_TRUE(server.start(opts));
    // start() must have enabled the global tracker.
    EXPECT_TRUE(ProgressTracker::global().enabled());
    ProgressTracker::global().phase("debug-server-test").start(3);

    std::string resp = httpGet(server.port(), "/progress");
    server.stop();
    EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(resp.find("Content-Type: application/json"),
              std::string::npos);
    std::string body = bodyOf(resp);
    EXPECT_TRUE(jsonLooksValid(body)) << body;
    EXPECT_NE(body.find("\"debug-server-test\""), std::string::npos);
}

TEST(DebugServer, TraceAndHwCountersAreValidJson)
{
    DebugServer server;
    DebugServerOptions opts;
    ASSERT_TRUE(server.start(opts));
    for (const char *path : {"/trace", "/hwcounters"}) {
        std::string resp = httpGet(server.port(), path);
        EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos)
            << path;
        EXPECT_TRUE(jsonLooksValid(bodyOf(resp)))
            << path << ": " << bodyOf(resp);
    }
    server.stop();
}

TEST(DebugServer, UnknownPathIs404AndBadMethodIs405)
{
    DebugServer server;
    DebugServerOptions opts;
    ASSERT_TRUE(server.start(opts));
    EXPECT_NE(httpGet(server.port(), "/nope").find("HTTP/1.1 404"),
              std::string::npos);

    // Raw POST through the same socket path.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char *req = "POST /metrics HTTP/1.1\r\n\r\n";
    ::send(fd, req, std::strlen(req), 0);
    std::string resp;
    char buf[1024];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, std::size_t(n));
    ::close(fd);
    EXPECT_NE(resp.find("HTTP/1.1 405"), std::string::npos) << resp;
    server.stop();
}

/** Raw bytes in, full response out, against 127.0.0.1:@p port. */
std::string
rawExchange(int port, const std::string &wire)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return "";
    }
    if (!wire.empty())
        ::send(fd, wire.data(), wire.size(), 0);
    std::string resp;
    char buf[1024];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, std::size_t(n));
    ::close(fd);
    return resp;
}

// Regression: a garbage request line used to come back as 404 (the
// unparsed target fell through to the not-found branch). Protocol
// violations are the client's fault and must say so: 400.
TEST(DebugServer, MalformedRequestLineIs400)
{
    DebugServer server;
    DebugServerOptions opts;
    ASSERT_TRUE(server.start(opts));
    EXPECT_NE(rawExchange(server.port(), "GARBAGE\r\n\r\n")
                  .find("HTTP/1.1 400"),
              std::string::npos);
    // No HTTP version at all -> still 400, not 404.
    EXPECT_NE(rawExchange(server.port(), "GET /healthz\r\n\r\n")
                  .find("HTTP/1.1 400"),
              std::string::npos);
    // Unknown paths keep their 404.
    EXPECT_NE(httpGet(server.port(), "/nope").find("HTTP/1.1 404"),
              std::string::npos);
    server.stop();
}

// Regression: serveConnection used to block in recv() forever, so one
// stalled client pinned a handler thread for the process lifetime.
// With the poll() deadline the server answers 408 and moves on.
TEST(DebugServer, StallingClientGets408AndDoesNotWedgeServer)
{
    DebugServer server;
    DebugServerOptions opts;
    opts.recvTimeoutMs = 200;
    ASSERT_TRUE(server.start(opts));

    // Half a request line, then silence: the deadline must fire.
    std::string resp = rawExchange(server.port(), "GET /heal");
    EXPECT_NE(resp.find("HTTP/1.1 408"), std::string::npos) << resp;

    // A connection that never sends a byte times out the same way,
    // and the handler thread it occupied is free to serve the next
    // request immediately afterwards.
    EXPECT_NE(rawExchange(server.port(), "").find("HTTP/1.1 408"),
              std::string::npos);
    EXPECT_NE(httpGet(server.port(), "/healthz")
                  .find("HTTP/1.1 200 OK"),
              std::string::npos);
    server.stop();
}

TEST(DebugServer, StopIsIdempotentAndRestartable)
{
    DebugServer server;
    DebugServerOptions opts;
    ASSERT_TRUE(server.start(opts));
    int firstPort = server.port();
    server.stop();
    server.stop(); // no-op

    ASSERT_TRUE(server.start(opts));
    EXPECT_GT(server.port(), 0);
    EXPECT_NE(server.port(), 0);
    server.stop();
    (void)firstPort;
}

TEST(DebugServer, HandlePathDispatch)
{
    int status = 0;
    std::string type;
    EXPECT_EQ(DebugServer::handlePath("/healthz", status, type),
              "ok\n");
    EXPECT_EQ(status, 200);
    DebugServer::handlePath("/metrics", status, type);
    EXPECT_EQ(type, "text/plain; version=0.0.4; charset=utf-8");
    DebugServer::handlePath("/definitely-not-a-route", status, type);
    EXPECT_EQ(status, 404);
}

} // namespace
} // namespace balance
