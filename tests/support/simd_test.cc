/**
 * @file
 * The SIMD shim and kernel tables: lane ops behave as specified,
 * every compiled table matches the scalar reference bit for bit on
 * adversarial lengths (0, 1, width-1, width, width+1, and longer),
 * masked tails never write or read past n, and the epoch scan's
 * index doubles as the movemask-popcount probe-trip reconstruction.
 */

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "support/simd.hh"
#include "support/simd_kernels.hh"

namespace balance
{
namespace
{

using simd::F64x4;
using simd::I32x8;

// Lengths straddling both vector widths (8 x i32, 4 x f64): empty,
// single, width +/- 1, multiples, and a long non-multiple.
const std::vector<int> lengths = {0, 1, 3, 4, 5, 7, 8, 9, 16, 17, 63,
                                  64, 65, 200};

TEST(SimdShim, LaneMinMaxSelect)
{
    I32x8 a = {5, -3, 7, 0, -8, 2, 100, -1};
    I32x8 b = {4, -2, 7, 1, -9, 3, -100, -1};
    I32x8 mn = simd::min(a, b);
    I32x8 mx = simd::max(a, b);
    for (int i = 0; i < simd::i32Lanes; ++i) {
        EXPECT_EQ(mn[i], std::min(a[i], b[i]));
        EXPECT_EQ(mx[i], std::max(a[i], b[i]));
    }
    I32x8 mask = a > b; // lanes 0-indexed: {1,0,0,0,1,0,1,0} true
    I32x8 sel = simd::select(mask, a, b);
    for (int i = 0; i < simd::i32Lanes; ++i)
        EXPECT_EQ(sel[i], a[i] > b[i] ? a[i] : b[i]);
}

TEST(SimdShim, Mask8PacksSignBits)
{
    I32x8 m = {-1, 0, -1, -1, 0, 0, 0, -1};
    EXPECT_EQ(simd::mask8(m), 0b10001101u);
    EXPECT_EQ(simd::mask8(simd::splatI32(0)), 0u);
    EXPECT_EQ(simd::mask8(simd::splatI32(-1)), 0xffu);
}

TEST(SimdShim, HorizontalReductions)
{
    I32x8 v = {9, -4, 17, 0, -4, 23, 5, 9};
    EXPECT_EQ(simd::hmin(v), -4);
    EXPECT_EQ(simd::hmax(v), 23);
}

TEST(SimdShim, UnalignedLoadStore)
{
    // Arena spans and vector buffers carry no 32-byte alignment
    // promise; loads must work from any int boundary.
    std::vector<int> buf(simd::i32Lanes + 1);
    for (int i = 0; i < int(buf.size()); ++i)
        buf[std::size_t(i)] = i * 3 - 7;
    I32x8 v = simd::load<I32x8>(buf.data() + 1);
    for (int i = 0; i < simd::i32Lanes; ++i)
        EXPECT_EQ(v[i], buf[std::size_t(i) + 1]);
}

/** Deterministic fuzz data in a small range (heights, slacks). */
std::vector<int>
randInts(std::mt19937 &rng, int n, int lo, int hi)
{
    std::uniform_int_distribution<int> d(lo, hi);
    std::vector<int> v(static_cast<std::size_t>(n));
    for (int &x : v)
        x = d(rng);
    return v;
}

std::vector<double>
randDoubles(std::mt19937 &rng, int n)
{
    std::uniform_real_distribution<double> d(-4.0, 4.0);
    std::vector<double> v(static_cast<std::size_t>(n));
    for (double &x : v)
        x = d(rng);
    return v;
}

TEST(SimdKernelsParity, PairCompose)
{
    const SimdKernels &vec = simdKernels();
    const SimdKernels &ref = scalarSimdKernels();
    std::mt19937 rng(7);
    for (int n : lengths) {
        std::vector<int> hSink = randInts(rng, n, 0, 40);
        std::vector<int> hi = randInts(rng, n, -1, 40);
        std::vector<int> early = randInts(rng, n, 0, 30);
        std::vector<int> relLate = randInts(rng, n, -20, 50);
        std::vector<int> keysV(std::size_t(n) + 1, 12345);
        std::vector<int> keysS(std::size_t(n) + 1, 12345);
        ComposeResult rv = vec.pairCompose(
            hSink.data(), hi.data(), early.data(), relLate.data(),
            keysV.data(), n, 2, 11);
        ComposeResult rs = ref.pairCompose(
            hSink.data(), hi.data(), early.data(), relLate.data(),
            keysS.data(), n, 2, 11);
        EXPECT_EQ(rv.cp, rs.cp) << "n=" << n;
        EXPECT_EQ(rv.minKey, rs.minKey) << "n=" << n;
        EXPECT_EQ(rv.maxKey, rs.maxKey) << "n=" << n;
        EXPECT_EQ(keysV, keysS) << "n=" << n;
        // The guard slot past n must be untouched (masked tail).
        EXPECT_EQ(keysV[std::size_t(n)], 12345);
    }
}

TEST(SimdKernelsParity, TripleCompose)
{
    const SimdKernels &vec = simdKernels();
    const SimdKernels &ref = scalarSimdKernels();
    std::mt19937 rng(13);
    for (int n : lengths) {
        std::vector<int> hSink = randInts(rng, n, 0, 40);
        std::vector<int> hi = randInts(rng, n, -1, 40);
        std::vector<int> hj = randInts(rng, n, -1, 40);
        std::vector<int> early = randInts(rng, n, 0, 30);
        std::vector<int> relLate = randInts(rng, n, -20, 50);
        std::vector<int> keysV(std::size_t(n) + 1, 777);
        std::vector<int> keysS(std::size_t(n) + 1, 777);
        ComposeResult rv = vec.tripleCompose(
            hSink.data(), hi.data(), hj.data(), early.data(),
            relLate.data(), keysV.data(), n, 3, 1, 9);
        ComposeResult rs = ref.tripleCompose(
            hSink.data(), hi.data(), hj.data(), early.data(),
            relLate.data(), keysS.data(), n, 3, 1, 9);
        EXPECT_EQ(rv.cp, rs.cp) << "n=" << n;
        EXPECT_EQ(rv.minKey, rs.minKey) << "n=" << n;
        EXPECT_EQ(rv.maxKey, rs.maxKey) << "n=" << n;
        EXPECT_EQ(keysV, keysS) << "n=" << n;
        EXPECT_EQ(keysV[std::size_t(n)], 777);
    }
}

TEST(SimdKernelsParity, EpochScanFirstFree)
{
    const SimdKernels &vec = simdKernels();
    const SimdKernels &ref = scalarSimdKernels();
    std::mt19937 rng(19);
    const std::uint32_t epoch = 42;
    const int width = 2;
    std::uniform_int_distribution<int> stampD(0, 1);
    std::uniform_int_distribution<int> fillD(0, 3);
    for (int n : lengths) {
        for (int rep = 0; rep < 50; ++rep) {
            std::vector<std::uint32_t> stamp(static_cast<std::size_t>(n));
            std::vector<int> fill(static_cast<std::size_t>(n));
            for (int i = 0; i < n; ++i) {
                stamp[std::size_t(i)] = stampD(rng) ? epoch : epoch - 1;
                fill[std::size_t(i)] = fillD(rng);
            }
            int got = vec.epochScanFirstFree(stamp.data(), fill.data(),
                                             epoch, width, n);
            int want = ref.epochScanFirstFree(
                stamp.data(), fill.data(), epoch, width, n);
            ASSERT_EQ(got, want) << "n=" << n << " rep=" << rep;
        }
    }
}

TEST(SimdKernels, EpochScanIndexIsProbeTripCount)
{
    // Table 2 reconstruction: the returned index equals the number
    // of full cycles probed before the landing cycle — exactly the
    // popcount of the full-lane movemask below the first free bit.
    const SimdKernels &vec = simdKernels();
    const std::uint32_t epoch = 5;
    const int width = 1;
    for (int firstFree : {0, 1, 3, 7}) {
        std::vector<std::uint32_t> stamp(8, epoch);
        std::vector<int> fill(8, width); // all full...
        fill[std::size_t(firstFree)] = 0; // ...except one
        int idx = vec.epochScanFirstFree(stamp.data(), fill.data(),
                                         epoch, width, 8);
        ASSERT_EQ(idx, firstFree);
        // Scalar probe count over the same window:
        int probes = 0;
        while (stamp[std::size_t(probes)] == epoch &&
               fill[std::size_t(probes)] >= width)
            ++probes;
        EXPECT_EQ(idx, probes);
    }
    // All-full window: -1, caller falls back to the skip walk.
    std::vector<std::uint32_t> stamp(8, epoch);
    std::vector<int> fill(8, width);
    EXPECT_EQ(vec.epochScanFirstFree(stamp.data(), fill.data(), epoch,
                                     width, 8),
              -1);
}

TEST(SimdKernelsParity, BlendAndMapKeys)
{
    const SimdKernels &vec = simdKernels();
    const SimdKernels &ref = scalarSimdKernels();
    std::mt19937 rng(23);
    for (int n : lengths) {
        std::vector<double> cp = randDoubles(rng, n);
        std::vector<double> sr = randDoubles(rng, n);
        std::vector<double> dh = randDoubles(rng, n);
        if (n > 0) {
            cp[0] = 0.0;
            sr[0] = -0.5; // 0*(-0.5) terms can produce -0.0 blends
            dh[0] = 0.0;
        }
        const std::size_t un = static_cast<std::size_t>(n);
        std::vector<double> outV(un), outS(un);
        vec.blendKeys(0.3, cp.data(), 0.0, sr.data(), 0.7, dh.data(),
                      outV.data(), n);
        ref.blendKeys(0.3, cp.data(), 0.0, sr.data(), 0.7, dh.data(),
                      outS.data(), n);
        EXPECT_EQ(outV, outS) << "n=" << n;

        std::vector<std::uint64_t> kV(un), kS(un), kF(un);
        vec.mapKeysDesc(outV.data(), kV.data(), n);
        ref.mapKeysDesc(outS.data(), kS.data(), n);
        EXPECT_EQ(kV, kS) << "n=" << n;

        // Fused kernel == blend then map.
        vec.blendMapKeysDesc(0.3, cp.data(), 0.0, sr.data(), 0.7,
                             dh.data(), kF.data(), n);
        EXPECT_EQ(kF, kS) << "n=" << n;
    }
}

TEST(SimdKernels, OrderKeyDescIsStrictlyMonotone)
{
    const std::vector<double> ordered = {
        -1e308, -5.0, -1.0, -1e-300, -0.0, 0.0,
        1e-300, 0.5,  1.0,  7.25,    1e308};
    for (std::size_t i = 1; i < ordered.size(); ++i) {
        std::uint64_t hi = detail::orderKeyDesc(ordered[i - 1]);
        std::uint64_t lo = detail::orderKeyDesc(ordered[i]);
        if (ordered[i - 1] == ordered[i])
            EXPECT_EQ(hi, lo); // -0.0 and +0.0 share a key
        else
            EXPECT_GT(hi, lo); // larger priority -> smaller key
    }
}

TEST(SimdKernelsParity, MaskLE)
{
    const SimdKernels &vec = simdKernels();
    const SimdKernels &ref = scalarSimdKernels();
    std::mt19937 rng(29);
    for (int n : lengths) {
        std::vector<int> vals = randInts(rng, n, 0, 10);
        std::size_t words = std::size_t(n + 63) / 64;
        // Poisoned output buffers: the kernel must zero tail bits.
        std::vector<std::uint64_t> wV(words + 1, ~std::uint64_t(0));
        std::vector<std::uint64_t> wS(words + 1, ~std::uint64_t(0));
        vec.maskLE(vals.data(), 5, wV.data(), n);
        ref.maskLE(vals.data(), 5, wS.data(), n);
        for (std::size_t w = 0; w < words; ++w)
            EXPECT_EQ(wV[w], wS[w]) << "n=" << n << " word=" << w;
        // Guard word past the mask is untouched.
        EXPECT_EQ(wV[words], ~std::uint64_t(0));
        for (int i = 0; i < n; ++i) {
            bool bit =
                (wV[std::size_t(i) >> 6] >>
                 (std::size_t(i) & 63)) & 1;
            EXPECT_EQ(bit, vals[std::size_t(i)] <= 5);
        }
        // Bits between n and the word boundary must be zero.
        if (n & 63) {
            std::uint64_t tail = wV[words - 1] >> (n & 63);
            EXPECT_EQ(tail, 0u);
        }
    }
}

TEST(SimdDispatch, ForceScalarSwitchesTables)
{
    const SimdKernels &resolved = simdKernels();
    forceScalarSimdKernels(true);
    EXPECT_EQ(simdKernels().level, SimdLevel::Scalar);
    EXPECT_STREQ(simdKernels().name, "scalar");
    forceScalarSimdKernels(false);
    EXPECT_EQ(&simdKernels(), &resolved);
}

} // namespace
} // namespace balance
