#include "support/json.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

namespace balance
{
namespace
{

TEST(JsonWriter, EmptyObjectAndArray)
{
    JsonWriter o;
    o.beginObject().endObject();
    EXPECT_EQ(o.str(), "{}");

    JsonWriter a;
    a.beginArray().endArray();
    EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriter, ObjectWithMixedValues)
{
    JsonWriter w;
    w.beginObject()
        .key("name").value("bounds")
        .key("count").value(42)
        .key("ratio").value(2.5)
        .key("ok").value(true)
        .endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"bounds\",\"count\":42,\"ratio\":2.5,"
              "\"ok\":true}");
}

TEST(JsonWriter, NestedContainersGetCommasRight)
{
    JsonWriter w;
    w.beginObject().key("runs").beginArray();
    w.beginObject().key("ms").value(1.25).endObject();
    w.beginObject().key("ms").value(3).endObject();
    w.endArray().key("n").value(2).endObject();
    EXPECT_EQ(w.str(),
              "{\"runs\":[{\"ms\":1.25},{\"ms\":3}],\"n\":2}");
}

TEST(JsonWriter, EscapesStrings)
{
    JsonWriter w;
    w.beginArray().value("a\"b\\c\n\t").endArray();
    EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\n\\t\"]");
}

TEST(JsonWriter, EscapesControlCharacters)
{
    // Every byte below 0x20 must leave the writer escaped — either a
    // named escape or a \u00XX sequence — or the document is not
    // valid JSON.
    std::string all;
    for (int c = 1; c < 0x20; ++c)
        all += char(c);
    JsonWriter w;
    w.beginObject().key("s").value(all).endObject();
    const std::string &doc = w.str();
    EXPECT_TRUE(jsonLooksValid(doc)) << doc;
    for (int c = 1; c < 0x20; ++c)
        EXPECT_EQ(doc.find(char(c)), std::string::npos)
            << "raw control byte " << c << " leaked into the document";
    EXPECT_NE(doc.find("\\u0001"), std::string::npos);
    EXPECT_NE(doc.find("\\n"), std::string::npos);
}

TEST(JsonWriter, ControlCharacterRoundTripValidates)
{
    // NUL and arbitrary control bytes embedded mid-string.
    std::string tricky("a\0b\x1f" "c\b", 6);
    JsonWriter w;
    w.beginArray().value(tricky).endArray();
    EXPECT_TRUE(jsonLooksValid(w.str())) << w.str();
}

TEST(JsonWriter, OutputValidates)
{
    JsonWriter w;
    w.beginObject().key("xs").beginArray();
    for (int i = 0; i < 5; ++i)
        w.value(i * 0.5);
    w.endArray().key("neg").value(-3).endObject();
    EXPECT_TRUE(jsonLooksValid(w.str()));
}

// Regression: infinities and NaN used to be printed through %.12g,
// producing bare `inf` / `nan` tokens that no JSON parser accepts.
TEST(JsonWriter, NonFiniteDoublesEmitNull)
{
    JsonWriter w;
    w.beginArray()
        .value(std::numeric_limits<double>::infinity())
        .value(-std::numeric_limits<double>::infinity())
        .value(std::numeric_limits<double>::quiet_NaN())
        .endArray();
    EXPECT_EQ(w.str(), "[null,null,null]");
    EXPECT_TRUE(jsonLooksValid(w.str()));
}

// Regression: %.12g silently dropped precision, so two doubles one
// ulp apart could serialize to the same text. When 12 digits do not
// round-trip, the writer must fall back to %.17g (which always does).
TEST(JsonWriter, DoublesRoundTripBitExact)
{
    const double cases[] = {
        0.1,
        1.0 / 3.0,
        std::nextafter(1.0, 2.0),
        123456789.123456789,
        1e-300,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        -2.2250738585072014e-308,
    };
    for (double v : cases) {
        JsonWriter w;
        w.value(v);
        double back = std::strtod(w.str().c_str(), nullptr);
        EXPECT_EQ(back, v) << w.str();
    }
    // A value %.12g already represents exactly must keep the short
    // spelling — artifacts committed before the fix stay byte-stable.
    JsonWriter w;
    w.value(2.5);
    EXPECT_EQ(w.str(), "2.5");
}

TEST(JsonLooksValid, AcceptsWellFormed)
{
    EXPECT_TRUE(jsonLooksValid("{}"));
    EXPECT_TRUE(jsonLooksValid("[]"));
    EXPECT_TRUE(jsonLooksValid("  {\"a\": [1, 2.5e3, -0.25]} "));
    EXPECT_TRUE(jsonLooksValid("[true, false, null]"));
    EXPECT_TRUE(jsonLooksValid("\"just a string\""));
    EXPECT_TRUE(jsonLooksValid("-12"));
    EXPECT_TRUE(jsonLooksValid("{\"nested\":{\"deep\":[[[]]]}}"));
}

TEST(JsonLooksValid, RejectsMalformed)
{
    EXPECT_FALSE(jsonLooksValid(""));
    EXPECT_FALSE(jsonLooksValid("{"));
    EXPECT_FALSE(jsonLooksValid("}"));
    EXPECT_FALSE(jsonLooksValid("{\"a\":}"));
    EXPECT_FALSE(jsonLooksValid("{\"a\":1,}"));
    EXPECT_FALSE(jsonLooksValid("[1 2]"));
    EXPECT_FALSE(jsonLooksValid("{} {}"));
    EXPECT_FALSE(jsonLooksValid("{}extra"));
    EXPECT_FALSE(jsonLooksValid("{'a':1}"));
    EXPECT_FALSE(jsonLooksValid("nul"));
    EXPECT_FALSE(jsonLooksValid("01"));
    EXPECT_FALSE(jsonLooksValid("\"unterminated"));
}

TEST(JsonLooksValid, RejectsRawControlCharactersInStrings)
{
    // RFC 8259 requires U+0000..U+001F to be escaped inside strings.
    EXPECT_FALSE(jsonLooksValid("\"a\nb\""));
    EXPECT_FALSE(jsonLooksValid("\"a\tb\""));
    EXPECT_FALSE(jsonLooksValid(std::string("\"a\0b\"", 5)));
    EXPECT_FALSE(jsonLooksValid("\"\x1f\""));
    EXPECT_FALSE(jsonLooksValid("{\"k\x01\":1}"));
    // The escaped spellings stay valid.
    EXPECT_TRUE(jsonLooksValid("\"a\\nb\""));
    EXPECT_TRUE(jsonLooksValid("\"a\\u0000b\""));
}

} // namespace
} // namespace balance
