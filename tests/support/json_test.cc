#include "support/json.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

TEST(JsonWriter, EmptyObjectAndArray)
{
    JsonWriter o;
    o.beginObject().endObject();
    EXPECT_EQ(o.str(), "{}");

    JsonWriter a;
    a.beginArray().endArray();
    EXPECT_EQ(a.str(), "[]");
}

TEST(JsonWriter, ObjectWithMixedValues)
{
    JsonWriter w;
    w.beginObject()
        .key("name").value("bounds")
        .key("count").value(42)
        .key("ratio").value(2.5)
        .key("ok").value(true)
        .endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"bounds\",\"count\":42,\"ratio\":2.5,"
              "\"ok\":true}");
}

TEST(JsonWriter, NestedContainersGetCommasRight)
{
    JsonWriter w;
    w.beginObject().key("runs").beginArray();
    w.beginObject().key("ms").value(1.25).endObject();
    w.beginObject().key("ms").value(3).endObject();
    w.endArray().key("n").value(2).endObject();
    EXPECT_EQ(w.str(),
              "{\"runs\":[{\"ms\":1.25},{\"ms\":3}],\"n\":2}");
}

TEST(JsonWriter, EscapesStrings)
{
    JsonWriter w;
    w.beginArray().value("a\"b\\c\n\t").endArray();
    EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\n\\t\"]");
}

TEST(JsonWriter, OutputValidates)
{
    JsonWriter w;
    w.beginObject().key("xs").beginArray();
    for (int i = 0; i < 5; ++i)
        w.value(i * 0.5);
    w.endArray().key("neg").value(-3).endObject();
    EXPECT_TRUE(jsonLooksValid(w.str()));
}

TEST(JsonLooksValid, AcceptsWellFormed)
{
    EXPECT_TRUE(jsonLooksValid("{}"));
    EXPECT_TRUE(jsonLooksValid("[]"));
    EXPECT_TRUE(jsonLooksValid("  {\"a\": [1, 2.5e3, -0.25]} "));
    EXPECT_TRUE(jsonLooksValid("[true, false, null]"));
    EXPECT_TRUE(jsonLooksValid("\"just a string\""));
    EXPECT_TRUE(jsonLooksValid("-12"));
    EXPECT_TRUE(jsonLooksValid("{\"nested\":{\"deep\":[[[]]]}}"));
}

TEST(JsonLooksValid, RejectsMalformed)
{
    EXPECT_FALSE(jsonLooksValid(""));
    EXPECT_FALSE(jsonLooksValid("{"));
    EXPECT_FALSE(jsonLooksValid("}"));
    EXPECT_FALSE(jsonLooksValid("{\"a\":}"));
    EXPECT_FALSE(jsonLooksValid("{\"a\":1,}"));
    EXPECT_FALSE(jsonLooksValid("[1 2]"));
    EXPECT_FALSE(jsonLooksValid("{} {}"));
    EXPECT_FALSE(jsonLooksValid("{}extra"));
    EXPECT_FALSE(jsonLooksValid("{'a':1}"));
    EXPECT_FALSE(jsonLooksValid("nul"));
    EXPECT_FALSE(jsonLooksValid("01"));
    EXPECT_FALSE(jsonLooksValid("\"unterminated"));
}

} // namespace
} // namespace balance
