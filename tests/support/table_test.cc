#include "support/table.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::string out = t.render();
    // Each rendered line is as wide as the widest cells require.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RuleBetweenRows)
{
    TextTable t;
    t.addRow({"x"});
    t.addRule();
    t.addRow({"y"});
    std::string out = t.render();
    auto firstNl = out.find('\n');
    auto secondNl = out.find('\n', firstNl + 1);
    EXPECT_EQ(out.substr(firstNl + 1, secondNl - firstNl - 1),
              std::string(1, '-'));
}

TEST(TextTable, RaggedRowsTolerated)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1"});
    t.addRow({"1", "2", "3"});
    EXPECT_NO_THROW({ auto s = t.render(); (void)s; });
}

TEST(Formatting, FmtDouble)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(1.0, 0), "1");
    EXPECT_EQ(fmtDouble(-0.5, 1), "-0.5");
}

TEST(Formatting, FmtPercent)
{
    EXPECT_EQ(fmtPercent(12.345, 1), "12.3%");
}

TEST(Formatting, FmtCount)
{
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1000), "1,000");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
    EXPECT_EQ(fmtCount(-1234), "-1,234");
}

} // namespace
} // namespace balance
