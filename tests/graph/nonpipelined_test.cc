#include <gtest/gtest.h>

#include "bounds/branch_bounds.hh"
#include "graph/builder.hh"
#include "sched/list_scheduler.hh"
#include "sched/priorities.hh"

namespace balance
{
namespace
{

TEST(NonPipelined, ExpandsIntoChain)
{
    SuperblockBuilder b("np");
    OpId div = b.addNonPipelinedOp(OpClass::FloatAlu, 4, 9, "div");
    OpId use = b.addOp(OpClass::IntAlu, 1, "use");
    OpId f = b.addBranch(1.0);
    b.addEdge(div, use);
    b.addEdge(use, f);
    Superblock sb = b.build();

    // Four pseudo-ops plus the consumer and the branch.
    EXPECT_EQ(sb.numOps(), 6);
    EXPECT_EQ(div, 3); // last pseudo-op
    // Total issue-to-result distance is preserved: 3 chain edges
    // plus the tail latency of 6 equals the original 9.
    auto early = computeEarlyDC(sb);
    EXPECT_EQ(early[std::size_t(use)], 9);
    EXPECT_EQ(sb.op(0).name, "div.0");
    EXPECT_EQ(sb.op(3).name, "div.3");
}

TEST(NonPipelined, SingleStageDegeneratesToAddOp)
{
    SuperblockBuilder b("np1");
    OpId op = b.addNonPipelinedOp(OpClass::Memory, 1, 2, "ld");
    OpId f = b.addBranch(1.0);
    b.addEdge(op, f);
    Superblock sb = b.build();
    EXPECT_EQ(sb.numOps(), 2);
    EXPECT_EQ(sb.op(0).latency, 2);
    EXPECT_EQ(sb.op(0).name, "ld");
}

TEST(NonPipelined, OccupancySerializesInBounds)
{
    // Two occupancy-3 float ops on FS4 (one float unit): the
    // pseudo-ops demand 6 float slots, so the RJ bound sees at
    // least 6 cycles of float work before the exit.
    SuperblockBuilder b("np2");
    OpId a = b.addNonPipelinedOp(OpClass::FloatAlu, 3, 3, "a");
    OpId c = b.addNonPipelinedOp(OpClass::FloatAlu, 3, 3, "c");
    OpId f = b.addBranch(1.0);
    b.addEdge(a, f);
    b.addEdge(c, f);
    Superblock sb = b.build();

    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs4();
    auto rj = rjEarly(ctx, m);
    // Dependence alone allows the exit at cycle 3; the six float
    // pseudo-ops on one unit force cycle 6.
    EXPECT_EQ(ctx.earlyDC()[std::size_t(f)], 3);
    EXPECT_GE(rj[0], 6);
}

TEST(NonPipelined, SchedulesStayValid)
{
    SuperblockBuilder b("np3");
    OpId a = b.addNonPipelinedOp(OpClass::FloatAlu, 2, 5, "a");
    OpId c = b.addOp(OpClass::IntAlu, 1);
    OpId f = b.addBranch(1.0);
    b.addEdge(a, f);
    b.addEdge(c, f);
    Superblock sb = b.build();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::fs6();
    Schedule s = listSchedule(sb, m, criticalPathKey(ctx));
    s.validate(sb, m);
    // Result latency preserved: branch at least 5 after the head.
    EXPECT_GE(s.issueOf(f), s.issueOf(0) + 5);
}

} // namespace
} // namespace balance
