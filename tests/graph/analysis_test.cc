#include "graph/analysis.hh"

#include <gtest/gtest.h>

#include "graph/builder.hh"

namespace balance
{
namespace
{

/**
 * Diamond with a side exit:
 *   0 -> 1 -> 3(br side)
 *   0 -> 2 -(2)-> 4 -> 5(br final)
 */
Superblock
makeDiamond()
{
    SuperblockBuilder b("diamond");
    OpId o0 = b.addOp(OpClass::IntAlu, 1);
    OpId o1 = b.addOp(OpClass::IntAlu, 1);
    OpId o2 = b.addOp(OpClass::IntAlu, 2);
    OpId br3 = b.addBranch(0.2);
    OpId o4 = b.addOp(OpClass::IntAlu, 1);
    OpId br5 = b.addBranch(0.8);
    b.addEdge(o0, o1);
    b.addEdge(o0, o2);
    b.addEdge(o1, br3);
    b.addEdge(o2, o4); // latency 2
    b.addEdge(o4, br5);
    return b.build();
}

TEST(Analysis, EarlyDC)
{
    Superblock sb = makeDiamond();
    auto early = computeEarlyDC(sb);
    EXPECT_EQ(early[0], 0);
    EXPECT_EQ(early[1], 1);
    EXPECT_EQ(early[2], 1);
    EXPECT_EQ(early[3], 2);
    EXPECT_EQ(early[4], 3); // 1 + latency 2
    EXPECT_EQ(early[5], 4);
}

TEST(Analysis, HeightToSink)
{
    Superblock sb = makeDiamond();
    auto height = computeHeightTo(sb, 5);
    EXPECT_EQ(height[5], 0);
    EXPECT_EQ(height[4], 1);
    EXPECT_EQ(height[2], 3);
    EXPECT_EQ(height[3], 1); // control edge br3 -> br5
    EXPECT_EQ(height[0], 4);
    // op 1 reaches br5 via br3's control edge: 1 -> br3 -> br5.
    EXPECT_EQ(height[1], 2);
}

TEST(Analysis, HeightToSideBranch)
{
    Superblock sb = makeDiamond();
    auto height = computeHeightTo(sb, 3);
    EXPECT_EQ(height[3], 0);
    EXPECT_EQ(height[1], 1);
    EXPECT_EQ(height[0], 2);
    EXPECT_EQ(height[2], -1); // not a predecessor of br3
    EXPECT_EQ(height[4], -1);
    EXPECT_EQ(height[5], -1);
}

TEST(Analysis, LateDC)
{
    Superblock sb = makeDiamond();
    auto late = computeLateDC(sb, 5, 4);
    EXPECT_EQ(late[5], 4);
    EXPECT_EQ(late[4], 3);
    EXPECT_EQ(late[2], 1);
    EXPECT_EQ(late[0], 0);
    // Everything precedes branch 5 here, so nothing unconstrained.
    for (OpId v = 0; v < sb.numOps(); ++v)
        EXPECT_NE(late[std::size_t(v)], lateUnconstrained);
}

TEST(Analysis, PredSets)
{
    Superblock sb = makeDiamond();
    PredSets preds(sb);
    EXPECT_TRUE(preds.isPred(0, 5));
    EXPECT_TRUE(preds.isPred(3, 5)); // via control edge
    EXPECT_TRUE(preds.isPred(0, 3));
    EXPECT_FALSE(preds.isPred(2, 3));
    EXPECT_FALSE(preds.isPred(5, 5)); // strict
    DynBitset c = preds.closure(3);
    EXPECT_TRUE(c.test(3));
    EXPECT_EQ(c.count(), 3u); // {0, 1} plus branch 3 itself
}

TEST(Analysis, GraphContextBundles)
{
    Superblock sb = makeDiamond();
    GraphContext ctx(sb);
    EXPECT_EQ(ctx.criticalPath(), 4);
    EXPECT_EQ(ctx.earlyDC()[5], 4);
    EXPECT_EQ(ctx.heightToBranch(0)[0], 2);
    EXPECT_EQ(ctx.heightToBranch(1)[0], 4);
    EXPECT_TRUE(ctx.predSets().isPred(0, 5));
}

} // namespace
} // namespace balance
