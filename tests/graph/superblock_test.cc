#include "graph/superblock.hh"

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "graph/dot.hh"

namespace balance
{
namespace
{

Superblock
makeSimple()
{
    SuperblockBuilder b("t");
    OpId x = b.addOp(OpClass::IntAlu, 1, "x");
    OpId y = b.addOp(OpClass::Memory, 2, "y");
    OpId s = b.addBranch(0.25, "side");
    OpId z = b.addOp(OpClass::IntAlu, 1, "z");
    OpId f = b.addBranch(0.75, "final");
    b.addEdge(x, s);
    b.addEdge(y, z); // inherits latency 2
    b.addEdge(z, f);
    return b.build(true);
}

TEST(Superblock, BasicShape)
{
    Superblock sb = makeSimple();
    EXPECT_EQ(sb.name(), "t");
    EXPECT_EQ(sb.numOps(), 5);
    EXPECT_EQ(sb.numBranches(), 2);
    EXPECT_EQ(sb.branches()[0], 2);
    EXPECT_EQ(sb.branches()[1], 4);
    EXPECT_TRUE(sb.op(2).isBranch());
    EXPECT_FALSE(sb.op(0).isBranch());
    EXPECT_DOUBLE_EQ(sb.exitProb(2), 0.25);
}

TEST(Superblock, BranchIndexOf)
{
    Superblock sb = makeSimple();
    EXPECT_EQ(sb.branchIndexOf(2), 0);
    EXPECT_EQ(sb.branchIndexOf(4), 1);
    EXPECT_EQ(sb.branchIndexOf(0), -1);
    EXPECT_EQ(sb.branchIndexOf(3), -1);
}

TEST(Superblock, DefaultEdgeLatencyIsProducerLatency)
{
    Superblock sb = makeSimple();
    bool found = false;
    for (const Adjacent &e : sb.succs(1)) {
        if (e.op == 3) {
            EXPECT_EQ(e.latency, 2);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Superblock, ControlEdgeInserted)
{
    Superblock sb = makeSimple();
    bool found = false;
    for (const Adjacent &e : sb.succs(2)) {
        if (e.op == 4) {
            EXPECT_GE(e.latency, 1);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Superblock, BlockIndices)
{
    Superblock sb = makeSimple();
    EXPECT_EQ(sb.op(0).block, 0);
    EXPECT_EQ(sb.op(1).block, 0);
    EXPECT_EQ(sb.op(2).block, 0); // branch closes block 0
    EXPECT_EQ(sb.op(3).block, 1);
    EXPECT_EQ(sb.op(4).block, 1);
}

TEST(Superblock, PredsMirrorSuccs)
{
    Superblock sb = makeSimple();
    int fwd = 0;
    int bwd = 0;
    for (OpId v = 0; v < sb.numOps(); ++v) {
        fwd += int(sb.succs(v).size());
        bwd += int(sb.preds(v).size());
    }
    EXPECT_EQ(fwd, bwd);
    EXPECT_EQ(fwd, sb.numEdges());
}

TEST(SuperblockBuilder, DeduplicatesParallelEdgesKeepingMax)
{
    SuperblockBuilder b("dup");
    OpId x = b.addOp(OpClass::IntAlu, 1);
    OpId f = b.addBranch(1.0);
    b.addEdge(x, f, 1);
    b.addEdge(x, f, 3);
    b.addEdge(x, f, 2);
    Superblock sb = b.build();
    ASSERT_EQ(sb.succs(x).size(), 1u);
    EXPECT_EQ(sb.succs(x)[0].latency, 3);
}

TEST(SuperblockBuilder, AnchorsLooseOpsToLastExit)
{
    SuperblockBuilder b("loose");
    OpId dead = b.addOp(OpClass::IntAlu, 1, "dead");
    b.addBranch(0.4);
    OpId f = b.addBranch(0.6);
    Superblock sb = b.build(true);
    bool anchored = false;
    for (const Adjacent &e : sb.succs(dead))
        anchored = anchored || e.op == f;
    EXPECT_TRUE(anchored);
}

TEST(SuperblockBuilder, DeathOnBackwardEdge)
{
    SuperblockBuilder b("bad");
    OpId x = b.addOp(OpClass::IntAlu, 1);
    OpId y = b.addOp(OpClass::IntAlu, 1);
    EXPECT_DEATH(b.addEdge(y, x), "forward");
}

TEST(SuperblockBuilder, DeathOnNoExit)
{
    SuperblockBuilder b("noexit");
    b.addOp(OpClass::IntAlu, 1);
    EXPECT_DEATH(b.build(), "exit");
}

TEST(Dot, ContainsNodesAndEdges)
{
    Superblock sb = makeSimple();
    std::string dot = toDot(sb);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("n0"), std::string::npos);
    EXPECT_NE(dot.find("n4"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_NE(dot.find("p=0.25"), std::string::npos);
}

} // namespace
} // namespace balance
