/**
 * The service scheduling engine (service/engine.hh): result shape,
 * bound-ladder consistency, scheduler dispatch, B&B certification,
 * and the determinism contract — batch responses bitwise identical
 * to one-at-a-time responses and to every thread count, cache hit
 * indistinguishable from miss in the body.
 */

#include "service/engine.hh"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "workload/generator.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

ServiceRequest
makeRequest(Superblock sb, const std::string &scheduler = "balance")
{
    ServiceRequest r;
    r.sb = std::move(sb);
    r.scheduler = scheduler;
    return r;
}

std::vector<ServiceRequest>
mixedBatch(int n)
{
    GeneratorParams params;
    Rng rng(0x5eedf00dULL);
    std::vector<ServiceRequest> reqs;
    for (int i = 0; i < n; ++i) {
        reqs.push_back(makeRequest(generateSuperblock(
            rng, params, "engine_sb_" + std::to_string(i))));
    }
    return reqs;
}

TEST(ScheduleEngine, SchedulesOneRequestWithSaneOutput)
{
    ScheduleEngine engine;
    ServiceRequest req = makeRequest(paperFigure6());
    ServiceResult r = engine.run(req);

    EXPECT_EQ(r.machine, "GP4");
    EXPECT_EQ(r.scheduler, "balance");
    EXPECT_EQ(int(r.issue.size()), req.sb.numOps());
    EXPECT_GT(r.wct, 0.0);
    EXPECT_GT(r.makespan, 0);
    ASSERT_TRUE(r.haveBounds);
    // The schedule can never beat any lower bound, and "tightest"
    // must dominate the whole ladder.
    EXPECT_GE(r.wct, r.tightest - 1e-9);
    for (double b : {r.bounds.cp, r.bounds.hu, r.bounds.rj,
                     r.bounds.lc, r.bounds.pw, r.bounds.tw})
        EXPECT_LE(b, r.tightest + 1e-9);
    EXPECT_FALSE(r.haveBnb);
    EXPECT_FALSE(r.cacheHit);

    // Second run of the same content: cache hit, identical body.
    ServiceResult again = engine.run(req);
    EXPECT_TRUE(again.cacheHit);
    EXPECT_EQ(renderServiceResponse({r}, false),
              renderServiceResponse({again}, false));
}

TEST(ScheduleEngine, DispatchesEverySchedulerKey)
{
    ScheduleEngine engine;
    for (const char *key :
         {"balance", "cp", "sr", "gstar", "dhasy", "help", "best"}) {
        ServiceRequest req = makeRequest(paperFigure6(), key);
        req.bounds = false;
        ServiceResult r = engine.run(req);
        EXPECT_EQ(r.scheduler, key);
        EXPECT_GT(r.wct, 0.0) << key;
        EXPECT_FALSE(r.haveBounds);
    }
}

TEST(ScheduleEngine, CertifyRunsBnbAndBoundsTheSchedule)
{
    ScheduleEngine engine;
    ServiceRequest req = makeRequest(paperFigure6());
    req.certify = true;
    ServiceResult r = engine.run(req);
    ASSERT_TRUE(r.haveBnb);
    EXPECT_GE(r.bnbNodes, 0); // 0 when the seed is proven outright
    EXPECT_LE(r.bnbLowerBound, r.bnbWct + 1e-9);
    EXPECT_LE(r.bnbWct, r.wct + 1e-9); // certifier can only improve
    if (r.bnbProven)
        EXPECT_NEAR(r.bnbWct, r.bnbLowerBound, 1e-9);
}

TEST(ScheduleEngine, BatchMatchesSingleRunsBitwise)
{
    std::vector<ServiceRequest> reqs = mixedBatch(6);

    ScheduleEngine batchEngine;
    std::string batched =
        renderServiceResponse(batchEngine.runBatch(reqs), true);

    ScheduleEngine singleEngine;
    std::vector<ServiceResult> singles;
    for (const ServiceRequest &r : reqs)
        singles.push_back(singleEngine.run(r));
    EXPECT_EQ(batched, renderServiceResponse(singles, true));
}

TEST(ScheduleEngine, BatchIsBitwiseIdenticalAcrossThreadCounts)
{
    std::vector<ServiceRequest> reqs = mixedBatch(8);
    std::vector<std::string> rendered;
    for (int threads : {1, 2, 0}) {
        EngineOptions opts;
        opts.threads = threads;
        ScheduleEngine engine(opts);
        rendered.push_back(
            renderServiceResponse(engine.runBatch(reqs), true));
    }
    EXPECT_EQ(rendered[0], rendered[1]);
    EXPECT_EQ(rendered[0], rendered[2]);
}

TEST(ScheduleEngine, CacheHitPathMatchesMissPathBitwise)
{
    std::vector<ServiceRequest> reqs = mixedBatch(4);
    ScheduleEngine engine;
    std::string cold =
        renderServiceResponse(engine.runBatch(reqs), true);
    std::string warm =
        renderServiceResponse(engine.runBatch(reqs), true);
    EXPECT_EQ(cold, warm);
    EXPECT_GE(engine.cache().hits(), 4);
    EXPECT_EQ(engine.cache().misses(), 4);
}

TEST(ScheduleEngine, ConcurrentCallersGetIndependentResults)
{
    // Hammer one engine from many threads with the same request mix;
    // per-slot scratch means no caller can corrupt another (run under
    // TSan via the parallel label).
    std::vector<ServiceRequest> reqs = mixedBatch(3);
    ScheduleEngine engine;
    std::vector<ServiceResult> expected;
    for (const ServiceRequest &r : reqs)
        expected.push_back(engine.run(r));

    std::vector<std::thread> callers;
    std::vector<std::string> got(8);
    for (int t = 0; t < 8; ++t) {
        callers.emplace_back([&engine, &reqs, &expected, &got, t] {
            const ServiceRequest &req =
                reqs[std::size_t(t) % reqs.size()];
            ServiceResult r = engine.run(req);
            got[std::size_t(t)] =
                renderServiceResponse({r}, false);
            (void)expected;
        });
    }
    for (std::thread &t : callers)
        t.join();
    for (int t = 0; t < 8; ++t) {
        EXPECT_EQ(got[std::size_t(t)],
                  renderServiceResponse(
                      {expected[std::size_t(t) % reqs.size()]},
                      false));
    }
}

} // namespace
} // namespace balance
