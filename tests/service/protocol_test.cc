/**
 * The service request/response schema (service/protocol.hh): checked
 * machine lookup, full request-body validation (every malformed input
 * must come back as an error string, never an abort — bodies are
 * untrusted), limits enforcement, and response serialization.
 */

#include "service/protocol.hh"

#include <gtest/gtest.h>

#include "support/json.hh"
#include "workload/paper_figures.hh"
#include "workload/sb_io.hh"

namespace balance
{
namespace
{

std::string
sbText()
{
    return writeSuperblock(paperFigure6());
}

/** A minimal valid single-request body. */
std::string
requestJson(const std::string &extra = "")
{
    JsonWriter w;
    w.beginObject().key("superblock").value(sbText());
    w.endObject();
    std::string body = w.str();
    if (!extra.empty())
        body.insert(body.size() - 1, "," + extra);
    return body;
}

TEST(ServiceProtocol, MachineLookupIsCheckedAndCaseInsensitive)
{
    MachineModel m = MachineModel::gp1();
    EXPECT_TRUE(machineByNameChecked("GP4", &m));
    EXPECT_EQ(m.name(), "GP4");
    EXPECT_TRUE(machineByNameChecked("fs8", &m));
    EXPECT_EQ(m.name(), "FS8");
    EXPECT_TRUE(machineByNameChecked("Gp2", nullptr));
    EXPECT_FALSE(machineByNameChecked("gp3", nullptr));
    EXPECT_FALSE(machineByNameChecked("", nullptr));
    EXPECT_FALSE(machineByNameChecked("GP4 ", nullptr));
}

TEST(ServiceProtocol, SchedulerKeys)
{
    for (const char *key :
         {"balance", "cp", "sr", "gstar", "dhasy", "help", "best"})
        EXPECT_TRUE(schedulerKeyValid(key)) << key;
    EXPECT_FALSE(schedulerKeyValid("optimal"));
    EXPECT_FALSE(schedulerKeyValid(""));
}

TEST(ServiceProtocol, ParsesSingleRequestWithDefaults)
{
    ServiceRequestSet set;
    std::string err;
    ASSERT_TRUE(
        parseServiceRequestSet(requestJson(), {}, set, &err))
        << err;
    EXPECT_FALSE(set.batch);
    ASSERT_EQ(set.requests.size(), 1u);
    const ServiceRequest &r = set.requests[0];
    EXPECT_EQ(r.machine, "GP4");
    EXPECT_EQ(r.scheduler, "balance");
    EXPECT_TRUE(r.bounds);
    EXPECT_FALSE(r.certify);
    EXPECT_EQ(r.sb.numOps(), paperFigure6().numOps());
}

TEST(ServiceProtocol, ParsesExplicitOptions)
{
    ServiceRequestSet set;
    std::string err;
    std::string body = requestJson(
        "\"machine\":\"fs6\",\"scheduler\":\"cp\",\"bounds\":false,"
        "\"certify\":true,\"bnb_max_nodes\":1000");
    ASSERT_TRUE(parseServiceRequestSet(body, {}, set, &err)) << err;
    const ServiceRequest &r = set.requests[0];
    EXPECT_EQ(r.machine, "FS6"); // canonicalized
    EXPECT_EQ(r.scheduler, "cp");
    EXPECT_FALSE(r.bounds);
    EXPECT_TRUE(r.certify);
    EXPECT_EQ(r.bnbMaxNodes, 1000);
}

TEST(ServiceProtocol, ClampsBnbNodeBudgetToTheCap)
{
    ProtocolLimits limits;
    limits.bnbNodeCap = 500;
    ServiceRequestSet set;
    std::string err;
    ASSERT_TRUE(parseServiceRequestSet(
        requestJson("\"bnb_max_nodes\":999999999"), limits, set,
        &err))
        << err;
    EXPECT_EQ(set.requests[0].bnbMaxNodes, 500);
}

TEST(ServiceProtocol, ParsesBatchForm)
{
    std::string body =
        "{\"requests\":[" + requestJson() + "," + requestJson() + "]}";
    ServiceRequestSet set;
    std::string err;
    ASSERT_TRUE(parseServiceRequestSet(body, {}, set, &err)) << err;
    EXPECT_TRUE(set.batch);
    EXPECT_EQ(set.requests.size(), 2u);
}

TEST(ServiceProtocol, RejectsMalformedBodies)
{
    const struct
    {
        std::string body;
        const char *expect;
    } cases[] = {
        {"", "JSON"},
        {"not json", "JSON"},
        {"[1,2,3]", "object"},
        {"{}", "superblock"},
        {"{\"superblock\":42}", "superblock"},
        {"{\"superblock\":\"superblock x\\nend\\n\"}",
         "no operations"},
        {requestJson("\"machine\":\"vliw9\""), "machine"},
        {requestJson("\"machine\":7"), "machine"},
        {requestJson("\"scheduler\":\"lru\""), "scheduler"},
        {requestJson("\"bounds\":\"yes\""), "bounds"},
        {requestJson("\"certify\":1"), "certify"},
        {requestJson("\"bnb_max_nodes\":\"many\""), "bnb_max_nodes"},
        {"{\"requests\":[]}", "empty"},
        {"{\"requests\":42}", "requests"},
    };
    for (const auto &c : cases) {
        ServiceRequestSet set;
        std::string err;
        EXPECT_FALSE(parseServiceRequestSet(c.body, {}, set, &err))
            << c.body;
        EXPECT_NE(err.find(c.expect), std::string::npos)
            << "body: " << c.body << "\nerror: " << err;
    }
}

TEST(ServiceProtocol, EnforcesBatchAndOpLimits)
{
    ProtocolLimits limits;
    limits.maxBatch = 2;
    std::string body = "{\"requests\":[" + requestJson() + "," +
                       requestJson() + "," + requestJson() + "]}";
    ServiceRequestSet set;
    std::string err;
    EXPECT_FALSE(parseServiceRequestSet(body, limits, set, &err));
    EXPECT_NE(err.find("batch"), std::string::npos) << err;

    limits = ProtocolLimits{};
    limits.maxOps = 3; // paperFigure6 is larger
    EXPECT_FALSE(
        parseServiceRequestSet(requestJson(), limits, set, &err));
    EXPECT_NE(err.find("ops"), std::string::npos) << err;
}

TEST(ServiceProtocol, BatchErrorsNameTheOffendingIndex)
{
    std::string body =
        "{\"requests\":[" + requestJson() + ",{\"superblock\":3}]}";
    ServiceRequestSet set;
    std::string err;
    EXPECT_FALSE(parseServiceRequestSet(body, {}, set, &err));
    EXPECT_NE(err.find("requests[1]"), std::string::npos) << err;
}

TEST(ServiceProtocol, ResponsesAreValidJsonAndOmitCacheState)
{
    ServiceResult r;
    r.name = "sb";
    r.machine = "GP4";
    r.scheduler = "balance";
    r.wct = 12.5;
    r.makespan = 9;
    r.issue = {0, 1, 2};
    r.haveBounds = true;
    r.tightest = 11.0;
    r.cacheHit = true; // must NOT appear in the body

    std::string single = renderServiceResponse({r}, false);
    EXPECT_TRUE(jsonLooksValid(single)) << single;
    EXPECT_EQ(single.find("cache"), std::string::npos) << single;
    EXPECT_NE(single.find("\"wct\""), std::string::npos);

    std::string batch = renderServiceResponse({r, r}, true);
    EXPECT_TRUE(jsonLooksValid(batch)) << batch;
    EXPECT_NE(batch.find("\"results\""), std::string::npos);

    EXPECT_TRUE(jsonLooksValid(renderServiceError("bad \"thing\"")));
}

} // namespace
} // namespace balance
