/**
 * The GraphContext cache (service/graph_cache.hh): content-hash
 * keying over the canonical .sb text, hit/miss/eviction accounting,
 * LRU order, entry stability across eviction, and the warm-entry
 * guarantee that makes shared entries safe for concurrent readers.
 */

#include "service/graph_cache.hh"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "workload/generator.hh"
#include "workload/paper_figures.hh"
#include "workload/sb_io.hh"

namespace balance
{
namespace
{

/** A deterministic population of distinct superblocks. */
std::vector<Superblock>
population(int n)
{
    GeneratorParams params;
    Rng rng(0xcafef00d1234ULL);
    std::vector<Superblock> out;
    for (int i = 0; i < n; ++i)
        out.push_back(generateSuperblock(
            rng, params, "cache_sb_" + std::to_string(i)));
    return out;
}

TEST(GraphCache, MissThenHitSharesOneEntry)
{
    GraphContextCache cache(8);
    bool hit = true;
    auto first = cache.acquire(paperFigure6(), &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits(), 0);
    EXPECT_EQ(cache.size(), 1u);

    // A second acquire — even from a freshly parsed copy with its own
    // object identity — lands on the same entry.
    Superblock copy = parseSuperblock(writeSuperblock(paperFigure6()));
    auto second = cache.acquire(copy, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(cache.size(), 1u);
}

TEST(GraphCache, DistinctContentGetsDistinctEntries)
{
    GraphContextCache cache(16);
    std::vector<Superblock> sbs = population(5);
    std::vector<std::shared_ptr<const CachedGraph>> held;
    for (const Superblock &sb : sbs)
        held.push_back(cache.acquire(sb));
    EXPECT_EQ(cache.size(), 5u);
    EXPECT_EQ(cache.misses(), 5);
    for (std::size_t i = 0; i < held.size(); ++i)
        for (std::size_t j = i + 1; j < held.size(); ++j)
            EXPECT_NE(held[i].get(), held[j].get());
}

TEST(GraphCache, EvictsLeastRecentlyUsedAtCapacity)
{
    GraphContextCache cache(2);
    std::vector<Superblock> sbs = population(3);

    cache.acquire(sbs[0]);
    cache.acquire(sbs[1]);
    // Touch 0 so 1 is the LRU victim when 2 arrives.
    bool hit = false;
    cache.acquire(sbs[0], &hit);
    EXPECT_TRUE(hit);
    cache.acquire(sbs[2]);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1);

    cache.acquire(sbs[0], &hit);
    EXPECT_TRUE(hit) << "recently-touched entry was evicted";
    cache.acquire(sbs[1], &hit);
    EXPECT_FALSE(hit) << "LRU entry survived past capacity";
}

TEST(GraphCache, EvictedEntriesStayUsableWhileHeld)
{
    GraphContextCache cache(1);
    std::vector<Superblock> sbs = population(2);
    auto held = cache.acquire(sbs[0]);
    cache.acquire(sbs[1]); // evicts sbs[0]'s entry
    EXPECT_EQ(cache.size(), 1u);

    // The shared_ptr keeps the entry (and the context's underlying
    // superblock) alive and readable.
    EXPECT_EQ(held->sb.numOps(), sbs[0].numOps());
    EXPECT_GE(held->ctx->criticalPath(), 0);
    EXPECT_EQ(held->canonical, writeSuperblock(sbs[0]));
}

TEST(GraphCache, HashIsStableAndContentSensitive)
{
    std::string a = writeSuperblock(paperFigure6());
    std::string b = writeSuperblock(paperFigure1(0.25));
    EXPECT_EQ(GraphContextCache::hashText(a),
              GraphContextCache::hashText(a));
    EXPECT_NE(GraphContextCache::hashText(a),
              GraphContextCache::hashText(b));
}

TEST(GraphCache, WarmedEntriesServeConcurrentReaders)
{
    GraphContextCache cache(4);
    Superblock sb = paperFigure6();
    auto entry = cache.acquire(sb);

    // Entries are published fully warmed, so concurrent reads of the
    // lazy accessors must be race-free (run under TSan via the
    // parallel label).
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&entry] {
            const GraphContext &ctx = *entry->ctx;
            for (int bi = 0; bi < ctx.sb().numBranches(); ++bi) {
                (void)ctx.closureOps(bi);
                (void)ctx.reversedClosure(bi);
            }
        });
    }
    for (std::thread &t : readers)
        t.join();

    // Concurrent acquires of the same content all hit one entry.
    std::vector<std::thread> acquirers;
    std::vector<std::shared_ptr<const CachedGraph>> got(8);
    for (int t = 0; t < 8; ++t) {
        acquirers.emplace_back(
            [&cache, &sb, &got, t] { got[std::size_t(t)] = cache.acquire(sb); });
    }
    for (std::thread &t : acquirers)
        t.join();
    for (const auto &g : got)
        EXPECT_EQ(g.get(), entry.get());
}

} // namespace
} // namespace balance
