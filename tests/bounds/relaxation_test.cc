#include "bounds/relaxation.hh"

#include <gtest/gtest.h>

#include "graph/builder.hh"

namespace balance
{
namespace
{

TEST(RimJainCore, NoConflictNoTardiness)
{
    MachineModel m = MachineModel::gp2();
    std::vector<RelaxItem> items = {
        {0, OpClass::IntAlu, 0, 0},
        {1, OpClass::IntAlu, 0, 0},
        {2, OpClass::IntAlu, 1, 1},
    };
    EXPECT_LE(rjMaxTardiness(m, items), 0);
}

TEST(RimJainCore, WidthForcesTardiness)
{
    MachineModel m = MachineModel::gp2();
    // Three ops all due in cycle 0 on a 2-wide machine: one slips.
    std::vector<RelaxItem> items = {
        {0, OpClass::IntAlu, 0, 0},
        {1, OpClass::IntAlu, 0, 0},
        {2, OpClass::IntAlu, 0, 0},
    };
    EXPECT_EQ(rjMaxTardiness(m, items), 1);
}

TEST(RimJainCore, EarlyWindowsRespected)
{
    MachineModel m = MachineModel::gp1();
    // The early time pushes the single op past its deadline.
    std::vector<RelaxItem> items = {{0, OpClass::IntAlu, 5, 3}};
    EXPECT_EQ(rjMaxTardiness(m, items), 2);
}

TEST(RimJainCore, PoolsDoNotInterfere)
{
    MachineModel m = MachineModel::fs4();
    std::vector<RelaxItem> items = {
        {0, OpClass::IntAlu, 0, 0},
        {1, OpClass::Memory, 0, 0},
        {2, OpClass::FloatAlu, 0, 0},
        {3, OpClass::Branch, 0, 0},
    };
    EXPECT_LE(rjMaxTardiness(m, items), 0);
}

TEST(RimJainCore, SamePoolSerializes)
{
    MachineModel m = MachineModel::fs4();
    std::vector<RelaxItem> items = {
        {0, OpClass::Memory, 0, 1},
        {1, OpClass::Memory, 0, 1},
        {2, OpClass::Memory, 0, 1},
    };
    EXPECT_EQ(rjMaxTardiness(m, items), 1); // third lands in cycle 2
}

TEST(RimJainCore, CountsTrips)
{
    MachineModel m = MachineModel::gp1();
    std::vector<RelaxItem> items = {
        {0, OpClass::IntAlu, 0, 0},
        {1, OpClass::IntAlu, 0, 1},
    };
    BoundCounters counters;
    rjMaxTardiness(m, items, &counters);
    EXPECT_GT(counters.trips, 0);
}

TEST(Dag, FromSuperblockMirrorsAdjacency)
{
    SuperblockBuilder b("t");
    OpId x = b.addOp(OpClass::IntAlu, 1);
    OpId y = b.addOp(OpClass::Memory, 2);
    OpId f = b.addBranch(1.0);
    b.addEdge(x, y);
    b.addEdge(y, f);
    Superblock sb = b.build();

    Dag dag = Dag::fromSuperblock(sb);
    ASSERT_EQ(dag.n(), 3);
    EXPECT_EQ(dag.cls[0], OpClass::IntAlu);
    EXPECT_EQ(dag.cls[2], OpClass::Branch);
    ASSERT_EQ(dag.preds(2).size(), 1u);
    EXPECT_EQ(dag.preds(2)[0].op, 1);
    EXPECT_EQ(dag.preds(2)[0].latency, 2);
}

TEST(Dag, ReversedClosureFlipsEdges)
{
    SuperblockBuilder b("t");
    OpId x = b.addOp(OpClass::IntAlu, 1);
    OpId y = b.addOp(OpClass::Memory, 2);
    OpId f = b.addBranch(1.0);
    b.addEdge(x, y);
    b.addEdge(y, f);
    Superblock sb = b.build();

    DynBitset nodes(3);
    nodes.setAll();
    std::vector<OpId> newToOld;
    Dag rev = Dag::reversedClosure(sb, nodes, &newToOld);
    ASSERT_EQ(rev.n(), 3);
    // New node 0 is the original branch (last op).
    EXPECT_EQ(newToOld[0], f);
    EXPECT_EQ(newToOld[2], x);
    EXPECT_EQ(rev.cls[0], OpClass::Branch);
    // Reversed edge f -> y keeps latency 2.
    ASSERT_EQ(rev.preds(1).size(), 1u);
    EXPECT_EQ(rev.preds(1)[0].op, 0);
    EXPECT_EQ(rev.preds(1)[0].latency, 2);
}

TEST(Dag, HeightToMatchesForward)
{
    SuperblockBuilder b("t");
    OpId x = b.addOp(OpClass::IntAlu, 1);
    OpId y = b.addOp(OpClass::IntAlu, 3);
    OpId f = b.addBranch(1.0);
    b.addEdge(x, y);
    b.addEdge(y, f);
    Superblock sb = b.build();
    Dag dag = Dag::fromSuperblock(sb);
    auto height = dagHeightTo(dag, 2);
    EXPECT_EQ(height[2], 0);
    EXPECT_EQ(height[1], 3);
    EXPECT_EQ(height[0], 4);
}

} // namespace
} // namespace balance
