/**
 * @file
 * Golden equivalence between the optimized bound engine and the
 * retained naive reference (bounds/reference.hh). The scratch-arena
 * engine promises *bitwise identical* results — same doubles, same
 * Table 2 trip counts — across a seeded workload covering all eight
 * program profiles and the six paper machine configurations.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "bounds/bound_limits.hh"
#include "bounds/bound_scratch.hh"
#include "bounds/reference.hh"
#include "bounds/relaxation.hh"
#include "bounds/superblock_bounds.hh"
#include "graph/builder.hh"
#include "workload/suite.hh"

namespace balance
{
namespace
{

void
expectBoundsIdentical(const WctBounds &got, const WctBounds &want,
                      const std::string &where)
{
    // EXPECT_EQ on doubles is exact comparison: bitwise identity is
    // the contract, not closeness.
    EXPECT_EQ(got.cp, want.cp) << where;
    EXPECT_EQ(got.hu, want.hu) << where;
    EXPECT_EQ(got.rj, want.rj) << where;
    EXPECT_EQ(got.lc, want.lc) << where;
    EXPECT_EQ(got.pw, want.pw) << where;
    EXPECT_EQ(got.tw, want.tw) << where;
}

void
expectCountersIdentical(const BoundCounterSet &got,
                        const BoundCounterSet &want,
                        const std::string &where)
{
    EXPECT_EQ(got.cp.trips, want.cp.trips) << where;
    EXPECT_EQ(got.hu.trips, want.hu.trips) << where;
    EXPECT_EQ(got.rj.trips, want.rj.trips) << where;
    EXPECT_EQ(got.lc.trips, want.lc.trips) << where;
    EXPECT_EQ(got.lcReverse.trips, want.lcReverse.trips) << where;
    EXPECT_EQ(got.pw.trips, want.pw.trips) << where;
    EXPECT_EQ(got.tw.trips, want.tw.trips) << where;
}

TEST(BoundEngineGolden, SuiteBitwiseIdenticalAcrossMachines)
{
    // All eight program profiles at a sampled scale; every machine
    // config from the paper. One BoundScratch reused across every
    // (superblock, machine) pair — stale-state bleed between calls
    // would show up as a mismatch here.
    std::vector<BenchmarkProgram> suite =
        buildSuite({0x5eedbeefcafe1995ULL, 0.005});
    ASSERT_EQ(suite.size(), 8u);

    std::vector<MachineModel> machines = MachineModel::paperConfigs();
    ASSERT_EQ(machines.size(), 6u);

    for (const MachineModel &m : machines) {
        BoundScratch scratch(m);
        for (const BenchmarkProgram &prog : suite) {
            ASSERT_FALSE(prog.superblocks.empty()) << prog.name;
            for (const Superblock &sb : prog.superblocks) {
                GraphContext ctx(sb);
                std::string where =
                    prog.name + "/" + sb.name() + "/" + m.name();

                BoundCounterSet engineCounters, refCounters;
                WctBounds engine = computeWctBounds(
                    ctx, m, {}, &engineCounters, &scratch);
                WctBounds ref = reference::computeWctBounds(
                    ctx, m, {}, &refCounters);

                expectBoundsIdentical(engine, ref, where);
                expectCountersIdentical(engineCounters, refCounters,
                                        where);
            }
        }
    }
}

TEST(BoundEngineGolden, PairPointsIdentical)
{
    // Beyond the aggregates: every per-pair tradeoff point the
    // Balance scheduler steers by must match the naive sweep.
    std::vector<BenchmarkProgram> suite =
        buildSuite({0x5eedbeefcafe1995ULL, 0.005});
    const MachineModel m = MachineModel::gp4();
    BoundScratch scratch(m);

    int pairsChecked = 0;
    for (const BenchmarkProgram &prog : suite) {
        for (const Superblock &sb : prog.superblocks) {
            GraphContext ctx(sb);
            BoundsToolkit toolkit(ctx, m, {}, nullptr, &scratch);
            reference::PairwiseResult ref = reference::pairwiseBounds(
                ctx, m, toolkit.earlyRC(), toolkit.lateRCAll());

            const PairwiseBounds *pw = toolkit.pairwise();
            ASSERT_NE(pw, nullptr);
            ASSERT_EQ(pw->numBranches(), ref.b);
            for (int bi = 0; bi < ref.b; ++bi) {
                for (int bj = bi + 1; bj < ref.b; ++bj) {
                    const PairPoint &a = pw->pair(bi, bj);
                    const PairPoint &e = ref.pair(bi, bj);
                    EXPECT_EQ(a.x, e.x)
                        << sb.name() << " pair " << bi << "," << bj;
                    EXPECT_EQ(a.y, e.y)
                        << sb.name() << " pair " << bi << "," << bj;
                    ++pairsChecked;
                }
            }
            EXPECT_EQ(pw->superblockWct(), ref.wct) << sb.name();
        }
    }
    EXPECT_GT(pairsChecked, 0);
}

TEST(BoundEngineGolden, ScratchReuseMatchesFreshScratch)
{
    // The same superblock computed twice through one scratch, and
    // once through a fresh one: all three bitwise identical.
    std::vector<BenchmarkProgram> suite =
        buildSuite({0xfeedULL, 0.005});
    const Superblock &sb = suite.front().superblocks.front();
    GraphContext ctx(sb);
    const MachineModel m = MachineModel::fs8();

    BoundScratch reused(m);
    WctBounds first = computeWctBounds(ctx, m, {}, nullptr, &reused);
    WctBounds second = computeWctBounds(ctx, m, {}, nullptr, &reused);
    BoundScratch fresh(m);
    WctBounds third = computeWctBounds(ctx, m, {}, nullptr, &fresh);

    expectBoundsIdentical(second, first, sb.name());
    expectBoundsIdentical(third, first, sb.name());
}

TEST(NegInfBound, EmptyItemsAllOverloads)
{
    // The empty relaxation must keep returning the named sentinel
    // through every overload, including the scratch-table fast path.
    MachineModel m = MachineModel::gp2();
    std::vector<RelaxItem> items;

    EXPECT_EQ(rjMaxTardiness(m, items), negInfBound);

    ResourceState table(m);
    EXPECT_EQ(rjMaxTardiness(m, items, table), negInfBound);
    EXPECT_EQ(rjMaxTardinessPresorted(m, items, table), negInfBound);
}

TEST(NegInfBound, SentinelSurvivesMaxClamp)
{
    // Consumers compose the relaxation as cp + max(0, tard): the
    // sentinel must stay safely negative after typical offsets so an
    // empty relaxation never inflates a bound.
    EXPECT_LT(negInfBound, 0);
    EXPECT_LT(negInfBound + 1000000, 0);
    EXPECT_EQ(std::max(0, negInfBound), 0);
}

TEST(NegInfBound, EmptyRelaxationThroughComposition)
{
    // A superblock whose only operation is its branch: the pairwise
    // and triplewise paths degenerate, every relax set reachable
    // from composition is minimal, and the bound must equal the
    // branch's trivial issue bound — identically in both engines.
    SuperblockBuilder b("lone-branch");
    b.addBranch(1.0);
    Superblock sb = b.build();
    GraphContext ctx(sb);

    for (const MachineModel &m : MachineModel::paperConfigs()) {
        BoundCounterSet engineCounters, refCounters;
        WctBounds engine =
            computeWctBounds(ctx, m, {}, &engineCounters);
        WctBounds ref = reference::computeWctBounds(
            ctx, m, {}, &refCounters);
        expectBoundsIdentical(engine, ref, m.name());
        expectCountersIdentical(engineCounters, refCounters, m.name());
        // One op issues in cycle 0; its latency pads the WCT.
        EXPECT_GT(engine.cp, 0.0);
        EXPECT_GE(engine.pw, engine.lc);
    }
}

} // namespace
} // namespace balance
