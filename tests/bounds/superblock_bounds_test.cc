#include "bounds/superblock_bounds.hh"

#include <gtest/gtest.h>

#include "workload/generator.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

TEST(WctFromBranchEarly, WeightsAndLatencies)
{
    Superblock sb = paperFigure1(0.25);
    // Branch latencies are 1: wct = 0.25*(2+1) + 0.75*(8+1).
    EXPECT_NEAR(wctFromBranchEarly(sb, {2, 8}),
                0.25 * 3 + 0.75 * 9, 1e-12);
}

TEST(WctBounds, TightestIsMax)
{
    WctBounds b;
    b.cp = 1.0;
    b.hu = 2.0;
    b.rj = 1.5;
    b.lc = 2.5;
    b.pw = 3.0;
    b.tw = 2.9;
    EXPECT_DOUBLE_EQ(b.tightest(), 3.0);
}

TEST(ComputeWctBounds, OrderingOnFigures)
{
    for (const Superblock &sb :
         {paperFigure1(), paperFigure2(), paperFigure3(),
          paperFigure4(0.3), paperFigure6()}) {
        for (const MachineModel &m : MachineModel::paperConfigs()) {
            GraphContext ctx(sb);
            WctBounds b = computeWctBounds(ctx, m);
            // Resource-aware bounds dominate the dependence bound.
            EXPECT_GE(b.hu, b.cp - 1e-9) << sb.name() << m.name();
            EXPECT_GE(b.rj, b.cp - 1e-9) << sb.name() << m.name();
            EXPECT_GE(b.lc, b.rj - 1e-9) << sb.name() << m.name();
            // PW clamps to the EarlyRC floor, so it dominates LC.
            EXPECT_GE(b.pw, b.lc - 1e-9) << sb.name() << m.name();
        }
    }
}

TEST(ComputeWctBounds, OrderingOnRandomPopulation)
{
    Rng rng(4242);
    GeneratorParams params;
    for (int trial = 0; trial < 30; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "r" + std::to_string(trial));
        GraphContext ctx(sb);
        for (const MachineModel &m :
             {MachineModel::gp1(), MachineModel::gp4(),
              MachineModel::fs6()}) {
            WctBounds b = computeWctBounds(ctx, m);
            EXPECT_GE(b.hu, b.cp - 1e-9);
            EXPECT_GE(b.rj, b.cp - 1e-9);
            EXPECT_GE(b.lc, b.rj - 1e-9);
            EXPECT_GE(b.pw, b.lc - 1e-9);
            EXPECT_GT(b.cp, 0.0);
        }
    }
}

TEST(ComputeWctBounds, DisablingPairwiseFallsBack)
{
    Superblock sb = paperFigure4(0.3);
    GraphContext ctx(sb);
    BoundConfig config;
    config.computePairwise = false;
    WctBounds b = computeWctBounds(ctx, MachineModel::gp2(), config);
    EXPECT_DOUBLE_EQ(b.pw, b.lc);
    EXPECT_DOUBLE_EQ(b.tw, b.lc);
}

TEST(BoundsToolkit, ProvidesArtifacts)
{
    Superblock sb = paperFigure3();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    BoundsToolkit toolkit(ctx, m);
    EXPECT_EQ(int(toolkit.earlyRC().size()), sb.numOps());
    EXPECT_NE(toolkit.pairwise(), nullptr);
    for (int bi = 0; bi < sb.numBranches(); ++bi)
        EXPECT_EQ(int(toolkit.lateRC(bi).size()), sb.numOps());
}

TEST(BoundsToolkit, CountersAccumulate)
{
    Superblock sb = paperFigure1();
    GraphContext ctx(sb);
    BoundCounterSet counters;
    BoundsToolkit toolkit(ctx, MachineModel::gp2(), {}, &counters);
    EXPECT_GT(counters.lc.trips, 0);
    EXPECT_GT(counters.lcReverse.trips, 0);
    EXPECT_GT(counters.pw.trips, 0);
}

TEST(ComputeWctBounds, PairwiseBeatsLcOnFigure4)
{
    // The paper's Observation 3 example: PW captures the branch
    // tradeoff that per-branch bounds cannot.
    Superblock sb = paperFigure4(0.3);
    GraphContext ctx(sb);
    WctBounds b = computeWctBounds(ctx, MachineModel::gp2());
    EXPECT_GT(b.pw, b.lc + 1e-9);
}

} // namespace
} // namespace balance
