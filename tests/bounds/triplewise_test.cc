#include "bounds/triplewise.hh"

#include <gtest/gtest.h>

#include "bounds/branch_bounds.hh"
#include "graph/builder.hh"
#include "workload/generator.hh"

namespace balance
{
namespace
{

struct TripleFixture
{
    Superblock sb;
    GraphContext ctx;
    MachineModel machine;
    std::vector<int> earlyRC;
    std::vector<std::vector<int>> lateRCs;
    std::unique_ptr<PairwiseBounds> pw;

    explicit TripleFixture(Superblock s,
                           MachineModel m = MachineModel::gp2())
        : sb(std::move(s)), ctx(sb), machine(std::move(m)),
          earlyRC(lcEarlyRCForSuperblock(ctx, machine))
    {
        for (int bi = 0; bi < sb.numBranches(); ++bi)
            lateRCs.push_back(lateRCFor(ctx, machine, bi, earlyRC));
        pw = std::make_unique<PairwiseBounds>(ctx, machine, earlyRC,
                                              lateRCs);
    }
};

/** Three-exit superblock with genuine contention on GP1. */
Superblock
threeExits()
{
    SuperblockBuilder b("three");
    OpId a = b.addOp(OpClass::IntAlu, 1);
    OpId br0 = b.addBranch(0.2);
    b.addEdge(a, br0);
    OpId c = b.addOp(OpClass::IntAlu, 1);
    OpId br1 = b.addBranch(0.3);
    b.addEdge(c, br1);
    OpId d = b.addOp(OpClass::IntAlu, 1);
    OpId br2 = b.addBranch(0.5);
    b.addEdge(d, br2);
    return b.build();
}

TEST(Triplewise, FallsBackBelowThreeBranches)
{
    SuperblockBuilder b("two");
    OpId a = b.addOp(OpClass::IntAlu, 1);
    OpId br0 = b.addBranch(0.4);
    b.addEdge(a, br0);
    OpId br1 = b.addBranch(0.6);
    (void)br1;
    TripleFixture f(b.build());
    TriplewiseResult tw = computeTriplewise(
        f.ctx, f.machine, f.earlyRC, f.lateRCs, *f.pw);
    EXPECT_TRUE(tw.fellBack);
    EXPECT_DOUBLE_EQ(tw.wct, f.pw->superblockWct());
}

TEST(Triplewise, FallsBackAboveBranchCap)
{
    TripleFixture f(threeExits());
    TriplewiseOptions opts;
    opts.maxBranches = 2;
    TriplewiseResult tw = computeTriplewise(
        f.ctx, f.machine, f.earlyRC, f.lateRCs, *f.pw, opts);
    EXPECT_TRUE(tw.fellBack);
}

TEST(Triplewise, EvaluatesTriples)
{
    TripleFixture f(threeExits(), MachineModel::gp1());
    TriplewiseResult tw = computeTriplewise(
        f.ctx, f.machine, f.earlyRC, f.lateRCs, *f.pw);
    EXPECT_FALSE(tw.fellBack);
    EXPECT_EQ(tw.triplesEvaluated, 1);
    EXPECT_GT(tw.wct, 0.0);
}

TEST(Triplewise, ExactOnSerializedThreeExits)
{
    // On GP1 the six operations serialize: issue cycles are exactly
    // 1, 3, 5 for the three exits in any non-idle schedule, so the
    // weighted completion is 0.2*2 + 0.3*4 + 0.5*6 = 4.6 and the TW
    // bound should reach it.
    TripleFixture f(threeExits(), MachineModel::gp1());
    TriplewiseResult tw = computeTriplewise(
        f.ctx, f.machine, f.earlyRC, f.lateRCs, *f.pw);
    EXPECT_NEAR(tw.wct, 4.6, 1e-9);
}

TEST(Triplewise, AtLeastPairwiseOnSmallPopulation)
{
    // TW is not guaranteed above PW in general (the paper reports
    // 0.95% of superblocks where it is worse), but it must stay a
    // valid bound and normally dominates; check validity here via
    // the integration oracle test and monotonicity on average.
    Rng rng(2024);
    GeneratorParams params;
    params.blockGeoP = 0.5;
    double pwSum = 0.0;
    double twSum = 0.0;
    int used = 0;
    for (int trial = 0; trial < 25; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "t" + std::to_string(trial));
        if (sb.numBranches() < 3 || sb.numBranches() > 8)
            continue;
        TripleFixture f(std::move(sb));
        TriplewiseResult tw = computeTriplewise(
            f.ctx, f.machine, f.earlyRC, f.lateRCs, *f.pw);
        pwSum += f.pw->superblockWct();
        twSum += tw.wct;
        ++used;
    }
    ASSERT_GE(used, 3);
    EXPECT_GE(twSum, pwSum - 1e-6);
}

TEST(Triplewise, BudgetExhaustionStaysValid)
{
    TripleFixture f(threeExits(), MachineModel::gp1());
    TriplewiseOptions opts;
    opts.maxEvals = 1; // starves the enumeration after one eval
    TriplewiseResult tw = computeTriplewise(
        f.ctx, f.machine, f.earlyRC, f.lateRCs, *f.pw, opts);
    // Either it fell back or produced a (weaker but valid) bound.
    EXPECT_LE(tw.wct, 4.6 + 1e-9);
    EXPECT_GT(tw.wct, 0.0);
}

} // namespace
} // namespace balance
