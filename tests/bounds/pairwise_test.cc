#include "bounds/pairwise.hh"

#include <gtest/gtest.h>

#include "bounds/branch_bounds.hh"
#include "workload/generator.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

struct PairFixture
{
    Superblock sb;
    GraphContext ctx;
    MachineModel machine;
    std::vector<int> earlyRC;
    std::vector<std::vector<int>> lateRCs;

    explicit PairFixture(Superblock s,
                         MachineModel m = MachineModel::gp2())
        : sb(std::move(s)), ctx(sb), machine(std::move(m)),
          earlyRC(lcEarlyRCForSuperblock(ctx, machine))
    {
        for (int bi = 0; bi < sb.numBranches(); ++bi)
            lateRCs.push_back(lateRCFor(ctx, machine, bi, earlyRC));
    }
};

TEST(Pairwise, NoTradeoffWhenSlackExists)
{
    // Figure 1: the one-cycle gap lets both exits hit their bounds.
    PairFixture f(paperFigure1(0.2));
    PairPoint pt = computePairBound(f.ctx, f.machine, f.earlyRC,
                                    f.lateRCs[1], 0, 1, 0.2, 0.8);
    EXPECT_EQ(pt.x, 2);
    EXPECT_EQ(pt.y, 8);
}

TEST(Pairwise, Figure4FrontierLowSideProbability)
{
    // With a light side exit the min-cost point delays the side
    // exit: (3, 4).
    PairFixture f(paperFigure4(0.2));
    PairPoint pt = computePairBound(f.ctx, f.machine, f.earlyRC,
                                    f.lateRCs[1], 0, 1, 0.2, 0.8);
    EXPECT_EQ(pt.x, 3);
    EXPECT_EQ(pt.y, 4);
}

TEST(Pairwise, Figure4FrontierHighSideProbability)
{
    // With a heavy side exit the min-cost point serves it first:
    // (2, 5).
    PairFixture f(paperFigure4(0.8));
    PairPoint pt = computePairBound(f.ctx, f.machine, f.earlyRC,
                                    f.lateRCs[1], 0, 1, 0.8, 0.2);
    EXPECT_EQ(pt.x, 2);
    EXPECT_EQ(pt.y, 5);
}

TEST(Pairwise, PointsDominateIndividualBounds)
{
    Rng rng(99);
    GeneratorParams params;
    for (int trial = 0; trial < 20; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "p" + std::to_string(trial));
        if (sb.numBranches() < 2)
            continue;
        PairFixture f(std::move(sb));
        for (int bi = 0; bi < f.sb.numBranches(); ++bi) {
            for (int bj = bi + 1; bj < f.sb.numBranches(); ++bj) {
                OpId i = f.sb.branches()[std::size_t(bi)];
                OpId j = f.sb.branches()[std::size_t(bj)];
                PairPoint pt = computePairBound(
                    f.ctx, f.machine, f.earlyRC, f.lateRCs[std::size_t(bj)],
                    bi, bj, f.sb.exitProb(i), f.sb.exitProb(j));
                EXPECT_GE(pt.x, f.earlyRC[std::size_t(i)]);
                EXPECT_GE(pt.y, f.earlyRC[std::size_t(j)]);
                // Branch order is fixed by control flow.
                EXPECT_GT(pt.y, pt.x);
            }
        }
    }
}

TEST(PairwiseBounds, SuperblockWctAtLeastNaiveLc)
{
    Rng rng(7);
    GeneratorParams params;
    for (int trial = 0; trial < 20; ++trial) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params,
                                           "w" + std::to_string(trial));
        for (const MachineModel &m :
             {MachineModel::gp2(), MachineModel::fs4()}) {
            GraphContext ctx(sb);
            auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
            std::vector<std::vector<int>> lateRCs;
            for (int bi = 0; bi < sb.numBranches(); ++bi)
                lateRCs.push_back(lateRCFor(ctx, m, bi, earlyRC));
            PairwiseBounds pw(ctx, m, earlyRC, lateRCs);

            double naive = 0.0;
            for (OpId b : sb.branches()) {
                naive += sb.exitProb(b) *
                         (earlyRC[std::size_t(b)] + sb.op(b).latency);
            }
            EXPECT_GE(pw.superblockWct(), naive - 1e-9)
                << sb.name() << " on " << m.name();
        }
    }
}

TEST(PairwiseBounds, SingleExitFallsBackToEarlyRC)
{
    Superblock sb = paperFigure6();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    std::vector<std::vector<int>> lateRCs = {
        lateRCFor(ctx, m, 0, earlyRC)};
    PairwiseBounds pw(ctx, m, earlyRC, lateRCs);
    OpId b = sb.branches()[0];
    EXPECT_DOUBLE_EQ(pw.superblockWct(),
                     earlyRC[std::size_t(b)] + sb.op(b).latency);
}

TEST(PairwiseBounds, Figure4SuperblockBoundTracksCrossover)
{
    // Below the 0.5 crossover the PW bound evaluates the (3,4)
    // point; above it the (2,5) point.
    {
        PairFixture f(paperFigure4(0.2));
        PairwiseBounds pw(f.ctx, f.machine, f.earlyRC, f.lateRCs);
        EXPECT_NEAR(pw.superblockWct(), 0.2 * 4 + 0.8 * 5, 1e-9);
    }
    {
        PairFixture f(paperFigure4(0.8));
        PairwiseBounds pw(f.ctx, f.machine, f.earlyRC, f.lateRCs);
        EXPECT_NEAR(pw.superblockWct(), 0.8 * 3 + 0.2 * 6, 1e-9);
    }
}

} // namespace
} // namespace balance
