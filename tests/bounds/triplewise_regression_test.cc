/**
 * Regression: on this 37-op, 3-exit superblock (drawn from the full
 * synthetic suite) the triplewise sweep used to stop its first
 * latency dimension at EarlyRC[j] + 1, borrowing the pairwise
 * bound's Theorem 2 termination property. That property does not
 * transfer to triples (the i-coordinate derives from the k-anchored
 * relaxation), and on GP4 the resulting "bound" of 7.631 exceeded a
 * G*-achievable 7.293. The fixed sweep must stay at or below every
 * valid schedule, and here it is exactly tight.
 */

#include <gtest/gtest.h>

#include "bounds/superblock_bounds.hh"
#include "eval/experiment.hh"
#include "workload/sb_io.hh"

namespace balance
{
namespace
{

const char *fixtureText = R"SB(
superblock ijpeg.sb105
freq 121.237
op 0 int 1
op 1 mem 1
op 2 mem 1
branch 3 0.338214 1
op 4 mem 2
op 5 int 1
op 6 int 1
op 7 int 1
op 8 int 1
op 9 mem 2
op 10 int 1
op 11 flt 1
op 12 mem 1
op 13 int 1
op 14 int 1
op 15 int 1
op 16 mem 2
op 17 mem 2
op 18 int 1
op 19 mem 2
branch 20 0.00139142 1
op 21 mem 1
op 22 int 1
op 23 int 1
op 24 int 1
op 25 int 1
op 26 int 1
op 27 mem 2
op 28 int 1
op 29 mem 2
op 30 mem 2
op 31 int 1
op 32 int 1
op 33 int 1
op 34 flt 3
op 35 mem 1
branch 36 0.660395 1
edge 0 3 1
edge 0 7 1
edge 0 17 1
edge 0 32 1
edge 1 3 1
edge 2 3 1
edge 2 8 1
edge 2 10 1
edge 2 30 1
edge 3 20 1
edge 4 20 2
edge 4 29 2
edge 4 31 2
edge 5 11 1
edge 5 18 1
edge 5 20 1
edge 5 30 1
edge 5 31 1
edge 5 33 1
edge 6 8 1
edge 6 19 1
edge 6 20 1
edge 6 24 1
edge 7 8 1
edge 7 20 1
edge 7 23 1
edge 7 29 1
edge 8 11 1
edge 8 20 1
edge 9 20 2
edge 10 15 1
edge 10 20 1
edge 10 29 1
edge 11 20 1
edge 12 18 1
edge 12 20 1
edge 12 31 1
edge 12 35 1
edge 13 20 1
edge 13 31 1
edge 13 33 1
edge 14 15 1
edge 14 20 1
edge 14 31 1
edge 15 20 1
edge 16 17 2
edge 16 20 2
edge 16 22 2
edge 17 20 2
edge 17 32 2
edge 18 20 1
edge 18 21 1
edge 19 20 2
edge 19 25 2
edge 19 33 2
edge 20 36 1
edge 21 28 1
edge 21 31 1
edge 21 36 1
edge 22 24 1
edge 22 36 1
edge 23 24 1
edge 23 36 1
edge 24 25 1
edge 24 36 1
edge 25 32 1
edge 25 33 1
edge 25 36 1
edge 26 36 1
edge 27 36 2
edge 28 35 1
edge 28 36 1
edge 29 36 2
edge 30 33 2
edge 30 36 2
edge 31 32 1
edge 31 34 1
edge 31 35 1
edge 31 36 1
edge 32 35 1
edge 32 36 1
edge 33 36 1
edge 34 35 3
edge 34 36 3
edge 35 36 1
end
)SB";

TEST(TriplewiseRegression, BoundStaysBelowSchedules)
{
    Superblock sb = parseSuperblock(fixtureText);
    HeuristicSet set = HeuristicSet::paperSet();
    for (const MachineModel &m : MachineModel::paperConfigs()) {
        // evaluateSuperblock panics if any schedule beats a bound.
        SuperblockEval eval = evaluateSuperblock(sb, m, set);
        EXPECT_GT(eval.tightest, 0.0) << m.name();
    }
}

TEST(TriplewiseRegression, ExactOnGp4)
{
    Superblock sb = parseSuperblock(fixtureText);
    GraphContext ctx(sb);
    WctBounds b = computeWctBounds(ctx, MachineModel::gp4());
    // The repaired sweep reaches the true optimum here.
    EXPECT_NEAR(b.tw, 7.2929, 0.001);
    EXPECT_GE(b.tw, b.pw - 1e-9);
}

} // namespace
} // namespace balance
