/**
 * Regression tests for the sentinel/composition contract in
 * bounds/bound_limits.hh: the empty-relaxation sentinel must never
 * reach incumbent arithmetic, and composing a saturated anchor with
 * a large tardiness must clamp instead of overflowing int.
 */

#include <gtest/gtest.h>

#include <climits>

#include "bounds/bound_limits.hh"
#include "graph/analysis.hh"

namespace balance
{
namespace
{

TEST(BoundLimits, SentinelIsRecognizedEvenAfterDrift)
{
    EXPECT_TRUE(isNegInfBound(negInfBound));
    // Callers historically added anchors/latencies to the raw fold
    // result before guarding; the predicate must still catch those.
    EXPECT_TRUE(isNegInfBound(negInfBound + 1000000));
    EXPECT_TRUE(isNegInfBound(negInfBound / 2));
    EXPECT_FALSE(isNegInfBound(0));
    EXPECT_FALSE(isNegInfBound(-1));
    EXPECT_FALSE(isNegInfBound(negInfBound / 2 + 1));
}

TEST(BoundLimits, SentinelComposesToPlainAnchor)
{
    // An empty relaxation constrains nothing: the anchored bound
    // passes through and the sentinel never participates in any
    // later comparison or weighted sum.
    EXPECT_EQ(composeBound(17, negInfBound), 17);
    EXPECT_EQ(composeBound(0, negInfBound), 0);
    EXPECT_EQ(composeBound(maxBoundCycle, negInfBound), maxBoundCycle);
    // Identical to the historical `anchor + max(0, tard)` for every
    // non-sentinel value.
    EXPECT_EQ(composeBound(10, -3), 10);
    EXPECT_EQ(composeBound(10, 0), 10);
    EXPECT_EQ(composeBound(10, 5), 15);
}

TEST(BoundLimits, SaturatedBoundsDoNotOverflow)
{
    // A saturated anchor (a bound already clamped to the ceiling)
    // plus a large positive tardiness must clamp, not wrap to a
    // negative cycle that would then win every min/incumbent
    // comparison.
    EXPECT_EQ(composeBound(maxBoundCycle, maxBoundCycle), maxBoundCycle);
    EXPECT_EQ(composeBound(maxBoundCycle - 1, 2), maxBoundCycle);
    EXPECT_EQ(composeBound(INT_MAX - 4, 100), maxBoundCycle);
    // Values below the ceiling still compose exactly.
    EXPECT_EQ(composeBound(maxBoundCycle - 10, 4), maxBoundCycle - 6);
    // The result is always a sane cycle: non-negative, bounded.
    for (int anchor : {0, 1, 1 << 20, maxBoundCycle, INT_MAX - 1}) {
        for (int tard : {negInfBound, -5, 0, 3, maxBoundCycle}) {
            int v = composeBound(anchor, tard);
            EXPECT_GE(v, 0) << anchor << " " << tard;
            EXPECT_GE(v, std::min(anchor, maxBoundCycle))
                << anchor << " " << tard;
        }
    }
}

TEST(BoundLimits, CeilingMirrorsLateUnconstrained)
{
    // The saturation ceiling and the "unconstrained late time" are
    // the same magnitude, so a saturated early bound can never
    // exceed an unconstrained deadline by mere arithmetic.
    EXPECT_EQ(maxBoundCycle, lateUnconstrained);
    EXPECT_EQ(maxBoundCycle, -negInfBound);
}

} // namespace
} // namespace balance
