#include "bounds/branch_bounds.hh"

#include <gtest/gtest.h>

#include "graph/builder.hh"
#include "workload/generator.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

TEST(CpEarly, MatchesDependenceAnalysis)
{
    Superblock sb = paperFigure1();
    GraphContext ctx(sb);
    auto cp = cpEarly(ctx);
    ASSERT_EQ(cp.size(), 2u);
    EXPECT_EQ(cp[0], 1); // three independent preds, unit latency
    EXPECT_EQ(cp[1], 7); // the 7-op chain
}

TEST(HuEarly, CountsResourceNeeds)
{
    Superblock sb = paperFigure1();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    auto hu = huEarly(ctx, m);
    EXPECT_EQ(hu[0], 2); // ceil(3/2) preds before the side exit
    EXPECT_EQ(hu[1], 8); // ceil(16/2) = 8 beats the chain's 7
}

TEST(HuEarly, Figure6ErcBound)
{
    // The paper's ERC illustration: naive ceil(8/2) = 4, Hu finds 5.
    Superblock sb = paperFigure6();
    GraphContext ctx(sb);
    auto hu = huEarly(ctx, MachineModel::gp2());
    ASSERT_EQ(hu.size(), 1u);
    EXPECT_EQ(hu[0], 5);
}

TEST(RjEarly, AtLeastHuOnFigures)
{
    for (const Superblock &sb :
         {paperFigure1(), paperFigure2(), paperFigure3(),
          paperFigure4(0.3), paperFigure6()}) {
        GraphContext ctx(sb);
        for (const MachineModel &m : MachineModel::paperConfigs()) {
            auto cp = cpEarly(ctx);
            auto rj = rjEarly(ctx, m);
            for (std::size_t i = 0; i < cp.size(); ++i)
                EXPECT_GE(rj[i], cp[i]) << sb.name() << " " << m.name();
        }
    }
}

TEST(LcEarlyRC, Figure1FinalExit)
{
    Superblock sb = paperFigure1();
    GraphContext ctx(sb);
    auto earlyRC = lcEarlyRC(Dag::fromSuperblock(sb),
                             MachineModel::gp2());
    EXPECT_EQ(earlyRC[sb.branches()[1]], 8);
    EXPECT_EQ(earlyRC[sb.branches()[0]], 2);
}

TEST(LcEarlyRC, Theorem1MatchesFullComputation)
{
    // Theorem 1 is a pure speedup: the bounds must be identical with
    // and without the shortcut, on every machine, for a population
    // of random superblocks.
    Rng rng(123);
    GeneratorParams params;
    for (int trial = 0; trial < 40; ++trial) {
        Rng child = rng.fork();
        Superblock sb =
            generateSuperblock(child, params, "t" + std::to_string(trial));
        Dag dag = Dag::fromSuperblock(sb);
        for (const MachineModel &m : MachineModel::paperConfigs()) {
            LcOptions with;
            LcOptions without;
            without.useTheorem1 = false;
            EXPECT_EQ(lcEarlyRC(dag, m, with),
                      lcEarlyRC(dag, m, without))
                << sb.name() << " on " << m.name();
        }
    }
}

TEST(LcEarlyRC, Theorem1SavesWork)
{
    Rng rng(5);
    GeneratorParams params;
    Superblock sb = generateSuperblock(rng, params, "chainful");
    Dag dag = Dag::fromSuperblock(sb);
    MachineModel m = MachineModel::gp2();
    BoundCounters with;
    BoundCounters without;
    LcOptions noShortcut;
    noShortcut.useTheorem1 = false;
    lcEarlyRC(dag, m, {}, &with);
    lcEarlyRC(dag, m, noShortcut, &without);
    EXPECT_LE(with.trips, without.trips);
}

TEST(LcEarlyRC, MonotoneAlongEdges)
{
    Rng rng(321);
    GeneratorParams params;
    for (int trial = 0; trial < 20; ++trial) {
        Rng child = rng.fork();
        Superblock sb =
            generateSuperblock(child, params, "m" + std::to_string(trial));
        GraphContext ctx(sb);
        auto earlyRC =
            lcEarlyRCForSuperblock(ctx, MachineModel::fs4());
        // EarlyRC dominates EarlyDC and respects dependences.
        for (OpId v = 0; v < sb.numOps(); ++v) {
            EXPECT_GE(earlyRC[std::size_t(v)],
                      ctx.earlyDC()[std::size_t(v)]);
            for (const Adjacent &e : sb.succs(v)) {
                EXPECT_GE(earlyRC[std::size_t(e.op)],
                          earlyRC[std::size_t(v)] + e.latency);
            }
        }
    }
}

TEST(LateRC, Figure3TighterThanDependenceLate)
{
    Superblock sb = paperFigure3();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    OpId br9 = sb.branches()[1];
    ASSERT_EQ(earlyRC[std::size_t(br9)], 5);

    auto lateRC = lateRCFor(ctx, m, 1, earlyRC);
    // Dependence-only late times anchored at EarlyRC[br9] = 5:
    // op 4 (height 3) gets 2 and op 5 (height 2) gets 3. The
    // resource-aware late times must be one tighter: {6,7,8} cannot
    // issue in one cycle on GP2.
    EXPECT_EQ(lateRC[4], 1);
    EXPECT_EQ(lateRC[5], 2);
    // And the branch itself anchors at its EarlyRC.
    EXPECT_EQ(lateRC[std::size_t(br9)], 5);
}

TEST(LateRC, UnconstrainedOutsideClosure)
{
    Superblock sb = paperFigure3();
    GraphContext ctx(sb);
    MachineModel m = MachineModel::gp2();
    auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
    // Branch 3's closure excludes the block-2 chain.
    auto lateRC = lateRCFor(ctx, m, 0, earlyRC);
    EXPECT_EQ(lateRC[4], lateUnconstrained);
    EXPECT_EQ(lateRC[8], lateUnconstrained);
    EXPECT_NE(lateRC[0], lateUnconstrained);
}

TEST(LateRC, NeverAboveDependenceLate)
{
    Rng rng(77);
    GeneratorParams params;
    for (int trial = 0; trial < 15; ++trial) {
        Rng child = rng.fork();
        Superblock sb =
            generateSuperblock(child, params, "l" + std::to_string(trial));
        GraphContext ctx(sb);
        MachineModel m = MachineModel::gp2();
        auto earlyRC = lcEarlyRCForSuperblock(ctx, m);
        for (int bi = 0; bi < sb.numBranches(); ++bi) {
            OpId b = sb.branches()[std::size_t(bi)];
            auto lateRC = lateRCFor(ctx, m, bi, earlyRC);
            const auto &height = ctx.heightToBranch(bi);
            for (OpId v = 0; v <= b; ++v) {
                if (height[std::size_t(v)] < 0)
                    continue;
                int lateDC = earlyRC[std::size_t(b)] -
                             height[std::size_t(v)];
                EXPECT_LE(lateRC[std::size_t(v)], lateDC);
            }
        }
    }
}

} // namespace
} // namespace balance
