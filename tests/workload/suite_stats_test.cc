/**
 * Statistical validation of the synthetic suite against the envelope
 * DESIGN.md promises (the substitution argument leans on these shape
 * properties, so they are pinned here).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "support/stats.hh"
#include "workload/suite.hh"

namespace balance
{
namespace
{

class SuiteStats : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SuiteOptions opts;
        opts.scale = 0.05;
        population = new std::vector<BenchmarkProgram>(buildSuite(opts));
    }

    static void
    TearDownTestSuite()
    {
        delete population;
        population = nullptr;
    }

    static std::vector<BenchmarkProgram> *population;
};

std::vector<BenchmarkProgram> *SuiteStats::population = nullptr;

TEST_F(SuiteStats, SizeEnvelope)
{
    SampleStat ops;
    SampleStat branches;
    for (const auto &prog : *population) {
        for (const auto &sb : prog.superblocks) {
            ops.add(double(sb.numOps()));
            branches.add(double(sb.numBranches()));
            EXPECT_LE(sb.numOps(), 607);
            EXPECT_LE(sb.numBranches(), 200);
        }
    }
    // Mostly small superblocks with a meaningful tail, like compiled
    // SPECint regions.
    EXPECT_GE(ops.mean(), 10.0);
    EXPECT_LE(ops.mean(), 40.0);
    EXPECT_LE(ops.median(), 25.0);
    EXPECT_GE(branches.median(), 1.0);
    EXPECT_LE(branches.median(), 4.0);
}

TEST_F(SuiteStats, OperationClassMix)
{
    long long mem = 0;
    long long flt = 0;
    long long total = 0;
    for (const auto &prog : *population) {
        for (const auto &sb : prog.superblocks) {
            for (const Operation &o : sb.ops()) {
                if (o.isBranch())
                    continue;
                ++total;
                mem += o.cls == OpClass::Memory;
                flt += o.cls == OpClass::FloatAlu;
            }
        }
    }
    double memFrac = double(mem) / total;
    double fltFrac = double(flt) / total;
    // SPECint-like: heavy integer, ~30% memory, almost no float.
    EXPECT_GE(memFrac, 0.20);
    EXPECT_LE(memFrac, 0.40);
    EXPECT_LE(fltFrac, 0.05);
}

TEST_F(SuiteStats, ExitProfilesAreBiased)
{
    // Superblock formation picks likely paths: the final exit should
    // usually dominate the side exits.
    int finalDominates = 0;
    int multiExit = 0;
    for (const auto &prog : *population) {
        for (const auto &sb : prog.superblocks) {
            if (sb.numBranches() < 2)
                continue;
            ++multiExit;
            double finalProb = sb.exitProb(sb.branches().back());
            double maxSide = 0.0;
            for (int bi = 0; bi + 1 < sb.numBranches(); ++bi) {
                maxSide = std::max(
                    maxSide, sb.exitProb(sb.branches()[std::size_t(bi)]));
            }
            if (finalProb > maxSide)
                ++finalDominates;
        }
    }
    ASSERT_GT(multiExit, 50);
    EXPECT_GE(double(finalDominates) / multiExit, 0.85);
}

TEST_F(SuiteStats, FrequenciesHeavyTailed)
{
    SampleStat freq;
    for (const auto &prog : *population) {
        for (const auto &sb : prog.superblocks)
            freq.add(sb.execFrequency());
    }
    // Lognormal-ish: mean well above median.
    EXPECT_GT(freq.mean(), 1.5 * freq.median());
    EXPECT_GE(freq.percentile(1), 1.0); // floor of one execution
}

TEST_F(SuiteStats, LatenciesMatchPaperValues)
{
    for (const auto &prog : *population) {
        for (const auto &sb : prog.superblocks) {
            for (const Operation &o : sb.ops()) {
                switch (o.cls) {
                  case OpClass::IntAlu:
                    EXPECT_EQ(o.latency, 1);
                    break;
                  case OpClass::Memory:
                    EXPECT_TRUE(o.latency == 1 || o.latency == 2);
                    break;
                  case OpClass::FloatAlu:
                    EXPECT_TRUE(o.latency == 1 || o.latency == 3 ||
                                o.latency == 9);
                    break;
                  case OpClass::Branch:
                    EXPECT_EQ(o.latency, 1);
                    break;
                }
            }
        }
    }
}

} // namespace
} // namespace balance
