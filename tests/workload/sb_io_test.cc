#include "workload/sb_io.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "bounds/superblock_bounds.hh"
#include "workload/generator.hh"
#include "workload/paper_figures.hh"

namespace balance
{
namespace
{

TEST(SbIo, RoundTripFigure)
{
    Superblock orig = paperFigure2(0.4);
    Superblock copy = parseSuperblock(writeSuperblock(orig));
    ASSERT_EQ(copy.numOps(), orig.numOps());
    ASSERT_EQ(copy.numBranches(), orig.numBranches());
    EXPECT_EQ(copy.name(), orig.name());
    EXPECT_DOUBLE_EQ(copy.execFrequency(), orig.execFrequency());
    for (OpId v = 0; v < orig.numOps(); ++v) {
        EXPECT_EQ(copy.op(v).cls, orig.op(v).cls);
        EXPECT_EQ(copy.op(v).latency, orig.op(v).latency);
        EXPECT_DOUBLE_EQ(copy.op(v).exitProb, orig.op(v).exitProb);
        ASSERT_EQ(copy.succs(v).size(), orig.succs(v).size());
        for (std::size_t e = 0; e < copy.succs(v).size(); ++e) {
            EXPECT_EQ(copy.succs(v)[e].op, orig.succs(v)[e].op);
            EXPECT_EQ(copy.succs(v)[e].latency,
                      orig.succs(v)[e].latency);
        }
    }
}

TEST(SbIo, RoundTripRandomPopulation)
{
    Rng rng(111);
    GeneratorParams params;
    std::vector<Superblock> sbs;
    for (int i = 0; i < 10; ++i) {
        Rng child = rng.fork();
        sbs.push_back(
            generateSuperblock(child, params, "r" + std::to_string(i)));
    }
    std::ostringstream oss;
    writeSuperblocks(oss, sbs);
    std::istringstream iss(oss.str());
    auto copies = readSuperblocks(iss);
    ASSERT_EQ(copies.size(), sbs.size());
    for (std::size_t i = 0; i < sbs.size(); ++i) {
        EXPECT_EQ(copies[i].numOps(), sbs[i].numOps());
        EXPECT_EQ(copies[i].numEdges(), sbs[i].numEdges());
    }
}

TEST(SbIo, RoundTripPreservesBounds)
{
    // Serialization must be semantically lossless: the full bound
    // vector of the parsed copy matches the original on every
    // machine configuration.
    Rng rng(212);
    GeneratorParams params;
    for (int i = 0; i < 5; ++i) {
        Rng child = rng.fork();
        Superblock orig = generateSuperblock(child, params, "rt");
        Superblock copy = parseSuperblock(writeSuperblock(orig));
        GraphContext ctxA(orig);
        GraphContext ctxB(copy);
        for (const MachineModel &m :
             {MachineModel::gp2(), MachineModel::fs6()}) {
            WctBounds a = computeWctBounds(ctxA, m);
            WctBounds b = computeWctBounds(ctxB, m);
            EXPECT_DOUBLE_EQ(a.cp, b.cp);
            EXPECT_DOUBLE_EQ(a.hu, b.hu);
            EXPECT_DOUBLE_EQ(a.rj, b.rj);
            EXPECT_DOUBLE_EQ(a.lc, b.lc);
            EXPECT_DOUBLE_EQ(a.pw, b.pw);
            EXPECT_DOUBLE_EQ(a.tw, b.tw);
        }
    }
}

TEST(SbIo, ParsesHandWrittenText)
{
    const char *text = R"(
# a tiny superblock
superblock hand
freq 2.5
op 0 int 1 a
op 1 mem 2
branch 2 0.3 1 side
branch 3 0.7 1
edge 0 2 1
edge 1 3 2
end
)";
    Superblock sb = parseSuperblock(text);
    EXPECT_EQ(sb.name(), "hand");
    EXPECT_DOUBLE_EQ(sb.execFrequency(), 2.5);
    EXPECT_EQ(sb.numOps(), 4);
    EXPECT_EQ(sb.op(0).name, "a");
    EXPECT_EQ(sb.op(1).latency, 2);
    // The loader reinserted the control edge 2 -> 3.
    bool control = false;
    for (const Adjacent &e : sb.succs(2))
        control = control || e.op == 3;
    EXPECT_TRUE(control);
}

TEST(SbIo, FileRoundTrip)
{
    std::string path = "/tmp/balance_sb_io_test.sb";
    std::vector<Superblock> sbs;
    sbs.push_back(paperFigure1(0.25));
    sbs.push_back(paperFigure6());
    saveSuperblockFile(path, sbs);
    auto loaded = loadSuperblockFile(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].numOps(), sbs[0].numOps());
    EXPECT_EQ(loaded[1].numOps(), sbs[1].numOps());
    std::remove(path.c_str());
}

TEST(SbIo, RejectsOutOfOrderIds)
{
    const char *text = R"(
superblock bad
op 1 int 1
end
)";
    EXPECT_DEATH({ auto s = parseSuperblock(text); (void)s; },
                 "out of order");
}

TEST(SbIo, RejectsUnknownDirective)
{
    EXPECT_DEATH(
        { auto s = parseSuperblock("superblock x\nbogus 1\nend\n");
          (void)s; },
        "unknown directive");
}

TEST(SbIo, RejectsBackwardEdge)
{
    const char *text = R"(
superblock bad
op 0 int 1
branch 1 1.0 1
edge 1 0 1
end
)";
    EXPECT_DEATH({ auto s = parseSuperblock(text); (void)s; },
                 "bad edge");
}

TEST(SbIo, RejectsMissingEnd)
{
    EXPECT_DEATH(
        { auto s = parseSuperblock("superblock x\nop 0 int 1\n");
          (void)s; },
        "missing 'end'");
}

// The checked entry points exist for untrusted input (the service
// layer): every malformed document must come back as false + error,
// never a fatal. Each case here would abort via parseSuperblock.
TEST(SbIo, TryParseReportsErrorsWithoutAborting)
{
    const char *cases[][2] = {
        {"", "expected exactly one superblock, found 0"},
        {"superblock x\nend\n", "no operations"},
        {"superblock x\nop 0 int 1\nend\n", "at least one exit"},
        {"superblock x\nbogus 1\nend\n", "unknown directive"},
        {"superblock x\nop 1 int 1\nend\n", "out of order"},
        {"superblock x\nop 0 int 1\nbranch 1 1.0 1\nedge 1 0 1\nend\n",
         "bad edge"},
        {"superblock x\nop 0 int 1\n", "missing 'end'"},
        {"superblock x\nop 0 int -3\nbranch 1 1.0 1\nend\n",
         "latency"},
        {"superblock x\nop 0 int 1\nbranch 1 1.5 1\nend\n",
         "probability"},
        {"superblock x\nop 0 int 1\nbranch 1 0.8 1\n"
         "branch 2 0.8 1\nend\n",
         "probabilities"},
        {"superblock x\nfreq -1\nop 0 int 1\nbranch 1 1.0 1\nend\n",
         "freq"},
        {"superblock x\nop 0 int notanumber\nbranch 1 1.0 1\nend\n",
         "number"},
    };
    for (const auto &[text, expect] : cases) {
        Superblock sb;
        std::string error;
        EXPECT_FALSE(tryParseSuperblock(text, &sb, &error)) << text;
        EXPECT_NE(error.find(expect), std::string::npos)
            << "input: " << text << "\nerror: " << error;
    }
}

TEST(SbIo, TryParseAcceptsWellFormedAndMatchesFatalPath)
{
    std::string text = writeSuperblock(paperFigure6());
    Superblock sb;
    std::string error;
    ASSERT_TRUE(tryParseSuperblock(text, &sb, &error)) << error;
    EXPECT_EQ(writeSuperblock(sb), text);
    EXPECT_EQ(sb.numOps(), parseSuperblock(text).numOps());
}

TEST(SbIo, TryReadSuperblocksRejectsTrailingSecondBlockInTryParse)
{
    // tryParseSuperblock wants exactly one superblock; the stream
    // reader takes any number.
    std::string two = writeSuperblock(paperFigure6()) +
                      writeSuperblock(paperFigure1(0.25));
    Superblock sb;
    std::string error;
    EXPECT_FALSE(tryParseSuperblock(two, &sb, &error));

    std::istringstream is(two);
    std::vector<Superblock> all;
    ASSERT_TRUE(tryReadSuperblocks(is, all, &error)) << error;
    EXPECT_EQ(all.size(), 2u);
}

} // namespace
} // namespace balance
