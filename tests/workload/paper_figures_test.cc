#include "workload/paper_figures.hh"

#include <gtest/gtest.h>

#include "graph/analysis.hh"

namespace balance
{
namespace
{

TEST(PaperFigures, Figure1Shape)
{
    Superblock sb = paperFigure1(0.2);
    EXPECT_EQ(sb.numOps(), 17);
    EXPECT_EQ(sb.numBranches(), 2);
    GraphContext ctx(sb);
    OpId side = sb.branches()[0];
    OpId fin = sb.branches()[1];
    // Side exit: 3 predecessors; final exit: 16 predecessors.
    EXPECT_EQ(ctx.predSets().preds(side).count(), 3u);
    EXPECT_EQ(ctx.predSets().preds(fin).count(), 16u);
    // Dependence critical path to the final exit is 7.
    EXPECT_EQ(ctx.earlyDC()[std::size_t(fin)], 7);
    EXPECT_DOUBLE_EQ(sb.exitProb(side) + sb.exitProb(fin), 1.0);
}

TEST(PaperFigures, Figure2Shape)
{
    Superblock sb = paperFigure2(0.4);
    EXPECT_EQ(sb.numOps(), 7);
    GraphContext ctx(sb);
    OpId fin = sb.branches()[1];
    EXPECT_EQ(ctx.predSets().preds(fin).count(), 6u);
    // Dependence distance from op 4 to the final exit is 3.
    EXPECT_EQ(ctx.heightToBranch(1)[4], 3);
    EXPECT_EQ(ctx.earlyDC()[std::size_t(fin)], 3);
}

TEST(PaperFigures, Figure3Shape)
{
    Superblock sb = paperFigure3(0.4);
    EXPECT_EQ(sb.numOps(), 10);
    GraphContext ctx(sb);
    OpId fin = sb.branches()[1];
    EXPECT_EQ(ctx.predSets().preds(fin).count(), 9u);
    // Fan-out 5 -> {6,7,8} -> 9 gives a dependence height of 3 from
    // op 4 while two-issue resources force 4 cycles.
    EXPECT_EQ(ctx.heightToBranch(1)[4], 3);
}

TEST(PaperFigures, Figure4Probabilities)
{
    Superblock sb = paperFigure4(0.26);
    ASSERT_EQ(sb.numBranches(), 2);
    EXPECT_DOUBLE_EQ(sb.exitProb(sb.branches()[0]), 0.26);
    EXPECT_DOUBLE_EQ(sb.exitProb(sb.branches()[1]), 0.74);
}

TEST(PaperFigures, Figure6Shape)
{
    Superblock sb = paperFigure6();
    EXPECT_EQ(sb.numOps(), 9);
    EXPECT_EQ(sb.numBranches(), 1);
    GraphContext ctx(sb);
    EXPECT_EQ(ctx.predSets().preds(sb.branches()[0]).count(), 8u);
    EXPECT_EQ(ctx.earlyDC()[std::size_t(sb.branches()[0])], 4);
}

TEST(PaperFigures, AllValidate)
{
    // validate() runs inside build(); re-run explicitly for clarity.
    paperFigure1(0.5).validate();
    paperFigure2(0.5).validate();
    paperFigure3(0.5).validate();
    paperFigure4(0.5).validate();
    paperFigure6().validate();
}

} // namespace
} // namespace balance
