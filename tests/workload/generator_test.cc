#include "workload/generator.hh"

#include <gtest/gtest.h>

#include "graph/analysis.hh"
#include "workload/suite.hh"

namespace balance
{
namespace
{

TEST(Generator, DeterministicForSeed)
{
    GeneratorParams params;
    Rng a(7);
    Rng b(7);
    Superblock x = generateSuperblock(a, params, "x");
    Superblock y = generateSuperblock(b, params, "y");
    ASSERT_EQ(x.numOps(), y.numOps());
    ASSERT_EQ(x.numBranches(), y.numBranches());
    for (OpId v = 0; v < x.numOps(); ++v) {
        EXPECT_EQ(x.op(v).cls, y.op(v).cls);
        EXPECT_EQ(x.op(v).latency, y.op(v).latency);
    }
}

TEST(Generator, RespectsCaps)
{
    GeneratorParams params;
    params.maxOps = 40;
    params.maxBlocks = 5;
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params, "cap");
        EXPECT_LE(sb.numOps(), 40);
        EXPECT_LE(sb.numBranches(), 5);
    }
}

TEST(Generator, ExitProbabilitiesFormDistribution)
{
    GeneratorParams params;
    Rng rng(17);
    for (int i = 0; i < 30; ++i) {
        Rng child = rng.fork();
        Superblock sb = generateSuperblock(child, params, "p");
        double total = 0.0;
        for (OpId b : sb.branches()) {
            EXPECT_GE(sb.exitProb(b), 0.0);
            total += sb.exitProb(b);
        }
        EXPECT_NEAR(total, 1.0, 1e-9);
        // The final exit carries the fall-through mass.
        EXPECT_GE(sb.exitProb(sb.branches().back()), 0.3);
    }
}

TEST(Generator, OpsCannotSinkBelowOwnExit)
{
    GeneratorParams params;
    Rng rng(23);
    Superblock sb = generateSuperblock(rng, params, "sink");
    GraphContext ctx(sb);
    for (OpId v = 0; v < sb.numOps(); ++v) {
        if (sb.op(v).isBranch())
            continue;
        OpId blockExit = sb.branches()[std::size_t(sb.op(v).block)];
        if (v < blockExit) {
            EXPECT_TRUE(ctx.predSets().isPred(v, blockExit))
                << "op " << v << " escapes exit " << blockExit;
        }
    }
}

TEST(Generator, EveryOpReachesSomeExit)
{
    GeneratorParams params;
    Rng rng(29);
    Superblock sb = generateSuperblock(rng, params, "live");
    GraphContext ctx(sb);
    OpId last = sb.branches().back();
    for (OpId v = 0; v < last; ++v)
        EXPECT_TRUE(ctx.predSets().isPred(v, last));
}

TEST(Generator, GiantDrawsRespectRange)
{
    GeneratorParams params;
    params.giantProb = 1.0;
    params.giantMinBlocks = 30;
    params.giantMaxBlocks = 60;
    Rng rng(31);
    Superblock sb = generateSuperblock(rng, params, "giant");
    EXPECT_GE(sb.numBranches(), 30);
    EXPECT_LE(sb.numBranches(), 60);
    EXPECT_LE(sb.numOps(), params.maxOps);
}

TEST(Suite, SpecsTotalPaperCount)
{
    auto specs = specInt95Specs();
    EXPECT_EQ(specs.size(), 8u);
    int total = 0;
    for (const auto &s : specs)
        total += s.superblockCount;
    EXPECT_EQ(total, 6615);
}

TEST(Suite, ScaledBuildIsProportional)
{
    SuiteOptions opts;
    opts.scale = 0.01;
    auto suite = buildSuite(opts);
    EXPECT_EQ(suite.size(), 8u);
    int total = suiteSize(suite);
    EXPECT_GE(total, 50);
    EXPECT_LE(total, 80);
}

TEST(Suite, SameSeedSamePopulation)
{
    SuiteOptions opts;
    opts.scale = 0.005;
    auto a = buildSuite(opts);
    auto b = buildSuite(opts);
    ASSERT_EQ(suiteSize(a), suiteSize(b));
    for (std::size_t p = 0; p < a.size(); ++p) {
        for (std::size_t i = 0; i < a[p].superblocks.size(); ++i) {
            EXPECT_EQ(a[p].superblocks[i].numOps(),
                      b[p].superblocks[i].numOps());
            EXPECT_EQ(a[p].superblocks[i].numEdges(),
                      b[p].superblocks[i].numEdges());
        }
    }
}

TEST(Suite, ScaleIndependentPrefix)
{
    // Growing the scale extends the population without changing the
    // superblocks already present (per-item forked streams).
    SuiteOptions small;
    small.scale = 0.004;
    SuiteOptions large;
    large.scale = 0.008;
    auto a = buildSuite(small);
    auto b = buildSuite(large);
    for (std::size_t p = 0; p < a.size(); ++p) {
        for (std::size_t i = 0; i < a[p].superblocks.size(); ++i) {
            ASSERT_LT(i, b[p].superblocks.size());
            EXPECT_EQ(a[p].superblocks[i].numOps(),
                      b[p].superblocks[i].numOps());
        }
    }
}

} // namespace
} // namespace balance
