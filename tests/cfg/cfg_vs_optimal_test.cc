/**
 * Oracle test over the CFG pipeline: on small synthetic regions,
 * every bound stays at or below the exact optimum of the formed
 * superblocks and every heuristic stays at or above it.
 */

#include <gtest/gtest.h>

#include "cfg/cfg_gen.hh"
#include "cfg/superblock_form.hh"
#include "eval/experiment.hh"
#include "sched/optimal.hh"

namespace balance
{
namespace
{

class CfgVsOptimal : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CfgVsOptimal, Sandwich)
{
    Rng rng(GetParam());
    CfgGenParams params;
    params.minBlocks = 3;
    params.maxBlocks = 6;
    params.instrsMu = 0.8;
    params.instrsSigma = 0.4;

    HeuristicSet set = HeuristicSet::paperSet(/*withBest=*/false);
    int proven = 0;
    for (int trial = 0; trial < 12; ++trial) {
        Rng child = rng.fork();
        CfgProgram cfg = generateCfg(child, params);
        for (const Superblock &sb : formSuperblocks(cfg, "o")) {
            if (sb.numOps() > 14)
                continue;
            GraphContext ctx(sb);
            for (const MachineModel &m :
                 {MachineModel::gp2(), MachineModel::fs4()}) {
                WctBounds bounds = computeWctBounds(ctx, m);
                OptimalOptions oo;
                oo.maxNodes = 300000;
                OptimalResult opt = optimalSchedule(ctx, m, oo);
                if (!opt.proven)
                    continue;
                ++proven;
                opt.schedule.validate(sb, m);
                EXPECT_LE(bounds.tightest(), opt.wct + 1e-6)
                    << sb.name() << " on " << m.name();
                for (const auto &sched : set.primaries) {
                    Schedule s = sched->run(ctx, m);
                    s.validate(sb, m);
                    EXPECT_GE(s.wct(sb), opt.wct - 1e-6)
                        << sched->name() << " on " << sb.name();
                }
            }
        }
    }
    EXPECT_GE(proven, 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfgVsOptimal,
                         ::testing::Values(21u, 22u, 23u));

} // namespace
} // namespace balance
