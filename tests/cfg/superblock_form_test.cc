#include "cfg/superblock_form.hh"

#include <gtest/gtest.h>

#include "bounds/superblock_bounds.hh"
#include "cfg/cfg_gen.hh"
#include "core/balance_scheduler.hh"
#include "graph/analysis.hh"

namespace balance
{
namespace
{

/**
 * Two-block trace region:
 *   b0: r0 = load; r1 = r0 + ...; branch on r1 -> off (p=0.2) / b1
 *   off: uses r1 (so r1 is live at the side exit)
 *   b1: r2 = r1; store r2; exits region
 * Trace = [b0, b1].
 */
CfgProgram
smallRegion()
{
    CfgProgram cfg;
    CfgBlock b0;
    b0.name = "b0";
    CfgInstr load;
    load.cls = OpClass::Memory;
    load.isLoad = true;
    load.latency = Latencies::load;
    load.dest = 0;
    b0.instrs.push_back(load);
    CfgInstr add;
    add.dest = 1;
    add.srcs = {0};
    b0.instrs.push_back(add);
    b0.branchSrcs = {1};
    b0.takenTarget = 2; // the off-trace block
    b0.takenProb = 0.2;
    b0.fallthrough = 1;
    b0.frequency = 100.0;
    cfg.addBlock(b0);

    CfgBlock b1;
    b1.name = "b1";
    CfgInstr mov;
    mov.dest = 2;
    mov.srcs = {1};
    b1.instrs.push_back(mov);
    CfgInstr store;
    store.cls = OpClass::Memory;
    store.isStore = true;
    store.srcs = {2};
    b1.instrs.push_back(store);
    b1.frequency = 80.0;
    cfg.addBlock(b1);

    CfgBlock off;
    off.name = "off";
    CfgInstr use;
    use.dest = 3;
    use.srcs = {1};
    off.instrs.push_back(use);
    off.frequency = 20.0;
    cfg.addBlock(off);
    return cfg;
}

TEST(SuperblockForm, ShapeAndProbabilities)
{
    CfgProgram cfg = smallRegion();
    Liveness live(cfg, DynBitset(std::size_t(cfg.numVRegs())));
    Trace trace;
    trace.blocks = {0, 1};
    Superblock sb = formSuperblock(cfg, trace, live, "t");

    // load, add, side exit, mov, store, final exit.
    EXPECT_EQ(sb.numOps(), 6);
    ASSERT_EQ(sb.numBranches(), 2);
    EXPECT_NEAR(sb.exitProb(sb.branches()[0]), 0.2, 1e-12);
    EXPECT_NEAR(sb.exitProb(sb.branches()[1]), 0.8, 1e-12);
    EXPECT_DOUBLE_EQ(sb.execFrequency(), 100.0);
    sb.validate();
}

TEST(SuperblockForm, DataFlowEdges)
{
    CfgProgram cfg = smallRegion();
    Liveness live(cfg, DynBitset(std::size_t(cfg.numVRegs())));
    Trace trace;
    trace.blocks = {0, 1};
    Superblock sb = formSuperblock(cfg, trace, live, "t");
    GraphContext ctx(sb);

    // load(0) -> add(1) with the 2-cycle load latency.
    bool found = false;
    for (const Adjacent &e : sb.succs(0)) {
        if (e.op == 1) {
            EXPECT_EQ(e.latency, Latencies::load);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    // add feeds the side exit's condition and the mov.
    EXPECT_TRUE(ctx.predSets().isPred(1, 2));
    EXPECT_TRUE(ctx.predSets().isPred(1, 3));
}

TEST(SuperblockForm, LiveOutValueAnchorsToSideExit)
{
    CfgProgram cfg = smallRegion();
    Liveness live(cfg, DynBitset(std::size_t(cfg.numVRegs())));
    Trace trace;
    trace.blocks = {0, 1};
    Superblock sb = formSuperblock(cfg, trace, live, "t");
    GraphContext ctx(sb);
    // r1 (defined by op 1) is used in the off-trace block, so op 1
    // must precede the side exit (op 2).
    EXPECT_TRUE(ctx.predSets().isPred(1, 2));
    // r0 (the load) is NOT live at the side exit: the load's only
    // required anchor is through its consumer.
    bool direct = false;
    for (const Adjacent &e : sb.succs(0))
        direct = direct || e.op == 2;
    EXPECT_FALSE(direct);
}

TEST(SuperblockForm, StoreCannotSpeculateAboveExit)
{
    CfgProgram cfg = smallRegion();
    Liveness live(cfg, DynBitset(std::size_t(cfg.numVRegs())));
    Trace trace;
    trace.blocks = {0, 1};
    Superblock sb = formSuperblock(cfg, trace, live, "t");
    // The store (op 4) has an incoming edge from the side exit
    // (op 2): it may not move above it.
    bool restricted = false;
    for (const Adjacent &e : sb.preds(4))
        restricted = restricted || e.op == 2;
    EXPECT_TRUE(restricted);
}

TEST(SuperblockForm, LoadSpeculationPolicy)
{
    // With load speculation off, a block-1 load gains an edge from
    // the earlier exit.
    CfgProgram cfg = smallRegion();
    // Make the second block's first instr a load instead of a mov.
    cfg.blockMut(1).instrs[0].cls = OpClass::Memory;
    cfg.blockMut(1).instrs[0].isLoad = true;
    cfg.blockMut(1).instrs[0].latency = Latencies::load;
    Liveness live(cfg, DynBitset(std::size_t(cfg.numVRegs())));
    Trace trace;
    trace.blocks = {0, 1};

    FormOptions spec;
    spec.speculateLoads = true;
    Superblock specSb = formSuperblock(cfg, trace, live, "spec", spec);
    FormOptions noSpec;
    noSpec.speculateLoads = false;
    Superblock safeSb =
        formSuperblock(cfg, trace, live, "safe", noSpec);

    auto hasEdge = [](const Superblock &sb, OpId from, OpId to) {
        for (const Adjacent &e : sb.succs(from)) {
            if (e.op == to)
                return true;
        }
        return false;
    };
    EXPECT_FALSE(hasEdge(specSb, 2, 3));
    EXPECT_TRUE(hasEdge(safeSb, 2, 3));
}

TEST(SuperblockForm, RenamingRemovesFalseDependences)
{
    // A block that redefines r1 after a use: without renaming the
    // redefinition waits (anti edge); with renaming it does not.
    CfgProgram cfg;
    CfgBlock b0;
    CfgInstr d1;
    d1.dest = 1;
    b0.instrs.push_back(d1); // op 0: r1 = ...
    CfgInstr use;
    use.dest = 2;
    use.srcs = {1};
    b0.instrs.push_back(use); // op 1: r2 = r1
    CfgInstr redef;
    redef.dest = 1;
    b0.instrs.push_back(redef); // op 2: r1 = ... (fresh value)
    b0.branchSrcs = {2};
    b0.frequency = 10.0;
    cfg.addBlock(b0);

    Liveness live(cfg, DynBitset(std::size_t(cfg.numVRegs())));
    Trace trace;
    trace.blocks = {0};

    auto hasEdge = [](const Superblock &sb, OpId from, OpId to) {
        for (const Adjacent &e : sb.succs(from)) {
            if (e.op == to)
                return true;
        }
        return false;
    };

    FormOptions plain;
    Superblock unrenamed = formSuperblock(cfg, trace, live, "u", plain);
    EXPECT_TRUE(hasEdge(unrenamed, 0, 2)); // output dependence
    EXPECT_TRUE(hasEdge(unrenamed, 1, 2)); // anti dependence

    FormOptions renamed;
    renamed.renameRegisters = true;
    Superblock ssa = formSuperblock(cfg, trace, live, "r", renamed);
    EXPECT_FALSE(hasEdge(ssa, 0, 2));
    EXPECT_FALSE(hasEdge(ssa, 1, 2));
}

TEST(SuperblockForm, RenamingUnlocksSpeculation)
{
    // The block-1 definition clobbers a register live at the side
    // exit: hoisting is restricted without renaming, free with it.
    CfgProgram cfg = smallRegion();
    // Make the mov redefine r1 (live at the side exit).
    cfg.blockMut(1).instrs[0].dest = 1;
    Liveness live(cfg, DynBitset(std::size_t(cfg.numVRegs())));
    Trace trace;
    trace.blocks = {0, 1};

    auto restricted = [](const Superblock &sb, OpId exit, OpId op) {
        for (const Adjacent &e : sb.preds(op)) {
            if (e.op == exit)
                return true;
        }
        return false;
    };

    FormOptions plain;
    Superblock unrenamed =
        formSuperblock(cfg, trace, live, "u", plain);
    EXPECT_TRUE(restricted(unrenamed, 2, 3));

    FormOptions renamed;
    renamed.renameRegisters = true;
    Superblock ssa = formSuperblock(cfg, trace, live, "r", renamed);
    EXPECT_FALSE(restricted(ssa, 2, 3));
}

TEST(SuperblockForm, RenamingNeverHurtsSchedules)
{
    Rng rng(1717);
    BalanceScheduler bal;
    for (int trial = 0; trial < 10; ++trial) {
        Rng child = rng.fork();
        CfgProgram cfg = generateCfg(child);
        Liveness live = Liveness::allLiveOut(cfg);
        FormOptions plain;
        FormOptions renamed;
        renamed.renameRegisters = true;
        for (const Trace &trace : selectTraces(cfg)) {
            Superblock a = formSuperblock(cfg, trace, live, "p", plain);
            Superblock b =
                formSuperblock(cfg, trace, live, "r", renamed);
            MachineModel m = MachineModel::gp2();
            GraphContext ctxA(a);
            GraphContext ctxB(b);
            Schedule sa = bal.run(ctxA, m);
            Schedule sb = bal.run(ctxB, m);
            sa.validate(a, m);
            sb.validate(b, m);
            // Renaming only removes constraints; the renamed graph's
            // bound can only be lower or equal.
            GraphContext cA(a);
            GraphContext cB(b);
            EXPECT_LE(computeWctBounds(cB, m).cp,
                      computeWctBounds(cA, m).cp + 1e-9);
        }
    }
}

TEST(SuperblockForm, RandomRegionsProduceValidSuperblocks)
{
    Rng rng(991);
    for (int trial = 0; trial < 20; ++trial) {
        Rng child = rng.fork();
        CfgProgram cfg = generateCfg(child);
        auto sbs = formSuperblocks(cfg, "r" + std::to_string(trial));
        EXPECT_FALSE(sbs.empty());
        for (const Superblock &sb : sbs) {
            sb.validate();
            double total = 0.0;
            for (OpId b : sb.branches())
                total += sb.exitProb(b);
            EXPECT_NEAR(total, 1.0, 1e-6) << sb.name();
        }
    }
}

} // namespace
} // namespace balance
