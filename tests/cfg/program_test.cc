#include "cfg/program.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

/**
 * Diamond:  b0 -cond-> b2 (taken, p) / b1 (fallthrough), both to b3.
 */
CfgProgram
diamond(double p)
{
    CfgProgram cfg;
    CfgBlock b0;
    b0.name = "b0";
    CfgInstr def;
    def.dest = 0;
    b0.instrs.push_back(def);
    b0.branchSrcs = {0};
    b0.takenTarget = 2;
    b0.takenProb = p;
    b0.fallthrough = 1;
    b0.frequency = 100.0;
    cfg.addBlock(b0);

    CfgBlock b1;
    b1.name = "b1";
    CfgInstr useIt;
    useIt.srcs = {0};
    useIt.dest = 1;
    b1.instrs.push_back(useIt);
    b1.fallthrough = 3;
    b1.frequency = 100.0 * (1.0 - p);
    cfg.addBlock(b1);

    CfgBlock b2;
    b2.name = "b2";
    CfgInstr other;
    other.dest = 1;
    b2.instrs.push_back(other);
    b2.fallthrough = 3;
    b2.frequency = 100.0 * p;
    cfg.addBlock(b2);

    CfgBlock b3;
    b3.name = "b3";
    CfgInstr sink;
    sink.srcs = {1};
    sink.isStore = true;
    sink.cls = OpClass::Memory;
    b3.instrs.push_back(sink);
    b3.frequency = 100.0;
    cfg.addBlock(b3);
    return cfg;
}

TEST(CfgProgram, DiamondValidates)
{
    CfgProgram cfg = diamond(0.3);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
    EXPECT_EQ(cfg.numBlocks(), 4);
    EXPECT_EQ(cfg.numVRegs(), 2);
}

TEST(CfgProgram, Predecessors)
{
    CfgProgram cfg = diamond(0.3);
    auto preds = cfg.predecessors();
    EXPECT_TRUE(preds[0].empty());
    ASSERT_EQ(preds[3].size(), 2u);
    EXPECT_EQ(preds[1], std::vector<int>{0});
}

TEST(CfgProgram, RejectsBackwardEdge)
{
    CfgProgram cfg;
    CfgBlock b0;
    b0.frequency = 1.0;
    b0.fallthrough = 1;
    cfg.addBlock(b0);
    CfgBlock b1;
    b1.frequency = 1.0;
    b1.takenTarget = 0; // backward
    b1.takenProb = 0.5;
    cfg.addBlock(b1);
    EXPECT_DEATH(cfg.validate(), "forward");
}

TEST(CfgProgram, RejectsInconsistentProfile)
{
    CfgProgram cfg = diamond(0.3);
    cfg.blockMut(1).frequency = 5.0; // should be 70
    EXPECT_DEATH(cfg.validate(), "inconsistent");
}

TEST(CfgProgram, RegionExitingTakenEdgeIsLegal)
{
    // takenTarget == noBlock with a nonzero probability models a
    // taken edge that leaves the region; its mass flows nowhere.
    CfgProgram cfg;
    CfgBlock b0;
    b0.frequency = 10.0;
    b0.takenProb = 0.4;
    b0.fallthrough = 1;
    cfg.addBlock(b0);
    CfgBlock b1;
    b1.frequency = 6.0;
    cfg.addBlock(b1);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

} // namespace
} // namespace balance
