#include "cfg/trace.hh"

#include <gtest/gtest.h>

#include "cfg/cfg_gen.hh"

namespace balance
{
namespace
{

/** Chain with biased side exits: b0 -> b1 -> b2 -> b3. */
CfgProgram
chain(double sideProb)
{
    CfgProgram cfg;
    for (int i = 0; i < 4; ++i) {
        CfgBlock b;
        b.name = "b" + std::to_string(i);
        CfgInstr instr;
        instr.dest = i;
        b.instrs.push_back(instr);
        if (i < 3) {
            b.fallthrough = i + 1;
            b.takenTarget = noBlock; // leaves the region
            b.takenProb = sideProb;
        }
        cfg.addBlock(b);
    }
    double f = 100.0;
    for (int i = 0; i < 4; ++i) {
        cfg.blockMut(i).frequency = f;
        f *= 1.0 - sideProb;
    }
    cfg.validate();
    return cfg;
}

TEST(TraceSelect, FollowsLikelyChain)
{
    CfgProgram cfg = chain(0.1);
    auto traces = selectTraces(cfg);
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].blocks,
              (std::vector<int>{0, 1, 2, 3}));
}

TEST(TraceSelect, StopsAtUnlikelyEdge)
{
    CfgProgram cfg = chain(0.6); // continuation probability 0.4
    TraceOptions opts;
    opts.minEdgeProb = 0.5;
    auto traces = selectTraces(cfg, opts);
    // Every block seeds its own trace: four singleton traces.
    ASSERT_EQ(traces.size(), 4u);
    for (const Trace &t : traces)
        EXPECT_EQ(t.blocks.size(), 1u);
}

TEST(TraceSelect, MaxBlocksCap)
{
    CfgProgram cfg = chain(0.05);
    TraceOptions opts;
    opts.maxBlocks = 2;
    auto traces = selectTraces(cfg, opts);
    ASSERT_GE(traces.size(), 2u);
    EXPECT_EQ(traces[0].blocks.size(), 2u);
}

TEST(TraceSelect, SeedFrequencyThresholdSkipsColdBlocks)
{
    CfgProgram cfg = chain(0.5);
    TraceOptions opts;
    opts.minSeedFrequency = 30.0; // blocks 2 (25) and 3 (12.5) cold
    opts.minEdgeProb = 0.9;       // no growth
    auto traces = selectTraces(cfg, opts);
    EXPECT_EQ(traces.size(), 2u);
}

TEST(TraceSelect, EveryBlockInAtMostOneTrace)
{
    Rng rng(777);
    for (int trial = 0; trial < 10; ++trial) {
        Rng child = rng.fork();
        CfgProgram cfg = generateCfg(child);
        auto traces = selectTraces(cfg);
        std::vector<int> count(std::size_t(cfg.numBlocks()), 0);
        for (const Trace &t : traces) {
            for (int b : t.blocks)
                ++count[std::size_t(b)];
        }
        for (int c : count)
            EXPECT_LE(c, 1);
    }
}

TEST(TraceSelect, TracesFollowCfgEdges)
{
    Rng rng(778);
    for (int trial = 0; trial < 10; ++trial) {
        Rng child = rng.fork();
        CfgProgram cfg = generateCfg(child);
        for (const Trace &t : selectTraces(cfg)) {
            for (std::size_t i = 1; i < t.blocks.size(); ++i) {
                const CfgBlock &prev =
                    cfg.block(t.blocks[i - 1]);
                bool edge = prev.takenTarget == t.blocks[i] ||
                            prev.fallthrough == t.blocks[i];
                EXPECT_TRUE(edge);
            }
        }
    }
}

} // namespace
} // namespace balance
