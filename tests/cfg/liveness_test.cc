#include "cfg/liveness.hh"

#include <gtest/gtest.h>

namespace balance
{
namespace
{

/**
 * b0: r0 = ...; branch on r0 -> b2 (p) / b1
 * b1: r1 = r0; fallthrough b2
 * b2: r2 = r1 (uses r1, which b0 does not define!)
 */
CfgProgram
threeBlocks()
{
    CfgProgram cfg;
    CfgBlock b0;
    CfgInstr d0;
    d0.dest = 0;
    b0.instrs.push_back(d0);
    b0.branchSrcs = {0};
    b0.takenTarget = 2;
    b0.takenProb = 0.25;
    b0.fallthrough = 1;
    b0.frequency = 100.0;
    cfg.addBlock(b0);

    CfgBlock b1;
    CfgInstr d1;
    d1.dest = 1;
    d1.srcs = {0};
    b1.instrs.push_back(d1);
    b1.fallthrough = 2;
    b1.frequency = 75.0;
    cfg.addBlock(b1);

    CfgBlock b2;
    CfgInstr d2;
    d2.dest = 2;
    d2.srcs = {1};
    b2.instrs.push_back(d2);
    b2.frequency = 100.0;
    cfg.addBlock(b2);
    return cfg;
}

TEST(Liveness, NothingLiveOut)
{
    CfgProgram cfg = threeBlocks();
    Liveness live(cfg, DynBitset(std::size_t(cfg.numVRegs())));
    // r1 is live into b2 (used there) and live into b0 along the
    // taken path (b0 does not define it).
    EXPECT_TRUE(live.isLiveIn(2, 1));
    EXPECT_TRUE(live.isLiveIn(1, 0));
    EXPECT_TRUE(live.isLiveIn(0, 1)); // upward-exposed via taken edge
    // r2 is defined in b2 and never used: dead everywhere.
    EXPECT_FALSE(live.isLiveIn(0, 2));
    EXPECT_FALSE(live.liveOut(2).test(2));
}

TEST(Liveness, AllLiveOutKeepsRegionValues)
{
    CfgProgram cfg = threeBlocks();
    Liveness live = Liveness::allLiveOut(cfg);
    // r2 now escapes the region through b2's exit.
    EXPECT_TRUE(live.liveOut(2).test(2));
    // And r0 is live out of b0 on both paths.
    EXPECT_TRUE(live.liveOut(0).test(0));
}

TEST(Liveness, DefKillsUse)
{
    CfgProgram cfg = threeBlocks();
    Liveness live = Liveness::allLiveOut(cfg);
    // b1 defines r1 before any use: r1 is not live into b1 through
    // that path... it is only upward-exposed where used first.
    EXPECT_FALSE(live.isLiveIn(1, 1));
}

TEST(Liveness, BranchSourcesCountAsUses)
{
    CfgProgram cfg = threeBlocks();
    Liveness live(cfg, DynBitset(std::size_t(cfg.numVRegs())));
    // r0 feeds b0's branch, so it is live into b0.
    EXPECT_FALSE(live.isLiveIn(0, 0)); // defined before the branch use
    CfgProgram cfg2 = threeBlocks();
    cfg2.blockMut(0).instrs.clear(); // no def: branch use is exposed
    Liveness live2(cfg2, DynBitset(std::size_t(cfg2.numVRegs())));
    EXPECT_TRUE(live2.isLiveIn(0, 0));
}

} // namespace
} // namespace balance
