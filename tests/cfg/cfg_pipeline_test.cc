/**
 * Integration: the whole compiler-side pipeline — synthetic CFG,
 * liveness, trace selection, superblock formation — feeding the
 * bounds and every scheduler, with the sandwich property intact.
 * This is the second, structurally independent workload population
 * (the first being workload/generator's direct DAG synthesis).
 */

#include <gtest/gtest.h>

#include "cfg/cfg_gen.hh"
#include "cfg/superblock_form.hh"
#include "eval/experiment.hh"

namespace balance
{
namespace
{

class CfgPipeline : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CfgPipeline, BoundsAndSchedulersAgree)
{
    Rng rng(GetParam());
    HeuristicSet set = HeuristicSet::paperSet(/*withBest=*/false);
    for (int trial = 0; trial < 5; ++trial) {
        Rng child = rng.fork();
        CfgProgram cfg = generateCfg(child);
        auto sbs = formSuperblocks(cfg, "pipe");
        for (const Superblock &sb : sbs) {
            for (const MachineModel &m :
                 {MachineModel::gp2(), MachineModel::fs4()}) {
                // evaluateSuperblock validates every schedule and
                // panics if any heuristic beats a bound.
                SuperblockEval eval =
                    evaluateSuperblock(sb, m, set);
                EXPECT_GT(eval.tightest, 0.0) << sb.name();
            }
        }
    }
}

TEST_P(CfgPipeline, GeneratedCfgsValidate)
{
    Rng rng(GetParam() + 1000);
    for (int trial = 0; trial < 10; ++trial) {
        Rng child = rng.fork();
        CfgProgram cfg = generateCfg(child);
        EXPECT_NO_FATAL_FAILURE(cfg.validate());
        EXPECT_GE(cfg.numBlocks(), 4);
    }
}

TEST_P(CfgPipeline, HotPathDominatesFirstTrace)
{
    // The first trace seeds at the most frequent block, which in an
    // acyclic single-entry region is the entry.
    Rng rng(GetParam() + 2000);
    CfgProgram cfg = generateCfg(rng);
    auto traces = selectTraces(cfg);
    ASSERT_FALSE(traces.empty());
    EXPECT_EQ(traces[0].blocks.front(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfgPipeline,
                         ::testing::Values(1u, 2u, 3u, 4u));

} // namespace
} // namespace balance
