#!/usr/bin/env python3
"""Gate the committed BENCH_*.json artifacts against the speedup
floors in tools/perf_budgets.json (bench_speedup_floors).

Run from the repository root after refreshing a bench artifact:

    python3 tools/check_bench_floors.py

Each listed artifact must report engine-vs-naive speedup at or above
its per-machine floor and "identical": true (the engine matched the
naive oracle bit for bit). Exits non-zero on any violation.
"""

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def main() -> int:
    budgets = json.loads((ROOT / "tools/perf_budgets.json").read_text())
    floors = budgets.get("bench_speedup_floors", {})
    failures = []
    for artifact, machines in floors.items():
        path = ROOT / artifact
        if not path.exists():
            failures.append(f"{artifact}: missing")
            continue
        doc = json.loads(path.read_text())
        by_name = {m["name"]: m for m in doc.get("machines", [])}
        for name, floor in machines.items():
            m = by_name.get(name)
            if m is None:
                failures.append(f"{artifact}: no machine {name}")
                continue
            if not m.get("identical", False):
                failures.append(
                    f"{artifact}: {name} engine diverged from the "
                    "naive oracle")
            speedup = m.get("speedup", 0.0)
            if speedup < floor:
                failures.append(
                    f"{artifact}: {name} speedup {speedup:.2f}x "
                    f"below floor {floor:.2f}x")
            else:
                print(f"ok: {artifact} {name} {speedup:.2f}x "
                      f">= {floor:.2f}x")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
