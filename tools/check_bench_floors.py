#!/usr/bin/env python3
"""Gate the committed BENCH_*.json artifacts against the floors in
tools/perf_budgets.json.

Run from the repository root after refreshing a bench artifact:

    python3 tools/check_bench_floors.py

Two floor tables are supported:

  bench_speedup_floors: {artifact: {machine: floor}} — the artifact's
    "machines" array must report engine-vs-naive speedup at or above
    the per-machine floor and "identical": true (the engine matched
    the naive oracle bit for bit).

  bench_metric_floors: {artifact: {dotted.path: floor}} — the value
    at the dotted path inside the artifact must be numeric and >= the
    floor; a boolean floor requires exact equality (e.g. a pinned
    "identical": true).

Every gated entry must actually be present: a missing artifact, a
malformed document, or a gated field absent from the artifact is a
hard failure — an absent measurement is not a passing one. Exits
non-zero on any violation.
"""

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def check_artifact(artifact: str, machines: dict, failures: list) -> None:
    path = ROOT / artifact
    if not path.exists():
        failures.append(
            f"{artifact}: artifact missing — every artifact gated in "
            "bench_speedup_floors must be committed (regenerate it "
            "with the matching bench binary)")
        return
    try:
        doc = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        failures.append(f"{artifact}: unreadable ({exc})")
        return
    rows = doc.get("machines")
    if not isinstance(rows, list):
        failures.append(
            f"{artifact}: no \"machines\" array — wrong or truncated "
            "artifact?")
        return
    by_name = {m.get("name"): m for m in rows if isinstance(m, dict)}
    for name, floor in machines.items():
        m = by_name.get(name)
        if m is None:
            present = sorted(n for n in by_name if n)
            failures.append(
                f"{artifact}: gated machine {name} absent from the "
                f"artifact (has: {', '.join(present) or 'none'}) — "
                "the floor cannot be checked, so this fails; "
                "regenerate the artifact with the full machine set")
            continue
        ok = True
        if not m.get("identical", False):
            failures.append(
                f"{artifact}: {name} engine diverged from the "
                "naive oracle")
            ok = False
        speedup = m.get("speedup")
        if not isinstance(speedup, (int, float)):
            failures.append(
                f"{artifact}: {name} has no numeric \"speedup\" field")
            continue
        if speedup < floor:
            failures.append(
                f"{artifact}: {name} speedup {speedup:.2f}x "
                f"below floor {floor:.2f}x")
        elif ok:
            print(f"ok: {artifact} {name} {speedup:.2f}x "
                  f">= {floor:.2f}x")


def lookup_path(doc, dotted: str):
    """Resolve a dotted path ("latency_ms.p99") in nested dicts."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_metric_artifact(artifact: str, metrics: dict,
                          failures: list) -> None:
    path = ROOT / artifact
    if not path.exists():
        failures.append(
            f"{artifact}: artifact missing — every artifact gated in "
            "bench_metric_floors must be committed (regenerate it "
            "with the matching bench binary)")
        return
    try:
        doc = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        failures.append(f"{artifact}: unreadable ({exc})")
        return
    for dotted, floor in metrics.items():
        value = lookup_path(doc, dotted)
        if value is None:
            failures.append(
                f"{artifact}: gated field \"{dotted}\" absent from "
                "the artifact — the floor cannot be checked, so this "
                "fails; regenerate the artifact")
            continue
        if isinstance(floor, bool):
            if value is not floor:
                failures.append(
                    f"{artifact}: {dotted} is {value!r}, pinned to "
                    f"{floor!r}")
            else:
                print(f"ok: {artifact} {dotted} == {floor!r}")
            continue
        if not isinstance(value, (int, float)) or isinstance(
                value, bool):
            failures.append(
                f"{artifact}: {dotted} is not numeric ({value!r})")
            continue
        if value < floor:
            failures.append(
                f"{artifact}: {dotted} {value:.2f} below floor "
                f"{floor:.2f}")
        else:
            print(f"ok: {artifact} {dotted} {value:.2f} >= {floor:.2f}")


def main() -> int:
    budget_path = ROOT / "tools/perf_budgets.json"
    try:
        budgets = json.loads(budget_path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        print(f"FAIL: {budget_path}: unreadable ({exc})",
              file=sys.stderr)
        return 1
    floors = budgets.get("bench_speedup_floors")
    if not isinstance(floors, dict) or not floors:
        # A gate with nothing to gate is a misconfiguration, not a
        # pass: the budget file should always carry the floor table.
        print("FAIL: tools/perf_budgets.json: bench_speedup_floors "
              "is missing or empty", file=sys.stderr)
        return 1
    failures: list = []
    for artifact, machines in sorted(floors.items()):
        if not isinstance(machines, dict) or not machines:
            failures.append(
                f"{artifact}: empty floors entry — gate at least one "
                "machine or drop the artifact from the table")
            continue
        check_artifact(artifact, machines, failures)
    metric_floors = budgets.get("bench_metric_floors", {})
    if not isinstance(metric_floors, dict):
        failures.append(
            "tools/perf_budgets.json: bench_metric_floors must be an "
            "object")
        metric_floors = {}
    for artifact, metrics in sorted(metric_floors.items()):
        if not isinstance(metrics, dict) or not metrics:
            failures.append(
                f"{artifact}: empty metric floors entry — gate at "
                "least one field or drop the artifact from the table")
            continue
        check_metric_artifact(artifact, metrics, failures)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
