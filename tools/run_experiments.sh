#!/usr/bin/env bash
# Regenerate every paper table/figure and the extension benches into
# results/. Full scale reproduces EXPERIMENTS.md; pass a scale factor
# for a quicker pass and a thread count to use more cores, e.g.:
#
#   tools/run_experiments.sh 0.25        # quarter suite, all cores
#   tools/run_experiments.sh 1.0 8       # full suite, 8 workers
#
# Pass --report-out DIR to additionally capture an instrumented run
# report (manifest + per-superblock rows + decision logs + rendered
# Markdown, see docs/REPORTING.md) at the same scale:
#
#   tools/run_experiments.sh --report-out results/report 0.25
#
# Pass --simd on|off to pin the kernel tables: "off" exports
# BALANCE_SIMD=scalar so every bench runs the scalar fallback — the
# one-flag A/B for vector-vs-scalar wall-clock. Results are bitwise
# identical either way (the golden tests pin it), so --simd, like
# THREADS, only ever changes wall-clock, never results/.
#
# Pass --debug-server PORT to serve live diagnostics from every bench
# (see docs/OBSERVABILITY.md, "Live introspection"). PORT 0 lets each
# bench pick an ephemeral port; the bound address is printed on stdout
# and therefore recorded in the tee'd results/<bench>.txt, so the port
# each bench chose is always recoverable afterwards. Scraping the
# server never changes a result byte, so this too only ever affects
# wall-clock, never results/.
#
# Outputs are byte-identical for every thread count (the runners
# reduce per-superblock slots in suite order), so THREADS only
# changes wall-clock, never results/.
set -euo pipefail

report_out=""
debug_server=""
positional=()
while [ $# -gt 0 ]; do
    case "$1" in
        --report-out)
            [ $# -ge 2 ] || { echo "--report-out needs a directory" >&2; exit 2; }
            report_out="$2"
            shift 2
            ;;
        --debug-server)
            [ $# -ge 2 ] || { echo "--debug-server needs a port (0 = ephemeral)" >&2; exit 2; }
            debug_server="$2"
            shift 2
            ;;
        --simd)
            [ $# -ge 2 ] || { echo "--simd needs on|off" >&2; exit 2; }
            case "$2" in
                on) unset BALANCE_SIMD ;;
                off) export BALANCE_SIMD=scalar ;;
                *) echo "--simd takes on|off, got '$2'" >&2; exit 2 ;;
            esac
            shift 2
            ;;
        *)
            positional+=("$1")
            shift
            ;;
    esac
done
set -- "${positional[@]+"${positional[@]}"}"

scale="${1:-1.0}"
threads="${2:-${THREADS:-0}}"
build="${BUILD_DIR:-build}"
out="results"
mkdir -p "$out"

thread_args=()
if [ "$threads" != "0" ]; then
    thread_args=(--threads "$threads")
fi

debug_args=()
if [ -n "$debug_server" ]; then
    debug_args=(--debug-server "$debug_server")
fi

if [ ! -x "$build/bench/table1_bounds" ]; then
    echo "building first..."
    cmake -B "$build" -G Ninja
    cmake --build "$build"
fi

paper_benches=(
    table1_bounds
    table2_bound_complexity
    table3_slowdown
    table4_optimal
    table5_noprofile
    table6_sched_complexity
    table7_ablation
    figure8_gcc_cdf
)
extension_benches=(
    optimality_gap
    ablation_tw_budget
    superblock_vs_bb
)

for b in "${paper_benches[@]}" "${extension_benches[@]}"; do
    echo "== $b (scale $scale) =="
    # Each bench also dumps its metric-registry snapshot (counter /
    # gauge / histogram totals, see docs/OBSERVABILITY.md) next to
    # its table; splice_experiments.py links the snapshot under the
    # spliced block.
    "$build/bench/$b" --scale "$scale" "${thread_args[@]}" \
        "${debug_args[@]}" \
        --metrics-out "$out/$b.metrics.json" \
        | tee "$out/$b.txt"
    echo
done

echo "== micro_kernels =="
"$build/bench/micro_kernels" | tee "$out/micro_kernels.txt"

if [ -n "$report_out" ]; then
    echo
    echo "== run report (scale $scale) =="
    mkdir -p "$report_out"
    "$build/bench/report_tool" run --out "$report_out" \
        --scale "$scale" "${thread_args[@]}" "${debug_args[@]}"
    "$build/bench/report_tool" render "$report_out/manifest.json" \
        -o "$report_out/report.md"
    echo "report: $report_out/report.md"
fi

echo
echo "all outputs in $out/"
