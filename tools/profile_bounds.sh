#!/usr/bin/env bash
# Profile the bound engine under `perf record -g` and print the
# report. All arguments are forwarded to bounds_perf, e.g.:
#
#   tools/profile_bounds.sh                      # GP4 + FS8, scale 0.05
#   tools/profile_bounds.sh --scale 0.2 --config FS8
#
# Pass --simd on|off (before any bench flags) to A/B the vector vs.
# scalar kernel tables in one flag: "off" exports BALANCE_SIMD=scalar
# so dispatch pins the scalar fallback at runtime — same binary, no
# reconfigure (see docs/PERFORMANCE.md, "SIMD kernels and dispatch"):
#
#   tools/profile_bounds.sh --simd off --scale 0.2
#
# Configure with -DBALANCE_PROFILE=ON first so frame pointers are
# kept and the call graphs resolve (see docs/PERFORMANCE.md). When
# perf is unavailable (not installed, or perf_event_paranoid forbids
# sampling), falls back to a plain timed run so the wrapper is still
# useful inside restricted containers.
set -euo pipefail

build="${BUILD_DIR:-build}"
bench="$build/bench/bounds_perf"
out="${PERF_DATA:-perf_bounds.data}"

if [ "${1:-}" = "--simd" ]; then
    [ $# -ge 2 ] || { echo "--simd needs on|off" >&2; exit 2; }
    case "$2" in
        on) unset BALANCE_SIMD ;;
        off) export BALANCE_SIMD=scalar ;;
        *) echo "--simd takes on|off, got '$2'" >&2; exit 2 ;;
    esac
    shift 2
fi

if [ ! -x "$bench" ]; then
    echo "building first..."
    cmake -B "$build"
    cmake --build "$build" --target bounds_perf
fi

if ! command -v perf >/dev/null 2>&1; then
    echo "perf not found; running plain timed pass instead" >&2
    exec "$bench" "$@"
fi

if ! perf record -o "$out" -g -- "$bench" "$@"; then
    echo "perf record failed (perf_event_paranoid?); plain run:" >&2
    exec "$bench" "$@"
fi

perf report -i "$out" --stdio | head -60
echo
echo "full profile: perf report -i $out"
