#!/usr/bin/env bash
# Regenerate the committed CI report baseline
# (tools/baselines/report-smoke, see docs/REPORTING.md).
#
# The baseline is metrics-only: the gated counters are deterministic
# for the fixed seed/scale/config, so the snapshot is byte-identical
# on every machine, while the row/decision artifacts are too large to
# commit and the capturing machine's wall clocks must never gate CI
# runners. The manifest is therefore stripped of every artifact
# reference except the metrics snapshot.
#
# Run from the repository root after a change that legitimately moves
# a gated counter (and say why in the commit message):
#
#   tools/make_report_baseline.sh
set -euo pipefail

build="${BUILD_DIR:-build}"
out="tools/baselines/report-smoke"
scale="0.05"   # must match the report-gate job in ci.yml
# B&B certifier flags; must also match the report-gate job, or the
# bnb.* counters (zero-tolerance in tools/perf_budgets.json) will
# trip on the node-count mismatch.
bnb_flags="--bnb"

if [ ! -x "$build/bench/report_tool" ]; then
    echo "building report_tool first..."
    cmake -B "$build" -G Ninja
    cmake --build "$build" --target report_tool
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$build/bench/report_tool" run --out "$tmp" --scale "$scale" \
    $bnb_flags

mkdir -p "$out"
cp "$tmp/metrics.json" "$out/metrics.json"
python3 - "$tmp/manifest.json" "$out/manifest.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["artifacts"]["superblocks"] = ""
doc["artifacts"]["trace"] = ""
doc["artifacts"]["bench_json"] = ""
doc["artifacts"]["decision_logs"] = []
doc["wall_ms"] = {}
with open(sys.argv[2], "w") as f:
    json.dump(doc, f, separators=(",", ":"))
    f.write("\n")
EOF

echo "baseline refreshed in $out/:"
ls -l "$out"
