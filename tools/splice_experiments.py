#!/usr/bin/env python3
"""Splice bench outputs from results/ into EXPERIMENTS.md.

EXPERIMENTS.md carries HTML-comment placeholders (<!-- TABLE2 -->,
<!-- FIGURE8 -->, ...). This script replaces each placeholder — or a
previously spliced fenced block directly following one — with the
current contents of the matching results file, so the document can be
regenerated after tools/run_experiments.sh.
"""

import json
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
DOC = ROOT / "EXPERIMENTS.md"

# placeholder -> results file
SOURCES = {
    "TABLE1": "table1_bounds.txt",
    "TABLE2": "table2_bound_complexity.txt",
    "TABLE4": "table4_optimal.txt",
    "TABLE5": "table5_noprofile.txt",
    "TABLE6": "table6_sched_complexity.txt",
    "TABLE7": "table7_ablation.txt",
    "FIGURE8": "figure8_gcc_cdf.txt",
    "OPTGAP": "optimality_gap.txt",
    "TWBUDGET": "ablation_tw_budget.txt",
    "MICRO": "micro_kernels.txt",
}


def body_of(path: pathlib.Path) -> str:
    """Strip the banner lines and the trailing expected-shape note."""
    text = path.read_text()
    # Drop everything from the "expected shape" footer onwards.
    text = re.split(r"\nexpected shape", text)[0]
    lines = text.strip("\n").split("\n")
    # Drop the two banner lines (title + suite size) when present.
    while lines and not re.match(r"^\S+.*\s\s", lines[0]) and \
            not lines[0].startswith(("GP", "FS", "update", "config",
                                     "metric", "algorithm", "setting",
                                     "heuristic")):
        lines.pop(0)
    return "\n".join(lines).strip("\n")


def metrics_note(fname: str) -> str:
    """A trailing pointer to the bench's metrics snapshot, if dumped.

    tools/run_experiments.sh passes --metrics-out results/<bench>.metrics.json
    to every bench; when that snapshot exists (and parses as JSON) the
    spliced block gains a `*metrics: ...*` line so readers can find the
    counter/gauge/histogram totals behind the table.
    """
    mf = RESULTS / (fname[: -len(".txt")] + ".metrics.json")
    if not mf.exists():
        return ""
    try:
        json.loads(mf.read_text())
    except ValueError:
        print(f"warning: {mf.name} is not valid JSON; not linking it")
        return ""
    return f"\n*metrics: results/{mf.name}*"


def main() -> int:
    doc = DOC.read_text()
    missing = []
    for key, fname in SOURCES.items():
        src = RESULTS / fname
        placeholder = f"<!-- {key} -->"
        if placeholder not in doc:
            continue
        if not src.exists():
            missing.append(fname)
            continue
        block = (placeholder + "\n```\n" + body_of(src) + "\n```" +
                 metrics_note(fname))
        # Replace the placeholder plus any previously spliced block
        # and its optional metrics pointer line.
        pattern = (re.escape(placeholder) +
                   r"(\n```.*?```)?(\n\*metrics: [^\n]*\*)?")
        doc = re.sub(pattern, block.replace("\\", r"\\"), doc, count=1,
                     flags=re.S)
    DOC.write_text(doc)
    if missing:
        print("missing results (placeholders left):", ", ".join(missing))
    print("EXPERIMENTS.md updated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
