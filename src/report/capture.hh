/**
 * @file
 * Run capture: evaluate the suite with full per-superblock
 * instrumentation and write a self-contained run directory — the
 * manifest, a JSON-lines row per (superblock, machine), the Balance
 * decision logs, and a metrics snapshot whose counters equal the row
 * sums bit for bit (the report pipeline's end-to-end identity,
 * pinned by tests/report/report_pipeline_test).
 *
 * Capture owns a *local* MetricRegistry: the identical integers that
 * go into each row are folded — serially, in suite order — into that
 * registry, so the snapshot is a pure function of the rows and never
 * touches the process-global telemetry state. Like every eval
 * driver, the parallel phase fills pre-sized slots and the reduction
 * is serial, so all artifacts are bitwise identical for any thread
 * count.
 */

#ifndef BALANCE_REPORT_CAPTURE_HH
#define BALANCE_REPORT_CAPTURE_HH

#include <string>
#include <vector>

#include "bounds/superblock_bounds.hh"
#include "machine/machine_model.hh"
#include "report/manifest.hh"
#include "workload/suite.hh"

namespace balance
{

/** Options for captureRun. */
struct CaptureOptions
{
    SuiteOptions suite;
    /** Machine configurations to run; empty = GP4. */
    std::vector<MachineModel> machines;
    BoundConfig bounds;
    /** Include the Best envelope (121 extra schedules per SB). */
    bool withBest = false;
    /**
     * Run the branch-and-bound certifier on each superblock up to
     * bnbMaxOps ops and emit a "bnb" object per row (certified WCT,
     * proven lower bound, search counters). Upgrades the rendered
     * gap attribution from "vs. bound" to "vs. proven optimum (or
     * certified gap)".
     */
    bool withBnb = false;
    /** Node budget per superblock for the certifier. */
    long long bnbMaxNodes = 200000;
    /** Superblocks above this op count skip the certifier. */
    int bnbMaxOps = 100;
    /** Worker threads; 0 = hardware concurrency, 1 = serial. */
    int threads = 0;
    /**
     * Attribute hardware counters (perf_event groups, or the
     * CPU-time fallback tier without perf_event access) to the
     * engine phases and write a manifest-bound hwcounters.json with
     * per-phase IPC / branch-miss / cache-miss rates. Observation
     * only: rows, metrics, and decision logs are bitwise identical
     * with this on or off, for any thread count.
     */
    bool hwCounters = false;
    /**
     * Sample the capture's local registry every this-many ms into a
     * manifest-bound metrics.timeline.jsonl (0 = off). Observation
     * only, like hwCounters: the sampler reads the same snapshot
     * path the final metrics.json uses, so every other artifact is
     * bitwise identical with this on or off.
     */
    long long metricsIntervalMs = 0;
    /** Existing directory the artifacts are written into. */
    std::string outDir;
};

/** What captureRun produced. */
struct CaptureResult
{
    RunManifest manifest;
    std::string manifestPath; //!< outDir + "/manifest.json"
};

/**
 * Evaluate the suite on every configured machine and write the run
 * directory (see file comment): manifest.json, metrics.json,
 * superblocks.jsonl, and one decisions.<machine>.jsonl per machine.
 * Panics on I/O failure (the harness treats that as fatal).
 */
CaptureResult captureRun(const CaptureOptions &opts);

} // namespace balance

#endif // BALANCE_REPORT_CAPTURE_HH
