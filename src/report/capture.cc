#include "report/capture.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>

#include "bounds/bound_scratch.hh"
#include "core/balance_scheduler.hh"
#include "eval/experiment.hh"
#include "sched/bnb/bnb.hh"
#include "sched/decision_log.hh"
#include "sched/priorities.hh"
#include "support/diagnostics.hh"
#include "support/flight_recorder.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/metrics_timeline.hh"
#include "support/parallel_for.hh"
#include "support/perf_counters.hh"
#include "support/progress.hh"
#include "support/telemetry.hh"
#include "support/trace.hh"

namespace balance
{

namespace
{

/** One branch's detail in the row dump. */
struct BranchRow
{
    int idx = 0;
    double weight = 0.0;
    int depHeight = 0; //!< EarlyDC at the branch (dependence floor)
    int rjEarly = 0;   //!< per-branch Rim & Jain bound
    int lcEarly = 0;   //!< per-branch EarlyRC
    int issue = -1;    //!< Balance's achieved issue cycle
    int latency = 1;
};

/** Everything captured for one (superblock, machine) pair. */
struct SbCapture
{
    WctBounds bounds;
    double tightest = 0.0;
    std::vector<double> wct; //!< per heuristic, set.names() order
    /** Table 2 trips: cp, hu, rj, lc, lc_reverse, pw, tw. */
    std::array<long long, 7> trips{};
    SchedulerStats bal;
    SchedEngineStats sched; //!< table cache + grid dedup accounting
    long long schedArenaHighWater = 0;
    std::string decisionLines; //!< Balance decision log, JSON lines
    std::vector<BranchRow> branches;
    /** B&B certificate; valid only when bnbRan. */
    bool bnbRan = false;
    double bnbWct = 0.0;
    double bnbLower = 0.0;
    bool bnbProven = false;
    bool bnbExhausted = false;
    BnbCounters bnbCounters;
};

/** Row/metric key order for the trip counters. */
constexpr const char *tripKeys[7] = {"cp", "hu", "rj", "lc",
                                     "lc_reverse", "pw", "tw"};
constexpr const char *tripMetricNames[7] = {
    "bounds.trips.cp", "bounds.trips.hu",         "bounds.trips.rj",
    "bounds.trips.lc", "bounds.trips.lc_reverse", "bounds.trips.pw",
    "bounds.trips.tw"};

/**
 * Evaluate one superblock with full accounting. Mirrors
 * eval/experiment.cc evaluateSuperblock, but returns the raw
 * integers (trip counters, Balance stats, decision log, per-branch
 * detail) instead of folding them into the global registry.
 */
SbCapture
captureSuperblock(const Superblock &sb, const MachineModel &machine,
                  const HeuristicSet &set, const CaptureOptions &opts)
{
    const BoundConfig &config = opts.bounds;
    GraphContext ctx(sb);
    BoundScratch scratch(machine);
    BoundCounterSet counters;
    BoundsToolkit toolkit(ctx, machine, config, &counters, &scratch);

    SbCapture cap;

    // The six bounds, reusing the toolkit's LC/LateRC/PW artifacts.
    cap.bounds.cp = wctFromBranchEarly(sb, cpEarly(ctx));
    cap.bounds.hu = wctFromBranchEarly(
        sb, huEarly(ctx, machine, &counters.hu));
    std::vector<int> rjBranches = rjEarly(ctx, machine, &counters.rj);
    cap.bounds.rj = wctFromBranchEarly(sb, rjBranches);
    std::vector<int> lcBranches;
    lcBranches.reserve(std::size_t(sb.numBranches()));
    for (OpId b : sb.branches())
        lcBranches.push_back(toolkit.earlyRC()[std::size_t(b)]);
    cap.bounds.lc = wctFromBranchEarly(sb, lcBranches);
    if (toolkit.pairwise()) {
        cap.bounds.pw = toolkit.pairwise()->superblockWct();
        if (config.computeTriplewise) {
            cap.bounds.tw = computeTriplewise(
                                ctx, machine, toolkit.earlyRC(),
                                toolkit.lateRCAll(), *toolkit.pairwise(),
                                config.triplewise, &counters.tw,
                                &scratch)
                                .wct;
        } else {
            cap.bounds.tw = cap.bounds.pw;
        }
    } else {
        cap.bounds.pw = cap.bounds.lc;
        cap.bounds.tw = cap.bounds.lc;
    }
    cap.tightest = cap.bounds.tightest();

    // Table 2 accounting: CP's cost is the dependence analysis — one
    // trip per (op + edge, branch) pair (eval/bounds_eval.cc).
    long long cpTrips = (long long)(sb.numBranches()) *
                        (sb.numOps() + sb.numEdges());
    cap.trips = {cpTrips,          counters.hu.trips,
                 counters.rj.trips, counters.lc.trips,
                 counters.lcReverse.trips, counters.pw.trips,
                 counters.tw.trips};

    // Heuristics; Balance reuses the toolkit and feeds the log. One
    // scheduler scratch shares the priority tables across the
    // primaries and the Best grid.
    SchedScratch schedScratch;
    ScheduleRequest plainReq;
    plainReq.scratch = &schedScratch;
    DecisionLog dlog(sb.name());
    Schedule balanceSchedule;
    bool haveBalance = false;
    Schedule bestPrimary;
    double bestPrimaryWct = 0.0;
    for (const auto &sched : set.primaries) {
        Schedule s = [&] {
            auto *bal =
                dynamic_cast<const BalanceScheduler *>(sched.get());
            if (bal && bal->config().useRcBounds) {
                ScheduleRequest req = plainReq;
                req.stats = &cap.bal;
                req.decisionLog = &dlog;
                Schedule out =
                    bal->runWithToolkit(ctx, machine, toolkit, req);
                balanceSchedule = out;
                haveBalance = true;
                return out;
            }
            return sched->run(ctx, machine, plainReq);
        }();
        s.validate(sb, machine);
        double w = s.wct(sb);
        if (cap.wct.empty() || w < bestPrimaryWct) {
            bestPrimaryWct = w;
            bestPrimary = s;
        }
        cap.wct.push_back(w);
    }

    // Best: the primaries' envelope plus the (deduplicated) combo
    // grid, without SchedulerStats attached, as before.
    if (set.withBest) {
        double bestWct = *std::min_element(cap.wct.begin(),
                                           cap.wct.end());
        bestWct = std::min(bestWct, bestGridWct(ctx, machine, plainReq));
        cap.wct.push_back(bestWct);
    }

    for (double w : cap.wct) {
        bsAssert(w >= cap.tightest - 1e-6,
                 "schedule beats the lower bound on '", sb.name(),
                 "': wct ", w, " < bound ", cap.tightest);
    }

    // The B&B certifier, seeded with the best primary schedule so
    // its incumbent can never be worse than the lineup. threads=1:
    // this function already runs on a pool worker.
    if (opts.withBnb && !cap.wct.empty() &&
        sb.numOps() <= opts.bnbMaxOps) {
        BnbOptions bnbOpts;
        bnbOpts.maxNodes = opts.bnbMaxNodes;
        bnbOpts.threads = 1;
        bnbOpts.seedWithBest = false;
        BnbRequest bnbReq;
        bnbReq.toolkit = &toolkit;
        bnbReq.seedSchedule = &bestPrimary;
        bnbReq.staticLowerBound = cap.tightest;
        BnbResult r = bnbSchedule(ctx, machine, bnbOpts, bnbReq);
        r.schedule.validate(sb, machine);
        cap.bnbRan = true;
        cap.bnbWct = r.wct;
        cap.bnbLower = r.lowerBound;
        cap.bnbProven = r.proven;
        cap.bnbExhausted = r.exhausted;
        cap.bnbCounters = r.counters;
    }

    cap.sched = schedScratch.stats;
    cap.schedArenaHighWater =
        (long long)(schedScratch.highWaterBytes());
    cap.decisionLines = dlog.toJsonLines();

    // Per-branch detail off the achieved (Balance) schedule.
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        OpId b = sb.branches()[std::size_t(bi)];
        BranchRow row;
        row.idx = bi;
        row.weight = sb.exitProb(b);
        row.depHeight = ctx.earlyDC()[std::size_t(b)];
        row.rjEarly = rjBranches[std::size_t(bi)];
        row.lcEarly = lcBranches[std::size_t(bi)];
        row.issue = haveBalance ? balanceSchedule.issueOf(b) : -1;
        row.latency = sb.op(b).latency;
        cap.branches.push_back(row);
    }
    return cap;
}

/** Serialize one row (one JSON line, newline-terminated). */
std::string
renderRow(const std::string &program, const Superblock &sb,
          const std::string &machine,
          const std::vector<std::string> &names, const SbCapture &cap)
{
    JsonWriter w;
    w.beginObject();
    w.key("program").value(program);
    w.key("superblock").value(sb.name());
    w.key("machine").value(machine);
    w.key("ops").value(sb.numOps());
    w.key("branches").value(sb.numBranches());
    w.key("frequency").value(sb.execFrequency());
    w.key("bounds").beginObject()
        .key("cp").value(cap.bounds.cp)
        .key("hu").value(cap.bounds.hu)
        .key("rj").value(cap.bounds.rj)
        .key("lc").value(cap.bounds.lc)
        .key("pw").value(cap.bounds.pw)
        .key("tw").value(cap.bounds.tw)
        .key("tightest").value(cap.tightest)
        .endObject();
    w.key("wct").beginObject();
    for (std::size_t h = 0; h < names.size(); ++h)
        w.key(names[h]).value(cap.wct[h]);
    w.endObject();
    w.key("trips").beginObject();
    for (int i = 0; i < 7; ++i)
        w.key(tripKeys[i]).value(cap.trips[std::size_t(i)]);
    w.endObject();
    w.key("balance").beginObject()
        .key("decisions").value(cap.bal.decisions)
        .key("loop_trips").value(cap.bal.loopTrips)
        .key("full_updates").value(cap.bal.fullUpdates)
        .key("light_updates").value(cap.bal.lightUpdates)
        .key("selection_passes").value(cap.bal.selectionPasses)
        .key("candidates").value(cap.bal.candidatesSum)
        .endObject();
    if (cap.bnbRan) {
        w.key("bnb").beginObject()
            .key("wct").value(cap.bnbWct)
            .key("lower_bound").value(cap.bnbLower)
            .key("proven").value(cap.bnbProven)
            .key("exhausted").value(cap.bnbExhausted)
            .key("nodes_expanded").value(cap.bnbCounters.nodesExpanded)
            .key("pruned_by_bound").value(cap.bnbCounters.prunedByBound)
            .key("pruned_by_dominance")
            .value(cap.bnbCounters.prunedByDominance)
            .key("incumbent_updates")
            .value(cap.bnbCounters.incumbentUpdates)
            .key("tasks_completed").value(cap.bnbCounters.tasksCompleted)
            .key("tasks_aborted").value(cap.bnbCounters.tasksAborted)
            .key("rounds").value(cap.bnbCounters.rounds)
            .endObject();
    }
    w.key("branch_detail").beginArray();
    for (const BranchRow &br : cap.branches) {
        w.beginObject()
            .key("idx").value(br.idx)
            .key("weight").value(br.weight)
            .key("dep_height").value(br.depHeight)
            .key("rj_early").value(br.rjEarly)
            .key("lc_early").value(br.lcEarly)
            .key("issue").value(br.issue)
            .key("latency").value(br.latency)
            .endObject();
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

/** Fold one row's integers into the local registry. */
void
foldRow(MetricRegistry &reg, const SbCapture &cap)
{
    reg.counter("report.superblocks").add(1);
    for (int i = 0; i < 7; ++i)
        reg.counter(tripMetricNames[i]).add(cap.trips[std::size_t(i)]);
    reg.counter("sched.balance.decisions").add(cap.bal.decisions);
    reg.counter("sched.balance.loop_trips").add(cap.bal.loopTrips);
    reg.counter("sched.balance.full_updates").add(cap.bal.fullUpdates);
    reg.counter("sched.balance.light_updates")
        .add(cap.bal.lightUpdates);
    reg.counter("sched.balance.selection_passes")
        .add(cap.bal.selectionPasses);
    reg.counter("sched.balance.candidates").add(cap.bal.candidatesSum);
    reg.histogram("sched.balance.decisions_per_superblock")
        .observe(cap.bal.decisions);
    reg.counter("sched.priority_tables.hits").add(cap.sched.tableHits);
    reg.counter("sched.priority_tables.misses")
        .add(cap.sched.tableMisses);
    reg.counter("sched.best.grid_runs").add(cap.sched.gridRuns);
    reg.counter("sched.best.grid_skipped").add(cap.sched.gridSkipped);
    reg.gauge("sched.scratch.high_water_bytes")
        .observeMax(cap.schedArenaHighWater);
    if (cap.bnbRan) {
        reg.counter("bnb.instances").add(1);
        if (cap.bnbProven)
            reg.counter("bnb.proven").add(1);
        reg.counter("bnb.nodes_expanded")
            .add(cap.bnbCounters.nodesExpanded);
        reg.counter("bnb.pruned_by_bound")
            .add(cap.bnbCounters.prunedByBound);
        reg.counter("bnb.pruned_by_dominance")
            .add(cap.bnbCounters.prunedByDominance);
        reg.counter("bnb.incumbent_updates")
            .add(cap.bnbCounters.incumbentUpdates);
        reg.counter("bnb.tasks_completed")
            .add(cap.bnbCounters.tasksCompleted);
        reg.counter("bnb.tasks_aborted")
            .add(cap.bnbCounters.tasksAborted);
        reg.counter("bnb.rounds").add(cap.bnbCounters.rounds);
    }
}

} // namespace

CaptureResult
captureRun(const CaptureOptions &opts)
{
    bsAssert(!opts.outDir.empty(), "captureRun: outDir is required");
    TraceSpan span("captureRun");

    std::vector<MachineModel> machines = opts.machines;
    if (machines.empty())
        machines.push_back(MachineModel::gp4());
    HeuristicSet set = HeuristicSet::paperSet(opts.withBest);

    std::vector<BenchmarkProgram> suite = buildSuite(opts.suite);
    std::vector<const Superblock *> flat;
    std::vector<const std::string *> flatProgram;
    for (const BenchmarkProgram &prog : suite) {
        for (const Superblock &sb : prog.superblocks) {
            flat.push_back(&sb);
            flatProgram.push_back(&prog.name);
        }
    }

    RunManifest man;
    man.bench = "report_tool";
    man.seed = opts.suite.seed;
    man.scale = opts.suite.scale;
    man.threads = opts.threads;
    man.withBest = opts.withBest;
    man.withBnb = opts.withBnb;
    man.heuristics = set.names();
    man.metricsPath = "metrics.json";
    man.superblocksPath = "superblocks.jsonl";

    // Hardware counters observe the run but never steer it: the
    // profiler accumulates per thread and is snapshotted serially
    // after the reduction, so every other artifact is byte-for-byte
    // what a counter-free run writes.
    if (opts.hwCounters) {
        PerfProfiler::global().enable();
        PerfProfiler::global().reset();
    }

    // The local registry: folded serially below, never global().
    MetricRegistry reg;
    std::string rows;
    std::string error;

    // The metrics timeline samples the *local* registry — the one
    // whose snapshot becomes metrics.json — so the time-series and
    // the final snapshot describe the same run.
    std::unique_ptr<MetricsTimeline> timeline;
    if (opts.metricsIntervalMs > 0) {
        man.metricsTimelinePath = "metrics.timeline.jsonl";
        timeline = std::make_unique<MetricsTimeline>(
            reg, opts.outDir + "/" + man.metricsTimelinePath,
            opts.metricsIntervalMs);
    }
    // Bind the live diagnostics address (if a server is up) to the
    // run it observed.
    man.debugServerAddress = debugServerAddress();

    FlightScope flight("capture", (long long)(flat.size()));
    ProgressTracker &tracker = ProgressTracker::global();

    for (const MachineModel &machine : machines) {
        man.machines.push_back(machine.name());
        auto t0 = std::chrono::steady_clock::now();

        // One /progress phase per machine sweep; registration only
        // happens with the tracker on (one relaxed load otherwise).
        PhaseProgress *progress =
            tracker.enabled()
                ? &tracker.phase("capture:" + machine.name())
                : nullptr;
        if (progress)
            progress->start((long long)(flat.size()));

        // Parallel phase into pre-sized slots; captureSuperblock is
        // a pure function of its arguments.
        std::vector<SbCapture> slots(flat.size());
        parallelFor(
            flat.size(),
            [&](std::size_t i) {
                slots[i] = captureSuperblock(*flat[i], machine, set,
                                             opts);
                if (progress)
                    progress->tick();
            },
            opts.threads);
        if (progress)
            progress->finish();

        // Serial suite-order reduction: rows, decision lines, and
        // the registry fold all walk the same slots in the same
        // order, so snapshot counters equal row sums bit for bit.
        std::string decisionLines;
        for (std::size_t i = 0; i < flat.size(); ++i) {
            const SbCapture &cap = slots[i];
            rows += renderRow(*flatProgram[i], *flat[i],
                              machine.name(), man.heuristics, cap);
            decisionLines += cap.decisionLines;
            foldRow(reg, cap);
        }

        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        man.wall.push_back({machine.name(), ms});

        std::string logName = "decisions." + machine.name() + ".jsonl";
        bsAssert(writeTextFile(opts.outDir + "/" + logName,
                               decisionLines, &error),
                 "captureRun: ", error);
        man.decisionLogs.push_back({machine.name(), logName});
    }

    if (opts.hwCounters) {
        PerfProfiler &profiler = PerfProfiler::global();
        profiler.disable();
        std::string doc = profiler.snapshot().toJson();
        bsAssert(jsonLooksValid(doc),
                 "captureRun: hw-counter snapshot is invalid JSON");
        man.hwCountersPath = "hwcounters.json";
        bsAssert(writeTextFile(opts.outDir + "/" + man.hwCountersPath,
                               doc + "\n", &error),
                 "captureRun: ", error);
    }

    // Stop the sampler before the final snapshot: its last record is
    // written with all workers quiesced, so it equals metrics.json.
    if (timeline)
        timeline->stop();

    bsAssert(writeTextFile(opts.outDir + "/" + man.metricsPath,
                           reg.snapshotJson(), &error),
             "captureRun: ", error);
    bsAssert(writeTextFile(opts.outDir + "/" + man.superblocksPath,
                           rows, &error),
             "captureRun: ", error);

    CaptureResult result;
    result.manifestPath = opts.outDir + "/manifest.json";
    bsAssert(writeTextFile(result.manifestPath, man.toJson(), &error),
             "captureRun: ", error);
    result.manifest = std::move(man);
    return result;
}

} // namespace balance
