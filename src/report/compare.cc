#include "report/compare.hh"

#include <algorithm>
#include <cmath>

#include "support/table.hh"

namespace balance
{

namespace
{

/**
 * @return true when @p pattern matches @p name. One `*` wildcard is
 * supported anywhere in the pattern, matching any run of characters
 * (dots included): "bounds.trips.*" matches every trip counter and
 * "hw.*.cpi" matches that field of every hardware-counter phase.
 */
bool
patternMatches(const std::string &pattern, const std::string &name)
{
    std::size_t star = pattern.find('*');
    if (star == std::string::npos)
        return pattern == name;
    std::size_t suffixLen = pattern.size() - star - 1;
    if (name.size() < star + suffixLen)
        return false;
    return name.compare(0, star, pattern, 0, star) == 0 &&
           name.compare(name.size() - suffixLen, suffixLen, pattern,
                        star + 1, suffixLen) == 0;
}

/** Specificity rank: exact = huge, glob = literal char count. */
std::size_t
specificity(const std::string &pattern)
{
    if (pattern.find('*') != std::string::npos)
        return pattern.size() - 1;
    return std::size_t(-1);
}

/** Flatten one snapshot group ("counters"/"gauges") into lines. */
void
collectGroup(const JsonValue &snapshot, const char *group,
             std::vector<std::pair<std::string, double>> *out)
{
    if (!snapshot.isObject())
        return;
    const JsonValue *members = snapshot.find(group);
    if (!members || !members->isObject())
        return;
    for (const auto &kv : members->members()) {
        if (kv.second.isNumber())
            out->emplace_back(kv.first, kv.second.asDouble());
    }
}

/**
 * Flatten a hwcounters.json document into "hw.<phase>.<field>"
 * lines. Only the higher-is-worse derived rates are eligible to
 * gate (cpi, branch_miss_rate, cache_miss_rate): compareRuns treats
 * "current > base" as the regression direction, so IPC — where lower
 * is the regression — rides along informationally as its reciprocal
 * already gates via cpi.
 */
void
collectHwLines(const JsonValue &hw,
               std::vector<std::pair<std::string, double>> *out)
{
    if (!hw.isObject())
        return;
    const JsonValue *phases = hw.find("phases");
    if (!phases || !phases->isObject())
        return;
    static constexpr const char *fields[] = {"cpi", "branch_miss_rate",
                                             "cache_miss_rate"};
    for (const auto &kv : phases->members()) {
        if (!kv.second.isObject())
            continue;
        for (const char *field : fields) {
            const JsonValue *v = kv.second.find(field);
            if (v && v->isNumber())
                out->emplace_back("hw." + kv.first + "." + field,
                                  v->asDouble());
        }
    }
}

/** @return the artifact's measurement tier ("" when absent). */
std::string
hwTier(const JsonValue &hw)
{
    if (!hw.isObject())
        return std::string();
    const JsonValue *tier = hw.find("tier");
    return tier && tier->isString() ? tier->asString() : std::string();
}

} // namespace

bool
PerfBudget::toleranceFor(const std::string &metric, double *out) const
{
    const Entry *best = nullptr;
    for (const Entry &e : metrics) {
        if (!patternMatches(e.pattern, metric))
            continue;
        if (!best ||
            specificity(e.pattern) > specificity(best->pattern))
            best = &e;
    }
    if (!best)
        return false;
    *out = best->tolerancePct;
    return true;
}

bool
PerfBudget::fromJson(const JsonValue &doc, PerfBudget *out,
                     std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = "budget: " + msg;
        return false;
    };
    if (!doc.isObject())
        return fail("document is not an object");

    PerfBudget b;
    if (const JsonValue *wall = doc.find("wall_time_tolerance_pct")) {
        if (!wall->isNumber())
            return fail("wall_time_tolerance_pct is not a number");
        b.wallTolerancePct = wall->asDouble();
    }
    const JsonValue *metrics = doc.find("metrics");
    if (!metrics || !metrics->isObject())
        return fail("missing 'metrics' object");
    for (const auto &kv : metrics->members()) {
        if (!kv.second.isNumber())
            return fail("non-numeric tolerance for '" + kv.first +
                        "'");
        b.metrics.push_back({kv.first, kv.second.asDouble()});
    }
    *out = std::move(b);
    return true;
}

std::string
CompareResult::render() const
{
    TextTable table;
    table.setHeader(
        {"metric", "base", "current", "tolerance", "verdict"});
    for (const CompareLine &l : lines) {
        std::string tol =
            l.gated ? fmtPercent(l.tolerancePct, 1) : "-";
        std::string verdict = !l.gated
            ? "info"
            : (l.regressed ? "REGRESSED" : "ok");
        auto fmt = [](double v) {
            // Counters print as integers, walls with a fraction.
            return v == std::floor(v) ? fmtCount((long long)(v))
                                      : fmtDouble(v, 1);
        };
        table.addRow(
            {l.metric, fmt(l.base), fmt(l.current), tol, verdict});
    }
    return table.render();
}

CompareResult
compareRuns(const RunArtifacts &base, const RunArtifacts &current,
            const PerfBudget &budget)
{
    CompareResult result;

    std::vector<std::pair<std::string, double>> baseVals;
    collectGroup(base.metrics, "counters", &baseVals);
    collectGroup(base.metrics, "gauges", &baseVals);
    std::vector<std::pair<std::string, double>> curVals;
    collectGroup(current.metrics, "counters", &curVals);
    collectGroup(current.metrics, "gauges", &curVals);

    auto lookup = [](const std::vector<std::pair<std::string, double>>
                         &vals,
                     const std::string &name, double *out) {
        for (const auto &kv : vals) {
            if (kv.first == name) {
                *out = kv.second;
                return true;
            }
        }
        return false;
    };

    auto addLine = [&](const std::string &metric, double baseV,
                       double curV, bool present, double tolOverride,
                       bool hasOverride) {
        CompareLine line;
        line.metric = metric;
        line.base = baseV;
        line.current = curV;
        double tol = 0.0;
        bool gated;
        if (hasOverride) {
            gated = tolOverride >= 0.0;
            if (gated)
                tol = tolOverride;
        } else {
            gated = budget.toleranceFor(metric, &tol);
        }
        line.gated = gated;
        line.tolerancePct = tol;
        if (gated) {
            double limit = baseV * (1.0 + tol / 100.0);
            line.regressed = !present || curV > limit + 1e-9;
            if (line.regressed)
                result.ok = false;
        }
        result.lines.push_back(std::move(line));
    };

    // Base-snapshot order first: a gated metric that disappeared
    // from the current run must still be reported (and fails).
    for (const auto &kv : baseVals) {
        double cur = 0.0;
        bool present = lookup(curVals, kv.first, &cur);
        addLine(kv.first, kv.second, cur, present, 0.0, false);
    }
    // Metrics new in the current run are informational.
    for (const auto &kv : curVals) {
        double dummy;
        if (!lookup(baseVals, kv.first, &dummy)) {
            CompareLine line;
            line.metric = kv.first;
            line.current = kv.second;
            result.lines.push_back(std::move(line));
        }
    }

    // Hardware-counter efficiency rates. These gate only when BOTH
    // runs measured at the hardware tier: fallback artifacts carry
    // zeroed rates, so comparing across tiers (or against a baseline
    // captured before counters existed) would be meaningless — those
    // lines are reported informationally instead.
    std::vector<std::pair<std::string, double>> baseHw, curHw;
    collectHwLines(base.hwCounters, &baseHw);
    collectHwLines(current.hwCounters, &curHw);
    bool hwGateable = hwTier(base.hwCounters) == "hardware" &&
                      hwTier(current.hwCounters) == "hardware";
    for (const auto &kv : baseHw) {
        double cur = 0.0;
        bool present = lookup(curHw, kv.first, &cur);
        if (hwGateable) {
            addLine(kv.first, kv.second, cur, present, 0.0, false);
        } else {
            addLine(kv.first, kv.second, cur, present, -1.0, true);
        }
    }

    // Wall clocks, gated only when the budget opts in: CI machines
    // are noisy, so the tolerance here is deliberately generous.
    for (const MachineWall &mw : base.manifest.wall) {
        double cur = 0.0;
        bool present = false;
        for (const MachineWall &cw : current.manifest.wall) {
            if (cw.machine == mw.machine) {
                cur = cw.ms;
                present = true;
                break;
            }
        }
        addLine("wall_ms." + mw.machine, mw.ms, cur, present,
                budget.wallTolerancePct, true);
    }
    return result;
}

} // namespace balance
