/**
 * @file
 * Run comparison against a perf budget: walk two runs' metric
 * snapshots, gate the budgeted counters (and, optionally, per-machine
 * wall clocks) with per-metric tolerances, and report every
 * regression. This is the CI report-gate (docs/REPORTING.md): the
 * deterministic counters — relaxation trips, Balance loop trips —
 * carry zero tolerance, so any algorithmic cost regression on a
 * fixed seed/scale/config fails the gate even when wall time hides
 * it in noise.
 */

#ifndef BALANCE_REPORT_COMPARE_HH
#define BALANCE_REPORT_COMPARE_HH

#include <string>
#include <vector>

#include "report/manifest.hh"

namespace balance
{

/**
 * Per-metric tolerance budget. Budget names match snapshot counter
 * and gauge names, either exactly or as a prefix glob with a
 * trailing '*' ("bounds.trips.*"); the most specific match wins
 * (exact beats glob, longer glob beats shorter). Metrics without a
 * match are compared informationally but never gate.
 */
struct PerfBudget
{
    struct Entry
    {
        std::string pattern;
        double tolerancePct = 0.0;
    };
    std::vector<Entry> metrics;
    /** Wall-clock tolerance; negative = wall time never gates. */
    double wallTolerancePct = -1.0;

    /** @return the tolerance for @p metric, or false when ungated. */
    bool toleranceFor(const std::string &metric, double *out) const;

    /**
     * Parse the budget document:
     * {"wall_time_tolerance_pct": 300, "metrics": {"name": pct, ...}}.
     */
    static bool fromJson(const JsonValue &doc, PerfBudget *out,
                         std::string *error);
};

/** One compared metric. */
struct CompareLine
{
    std::string metric;
    double base = 0.0;
    double current = 0.0;
    bool gated = false;     //!< a budget entry matched
    bool regressed = false; //!< current exceeds base * (1 + tol)
    double tolerancePct = 0.0;
};

/** The comparison verdict. */
struct CompareResult
{
    std::vector<CompareLine> lines; //!< snapshot order, walls last
    bool ok = true;                 //!< no gated metric regressed

    /** Fixed-width summary table (regressions marked). */
    std::string render() const;
};

/**
 * Compare @p current against @p base under @p budget. Counters and
 * gauges come from the runs' metric snapshots; wall clocks from the
 * manifests. A gated metric missing from @p current while present
 * in @p base is itself a regression (the gate cannot silently lose
 * coverage); metrics new in @p current are informational.
 *
 * When both runs carry a hwcounters.json artifact measured at the
 * hardware tier, the per-phase efficiency rates are compared as
 * "hw.<phase>.cpi" / ".branch_miss_rate" / ".cache_miss_rate" lines
 * and gate under the same budget patterns; mixed or fallback tiers
 * compare informationally only (the rates are zero without a PMU).
 */
CompareResult compareRuns(const RunArtifacts &base,
                          const RunArtifacts &current,
                          const PerfBudget &budget);

} // namespace balance

#endif // BALANCE_REPORT_COMPARE_HH
