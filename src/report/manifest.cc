#include "report/manifest.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace balance
{

namespace
{

/** Set @p *error to "<what>: <detail>" and return false. */
bool
fail(std::string *error, const std::string &what,
     const std::string &detail)
{
    if (error)
        *error = what + ": " + detail;
    return false;
}

/** Fetch a required member of @p kind; false with *error set. */
const JsonValue *
member(const JsonValue &doc, const char *key, JsonValue::Kind kind,
       std::string *error)
{
    const JsonValue *v = doc.find(key);
    if (!v || v->kind() != kind) {
        fail(error, "manifest",
             std::string(v ? "wrong type for key '" : "missing key '") +
                 key + "'");
        return nullptr;
    }
    return v;
}

/** Optional string member; "" when absent. */
std::string
optionalString(const JsonValue &doc, const char *key)
{
    const JsonValue *v = doc.find(key);
    return v && v->isString() ? v->asString() : std::string();
}

} // namespace

std::string
RunManifest::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("version").value((long long)(version));
    w.key("bench").value(bench);
    // The seed is a full u64; JSON numbers only carry i64 exactly,
    // so it travels as a decimal string.
    w.key("seed").value(std::to_string(seed));
    w.key("scale").value(scale);
    w.key("threads").value(threads);
    w.key("withBest").value(withBest);
    w.key("withBnb").value(withBnb);
    w.key("machines").beginArray();
    for (const std::string &m : machines)
        w.value(m);
    w.endArray();
    w.key("heuristics").beginArray();
    for (const std::string &h : heuristics)
        w.value(h);
    w.endArray();
    w.key("artifacts").beginObject();
    w.key("metrics").value(metricsPath);
    w.key("superblocks").value(superblocksPath);
    w.key("bench_json").value(benchJsonPath);
    w.key("trace").value(tracePath);
    // Written by --hw-counters runs only; readers treat an absent key
    // as "no counters captured", so old manifests stay loadable and
    // old readers ignore the extra member (no version bump needed).
    if (!hwCountersPath.empty())
        w.key("hw_counters").value(hwCountersPath);
    // Same optional-key contract as hw_counters: only observability
    // runs emit these, absent means "feature off", no version bump.
    if (!metricsTimelinePath.empty())
        w.key("metrics_timeline").value(metricsTimelinePath);
    w.key("decision_logs").beginArray();
    for (const DecisionLogRef &d : decisionLogs) {
        w.beginObject()
            .key("machine").value(d.machine)
            .key("path").value(d.path)
            .endObject();
    }
    w.endArray();
    w.endObject();
    if (!debugServerAddress.empty())
        w.key("debug_server").value(debugServerAddress);
    w.key("wall_ms").beginObject();
    for (const MachineWall &mw : wall)
        w.key(mw.machine).value(mw.ms);
    w.endObject();
    w.endObject();
    return w.str();
}

bool
RunManifest::fromJson(const JsonValue &doc, RunManifest *out,
                      std::string *error)
{
    if (!doc.isObject())
        return fail(error, "manifest", "document is not an object");

    RunManifest m;
    const JsonValue *v;

    if (!(v = member(doc, "version", JsonValue::Kind::Int, error)))
        return false;
    m.version = int(v->asInt());
    if (m.version != currentVersion) {
        return fail(error, "manifest",
                    "unsupported version " + std::to_string(m.version));
    }

    if (!(v = member(doc, "bench", JsonValue::Kind::String, error)))
        return false;
    m.bench = v->asString();

    if (!(v = member(doc, "seed", JsonValue::Kind::String, error)))
        return false;
    errno = 0;
    char *end = nullptr;
    m.seed = std::strtoull(v->asString().c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0')
        return fail(error, "manifest", "bad seed '" + v->asString() + "'");

    const JsonValue *scaleV = doc.find("scale");
    if (!scaleV || !scaleV->isNumber())
        return fail(error, "manifest", "missing numeric key 'scale'");
    m.scale = scaleV->asDouble();

    if (!(v = member(doc, "threads", JsonValue::Kind::Int, error)))
        return false;
    m.threads = int(v->asInt());

    if (!(v = member(doc, "withBest", JsonValue::Kind::Bool, error)))
        return false;
    m.withBest = v->asBool();

    // Optional for compatibility: manifests written before the B&B
    // certifier existed simply have no "bnb" row objects.
    if (const JsonValue *bnb = doc.find("withBnb")) {
        if (!bnb->isBool())
            return fail(error, "manifest", "withBnb is not a bool");
        m.withBnb = bnb->asBool();
    }

    if (!(v = member(doc, "machines", JsonValue::Kind::Array, error)))
        return false;
    for (const JsonValue &e : v->elements()) {
        if (!e.isString())
            return fail(error, "manifest", "non-string machine name");
        m.machines.push_back(e.asString());
    }

    if (!(v = member(doc, "heuristics", JsonValue::Kind::Array, error)))
        return false;
    for (const JsonValue &e : v->elements()) {
        if (!e.isString())
            return fail(error, "manifest", "non-string heuristic name");
        m.heuristics.push_back(e.asString());
    }

    const JsonValue *art =
        member(doc, "artifacts", JsonValue::Kind::Object, error);
    if (!art)
        return false;
    m.metricsPath = optionalString(*art, "metrics");
    m.superblocksPath = optionalString(*art, "superblocks");
    m.benchJsonPath = optionalString(*art, "bench_json");
    m.tracePath = optionalString(*art, "trace");
    m.hwCountersPath = optionalString(*art, "hw_counters");
    m.metricsTimelinePath = optionalString(*art, "metrics_timeline");
    m.debugServerAddress = optionalString(doc, "debug_server");
    if (const JsonValue *logs = art->find("decision_logs")) {
        if (!logs->isArray())
            return fail(error, "manifest", "decision_logs not an array");
        for (const JsonValue &e : logs->elements()) {
            if (!e.isObject())
                return fail(error, "manifest",
                            "decision_logs entry not an object");
            DecisionLogRef ref;
            ref.machine = optionalString(e, "machine");
            ref.path = optionalString(e, "path");
            if (ref.machine.empty() || ref.path.empty())
                return fail(error, "manifest",
                            "decision_logs entry missing machine/path");
            m.decisionLogs.push_back(std::move(ref));
        }
    }

    if (const JsonValue *wall = doc.find("wall_ms")) {
        if (!wall->isObject())
            return fail(error, "manifest", "wall_ms not an object");
        for (const auto &kv : wall->members()) {
            if (!kv.second.isNumber())
                return fail(error, "manifest",
                            "non-numeric wall_ms entry");
            m.wall.push_back({kv.first, kv.second.asDouble()});
        }
    }

    *out = std::move(m);
    return true;
}

std::string
resolveArtifactPath(const std::string &dir, const std::string &path)
{
    if (path.empty() || path.front() == '/' || dir.empty())
        return path;
    return dir + "/" + path;
}

bool
readTextFile(const std::string &path, std::string *out,
             std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(error, "cannot open", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        return fail(error, "read error", path);
    *out = buf.str();
    return true;
}

bool
writeTextFile(const std::string &path, const std::string &text,
              std::string *error)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return fail(error, "cannot create", path);
    out << text;
    out.flush();
    if (!out)
        return fail(error, "write error", path);
    return true;
}

namespace
{

/** Read + parse one whole-document JSON artifact. */
bool
loadJsonArtifact(const std::string &path, JsonValue *out,
                 std::string *error)
{
    std::string text;
    if (!readTextFile(path, &text, error))
        return false;
    JsonParseResult r = parseJson(text);
    if (!r.ok())
        return fail(error, path, r.error.describe());
    *out = std::move(r.value);
    return true;
}

/** Read + parse one JSON-lines artifact. */
bool
loadJsonLinesArtifact(const std::string &path,
                      std::vector<JsonValue> *out, std::string *error)
{
    std::string text;
    if (!readTextFile(path, &text, error))
        return false;
    JsonParseError err;
    *out = parseJsonLines(text, &err);
    if (!err.message.empty())
        return fail(error, path, err.describe());
    return true;
}

} // namespace

bool
loadRunArtifacts(const std::string &manifestPath, RunArtifacts *out,
                 std::string *error)
{
    RunArtifacts art;

    JsonValue doc;
    if (!loadJsonArtifact(manifestPath, &doc, error))
        return false;
    if (!RunManifest::fromJson(doc, &art.manifest, error))
        return false;

    std::size_t slash = manifestPath.find_last_of('/');
    art.dir = slash == std::string::npos
        ? std::string()
        : manifestPath.substr(0, slash);

    const RunManifest &m = art.manifest;
    if (!m.metricsPath.empty() &&
        !loadJsonArtifact(resolveArtifactPath(art.dir, m.metricsPath),
                          &art.metrics, error))
        return false;
    if (!m.superblocksPath.empty() &&
        !loadJsonLinesArtifact(
            resolveArtifactPath(art.dir, m.superblocksPath),
            &art.superblocks, error))
        return false;
    if (!m.benchJsonPath.empty() &&
        !loadJsonArtifact(resolveArtifactPath(art.dir, m.benchJsonPath),
                          &art.benchJson, error))
        return false;
    if (!m.hwCountersPath.empty() &&
        !loadJsonArtifact(
            resolveArtifactPath(art.dir, m.hwCountersPath),
            &art.hwCounters, error))
        return false;
    for (const DecisionLogRef &ref : m.decisionLogs) {
        std::vector<JsonValue> records;
        if (!loadJsonLinesArtifact(resolveArtifactPath(art.dir, ref.path),
                                   &records, error))
            return false;
        art.decisions.push_back(std::move(records));
    }

    *out = std::move(art);
    return true;
}

} // namespace balance
