/**
 * @file
 * Bound-gap attribution: decompose, per superblock and per machine,
 * the distance between what the Balance heuristic achieved and the
 * relaxed lower bounds into the ladder
 *
 *     RJ -> PW -> TW -> achieved WCT
 *
 * (every stage is >= 0 by construction: the bounds are ordered and
 * no valid schedule beats a valid bound), then explain the
 * achieved-side gap from the decision log: how often branches were
 * denied (delayed) vs granted (delayedOK) in pairwise tradeoffs, how
 * saturated the NeedEach resource demands ran, and whether a branch
 * was already issuing at its dependence height. The top weighted-gap
 * outliers get decision-log excerpts inlined for drill-down
 * (docs/REPORTING.md).
 */

#ifndef BALANCE_REPORT_ATTRIBUTION_HH
#define BALANCE_REPORT_ATTRIBUTION_HH

#include <map>
#include <string>
#include <vector>

#include "report/manifest.hh"

namespace balance
{

/** One branch's attribution within a superblock. */
struct BranchAttribution
{
    int idx = -1;
    double weight = 0.0;
    int depHeight = 0;
    int rjEarly = 0;
    int lcEarly = 0;
    int issue = -1;
    /** Decision-log outcome tallies for this branch. */
    long long selected = 0;
    long long delayed = 0;
    long long delayedOk = 0;
    long long appearances = 0; //!< logged (step, branch) records
    long long needEachSum = 0; //!< summed over logged steps
    /** True when the branch issued after its EarlyRC bound — these
     *  branches carry the achieved-side gap. */
    bool late = false;
};

/** Ladder + cause analysis for one (superblock, machine). */
struct SuperblockAttribution
{
    std::string program;
    std::string superblock;
    std::string machine;
    double frequency = 1.0;
    int ops = 0;

    double rj = 0.0, pw = 0.0, tw = 0.0, achieved = 0.0;
    double rjToPw = 0.0;      //!< PW - RJ (>= 0)
    double pwToTw = 0.0;      //!< TW - PW (>= 0)
    double twToAchieved = 0.0; //!< achieved - TW (>= 0)
    double weightedGap = 0.0;  //!< frequency * twToAchieved

    /**
     * B&B certificate, when the row carries one. `certified` is the
     * proven floor on the optimal WCT (equal to the certified
     * optimum when `bnbProven`), so the TW -> achieved stage splits
     * exactly: twToCertified is bound slack — no schedule can close
     * it — and certifiedToAchieved is the heuristic's true distance
     * from the (certified) optimum.
     */
    bool hasBnb = false;
    bool bnbProven = false;
    double bnbWct = 0.0;
    double certified = 0.0;
    double twToCertified = 0.0;       //!< certified - TW (>= 0)
    double certifiedToAchieved = 0.0; //!< achieved - certified (>= 0)

    /** Decision-log aggregates (zero when no log was captured). */
    long long steps = 0;
    long long reorders = 0;
    long long tradeoffGrants = 0; //!< delayedOK grants logged
    long long denials = 0;        //!< delayed (not granted) outcomes
    double denialRatio = 0.0;  //!< denials / branch outcomes
    double meanNeedEach = 0.0; //!< avg NeedEach per (step, branch)
    double heightRatio = 0.0;  //!< max_b depHeight / issue

    /**
     * Dominant cause of twToAchieved, judged on the *late* branches
     * (issue > EarlyRC — the ones actually carrying the gap):
     * "at-bound" (no gap), "denied-tradeoffs" (delayed outcomes
     * dominate delayedOK), "granted-tradeoffs" (the pairwise pass
     * deliberately traded these branches away), "resource-pressure"
     * (high NeedEach saturation), "dependence-height" (no resource
     * or tradeoff signal — the chain itself is the limit);
     * "no-decision-data" when neither the decision log nor branch
     * detail can say. A heuristic labeling, not a proof.
     */
    std::string dominantCause;

    std::vector<BranchAttribution> branches;
    /** Rendered decision-log excerpt lines (outliers only). */
    std::vector<std::string> excerpt;
};

/** Mean/max of one ladder stage over a machine's superblocks. */
struct LadderStageStats
{
    double mean = 0.0;
    double max = 0.0;
};

/** Histogram of percent gaps; edges fixed for rendering. */
struct GapHistogram
{
    /** Bucket upper edges in percent; last bucket is open-ended. */
    static const std::vector<double> &edges();

    /** One count per edges() entry plus the open-ended tail. */
    std::vector<long long> counts;

    /** Account one percent-gap observation. */
    void add(double gapPercent);
};

/** Attribution aggregated over one machine configuration. */
struct MachineAttribution
{
    std::string machine;
    int superblocks = 0;
    int atBound = 0; //!< achieved == TW (within epsilon)

    LadderStageStats rjToPw;
    LadderStageStats pwToTw;
    LadderStageStats twToAchieved;
    GapHistogram gapHistogram; //!< percent of TW, achieved side

    /** B&B certificate aggregates (zero when no row carries one). */
    int bnbRows = 0;   //!< rows with a certificate
    int bnbProven = 0; //!< certificates that closed (gap <= eps)
    LadderStageStats twToCertified;       //!< bound slack
    LadderStageStats certifiedToAchieved; //!< true heuristic gap
    /** Achieved gap in percent of the certified floor, B&B rows. */
    GapHistogram certifiedGapHistogram;
    /** B&B search counter totals over this machine's rows. */
    std::map<std::string, long long> bnbTotals;

    /** Table 2 trip totals summed over this machine's rows. */
    std::map<std::string, long long> tripTotals;
    /** Balance engine cost totals over this machine's rows. */
    std::map<std::string, long long> balanceTotals;
    /**
     * Cost/quality frontier: per heuristic, frequency-weighted mean
     * slowdown over the TW bound (percent).
     */
    std::vector<std::pair<std::string, double>> heuristicSlowdown;
    /** Dominant-cause tallies over this machine's superblocks. */
    std::map<std::string, long long> causes;
    /** Top-K weighted-gap outliers, largest first. */
    std::vector<SuperblockAttribution> outliers;
};

/** Options for attributeRun. */
struct AttributionOptions
{
    int topK = 5; //!< outliers kept per machine
    int excerptSteps = 3; //!< decision steps excerpted per outlier
};

/** The full attribution result. */
struct AttributionReport
{
    std::vector<MachineAttribution> machines;
    /** Trip totals over ALL rows (must equal the snapshot). */
    std::map<std::string, long long> tripTotals;
};

/**
 * Run the attribution pass over a loaded run. Requires the
 * per-superblock rows; decision logs are optional (causes degrade
 * to the bound-side signals without them).
 */
AttributionReport attributeRun(const RunArtifacts &run,
                               const AttributionOptions &opts = {});

} // namespace balance

#endif // BALANCE_REPORT_ATTRIBUTION_HH
