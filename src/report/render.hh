/**
 * @file
 * Markdown rendering of a run's attribution: a self-contained report
 * with the bound-gap ladder per machine, text-sparkline gap
 * histograms, the cost/quality frontier, dominant-cause tallies,
 * outlier drill-downs with decision-log excerpts, and the
 * rows-vs-snapshot trip consistency table (docs/REPORTING.md).
 */

#ifndef BALANCE_REPORT_RENDER_HH
#define BALANCE_REPORT_RENDER_HH

#include <string>

#include "report/attribution.hh"
#include "report/manifest.hh"

namespace balance
{

/** Options for renderReport. */
struct RenderOptions
{
    /** Reserved for future layout switches. */
    bool includeExcerpts = true;
};

/**
 * Render @p attr (produced from @p run) as Markdown. Pure function
 * of its inputs, so reports are byte-stable across equivalent runs.
 */
std::string renderReport(const RunArtifacts &run,
                         const AttributionReport &attr,
                         const RenderOptions &opts = {});

} // namespace balance

#endif // BALANCE_REPORT_RENDER_HH
