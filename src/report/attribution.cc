#include "report/attribution.hh"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.hh"

namespace balance
{

namespace
{

constexpr double eps = 1e-9;

/** Required numeric member of a row object. */
double
num(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    bsAssert(v && v->isNumber(), "attribution: row missing numeric '",
             key, "'");
    return v->asDouble();
}

/** Required integer member of a row object. */
long long
intNum(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    bsAssert(v && v->isInt(), "attribution: row missing integer '",
             key, "'");
    return v->asInt();
}

/** Required string member of a row object. */
const std::string &
str(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    bsAssert(v && v->isString(), "attribution: row missing string '",
             key, "'");
    return v->asString();
}

/** Tracks mean/max over added samples. */
struct StageAccum
{
    double sum = 0.0;
    double peak = 0.0;
    long long n = 0;

    void
    add(double v)
    {
        sum += v;
        peak = std::max(peak, v);
        ++n;
    }

    LadderStageStats
    stats() const
    {
        return {n > 0 ? sum / double(n) : 0.0, peak};
    }
};

/** Per-machine working state during the row walk. */
struct MachineAccum
{
    MachineAttribution out;
    StageAccum rjToPw, pwToTw, twToAchieved;
    StageAccum twToCertified, certifiedToAchieved;
    /** freq-weighted WCT cycles per heuristic + the TW reference. */
    std::vector<double> heuristicCycles;
    double twCycles = 0.0;
    /** Every superblock's attribution (outliers selected at the end). */
    std::vector<SuperblockAttribution> all;
};

/** Decision records of one machine, keyed by superblock name. */
using DecisionIndex =
    std::map<std::string, std::vector<const JsonValue *>>;

/**
 * Render one decision record as a one-line excerpt:
 * "cycle 3: pick 17 of 4; branch 1 delayed (needEach=2); delayedOK 2
 * vs 0 (pair=9)".
 */
std::string
renderExcerptLine(const JsonValue &rec)
{
    std::ostringstream out;
    out << "cycle " << intNum(rec, "cycle") << ": pick "
        << intNum(rec, "pick");
    if (const JsonValue *cands = rec.find("candidates"))
        out << " of " << cands->size();
    if (const JsonValue *branches = rec.find("branches")) {
        for (const JsonValue &b : branches->elements()) {
            const std::string &outcome = str(b, "outcome");
            if (outcome == "selected" || outcome == "ignored")
                continue;
            out << "; branch " << intNum(b, "branch") << " " << outcome
                << " (needEach=" << intNum(b, "needEach")
                << ", dynEarly=" << intNum(b, "dynEarly") << ")";
        }
    }
    if (const JsonValue *tradeoffs = rec.find("tradeoffs")) {
        for (const JsonValue &t : tradeoffs->elements()) {
            out << "; delayedOK " << intNum(t, "delayed") << " vs "
                << intNum(t, "against")
                << " (pair=" << intNum(t, "pairBound") << ")";
        }
    }
    return out.str();
}

/** True when the record carries a delay or a tradeoff grant. */
bool
recordIsInteresting(const JsonValue &rec)
{
    if (const JsonValue *tradeoffs = rec.find("tradeoffs")) {
        if (tradeoffs->size() > 0)
            return true;
    }
    if (const JsonValue *branches = rec.find("branches")) {
        for (const JsonValue &b : branches->elements()) {
            const std::string &outcome = str(b, "outcome");
            if (outcome == "delayed" || outcome == "delayedOK")
                return true;
        }
    }
    return false;
}

/** Attach up to @p maxSteps excerpt lines to an outlier. */
void
attachExcerpt(SuperblockAttribution &sba, const DecisionIndex &index,
              int maxSteps)
{
    auto it = index.find(sba.superblock);
    if (it == index.end())
        return;
    // Prefer steps where something happened (a delay or a grant);
    // pad with leading steps when too few are interesting.
    std::vector<const JsonValue *> picked;
    for (const JsonValue *rec : it->second) {
        if (int(picked.size()) >= maxSteps)
            break;
        if (recordIsInteresting(*rec))
            picked.push_back(rec);
    }
    for (const JsonValue *rec : it->second) {
        if (int(picked.size()) >= maxSteps)
            break;
        if (std::find(picked.begin(), picked.end(), rec) ==
            picked.end())
            picked.push_back(rec);
    }
    for (const JsonValue *rec : picked)
        sba.excerpt.push_back(renderExcerptLine(*rec));
}

/** Fold one machine's decision records for one superblock row. */
void
foldDecisions(SuperblockAttribution &sba, const DecisionIndex &index)
{
    auto it = index.find(sba.superblock);
    if (it == index.end())
        return;
    long long outcomeCount = 0;
    long long needEachTotal = 0;
    for (const JsonValue *rec : it->second) {
        ++sba.steps;
        sba.reorders += intNum(*rec, "reorders");
        if (const JsonValue *tradeoffs = rec->find("tradeoffs"))
            sba.tradeoffGrants += (long long)(tradeoffs->size());
        const JsonValue *branches = rec->find("branches");
        if (!branches)
            continue;
        for (const JsonValue &b : branches->elements()) {
            long long idx = intNum(b, "branch");
            const std::string &outcome = str(b, "outcome");
            long long needEach = intNum(b, "needEach");
            ++outcomeCount;
            needEachTotal += needEach;
            for (BranchAttribution &ba : sba.branches) {
                if (ba.idx != int(idx))
                    continue;
                ++ba.appearances;
                ba.needEachSum += needEach;
                if (outcome == "selected")
                    ++ba.selected;
                else if (outcome == "delayed")
                    ++ba.delayed;
                else if (outcome == "delayedOK")
                    ++ba.delayedOk;
                break;
            }
            if (outcome == "delayed")
                ++sba.denials;
        }
    }
    if (outcomeCount > 0) {
        sba.denialRatio = double(sba.denials) / double(outcomeCount);
        sba.meanNeedEach =
            double(needEachTotal) / double(outcomeCount);
    }
}

/**
 * Classify the achieved-side gap (see header). The judgment runs
 * over the late branches — issue > EarlyRC — because a branch
 * scheduled at its bound contributes nothing to the gap; when no
 * branch is late (possible only through float slack) the whole
 * weighted set stands in.
 */
std::string
classifyCause(const SuperblockAttribution &sba, bool haveDecisions)
{
    if (sba.twToAchieved <= eps)
        return "at-bound";
    if (sba.branches.empty() && !haveDecisions)
        return "no-decision-data";

    long long delayed = 0;
    long long delayedOk = 0;
    long long appearances = 0;
    long long needEachSum = 0;
    bool anyLate = false;
    for (const BranchAttribution &ba : sba.branches) {
        if (ba.weight <= eps || !ba.late)
            continue;
        anyLate = true;
        delayed += ba.delayed;
        delayedOk += ba.delayedOk;
        appearances += ba.appearances;
        needEachSum += ba.needEachSum;
    }
    if (!anyLate) {
        for (const BranchAttribution &ba : sba.branches) {
            if (ba.weight <= eps)
                continue;
            delayed += ba.delayed;
            delayedOk += ba.delayedOk;
            appearances += ba.appearances;
            needEachSum += ba.needEachSum;
        }
    }

    if (delayed > delayedOk)
        return "denied-tradeoffs";
    if (delayedOk > 0)
        return "granted-tradeoffs";
    // No tradeoff involvement: saturated resource demands point at
    // pressure, otherwise the dependence chain itself is the limit.
    double meanNeed = appearances > 0
        ? double(needEachSum) / double(appearances)
        : 0.0;
    if (meanNeed >= 1.5)
        return "resource-pressure";
    return "dependence-height";
}

} // namespace

const std::vector<double> &
GapHistogram::edges()
{
    // Percent-of-TW gap buckets; the tail is open-ended.
    static const std::vector<double> e = {0.0, 1.0, 2.0,
                                          5.0, 10.0, 20.0};
    return e;
}

void
GapHistogram::add(double gapPercent)
{
    const std::vector<double> &e = edges();
    if (counts.empty())
        counts.assign(e.size() + 1, 0);
    for (std::size_t i = 0; i < e.size(); ++i) {
        if (gapPercent <= e[i] + eps) {
            ++counts[i];
            return;
        }
    }
    ++counts.back();
}

AttributionReport
attributeRun(const RunArtifacts &run, const AttributionOptions &opts)
{
    bsAssert(!run.superblocks.empty(),
             "attribution: run has no per-superblock rows (was the "
             "manifest captured with superblocks.jsonl?)");

    // Index decision records per machine, keyed by superblock.
    std::map<std::string, DecisionIndex> decisionsByMachine;
    for (std::size_t i = 0; i < run.manifest.decisionLogs.size(); ++i) {
        DecisionIndex &index =
            decisionsByMachine[run.manifest.decisionLogs[i].machine];
        for (const JsonValue &rec : run.decisions[i])
            index[str(rec, "superblock")].push_back(&rec);
    }

    // Walk the rows, grouping by machine in first-appearance order
    // (capture emits machines in manifest order).
    std::vector<std::string> machineOrder;
    std::map<std::string, MachineAccum> accums;
    AttributionReport report;

    for (const JsonValue &row : run.superblocks) {
        const std::string &machine = str(row, "machine");
        auto found = accums.find(machine);
        if (found == accums.end()) {
            machineOrder.push_back(machine);
            found = accums.emplace(machine, MachineAccum()).first;
            found->second.out.machine = machine;
            found->second.heuristicCycles.assign(
                run.manifest.heuristics.size(), 0.0);
        }
        MachineAccum &acc = found->second;

        SuperblockAttribution sba;
        sba.program = str(row, "program");
        sba.superblock = str(row, "superblock");
        sba.machine = machine;
        sba.frequency = num(row, "frequency");
        sba.ops = int(intNum(row, "ops"));

        const JsonValue &bounds = row.get("bounds");
        sba.rj = num(bounds, "rj");
        sba.pw = num(bounds, "pw");
        sba.tw = num(bounds, "tw");

        // Achieved = the Balance heuristic's WCT (the run's subject);
        // fall back to the first heuristic when Balance is absent.
        const JsonValue &wct = row.get("wct");
        const JsonValue *achieved = wct.find("Balance");
        if (!achieved) {
            bsAssert(wct.size() > 0, "attribution: empty wct row");
            achieved = &wct.members().front().second;
        }
        sba.achieved = achieved->asDouble();

        sba.rjToPw = std::max(0.0, sba.pw - sba.rj);
        sba.pwToTw = std::max(0.0, sba.tw - sba.pw);
        sba.twToAchieved = std::max(0.0, sba.achieved - sba.tw);
        sba.weightedGap = sba.frequency * sba.twToAchieved;

        // Optional B&B certificate: split TW -> achieved at the
        // certified floor (rows from pre-certifier runs have no
        // "bnb" member and keep the bound-relative attribution).
        if (const JsonValue *bnb = row.find("bnb")) {
            sba.hasBnb = true;
            sba.bnbWct = num(*bnb, "wct");
            sba.certified = num(*bnb, "lower_bound");
            const JsonValue *proven = bnb->find("proven");
            sba.bnbProven = proven && proven->isBool() &&
                            proven->asBool();
            sba.twToCertified =
                std::max(0.0, sba.certified - sba.tw);
            sba.certifiedToAchieved =
                std::max(0.0, sba.achieved - sba.certified);
        }

        if (const JsonValue *detail = row.find("branch_detail")) {
            for (const JsonValue &b : detail->elements()) {
                BranchAttribution ba;
                ba.idx = int(intNum(b, "idx"));
                ba.weight = num(b, "weight");
                ba.depHeight = int(intNum(b, "dep_height"));
                ba.rjEarly = int(intNum(b, "rj_early"));
                ba.lcEarly = int(intNum(b, "lc_early"));
                ba.issue = int(intNum(b, "issue"));
                ba.late = ba.issue > ba.lcEarly;
                sba.branches.push_back(ba);
                // A weighted branch issuing at its dependence floor
                // cannot be scheduled earlier by any tradeoff.
                if (ba.weight > eps && ba.issue >= 0) {
                    double ratio = ba.issue <= ba.depHeight
                        ? 1.0
                        : double(ba.depHeight) /
                            double(std::max(1, ba.issue));
                    sba.heightRatio =
                        std::max(sba.heightRatio, ratio);
                }
            }
        }

        auto decIt = decisionsByMachine.find(machine);
        bool haveDecisions = decIt != decisionsByMachine.end();
        if (haveDecisions)
            foldDecisions(sba, decIt->second);
        sba.dominantCause = classifyCause(sba, haveDecisions);

        // Machine aggregates.
        MachineAttribution &out = acc.out;
        ++out.superblocks;
        if (sba.twToAchieved <= eps)
            ++out.atBound;
        acc.rjToPw.add(sba.rjToPw);
        acc.pwToTw.add(sba.pwToTw);
        acc.twToAchieved.add(sba.twToAchieved);
        out.gapHistogram.add(
            sba.tw > eps ? sba.twToAchieved / sba.tw * 100.0 : 0.0);
        ++out.causes[sba.dominantCause];
        if (sba.hasBnb) {
            ++out.bnbRows;
            if (sba.bnbProven)
                ++out.bnbProven;
            acc.twToCertified.add(sba.twToCertified);
            acc.certifiedToAchieved.add(sba.certifiedToAchieved);
            out.certifiedGapHistogram.add(
                sba.certified > eps
                    ? sba.certifiedToAchieved / sba.certified * 100.0
                    : 0.0);
            // Search counters only: wct/lower_bound are cycle
            // values, not summable accounting.
            const JsonValue *bnb = row.find("bnb");
            for (const auto &kv : bnb->members()) {
                if (kv.second.isInt() && kv.first != "wct" &&
                    kv.first != "lower_bound")
                    out.bnbTotals[kv.first] += kv.second.asInt();
            }
        }

        const JsonValue &trips = row.get("trips");
        for (const auto &kv : trips.members()) {
            long long v = kv.second.asInt();
            out.tripTotals[kv.first] += v;
            report.tripTotals[kv.first] += v;
        }
        const JsonValue &bal = row.get("balance");
        for (const auto &kv : bal.members())
            out.balanceTotals[kv.first] += kv.second.asInt();

        acc.twCycles += sba.frequency * sba.tw;
        for (std::size_t h = 0; h < run.manifest.heuristics.size();
             ++h) {
            const JsonValue *hw =
                wct.find(run.manifest.heuristics[h]);
            if (hw)
                acc.heuristicCycles[h] +=
                    sba.frequency * hw->asDouble();
        }

        acc.all.push_back(std::move(sba));
    }

    // Finalize per machine: stats, frontier, top-K outliers.
    for (const std::string &machine : machineOrder) {
        MachineAccum &acc = accums[machine];
        MachineAttribution &out = acc.out;
        out.rjToPw = acc.rjToPw.stats();
        out.pwToTw = acc.pwToTw.stats();
        out.twToAchieved = acc.twToAchieved.stats();
        out.twToCertified = acc.twToCertified.stats();
        out.certifiedToAchieved = acc.certifiedToAchieved.stats();

        for (std::size_t h = 0; h < run.manifest.heuristics.size();
             ++h) {
            double slowdown = acc.twCycles > eps
                ? (acc.heuristicCycles[h] / acc.twCycles - 1.0) * 100.0
                : 0.0;
            out.heuristicSlowdown.emplace_back(
                run.manifest.heuristics[h], slowdown);
        }

        std::stable_sort(acc.all.begin(), acc.all.end(),
                         [](const SuperblockAttribution &a,
                            const SuperblockAttribution &b) {
                             return a.weightedGap > b.weightedGap;
                         });
        int k = std::min<int>(opts.topK, int(acc.all.size()));
        auto decIt = decisionsByMachine.find(machine);
        for (int i = 0; i < k; ++i) {
            SuperblockAttribution &sba = acc.all[std::size_t(i)];
            if (decIt != decisionsByMachine.end())
                attachExcerpt(sba, decIt->second, opts.excerptSteps);
            out.outliers.push_back(std::move(sba));
        }

        report.machines.push_back(std::move(out));
    }
    return report;
}

} // namespace balance
