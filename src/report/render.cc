#include "report/render.hh"

#include <sstream>

#include "support/table.hh"

namespace balance
{

namespace
{

/** Append a fenced fixed-width block. */
void
fence(std::ostringstream &out, const std::string &body)
{
    out << "```\n" << body << "```\n\n";
}

/** Label of one gap-histogram bucket. */
std::string
bucketLabel(std::size_t i)
{
    const std::vector<double> &edges = GapHistogram::edges();
    if (i == 0)
        return "0%";
    if (i < edges.size()) {
        return "<=" + fmtDouble(edges[i], edges[i] < 1.0 ? 1 : 0) +
               "%";
    }
    return ">" + fmtDouble(edges.back(), 0) + "%";
}

/** Snapshot counter lookup ("" markers when the snapshot lacks it). */
const JsonValue *
snapshotCounter(const RunArtifacts &run, const std::string &name)
{
    if (!run.metrics.isObject())
        return nullptr;
    const JsonValue *counters = run.metrics.find("counters");
    if (!counters || !counters->isObject())
        return nullptr;
    return counters->find(name);
}

void
renderMachine(std::ostringstream &out, const MachineAttribution &m,
              const RenderOptions &opts)
{
    out << "## Machine " << m.machine << "\n\n";
    out << m.superblocks << " superblocks, " << m.atBound
        << " scheduled at the TW bound.\n\n";

    out << "### Bound-gap ladder (WCT cycles)\n\n";
    TextTable ladder;
    ladder.setHeader({"stage", "mean", "max"});
    ladder.addRow({"RJ -> PW", fmtDouble(m.rjToPw.mean, 4),
                   fmtDouble(m.rjToPw.max, 2)});
    ladder.addRow({"PW -> TW", fmtDouble(m.pwToTw.mean, 4),
                   fmtDouble(m.pwToTw.max, 2)});
    ladder.addRow({"TW -> achieved",
                   fmtDouble(m.twToAchieved.mean, 4),
                   fmtDouble(m.twToAchieved.max, 2)});
    fence(out, ladder.render());

    out << "### Achieved gap distribution (percent of TW)\n\n";
    if (!m.gapHistogram.counts.empty()) {
        out << "`" << sparkline(m.gapHistogram.counts) << "`\n\n";
        TextTable hist;
        hist.setHeader({"gap", "superblocks"});
        for (std::size_t i = 0; i < m.gapHistogram.counts.size(); ++i)
            hist.addRow({bucketLabel(i),
                         fmtCount(m.gapHistogram.counts[i])});
        fence(out, hist.render());
    }

    if (m.bnbRows > 0) {
        out << "### Certified optimality (branch and bound)\n\n";
        out << m.bnbRows << " superblocks certified, " << m.bnbProven
            << " proven optimal. The TW -> achieved stage splits at "
               "the certified floor: \"TW -> certified\" is bound "
               "slack no schedule can close; \"certified -> "
               "achieved\" is the heuristic's true distance from the "
               "proven optimum (or its certified floor when the node "
               "budget ran out).\n\n";
        TextTable ladder;
        ladder.setHeader({"stage", "mean", "max"});
        ladder.addRow({"TW -> certified",
                       fmtDouble(m.twToCertified.mean, 4),
                       fmtDouble(m.twToCertified.max, 2)});
        ladder.addRow({"certified -> achieved",
                       fmtDouble(m.certifiedToAchieved.mean, 4),
                       fmtDouble(m.certifiedToAchieved.max, 2)});
        fence(out, ladder.render());

        if (!m.certifiedGapHistogram.counts.empty()) {
            out << "Achieved gap distribution (percent of the "
                   "certified floor):\n\n";
            out << "`" << sparkline(m.certifiedGapHistogram.counts)
                << "`\n\n";
            TextTable hist;
            hist.setHeader({"gap", "superblocks"});
            for (std::size_t i = 0;
                 i < m.certifiedGapHistogram.counts.size(); ++i)
                hist.addRow(
                    {bucketLabel(i),
                     fmtCount(m.certifiedGapHistogram.counts[i])});
            fence(out, hist.render());
        }

        TextTable search;
        search.setHeader({"bnb counter", "total"});
        for (const auto &kv : m.bnbTotals) {
            if (kv.first == "wct" || kv.first == "lower_bound")
                continue;
            search.addRow({kv.first, fmtCount(kv.second)});
        }
        fence(out, search.render());
    }

    out << "### Cost/quality frontier\n\n";
    out << "Quality: frequency-weighted slowdown over the TW bound. "
           "Cost: Table 2 relaxation trips (bounds) and Balance "
           "engine totals (scheduler).\n\n";
    TextTable frontier;
    frontier.setHeader({"heuristic", "slowdown vs TW"});
    for (const auto &kv : m.heuristicSlowdown)
        frontier.addRow({kv.first, fmtPercent(kv.second, 3)});
    fence(out, frontier.render());

    TextTable trips;
    trips.setHeader({"bound", "trips"});
    for (const auto &kv : m.tripTotals)
        trips.addRow({kv.first, fmtCount(kv.second)});
    fence(out, trips.render());

    TextTable engine;
    engine.setHeader({"balance counter", "total"});
    for (const auto &kv : m.balanceTotals)
        engine.addRow({kv.first, fmtCount(kv.second)});
    fence(out, engine.render());

    out << "### Dominant causes of the achieved-side gap\n\n";
    TextTable causes;
    causes.setHeader({"cause", "superblocks"});
    for (const auto &kv : m.causes)
        causes.addRow({kv.first, fmtCount(kv.second)});
    fence(out, causes.render());

    if (!m.outliers.empty()) {
        out << "### Top weighted-gap outliers\n\n";
        for (const SuperblockAttribution &sba : m.outliers) {
            out << "#### " << sba.superblock << "\n\n";
            out << "frequency " << fmtDouble(sba.frequency, 3)
                << ", " << sba.ops << " ops; ladder RJ "
                << fmtDouble(sba.rj, 2) << " -> PW "
                << fmtDouble(sba.pw, 2) << " -> TW "
                << fmtDouble(sba.tw, 2) << " -> achieved "
                << fmtDouble(sba.achieved, 2) << " (weighted gap "
                << fmtDouble(sba.weightedGap, 3) << "); cause: "
                << sba.dominantCause << ".\n\n";
            if (sba.hasBnb) {
                out << (sba.bnbProven ? "Proven optimum "
                                      : "Certified floor ")
                    << fmtDouble(sba.certified, 2)
                    << "; achieved gap vs certificate "
                    << fmtDouble(sba.certifiedToAchieved, 2)
                    << " cycles.\n\n";
            }
            if (!sba.branches.empty()) {
                TextTable br;
                br.setHeader({"branch", "weight", "depHeight",
                              "rjEarly", "lcEarly", "issue",
                              "selected", "delayed", "delayedOK"});
                for (const BranchAttribution &ba : sba.branches) {
                    br.addRow({std::to_string(ba.idx),
                               fmtDouble(ba.weight, 3),
                               std::to_string(ba.depHeight),
                               std::to_string(ba.rjEarly),
                               std::to_string(ba.lcEarly),
                               std::to_string(ba.issue),
                               fmtCount(ba.selected),
                               fmtCount(ba.delayed),
                               fmtCount(ba.delayedOk)});
                }
                fence(out, br.render());
            }
            if (opts.includeExcerpts && !sba.excerpt.empty()) {
                out << "Decision-log excerpt:\n\n```\n";
                for (const std::string &line : sba.excerpt)
                    out << line << "\n";
                out << "```\n\n";
            }
        }
    }
}

} // namespace

std::string
renderReport(const RunArtifacts &run, const AttributionReport &attr,
             const RenderOptions &opts)
{
    const RunManifest &man = run.manifest;
    std::ostringstream out;
    out << "# Balance run report\n\n";
    out << "Bench `" << man.bench << "`, seed " << man.seed
        << ", scale " << fmtDouble(man.scale, 3) << ", threads "
        << man.threads << (man.withBest ? ", with" : ", without")
        << " Best"
        << (man.withBnb ? ", with B&B certificates" : "")
        << ".\n\n";

    TextTable wall;
    wall.setHeader({"machine", "wall ms"});
    for (const MachineWall &mw : man.wall)
        wall.addRow({mw.machine, fmtDouble(mw.ms, 1)});
    if (!man.wall.empty())
        fence(out, wall.render());

    for (const MachineAttribution &m : attr.machines)
        renderMachine(out, m, opts);

    // Per-phase hardware efficiency, when the run captured counters
    // (--hw-counters). The fallback tier has no PMU columns, so only
    // time and entry counts are meaningful there.
    if (run.hwCounters.isObject()) {
        const JsonValue *tier = run.hwCounters.find("tier");
        const JsonValue *mux = run.hwCounters.find("multiplexed");
        const JsonValue *phases = run.hwCounters.find("phases");
        out << "## Hardware counters\n\n";
        out << "Tier `"
            << (tier && tier->isString() ? tier->asString() : "?")
            << "`";
        if (mux && mux->isBool() && mux->asBool()) {
            out << " (multiplexed: counts are enabled/running "
                   "extrapolations)";
        }
        out << ".\n\n";
        if (phases && phases->isObject()) {
            TextTable hw;
            hw.setHeader({"phase", "entries", "task ms", "cycles",
                          "IPC", "br miss %", "cache miss %"});
            auto num = [](const JsonValue &o, const char *k) {
                const JsonValue *v = o.find(k);
                return v && v->isNumber() ? v->asDouble() : 0.0;
            };
            for (const auto &kv : phases->members()) {
                if (!kv.second.isObject())
                    continue;
                const JsonValue &p = kv.second;
                hw.addRow(
                    {kv.first,
                     fmtCount((long long)num(p, "entries")),
                     fmtDouble(num(p, "task_clock_ns") / 1e6, 1),
                     fmtCount((long long)num(p, "cycles")),
                     fmtDouble(num(p, "ipc"), 2),
                     fmtDouble(num(p, "branch_miss_rate") * 100.0, 2),
                     fmtDouble(num(p, "cache_miss_rate") * 100.0, 2)});
            }
            fence(out, hw.render());
        }
    }

    // Rows-vs-snapshot consistency: the committed contract is that
    // these match bit for bit (tests/report/report_pipeline_test).
    out << "## Trip totals vs metrics snapshot\n\n";
    TextTable consistency;
    consistency.setHeader(
        {"metric", "rows total", "snapshot", "match"});
    for (const auto &kv : attr.tripTotals) {
        std::string metric = "bounds.trips." + kv.first;
        const JsonValue *snap = snapshotCounter(run, metric);
        std::string snapText = snap ? fmtCount(snap->asInt()) : "-";
        std::string match = !snap
            ? "?"
            : (snap->asInt() == kv.second ? "yes" : "NO");
        consistency.addRow(
            {metric, fmtCount(kv.second), snapText, match});
    }
    fence(out, consistency.render());
    return out.str();
}

} // namespace balance
