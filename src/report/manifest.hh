/**
 * @file
 * The run manifest: one JSON document binding every artifact of an
 * experiment run together — suite parameters, machine configs, the
 * per-superblock row dump, the metrics snapshot, the decision logs,
 * and per-machine wall clocks. Written by `report_tool run` (and
 * `tools/run_experiments.sh --report-out`), read back by the render
 * and compare passes (docs/REPORTING.md).
 *
 * Artifact paths are stored relative to the manifest's own
 * directory, so a run directory (or a committed baseline under
 * tools/baselines/) can be moved or checked out anywhere.
 */

#ifndef BALANCE_REPORT_MANIFEST_HH
#define BALANCE_REPORT_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hh"

namespace balance
{

/** One machine configuration's wall clock within a run. */
struct MachineWall
{
    std::string machine;
    double ms = 0.0;
};

/** A per-machine decision-log artifact. */
struct DecisionLogRef
{
    std::string machine;
    std::string path; //!< relative to the manifest directory
};

/** The manifest proper (see file comment). */
struct RunManifest
{
    /** Manifest schema version; bumped on incompatible changes. */
    static constexpr int currentVersion = 1;

    int version = currentVersion;
    std::string bench = "report_run"; //!< producing harness
    std::uint64_t seed = 0;
    double scale = 1.0;
    int threads = 0;    //!< worker count requested (0 = hardware)
    bool withBest = false;
    /** Rows carry "bnb" certificate objects (absent in old runs). */
    bool withBnb = false;
    std::vector<std::string> machines;   //!< config names, run order
    std::vector<std::string> heuristics; //!< wct key order in rows

    /** Artifact paths, relative to the manifest directory ("" = absent). */
    std::string metricsPath;     //!< metric-registry snapshot JSON
    std::string superblocksPath; //!< per-superblock rows, JSON lines
    std::string benchJsonPath;   //!< optional bench JSON (BENCH_*.json)
    std::string tracePath;       //!< optional Chrome trace
    std::string hwCountersPath;  //!< optional per-phase hw counters
    /** Optional --metrics-interval JSONL time-series. */
    std::string metricsTimelinePath;
    std::vector<DecisionLogRef> decisionLogs;

    /**
     * "http://addr:port" of the diagnostics server that was live
     * during the run ("" = none). An address, not an artifact: it
     * records where /metrics and /progress could be scraped, for
     * log forensics and the live-telemetry CI leg.
     */
    std::string debugServerAddress;

    std::vector<MachineWall> wall; //!< per-machine wall clock

    /** @return the manifest as a JSON document. */
    std::string toJson() const;

    /**
     * Parse a manifest document.
     * @param doc Parsed JSON tree.
     * @param out Filled on success.
     * @param error Set to a diagnostic on failure.
     * @return true on success.
     */
    static bool fromJson(const JsonValue &doc, RunManifest *out,
                         std::string *error);
};

/**
 * A manifest plus its loaded artifacts, ready for attribution /
 * rendering / comparison.
 */
struct RunArtifacts
{
    RunManifest manifest;
    std::string dir; //!< the manifest's directory ("" = cwd)

    JsonValue metrics;                 //!< parsed snapshot (Null if absent)
    std::vector<JsonValue> superblocks; //!< parsed rows (suite order)
    /** Parsed decision records, parallel to manifest.decisionLogs. */
    std::vector<std::vector<JsonValue>> decisions;
    JsonValue benchJson;   //!< parsed bench JSON (Null if absent)
    JsonValue hwCounters;  //!< parsed hwcounters.json (Null if absent)
};

/** @return @p path resolved against @p dir (absolute paths kept). */
std::string resolveArtifactPath(const std::string &dir,
                                const std::string &path);

/** Read a whole file. @return false with @p error set on failure. */
bool readTextFile(const std::string &path, std::string *out,
                  std::string *error);

/** Write a whole file. @return false with @p error set on failure. */
bool writeTextFile(const std::string &path, const std::string &text,
                   std::string *error);

/**
 * Load a manifest and every artifact it references. A referenced
 * path that cannot be read or parsed is an error; absent (empty)
 * paths simply leave their slot empty, so a metrics-only baseline
 * loads without the row dump.
 *
 * @param manifestPath Path to the manifest JSON.
 * @param out Filled on success.
 * @param error Set to a diagnostic on failure.
 * @return true on success.
 */
bool loadRunArtifacts(const std::string &manifestPath, RunArtifacts *out,
                      std::string *error);

} // namespace balance

#endif // BALANCE_REPORT_MANIFEST_HH
