/**
 * @file
 * Shared GraphContext cache for the scheduling service.
 *
 * Building a GraphContext (transitive-closure masks, per-branch
 * heights, reversed closure DAGs) dominates the cost of scheduling a
 * small superblock, and service traffic is highly repetitive — the
 * same hot superblocks arrive over and over as a compiler iterates.
 * The cache keys on a 64-bit FNV-1a hash of the superblock's
 * canonical .sb serialization (writeSuperblock), so equivalent
 * requests share one entry regardless of the formatting of the text
 * that arrived on the wire; hash collisions are disambiguated by
 * comparing the canonical text itself.
 *
 * Thread-safety: GraphContext's lazy per-branch caches (closureOps,
 * reversedClosure) are NOT internally synchronized, so entries are
 * fully warmed — every lazy slot materialized — before they become
 * visible to other threads. After warming, all GraphContext accessors
 * are pure reads, and an entry can serve any number of concurrent
 * requests. Entries are handed out as shared_ptr, so an eviction
 * never invalidates a request that is still scheduling against the
 * evicted entry.
 *
 * Eviction is LRU with a fixed capacity; hit/miss/eviction counts
 * feed MetricRegistry::global() ("service.cache.*") for the
 * /metrics and /stats endpoints.
 */

#ifndef BALANCE_SERVICE_GRAPH_CACHE_HH
#define BALANCE_SERVICE_GRAPH_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/analysis.hh"
#include "graph/superblock.hh"

namespace balance
{

/** One cached superblock + warmed analysis context. */
struct CachedGraph
{
    Superblock sb;
    std::string canonical; ///< writeSuperblock(sb) — the cache key text
    std::uint64_t contentHash = 0;
    /** Warmed context; points into this entry's sb. */
    std::unique_ptr<GraphContext> ctx;
};

/** LRU cache of warmed GraphContexts (see file comment). */
class GraphContextCache
{
  public:
    explicit GraphContextCache(std::size_t capacity = 256);

    /**
     * Look up (or insert) the entry for @p sb. On a miss the
     * superblock is copied into a new entry and its context fully
     * warmed before publication.
     * @param hit receives whether the entry was already cached.
     * @return a shared, immutable entry — safe to use concurrently
     *         and after eviction.
     */
    std::shared_ptr<const CachedGraph> acquire(const Superblock &sb,
                                               bool *hit = nullptr);

    /** @return the FNV-1a 64 content hash of @p text. */
    static std::uint64_t hashText(const std::string &text);

    std::size_t capacity() const { return cap; }
    std::size_t size() const;
    long long hits() const;
    long long misses() const;
    long long evictions() const;

  private:
    /**
     * All entries sharing one content hash (normally exactly one;
     * more only on an FNV collision). LRU is tracked per chain.
     */
    struct Chain
    {
        std::vector<std::shared_ptr<const CachedGraph>> entries;
        std::list<std::uint64_t>::iterator lruPos;
    };

    const std::size_t cap;
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Chain> table;
    std::list<std::uint64_t> lru; ///< front = most recently used hash
    std::size_t entryCount = 0;
    long long hitCount = 0;
    long long missCount = 0;
    long long evictionCount = 0;
};

} // namespace balance

#endif // BALANCE_SERVICE_GRAPH_CACHE_HH
