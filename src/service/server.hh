/**
 * @file
 * Front door of the scheduling service (docs/SERVICE.md): a
 * dependency-free TCP listener that speaks two protocols on one
 * port, dispatching requests to a shared ScheduleEngine:
 *
 *  - HTTP/1.1:  POST /schedule with a JSON body (single request or
 *    {"requests": [...]}), plus GET /healthz, /stats, /metrics.
 *  - Length-prefixed frames for persistent clients: the 4 bytes
 *    "SBP1", a 4-byte big-endian payload length, then the same JSON
 *    payload as POST /schedule. Responses use identical framing, and
 *    one connection can carry any number of frames back to back.
 *
 * Backpressure has two stages, mirroring DebugServer's handler pool:
 * the acceptor sheds connections with 503 once the bounded pending
 * queue is full, and scheduling endpoints shed with 429 once
 * maxInflight request bodies are being evaluated (health/stats
 * stay served under full load, so operators can still see in).
 * Every connection read runs under the shared poll() deadline from
 * support/http.hh — a stalled client costs a handler thread at most
 * recvTimeoutMs.
 *
 * The cache disposition of a scheduling response ("hit", "miss", or
 * "partial" for mixed batches) travels in the X-Balance-Cache header,
 * never the body: identical requests produce bitwise-identical bodies
 * on every path.
 */

#ifndef BALANCE_SERVICE_SERVER_HH
#define BALANCE_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/engine.hh"
#include "service/protocol.hh"

namespace balance
{

/** ServiceServer configuration. */
struct ServiceServerOptions
{
    /** TCP port to bind; 0 picks an ephemeral port. */
    int port = 0;
    /** Bind address (loopback by default). */
    std::string bindAddress = "127.0.0.1";
    /** Handler pool size (connections served concurrently). */
    int handlerThreads = 4;
    /** Max accepted-but-unserved connections before 503-shedding. */
    int maxQueue = 64;
    /** Max request bodies under evaluation before 429-shedding. */
    int maxInflight = 8;
    /** Per-connection receive deadline (support/http.hh). */
    int recvTimeoutMs = 5000;
    /** Max request body bytes (HTTP and frame payloads). */
    std::size_t maxBodyBytes = 1 << 20;
    /** Request parse limits (batch size, op count, B&B node cap). */
    ProtocolLimits protocol;
    /** GraphContext cache capacity. */
    std::size_t cacheCapacity = 256;
    /** Batch fan-out concurrency cap; 0 = hardware (EngineOptions). */
    int threads = 0;
};

/** The scheduling service listener (see file comment). */
class ServiceServer
{
  public:
    ServiceServer() = default;
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /**
     * Bind, listen, and start the acceptor + handler threads.
     * @return true on success; on failure logs to stderr and leaves
     *         the server inactive.
     */
    bool start(const ServiceServerOptions &opts);

    /** Stop all threads and close the socket. Idempotent. */
    void stop();

    /** @return true between a successful start() and stop(). */
    bool active() const { return running.load(std::memory_order_acquire); }

    /** @return the bound port (valid while active). */
    int port() const { return boundPort; }

    /** @return "http://<addr>:<port>" (valid while active). */
    const std::string &address() const { return boundAddress; }

    /** @return the engine (cache stats; valid while active). */
    const ScheduleEngine &engine() const { return *scheduleEngine; }

    /** @return a JSON snapshot of service counters and cache state. */
    std::string statsJson() const;

  private:
    void acceptLoop();
    void handlerLoop();
    void serveConnection(int fd);
    void serveHttp(int fd);
    void serveFrames(int fd);

    /**
     * Parse + execute one scheduling payload.
     * @param cacheState receives hit/miss/partial.
     * @return {HTTP status, response body}.
     */
    std::pair<int, std::string> handleSchedule(
        const std::string &body, std::string &cacheState);

    ServiceServerOptions options;
    std::unique_ptr<ScheduleEngine> scheduleEngine;
    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};
    std::atomic<int> inflight{0};
    std::atomic<long long> served{0};
    std::atomic<long long> shed429{0};
    std::atomic<long long> shed503{0};
    std::atomic<long long> badRequests{0};
    int listenFd = -1;
    int boundPort = 0;
    std::string boundAddress;
    std::thread acceptor;
    std::vector<std::thread> handlers;
    std::mutex queueMutex;
    std::condition_variable queueCv;
    std::deque<int> pending;
};

} // namespace balance

#endif // BALANCE_SERVICE_SERVER_HH
