#include "service/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "support/http.hh"
#include "support/metrics.hh"
#include "support/prometheus.hh"

namespace balance
{

namespace
{

constexpr char frameMagic[4] = {'S', 'B', 'P', '1'};

/** writeHttpResponse plus one extra header line. */
void
writeResponseWithCacheHeader(int fd, int status,
                             const std::string &contentType,
                             const std::string &body,
                             const std::string &cacheState)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       httpStatusText(status) + "\r\n";
    head += "Content-Type: " + contentType + "\r\n";
    head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    if (!cacheState.empty())
        head += "X-Balance-Cache: " + cacheState + "\r\n";
    head += "Connection: close\r\n\r\n";
    if (writeAllFd(fd, head.data(), head.size()))
        writeAllFd(fd, body.data(), body.size());
}

/** Read exactly @p len bytes under one fresh deadline. */
bool
readExact(int fd, char *buf, std::size_t len, int timeoutMs)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeoutMs);
    std::size_t done = 0;
    while (done < len) {
        int left = timeoutMs <= 0
                       ? 0
                       : int(std::chrono::duration_cast<
                                 std::chrono::milliseconds>(
                                 deadline -
                                 std::chrono::steady_clock::now())
                                 .count());
        if (timeoutMs > 0 && left <= 0)
            return false;
        ssize_t n = recvWithDeadline(fd, buf + done, len - done, left);
        if (n <= 0)
            return false;
        done += std::size_t(n);
    }
    return true;
}

/** Send one SBP1 frame. */
void
writeFrame(int fd, const std::string &payload)
{
    char header[8];
    std::memcpy(header, frameMagic, 4);
    std::uint32_t len = std::uint32_t(payload.size());
    header[4] = char((len >> 24) & 0xff);
    header[5] = char((len >> 16) & 0xff);
    header[6] = char((len >> 8) & 0xff);
    header[7] = char(len & 0xff);
    if (writeAllFd(fd, header, sizeof(header)))
        writeAllFd(fd, payload.data(), payload.size());
}

} // namespace

ServiceServer::~ServiceServer() { stop(); }

bool
ServiceServer::start(const ServiceServerOptions &opts)
{
    if (running.load(std::memory_order_acquire))
        return false;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "balance-service: socket failed: %s\n",
                     std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
    if (::inet_pton(AF_INET, opts.bindAddress.c_str(), &addr.sin_addr) !=
        1) {
        std::fprintf(stderr, "balance-service: bad bind address '%s'\n",
                     opts.bindAddress.c_str());
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        std::fprintf(stderr,
                     "balance-service: bind to %s:%d failed: %s\n",
                     opts.bindAddress.c_str(), opts.port,
                     std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (::listen(fd, 128) < 0) {
        std::fprintf(stderr, "balance-service: listen failed: %s\n",
                     std::strerror(errno));
        ::close(fd);
        return false;
    }

    sockaddr_in bound{};
    socklen_t boundLen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &boundLen) < 0) {
        std::fprintf(stderr,
                     "balance-service: getsockname failed: %s\n",
                     std::strerror(errno));
        ::close(fd);
        return false;
    }

    options = opts;
    if (options.maxQueue <= 0)
        options.maxQueue = 1;
    if (options.maxInflight <= 0)
        options.maxInflight = 1;
    EngineOptions engineOpts;
    engineOpts.cacheCapacity = options.cacheCapacity;
    engineOpts.threads = options.threads;
    scheduleEngine = std::make_unique<ScheduleEngine>(engineOpts);

    listenFd = fd;
    boundPort = int(ntohs(bound.sin_port));
    boundAddress =
        "http://" + opts.bindAddress + ":" + std::to_string(boundPort);
    stopping.store(false, std::memory_order_release);
    running.store(true, std::memory_order_release);

    acceptor = std::thread([this] { acceptLoop(); });
    int nHandlers = options.handlerThreads > 0 ? options.handlerThreads
                                               : 1;
    handlers.reserve(std::size_t(nHandlers));
    for (int i = 0; i < nHandlers; ++i)
        handlers.emplace_back([this] { handlerLoop(); });

    std::printf("balance-service: listening on %s\n",
                boundAddress.c_str());
    std::fflush(stdout);
    return true;
}

void
ServiceServer::stop()
{
    if (!running.exchange(false, std::memory_order_acq_rel))
        return;
    {
        // Store under the queue mutex: a handler that has checked the
        // wait predicate but not yet blocked would otherwise miss the
        // notification forever.
        std::lock_guard<std::mutex> lock(queueMutex);
        stopping.store(true, std::memory_order_release);
    }
    queueCv.notify_all();
    if (acceptor.joinable())
        acceptor.join();
    for (std::thread &t : handlers) {
        if (t.joinable())
            t.join();
    }
    handlers.clear();
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        for (int fd : pending)
            ::close(fd);
        pending.clear();
    }
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
}

void
ServiceServer::acceptLoop()
{
    while (!stopping.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        int rc = ::poll(&pfd, 1, 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        bool shed = false;
        {
            std::lock_guard<std::mutex> lock(queueMutex);
            if (int(pending.size()) >= options.maxQueue)
                shed = true;
            else
                pending.push_back(fd);
        }
        if (shed) {
            shed503.fetch_add(1, std::memory_order_relaxed);
            MetricRegistry::global()
                .counter("service.shed_503")
                .add(1);
            writeHttpResponse(fd, 503, "application/json",
                              renderServiceError(
                                  "overloaded: connection queue full"));
            ::close(fd);
        } else {
            queueCv.notify_one();
        }
    }
}

void
ServiceServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queueMutex);
            queueCv.wait(lock, [this] {
                return stopping.load(std::memory_order_acquire) ||
                       !pending.empty();
            });
            if (stopping.load(std::memory_order_acquire))
                return;
            fd = pending.front();
            pending.pop_front();
        }
        serveConnection(fd);
        ::close(fd);
    }
}

void
ServiceServer::serveConnection(int fd)
{
    // Sniff the protocol: frame clients open with the literal
    // "SBP1"; anything else is HTTP. MSG_PEEK leaves the bytes for
    // the real reader.
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options.recvTimeoutMs);
    char peek[4];
    std::size_t got = 0;
    while (got < sizeof(peek)) {
        int left =
            options.recvTimeoutMs <= 0
                ? 0
                : int(std::chrono::duration_cast<
                          std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count());
        if (options.recvTimeoutMs > 0 && left <= 0)
            break;
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        int rc = ::poll(&pfd, 1, options.recvTimeoutMs <= 0 ? -1 : left);
        if (rc < 0 && errno == EINTR)
            continue;
        if (rc <= 0)
            break;
        ssize_t n = ::recv(fd, peek, sizeof(peek), MSG_PEEK);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        std::size_t had = got;
        got = std::size_t(n);
        // A prefix that already diverges from the magic is HTTP; no
        // need to wait for a fourth byte.
        if (std::memcmp(peek, frameMagic, got) != 0)
            break;
        // poll() stays readable while the peeked bytes sit in the
        // queue; back off briefly so a slow magic-prefix sender
        // cannot spin this thread until the deadline.
        if (got < sizeof(peek) && got == had)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (got >= sizeof(peek) &&
        std::memcmp(peek, frameMagic, sizeof(peek)) == 0) {
        serveFrames(fd);
        return;
    }
    serveHttp(fd);
}

void
ServiceServer::serveFrames(int fd)
{
    // Any number of frames back to back; each frame gets a fresh
    // receive deadline. Exit on clean close at a frame boundary.
    for (;;) {
        char header[8];
        ssize_t first = recvWithDeadline(fd, header, 1,
                                         options.recvTimeoutMs);
        if (first <= 0)
            return; // clean close, timeout, or error between frames
        if (!readExact(fd, header + 1, sizeof(header) - 1,
                       options.recvTimeoutMs))
            return;
        if (std::memcmp(header, frameMagic, 4) != 0) {
            writeFrame(fd, renderServiceError("bad frame magic"));
            return;
        }
        std::uint32_t len =
            (std::uint32_t(std::uint8_t(header[4])) << 24) |
            (std::uint32_t(std::uint8_t(header[5])) << 16) |
            (std::uint32_t(std::uint8_t(header[6])) << 8) |
            std::uint32_t(std::uint8_t(header[7]));
        if (len == 0 || len > options.maxBodyBytes) {
            badRequests.fetch_add(1, std::memory_order_relaxed);
            writeFrame(fd, renderServiceError(
                               "frame payload length out of range"));
            return;
        }
        std::string body(len, '\0');
        if (!readExact(fd, body.data(), len, options.recvTimeoutMs))
            return;
        std::string cacheState;
        auto [status, response] = handleSchedule(body, cacheState);
        (void)status; // frame responses carry the JSON either way
        writeFrame(fd, response);
    }
}

void
ServiceServer::serveHttp(int fd)
{
    HttpLimits limits;
    limits.recvTimeoutMs = options.recvTimeoutMs;
    limits.maxBodyBytes = options.maxBodyBytes;
    HttpRequest req;
    switch (readHttpRequest(fd, req, limits)) {
      case HttpReadResult::Ok:
        break;
      case HttpReadResult::Closed:
        return;
      case HttpReadResult::Timeout:
        writeHttpResponse(fd, 408, "application/json",
                          renderServiceError("request timeout"));
        return;
      case HttpReadResult::TooLarge:
        badRequests.fetch_add(1, std::memory_order_relaxed);
        writeHttpResponse(fd, 413, "application/json",
                          renderServiceError("request too large"));
        return;
      case HttpReadResult::Malformed:
        badRequests.fetch_add(1, std::memory_order_relaxed);
        writeHttpResponse(fd, 400, "application/json",
                          renderServiceError("bad request"));
        return;
    }

    std::string target = req.target;
    std::size_t q = target.find('?');
    if (q != std::string::npos)
        target.resize(q);

    if (req.method == "GET" || req.method == "HEAD") {
        if (target == "/healthz") {
            writeHttpResponse(fd, 200, "text/plain; charset=utf-8",
                              "ok\n", req.method == "HEAD");
            return;
        }
        if (target == "/stats") {
            writeHttpResponse(fd, 200, "application/json", statsJson(),
                              req.method == "HEAD");
            return;
        }
        if (target == "/metrics") {
            writeHttpResponse(
                fd, 200, "text/plain; version=0.0.4; charset=utf-8",
                renderPrometheusText(MetricRegistry::global()),
                req.method == "HEAD");
            return;
        }
        writeHttpResponse(fd, 404, "application/json",
                          renderServiceError("not found"),
                          req.method == "HEAD");
        return;
    }
    if (req.method == "POST") {
        if (target != "/schedule" && target != "/batch") {
            writeHttpResponse(fd, 404, "application/json",
                              renderServiceError("not found"));
            return;
        }
        std::string cacheState;
        auto [status, response] = handleSchedule(req.body, cacheState);
        writeResponseWithCacheHeader(fd, status, "application/json",
                                     response, cacheState);
        return;
    }
    writeHttpResponse(fd, 405, "application/json",
                      renderServiceError("method not allowed"));
}

std::pair<int, std::string>
ServiceServer::handleSchedule(const std::string &body,
                              std::string &cacheState)
{
    // Admission control: bound the number of bodies being parsed and
    // evaluated, independent of the connection queue. fetch_add
    // first so racing requests cannot both slip under the cap.
    int prior = inflight.fetch_add(1, std::memory_order_acq_rel);
    if (prior >= options.maxInflight) {
        inflight.fetch_sub(1, std::memory_order_acq_rel);
        shed429.fetch_add(1, std::memory_order_relaxed);
        MetricRegistry::global().counter("service.shed_429").add(1);
        return {429, renderServiceError(
                         "overloaded: too many in-flight requests")};
    }

    ServiceRequestSet set;
    std::string error;
    std::pair<int, std::string> out;
    if (!parseServiceRequestSet(body, options.protocol, set, &error)) {
        badRequests.fetch_add(1, std::memory_order_relaxed);
        MetricRegistry::global().counter("service.errors").add(1);
        out = {400, renderServiceError(error)};
    } else {
        std::vector<ServiceResult> results =
            scheduleEngine->runBatch(set.requests);
        served.fetch_add((long long)(results.size()),
                         std::memory_order_relaxed);
        std::size_t hits = 0;
        for (const ServiceResult &r : results)
            hits += r.cacheHit ? 1 : 0;
        cacheState = hits == results.size()  ? "hit"
                     : hits == 0             ? "miss"
                                             : "partial";
        out = {200, renderServiceResponse(results, set.batch)};
    }
    inflight.fetch_sub(1, std::memory_order_acq_rel);
    return out;
}

std::string
ServiceServer::statsJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("served").value(served.load(std::memory_order_relaxed));
    w.key("inflight").value(
        (long long)(inflight.load(std::memory_order_relaxed)));
    w.key("shed_429").value(shed429.load(std::memory_order_relaxed));
    w.key("shed_503").value(shed503.load(std::memory_order_relaxed));
    w.key("bad_requests").value(
        badRequests.load(std::memory_order_relaxed));
    w.key("cache").beginObject();
    if (scheduleEngine) {
        const GraphContextCache &c = scheduleEngine->cache();
        w.key("hits").value(c.hits());
        w.key("misses").value(c.misses());
        w.key("evictions").value(c.evictions());
        w.key("size").value((long long)(c.size()));
        w.key("capacity").value((long long)(c.capacity()));
    }
    w.endObject();
    w.endObject();
    std::string out = w.str();
    out += '\n';
    return out;
}

} // namespace balance
