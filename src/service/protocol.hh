/**
 * @file
 * Request/response schema for the scheduling service (docs/SERVICE.md).
 *
 * A request is a JSON object:
 *
 *   {
 *     "superblock": "<.sb text>",        // required (workload/sb_io.hh)
 *     "machine":    "gp4",               // optional, default "gp4"
 *     "scheduler":  "balance",           // optional: balance | cp | sr |
 *                                        //   gstar | dhasy | help | best
 *     "bounds":     true,                // optional: emit the bound ladder
 *     "certify":    false,               // optional: run the B&B certifier
 *     "bnb_max_nodes": 200000            // optional node cap for certify
 *   }
 *
 * or a batch { "requests": [ <object>, ... ] }. A response mirrors the
 * shape: a single result object, or { "results": [ ... ] }. Parsing is
 * fully checked — malformed JSON, unknown machines, bad .sb text, and
 * out-of-range options all produce an error string, never an abort,
 * because request bodies are untrusted input.
 *
 * Responses carry no request-identity or cache-state fields: identical
 * requests must produce bitwise-identical bodies whether served from
 * the GraphContext cache or scheduled fresh, and regardless of the
 * worker pool size (the repo-wide determinism contract). Cache state
 * travels in the X-Balance-Cache response header instead.
 */

#ifndef BALANCE_SERVICE_PROTOCOL_HH
#define BALANCE_SERVICE_PROTOCOL_HH

#include <string>
#include <vector>

#include "bounds/superblock_bounds.hh"
#include "graph/superblock.hh"
#include "machine/machine_model.hh"
#include "support/json.hh"

namespace balance
{

/** One parsed scheduling request. */
struct ServiceRequest
{
    Superblock sb;                  ///< parsed superblock
    std::string machine = "GP4";    ///< canonical display name
    std::string scheduler = "balance";
    bool bounds = true;             ///< include the bound ladder
    bool certify = false;           ///< run the B&B certifier
    long long bnbMaxNodes = 200000; ///< certifier node budget
};

/** A parsed request body: one or many requests. */
struct ServiceRequestSet
{
    std::vector<ServiceRequest> requests;
    bool batch = false; ///< body used the {"requests": [...]} form
};

/** One scheduling result (engine output, serialized by
 *  renderServiceResponse). */
struct ServiceResult
{
    std::string name;      ///< superblock name
    std::string machine;   ///< canonical machine name
    std::string scheduler; ///< scheduler key that ran
    double wct = 0.0;      ///< weighted completion time of the schedule
    int makespan = 0;      ///< last issue cycle + latency
    std::vector<int> issue; ///< issue cycle per op, program order

    bool haveBounds = false;
    WctBounds bounds;        ///< six-bound ladder
    double tightest = 0.0;   ///< max of the ladder

    bool haveBnb = false;
    double bnbWct = 0.0;       ///< certified incumbent WCT
    double bnbLowerBound = 0.0; ///< certified lower bound
    bool bnbProven = false;    ///< incumbent proven optimal
    bool bnbExhausted = false; ///< node budget exhausted
    long long bnbNodes = 0;    ///< nodes expanded

    bool cacheHit = false; ///< served from the GraphContext cache
                           ///< (header-only; never serialized)
};

/** Parse limits for one request body. */
struct ProtocolLimits
{
    /** Max requests per batch body. */
    std::size_t maxBatch = 64;
    /** Max ops per superblock accepted over the wire. */
    int maxOps = 4096;
    /** Hard cap applied to bnb_max_nodes. */
    long long bnbNodeCap = 1 << 22;
};

/**
 * Checked MachineModel lookup (machine/machine_model.hh names,
 * case-insensitive). Unlike MachineModel::byName this cannot
 * terminate the process on unknown names.
 * @return true and fills @p out (when non-null) on success.
 */
bool machineByNameChecked(const std::string &name, MachineModel *out);

/** @return true when @p key names a servable scheduler. */
bool schedulerKeyValid(const std::string &key);

/**
 * Parse and validate one request body (single object or batch).
 * @return true on success; false with a client-facing message in
 *         @p error otherwise.
 */
bool parseServiceRequestSet(const std::string &body,
                            const ProtocolLimits &limits,
                            ServiceRequestSet &out, std::string *error);

/** Serialize one result as a JSON object into @p w. */
void writeServiceResult(JsonWriter &w, const ServiceResult &r);

/**
 * Serialize a full response body: a single object when @p batch is
 * false, {"results": [...]} otherwise.
 */
std::string renderServiceResponse(const std::vector<ServiceResult> &rs,
                                  bool batch);

/** Serialize {"error": <message>}. */
std::string renderServiceError(const std::string &message);

} // namespace balance

#endif // BALANCE_SERVICE_PROTOCOL_HH
