#include "service/protocol.hh"

#include <cctype>

#include "workload/sb_io.hh"

namespace balance
{

namespace
{

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Parse one request object (already known to be an Object). */
bool
parseOneRequest(const JsonValue &obj, const ProtocolLimits &limits,
                ServiceRequest &out, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    const JsonValue *sbText = obj.find("superblock");
    if (!sbText || !sbText->isString())
        return fail("request needs a string 'superblock' field "
                    "(.sb text)");
    std::string sbError;
    if (!tryParseSuperblock(sbText->asString(), &out.sb, &sbError))
        return fail("bad superblock: " + sbError);
    if (out.sb.numOps() > limits.maxOps) {
        return fail("superblock has " + std::to_string(out.sb.numOps()) +
                    " ops; limit is " + std::to_string(limits.maxOps));
    }

    if (const JsonValue *m = obj.find("machine")) {
        if (!m->isString())
            return fail("'machine' must be a string");
        MachineModel model = MachineModel::gp4();
        if (!machineByNameChecked(m->asString(), &model))
            return fail("unknown machine '" + m->asString() + "'");
        out.machine = model.name(); // canonical display name
    }
    if (const JsonValue *s = obj.find("scheduler")) {
        if (!s->isString())
            return fail("'scheduler' must be a string");
        out.scheduler = toLower(s->asString());
        if (!schedulerKeyValid(out.scheduler))
            return fail("unknown scheduler '" + s->asString() + "'");
    }
    if (const JsonValue *b = obj.find("bounds")) {
        if (!b->isBool())
            return fail("'bounds' must be a boolean");
        out.bounds = b->asBool();
    }
    if (const JsonValue *c = obj.find("certify")) {
        if (!c->isBool())
            return fail("'certify' must be a boolean");
        out.certify = c->asBool();
    }
    if (const JsonValue *n = obj.find("bnb_max_nodes")) {
        if (!n->isInt() || n->asInt() <= 0)
            return fail("'bnb_max_nodes' must be a positive integer");
        out.bnbMaxNodes = n->asInt();
        if (out.bnbMaxNodes > limits.bnbNodeCap)
            out.bnbMaxNodes = limits.bnbNodeCap;
    }
    return true;
}

} // namespace

bool
machineByNameChecked(const std::string &name, MachineModel *out)
{
    // The six paper configurations (machine/machine_model.hh); byName
    // itself is fatal on unknown names, so gate it here. Display
    // names are upper-case ("GP4"); accept any case on the wire.
    static const char *known[] = {"GP1", "GP2", "GP4",
                                  "FS4", "FS6", "FS8"};
    std::string lower = toLower(name);
    for (const char *k : known) {
        if (lower == toLower(k)) {
            if (out)
                *out = MachineModel::byName(k);
            return true;
        }
    }
    return false;
}

bool
schedulerKeyValid(const std::string &key)
{
    return key == "balance" || key == "cp" || key == "sr" ||
           key == "gstar" || key == "dhasy" || key == "help" ||
           key == "best";
}

bool
parseServiceRequestSet(const std::string &body,
                       const ProtocolLimits &limits,
                       ServiceRequestSet &out, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    JsonParseResult parsed = parseJson(body);
    if (!parsed.ok())
        return fail("bad JSON: " + parsed.error.message);
    if (!parsed.value.isObject())
        return fail("request body must be a JSON object");

    out = ServiceRequestSet{};
    if (const JsonValue *reqs = parsed.value.find("requests")) {
        if (!reqs->isArray())
            return fail("'requests' must be an array");
        if (reqs->size() == 0)
            return fail("'requests' is empty");
        if (reqs->size() > limits.maxBatch) {
            return fail("batch of " + std::to_string(reqs->size()) +
                        " requests; limit is " +
                        std::to_string(limits.maxBatch));
        }
        out.batch = true;
        out.requests.resize(reqs->size());
        for (std::size_t i = 0; i < reqs->size(); ++i) {
            if (!reqs->at(i).isObject())
                return fail("requests[" + std::to_string(i) +
                            "] is not an object");
            std::string itemError;
            if (!parseOneRequest(reqs->at(i), limits, out.requests[i],
                                 &itemError)) {
                return fail("requests[" + std::to_string(i) +
                            "]: " + itemError);
            }
        }
        return true;
    }
    out.requests.resize(1);
    return parseOneRequest(parsed.value, limits, out.requests[0],
                           error);
}

void
writeServiceResult(JsonWriter &w, const ServiceResult &r)
{
    w.beginObject();
    w.key("superblock").value(r.name);
    w.key("machine").value(r.machine);
    w.key("scheduler").value(r.scheduler);
    w.key("wct").value(r.wct);
    w.key("makespan").value(r.makespan);
    w.key("schedule").beginArray();
    for (int cycle : r.issue)
        w.value(cycle);
    w.endArray();
    if (r.haveBounds) {
        w.key("bounds").beginObject();
        w.key("cp").value(r.bounds.cp);
        w.key("hu").value(r.bounds.hu);
        w.key("rj").value(r.bounds.rj);
        w.key("lc").value(r.bounds.lc);
        w.key("pw").value(r.bounds.pw);
        w.key("tw").value(r.bounds.tw);
        w.key("tightest").value(r.tightest);
        w.endObject();
    }
    if (r.haveBnb) {
        w.key("bnb").beginObject();
        w.key("wct").value(r.bnbWct);
        w.key("lower_bound").value(r.bnbLowerBound);
        w.key("proven").value(r.bnbProven);
        w.key("exhausted").value(r.bnbExhausted);
        w.key("nodes").value(r.bnbNodes);
        w.endObject();
    }
    w.endObject();
}

std::string
renderServiceResponse(const std::vector<ServiceResult> &rs, bool batch)
{
    JsonWriter w;
    if (batch) {
        w.beginObject().key("results").beginArray();
        for (const ServiceResult &r : rs)
            writeServiceResult(w, r);
        w.endArray().endObject();
    } else {
        writeServiceResult(w, rs.front());
    }
    std::string out = w.str();
    out += '\n';
    return out;
}

std::string
renderServiceError(const std::string &message)
{
    JsonWriter w;
    w.beginObject().key("error").value(message).endObject();
    std::string out = w.str();
    out += '\n';
    return out;
}

} // namespace balance
