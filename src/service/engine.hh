/**
 * @file
 * The scheduling engine behind the service daemon: executes parsed
 * ServiceRequests against the existing eval stack (BoundsToolkit,
 * the heuristic lineup, the B&B certifier) with the steady-state
 * reuse the bound/scheduler layers were built for:
 *
 *  - GraphContexts come from a shared content-hash LRU cache
 *    (service/graph_cache.hh), fully warmed so one entry serves any
 *    number of concurrent requests.
 *  - BoundScratch / SchedScratch live in a pooled free-list of
 *    worker states, checked out per in-flight request (per-slot, not
 *    per-thread: a pool worker parked in a helping wait can pick up
 *    another request, so thread-keyed scratch would be reentrant).
 *    After warm-up the steady state allocates nothing per request.
 *  - Batches fan out through parallelFor (support/parallel_for.hh)
 *    with per-request result slots assembled in request order, so a
 *    batch response is bytewise independent of the worker count —
 *    the repo-wide determinism contract extends to the wire.
 *
 * Per-request latency lands in MetricRegistry::global() histograms
 * ("service.request_latency_us", plus request/error counters), so a
 * --debug-server /metrics scrape shows live p50/p99.
 */

#ifndef BALANCE_SERVICE_ENGINE_HH
#define BALANCE_SERVICE_ENGINE_HH

#include <memory>
#include <mutex>
#include <vector>

#include "service/graph_cache.hh"
#include "service/protocol.hh"

namespace balance
{

struct EngineWorkerState; // private: scratch + scheduler instances

/** Engine configuration. */
struct EngineOptions
{
    /** GraphContext cache capacity (entries). */
    std::size_t cacheCapacity = 256;
    /**
     * Concurrency cap for batch fan-out (support/parallel_for.hh);
     * 0 = hardware, 1 = inline serial. Response bytes are identical
     * for every value — the knob trades latency for interference.
     */
    int threads = 0;
};

/** Executes ServiceRequests (see file comment). */
class ScheduleEngine
{
  public:
    explicit ScheduleEngine(const EngineOptions &opts = {});
    ~ScheduleEngine();

    ScheduleEngine(const ScheduleEngine &) = delete;
    ScheduleEngine &operator=(const ScheduleEngine &) = delete;

    /** Execute one request on the calling thread. */
    ServiceResult run(const ServiceRequest &req);

    /**
     * Execute a batch, fanning out via parallelFor. Results are in
     * request order and identical to running each request alone, for
     * any thread count.
     */
    std::vector<ServiceResult> runBatch(
        const std::vector<ServiceRequest> &reqs);

    /** @return the shared GraphContext cache (stats endpoints). */
    const GraphContextCache &cache() const { return graphCache; }

  private:
    std::unique_ptr<EngineWorkerState> checkOut();
    void checkIn(std::unique_ptr<EngineWorkerState> state);
    ServiceResult runWith(EngineWorkerState &state,
                          const ServiceRequest &req);

    GraphContextCache graphCache;
    int threads;
    std::mutex poolMutex;
    std::vector<std::unique_ptr<EngineWorkerState>> statePool;
};

} // namespace balance

#endif // BALANCE_SERVICE_ENGINE_HH
