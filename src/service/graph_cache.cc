#include "service/graph_cache.hh"

#include "support/metrics.hh"
#include "workload/sb_io.hh"

namespace balance
{

namespace
{

/**
 * Materialize every lazy GraphContext slot so the entry is read-only
 * from then on (the thread-safety contract in the file comment).
 */
void
warmContext(const GraphContext &ctx, const Superblock &sb)
{
    for (int bi = 0; bi < sb.numBranches(); ++bi) {
        (void)ctx.closureOps(bi);
        (void)ctx.reversedClosure(bi);
    }
}

} // namespace

GraphContextCache::GraphContextCache(std::size_t capacity)
    : cap(capacity > 0 ? capacity : 1)
{
}

std::uint64_t
GraphContextCache::hashText(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull; // FNV-1a 64 offset basis
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull; // FNV-1a 64 prime
    }
    return h;
}

std::shared_ptr<const CachedGraph>
GraphContextCache::acquire(const Superblock &sb, bool *hit)
{
    std::string canonical = writeSuperblock(sb);
    std::uint64_t h = hashText(canonical);

    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = table.find(h);
        if (it != table.end()) {
            for (const auto &entry : it->second.entries) {
                if (entry->canonical == canonical) {
                    lru.splice(lru.begin(), lru, it->second.lruPos);
                    ++hitCount;
                    MetricRegistry::global()
                        .counter("service.cache.hits")
                        .add(1);
                    if (hit)
                        *hit = true;
                    return entry;
                }
            }
        }
    }

    // Miss: build and warm outside the lock — context construction is
    // the expensive part and must not serialize concurrent misses.
    auto fresh = std::make_shared<CachedGraph>();
    fresh->sb = sb;
    fresh->canonical = std::move(canonical);
    fresh->contentHash = h;
    // The context points into fresh->sb, whose address is stable from
    // here on (the entry lives behind the shared_ptr).
    fresh->ctx = std::make_unique<GraphContext>(fresh->sb);
    warmContext(*fresh->ctx, fresh->sb);

    std::lock_guard<std::mutex> lock(mutex);
    auto it = table.find(h);
    if (it != table.end()) {
        // Re-check: a concurrent miss for the same superblock may
        // have inserted while we were warming. Prefer the published
        // entry so all requests share one context.
        for (const auto &entry : it->second.entries) {
            if (entry->canonical == fresh->canonical) {
                lru.splice(lru.begin(), lru, it->second.lruPos);
                ++hitCount;
                MetricRegistry::global()
                    .counter("service.cache.hits")
                    .add(1);
                if (hit)
                    *hit = true;
                return entry;
            }
        }
        it->second.entries.push_back(fresh);
        lru.splice(lru.begin(), lru, it->second.lruPos);
    } else {
        lru.push_front(h);
        Chain chain;
        chain.entries.push_back(fresh);
        chain.lruPos = lru.begin();
        table.emplace(h, std::move(chain));
    }
    ++entryCount;
    ++missCount;
    MetricRegistry::global().counter("service.cache.misses").add(1);
    if (hit)
        *hit = false;

    while (entryCount > cap && lru.size() > 1) {
        // The freshly inserted chain sits at the front, so the back
        // is always an older chain while more than one exists.
        std::uint64_t victim = lru.back();
        lru.pop_back();
        auto vit = table.find(victim);
        if (vit != table.end()) {
            entryCount -= vit->second.entries.size();
            evictionCount += (long long)(vit->second.entries.size());
            MetricRegistry::global()
                .counter("service.cache.evictions")
                .add((long long)(vit->second.entries.size()));
            table.erase(vit);
        }
    }
    return fresh;
}

std::size_t
GraphContextCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entryCount;
}

long long
GraphContextCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return hitCount;
}

long long
GraphContextCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return missCount;
}

long long
GraphContextCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return evictionCount;
}

} // namespace balance
