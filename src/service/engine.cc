#include "service/engine.hh"

#include <chrono>
#include <map>

#include "bounds/bound_scratch.hh"
#include "bounds/branch_bounds.hh"
#include "bounds/triplewise.hh"
#include "core/balance_scheduler.hh"
#include "eval/experiment.hh"
#include "sched/best_scheduler.hh"
#include "sched/bnb/bnb.hh"
#include "sched/heuristics.hh"
#include "sched/list_scheduler.hh"
#include "sched/sched_scratch.hh"
#include "support/metrics.hh"
#include "support/parallel_for.hh"
#include "support/trace.hh"

namespace balance
{

/**
 * One request's private working set: scratch keyed per machine (the
 * six paper configs) plus long-lived scheduler instances. Checked
 * out of the engine's free-list for the duration of one request and
 * returned afterwards, so nothing here is ever shared between two
 * in-flight requests.
 */
struct EngineWorkerState
{
    /**
     * A stable machine instance paired with the scratch built for it:
     * BoundScratch (and the relaxation tables inside) check machine
     * identity by address, so the model a scratch was constructed
     * against must be the very object every later toolkit sees.
     */
    struct MachineState
    {
        MachineModel model;
        std::unique_ptr<BoundScratch> scratch;

        explicit MachineState(const MachineModel &m)
            : model(m),
              scratch(std::make_unique<BoundScratch>(model))
        {}
    };

    std::map<std::string, std::unique_ptr<MachineState>> machines;
    SchedScratch schedScratch;

    BalanceScheduler balance;
    CriticalPathScheduler cp;
    SuccessiveRetirementScheduler sr;
    GStarScheduler gstar;
    DhasyScheduler dhasy;
    HelpScheduler help;
    std::unique_ptr<BestScheduler> best;

    EngineWorkerState()
    {
        // Best = the paper lineup's envelope plus the combo grid.
        best = std::make_unique<BestScheduler>(
            HeuristicSet::paperSet(false).primaries);
    }

    MachineState &
    machineFor(const std::string &machineName,
               const MachineModel &machine)
    {
        std::unique_ptr<MachineState> &slot = machines[machineName];
        if (!slot)
            slot = std::make_unique<MachineState>(machine);
        return *slot;
    }
};

ScheduleEngine::ScheduleEngine(const EngineOptions &opts)
    : graphCache(opts.cacheCapacity), threads(opts.threads)
{
    // Pre-register the latency metrics so registration order (and
    // thus snapshot/exposition order) does not depend on traffic.
    MetricRegistry &reg = MetricRegistry::global();
    reg.counter("service.requests");
    reg.counter("service.batches");
    reg.counter("service.errors");
    reg.histogram("service.request_latency_us");
    reg.histogram("service.batch_size");
}

ScheduleEngine::~ScheduleEngine() = default;

std::unique_ptr<EngineWorkerState>
ScheduleEngine::checkOut()
{
    {
        std::lock_guard<std::mutex> lock(poolMutex);
        if (!statePool.empty()) {
            std::unique_ptr<EngineWorkerState> state =
                std::move(statePool.back());
            statePool.pop_back();
            return state;
        }
    }
    return std::make_unique<EngineWorkerState>();
}

void
ScheduleEngine::checkIn(std::unique_ptr<EngineWorkerState> state)
{
    std::lock_guard<std::mutex> lock(poolMutex);
    statePool.push_back(std::move(state));
}

ServiceResult
ScheduleEngine::runWith(EngineWorkerState &state,
                        const ServiceRequest &req)
{
    TraceSpan span("service.request", req.sb.numOps());
    auto t0 = std::chrono::steady_clock::now();

    bool hit = false;
    std::shared_ptr<const CachedGraph> cached =
        graphCache.acquire(req.sb, &hit);
    const GraphContext &ctx = *cached->ctx;
    const Superblock &sb = cached->sb;

    MachineModel parsed = MachineModel::gp4();
    machineByNameChecked(req.machine, &parsed);
    EngineWorkerState::MachineState &ms =
        state.machineFor(req.machine, parsed);
    const MachineModel &machine = ms.model;
    BoundScratch &scratch = *ms.scratch;

    ServiceResult out;
    out.name = sb.name();
    out.machine = req.machine;
    out.scheduler = req.scheduler;
    out.cacheHit = hit;

    BoundConfig boundConfig;
    BoundsToolkit toolkit(ctx, machine, boundConfig, nullptr,
                          &scratch);

    if (req.bounds) {
        out.haveBounds = true;
        out.bounds.cp = wctFromBranchEarly(sb, cpEarly(ctx));
        out.bounds.hu = wctFromBranchEarly(sb, huEarly(ctx, machine));
        out.bounds.rj = wctFromBranchEarly(sb, rjEarly(ctx, machine));
        std::vector<int> lcBranches;
        for (OpId b : sb.branches())
            lcBranches.push_back(toolkit.earlyRC()[std::size_t(b)]);
        out.bounds.lc = wctFromBranchEarly(sb, lcBranches);
        out.bounds.pw = toolkit.pairwise()->superblockWct();
        std::vector<std::vector<int>> lateRCs;
        for (int bi = 0; bi < sb.numBranches(); ++bi)
            lateRCs.push_back(toolkit.lateRC(bi));
        out.bounds.tw =
            computeTriplewise(ctx, machine, toolkit.earlyRC(), lateRCs,
                              *toolkit.pairwise(),
                              boundConfig.triplewise, nullptr,
                              &scratch)
                .wct;
        out.tightest = out.bounds.tightest();
    }

    ScheduleRequest schedReq;
    schedReq.scratch = &state.schedScratch;
    Schedule schedule = [&] {
        if (req.scheduler == "balance")
            return state.balance.runWithToolkit(ctx, machine, toolkit,
                                                schedReq);
        if (req.scheduler == "cp")
            return state.cp.run(ctx, machine, schedReq);
        if (req.scheduler == "sr")
            return state.sr.run(ctx, machine, schedReq);
        if (req.scheduler == "gstar")
            return state.gstar.run(ctx, machine, schedReq);
        if (req.scheduler == "dhasy")
            return state.dhasy.run(ctx, machine, schedReq);
        if (req.scheduler == "help")
            return state.help.run(ctx, machine, schedReq);
        return state.best->run(ctx, machine, schedReq);
    }();
    schedule.validate(sb, machine);
    out.wct = schedule.wct(sb);
    out.makespan = schedule.makespan();
    out.issue.reserve(std::size_t(sb.numOps()));
    for (OpId op = 0; op < OpId(sb.numOps()); ++op)
        out.issue.push_back(schedule.issueOf(op));

    if (req.certify) {
        BnbOptions bnbOpts;
        bnbOpts.maxNodes = req.bnbMaxNodes;
        BnbRequest bnbReq;
        bnbReq.toolkit = &toolkit;
        bnbReq.seedSchedule = &schedule;
        bnbReq.staticLowerBound = out.tightest;
        BnbResult r = bnbSchedule(ctx, machine, bnbOpts, bnbReq);
        out.haveBnb = true;
        out.bnbWct = r.wct;
        out.bnbLowerBound = r.lowerBound;
        out.bnbProven = r.proven;
        out.bnbExhausted = r.exhausted;
        out.bnbNodes = r.counters.nodesExpanded;
    }

    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    MetricRegistry &reg = MetricRegistry::global();
    reg.counter("service.requests").add(1);
    reg.histogram("service.request_latency_us").observe(us);
    return out;
}

ServiceResult
ScheduleEngine::run(const ServiceRequest &req)
{
    std::unique_ptr<EngineWorkerState> state = checkOut();
    ServiceResult out = runWith(*state, req);
    checkIn(std::move(state));
    return out;
}

std::vector<ServiceResult>
ScheduleEngine::runBatch(const std::vector<ServiceRequest> &reqs)
{
    MetricRegistry &reg = MetricRegistry::global();
    reg.counter("service.batches").add(1);
    reg.histogram("service.batch_size")
        .observe((long long)(reqs.size()));

    // Per-slot fan-out + in-order assembly: each request writes only
    // its own result slot, so the response bytes are identical for
    // any thread count (the repo's determinism pattern).
    std::vector<ServiceResult> out(reqs.size());
    parallelFor(
        reqs.size(), [this, &reqs, &out](std::size_t i) {
            out[i] = run(reqs[i]);
        },
        threads);
    return out;
}

} // namespace balance
