/**
 * @file
 * Monte Carlo execution simulation of scheduled superblocks. The
 * paper evaluates schedules by *dynamic cycle counts* — expected
 * cycles weighted by exit probabilities and superblock execution
 * frequencies, with cache misses and mispredictions factored out.
 * This simulator closes the loop on that methodology: it actually
 * executes traversals, drawing one exit per traversal from the
 * profile, and counts the cycles an in-order VLIW would spend
 * (issue cycle of the taken exit plus its latency). The sample mean
 * converges to Schedule::wct(), which the tests verify.
 */

#ifndef BALANCE_SIM_SIMULATOR_HH
#define BALANCE_SIM_SIMULATOR_HH

#include <vector>

#include "sched/schedule.hh"
#include "support/rng.hh"

namespace balance
{

/** Outcome of simulating one superblock. */
struct SimResult
{
    long long traversals = 0;
    double totalCycles = 0.0;
    /** Traversals that left through each exit, branch order. */
    std::vector<long long> exitCounts;

    /** @return average cycles per traversal (0 when none). */
    double
    meanCycles() const
    {
        return traversals ? totalCycles / double(traversals) : 0.0;
    }
};

/**
 * Execute @p traversals of a scheduled superblock.
 *
 * Each traversal draws an exit according to the exit probabilities
 * (the residual mass, if the probabilities do not sum to one, falls
 * through the final exit) and costs issue(exit) + latency(exit)
 * cycles.
 */
SimResult simulateSuperblock(const Superblock &sb,
                             const Schedule &schedule,
                             long long traversals, Rng &rng);

/** One scheduled superblock of a program. */
struct ScheduledSuperblock
{
    const Superblock *sb = nullptr;
    const Schedule *schedule = nullptr;
};

/** Outcome of simulating a program population. */
struct ProgramSimResult
{
    double totalCycles = 0.0;
    long long executions = 0;
};

/**
 * Simulate a program: each superblock executes
 * round(frequency * @p frequencyScale) times (at least once).
 */
ProgramSimResult simulateProgram(
    const std::vector<ScheduledSuperblock> &program,
    double frequencyScale, Rng &rng);

} // namespace balance

#endif // BALANCE_SIM_SIMULATOR_HH
