#include "sim/simulator.hh"

#include <cmath>

#include "support/diagnostics.hh"

namespace balance
{

SimResult
simulateSuperblock(const Superblock &sb, const Schedule &schedule,
                   long long traversals, Rng &rng)
{
    bsAssert(schedule.complete(), "cannot simulate a partial schedule");
    bsAssert(traversals >= 0, "negative traversal count");

    // Cumulative exit distribution in branch order; the final exit
    // absorbs any residual probability mass.
    int numExits = sb.numBranches();
    std::vector<double> cumulative(std::size_t(numExits), 0.0);
    double acc = 0.0;
    for (int bi = 0; bi < numExits; ++bi) {
        acc += sb.exitProb(sb.branches()[std::size_t(bi)]);
        cumulative[std::size_t(bi)] = acc;
    }

    SimResult result;
    result.traversals = traversals;
    result.exitCounts.assign(std::size_t(numExits), 0);
    for (long long t = 0; t < traversals; ++t) {
        double u = rng.uniformDouble() * std::max(acc, 1.0);
        int exit = numExits - 1;
        for (int bi = 0; bi < numExits; ++bi) {
            if (u < cumulative[std::size_t(bi)]) {
                exit = bi;
                break;
            }
        }
        OpId br = sb.branches()[std::size_t(exit)];
        result.totalCycles +=
            schedule.issueOf(br) + sb.op(br).latency;
        ++result.exitCounts[std::size_t(exit)];
    }
    return result;
}

ProgramSimResult
simulateProgram(const std::vector<ScheduledSuperblock> &program,
                double frequencyScale, Rng &rng)
{
    bsAssert(frequencyScale > 0.0, "frequency scale must be positive");
    ProgramSimResult result;
    for (const ScheduledSuperblock &entry : program) {
        bsAssert(entry.sb && entry.schedule,
                 "null entry in program simulation");
        long long runs = std::max<long long>(
            1, std::llround(entry.sb->execFrequency() *
                            frequencyScale));
        SimResult r =
            simulateSuperblock(*entry.sb, *entry.schedule, runs, rng);
        result.totalCycles += r.totalCycles;
        result.executions += r.traversals;
    }
    return result;
}

} // namespace balance
