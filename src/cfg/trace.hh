/**
 * @file
 * Profile-driven trace selection (Fisher / Hwu-Chang style), the
 * first half of superblock formation: repeatedly seed a trace at
 * the most frequently executed unassigned block and grow it forward
 * along the most likely successor edge while the successor is
 * unassigned and the edge is likely enough.
 *
 * Superblocks additionally require a unique entry at the head, which
 * tail duplication guarantees in a real compiler; here growth simply
 * stops before a block with multiple predecessors unless it is the
 * trace head (equivalent for scheduling purposes — the duplicated
 * tail would be a fresh block with identical contents; see
 * DESIGN.md).
 */

#ifndef BALANCE_CFG_TRACE_HH
#define BALANCE_CFG_TRACE_HH

#include <vector>

#include "cfg/program.hh"

namespace balance
{

/** One selected trace: block indices in control-flow order. */
struct Trace
{
    std::vector<int> blocks;
};

/** Knobs for trace growth. */
struct TraceOptions
{
    /** Minimum successor-edge probability to keep growing. */
    double minEdgeProb = 0.5;
    /** Minimum block frequency to seed a trace (absolute). */
    double minSeedFrequency = 0.0;
    /** Maximum blocks per trace. */
    int maxBlocks = 64;
    /**
     * Grow into join blocks (multiple predecessors), emulating the
     * tail duplication a real superblock former would perform.
     */
    bool emulateTailDuplication = true;
};

/**
 * Partition (a subset of) the CFG into traces. Every block belongs
 * to at most one trace; blocks below the seed-frequency threshold
 * are skipped entirely.
 */
std::vector<Trace> selectTraces(const CfgProgram &cfg,
                                const TraceOptions &opts = {});

} // namespace balance

#endif // BALANCE_CFG_TRACE_HH
