/**
 * @file
 * A small profiled control-flow-graph program representation: the
 * substrate the paper's superblocks come from (IMPACT forms
 * superblocks from profiled CFGs; LEGO converts them to scheduling
 * graphs). This module models what that pipeline needs:
 *
 *  - basic blocks of register-based instructions over virtual
 *    registers, with memory operations flagged for ordering;
 *  - a conditional (or unconditional) terminator per block with
 *    profiled taken probability;
 *  - per-block execution frequencies consistent with the edge
 *    probabilities.
 *
 * The CFG is acyclic (superblock formation operates on loop bodies
 * after unrolling/peeling, which this library does not model; see
 * DESIGN.md). Blocks are stored in layout order and every edge
 * targets a later block.
 */

#ifndef BALANCE_CFG_PROGRAM_HH
#define BALANCE_CFG_PROGRAM_HH

#include <string>
#include <vector>

#include "machine/op_class.hh"

namespace balance
{

/** Virtual register id; the generator hands them out densely. */
using VReg = int;

/** Sentinel for "no register". */
constexpr VReg noReg = -1;

/** Sentinel for "no block". */
constexpr int noBlock = -1;

/**
 * One non-terminator instruction: a register-to-register operation
 * or a memory access.
 */
struct CfgInstr
{
    OpClass cls = OpClass::IntAlu;
    int latency = 1;
    VReg dest = noReg;          //!< defined register, if any
    std::vector<VReg> srcs;     //!< used registers
    bool isLoad = false;        //!< participates in memory ordering
    bool isStore = false;       //!< may not be speculated or sunk
    std::string name;

    /** @return true when the instruction touches memory. */
    bool isMemory() const { return isLoad || isStore; }
};

/**
 * One basic block: straight-line instructions plus a terminator
 * described by its targets and profiled taken probability.
 */
struct CfgBlock
{
    std::vector<CfgInstr> instrs;
    /** Registers the terminator's condition reads (may be empty). */
    std::vector<VReg> branchSrcs;
    /** Taken-edge target block, or noBlock for fallthrough-only. */
    int takenTarget = noBlock;
    /** Probability the terminator is taken (0 when no taken edge). */
    double takenProb = 0.0;
    /** Fallthrough block, or noBlock when the block exits the region. */
    int fallthrough = noBlock;
    /** Profiled executions of this block. */
    double frequency = 0.0;
    std::string name;
};

/**
 * An acyclic profiled CFG region with a single entry (block 0).
 */
class CfgProgram
{
  public:
    /** Append a block; returns its index. */
    int addBlock(CfgBlock block);

    /** @return the number of blocks. */
    int numBlocks() const { return int(blocks.size()); }

    /** @return block @p index. */
    const CfgBlock &
    block(int index) const
    {
        return blocks[std::size_t(index)];
    }

    /** @return mutable block @p index (generator use). */
    CfgBlock &
    blockMut(int index)
    {
        return blocks[std::size_t(index)];
    }

    /** @return the largest virtual register id used, plus one. */
    int numVRegs() const;

    /**
     * Check structural invariants: edges point forward, entry is
     * block 0, probabilities are sane, frequencies are consistent
     * with the edge profile (inflow == frequency for non-entry
     * blocks, within tolerance). Panics on violation.
     */
    void validate() const;

    /** @return the predecessors of each block (by edges). */
    std::vector<std::vector<int>> predecessors() const;

  private:
    std::vector<CfgBlock> blocks;
};

} // namespace balance

#endif // BALANCE_CFG_PROGRAM_HH
