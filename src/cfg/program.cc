#include "cfg/program.hh"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hh"

namespace balance
{

int
CfgProgram::addBlock(CfgBlock block)
{
    blocks.push_back(std::move(block));
    return int(blocks.size()) - 1;
}

int
CfgProgram::numVRegs() const
{
    int maxReg = -1;
    for (const CfgBlock &b : blocks) {
        for (const CfgInstr &i : b.instrs) {
            maxReg = std::max(maxReg, i.dest);
            for (VReg s : i.srcs)
                maxReg = std::max(maxReg, s);
        }
        for (VReg s : b.branchSrcs)
            maxReg = std::max(maxReg, s);
    }
    return maxReg + 1;
}

void
CfgProgram::validate() const
{
    bsAssert(!blocks.empty(), "CFG has no blocks");
    std::vector<double> inflow(blocks.size(), 0.0);

    for (int bi = 0; bi < numBlocks(); ++bi) {
        const CfgBlock &b = blocks[std::size_t(bi)];
        bsAssert(b.takenProb >= 0.0 && b.takenProb <= 1.0 + 1e-9,
                 "block ", bi, ": taken probability out of range");
        bsAssert(b.frequency >= 0.0, "block ", bi,
                 ": negative frequency");
        if (b.takenTarget != noBlock) {
            bsAssert(b.takenTarget > bi && b.takenTarget < numBlocks(),
                     "block ", bi, ": taken edge must point forward");
            inflow[std::size_t(b.takenTarget)] +=
                b.frequency * b.takenProb;
        }
        // A taken edge with takenTarget == noBlock leaves the region
        // (its mass simply does not flow to any block).
        if (b.fallthrough != noBlock) {
            bsAssert(b.fallthrough > bi && b.fallthrough < numBlocks(),
                     "block ", bi, ": fallthrough must point forward");
            inflow[std::size_t(b.fallthrough)] +=
                b.frequency * (1.0 - b.takenProb);
        }
        for (const CfgInstr &instr : b.instrs) {
            bsAssert(instr.latency >= 0, "negative latency in block ",
                     bi);
            bsAssert(instr.cls != OpClass::Branch,
                     "branches are terminators, not instructions");
        }
    }

    // Frequencies must match the profile flow for non-entry blocks.
    for (int bi = 1; bi < numBlocks(); ++bi) {
        double have = blocks[std::size_t(bi)].frequency;
        double want = inflow[std::size_t(bi)];
        bsAssert(std::fabs(have - want) <=
                     1e-6 * std::max(1.0, std::fabs(want)),
                 "block ", bi, ": frequency ", have,
                 " inconsistent with profiled inflow ", want);
    }
}

std::vector<std::vector<int>>
CfgProgram::predecessors() const
{
    std::vector<std::vector<int>> preds(blocks.size());
    for (int bi = 0; bi < numBlocks(); ++bi) {
        const CfgBlock &b = blocks[std::size_t(bi)];
        if (b.takenTarget != noBlock)
            preds[std::size_t(b.takenTarget)].push_back(bi);
        if (b.fallthrough != noBlock)
            preds[std::size_t(b.fallthrough)].push_back(bi);
    }
    return preds;
}

} // namespace balance
