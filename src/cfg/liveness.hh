/**
 * @file
 * Classic backward iterative liveness analysis over the CFG. The
 * superblock builder needs it twice: a value defined on the trace is
 * live-out at a side exit iff it is live-in at the exit's off-trace
 * target (the definition must then complete before the exit), and an
 * instruction may be speculated above an earlier exit only when its
 * destination is dead on that exit's off-trace path.
 */

#ifndef BALANCE_CFG_LIVENESS_HH
#define BALANCE_CFG_LIVENESS_HH

#include <vector>

#include "cfg/program.hh"
#include "support/bitset.hh"

namespace balance
{

/** Live-in/live-out register sets per block. */
class Liveness
{
  public:
    /**
     * Run the fixpoint over @p cfg. Registers live at region exits
     * are supplied by @p liveOutOfRegion (a conservative caller
     * passes every register; an empty set means nothing outlives
     * the region).
     */
    Liveness(const CfgProgram &cfg, const DynBitset &liveOutOfRegion);

    /** Convenience: all registers live out of the region. */
    static Liveness allLiveOut(const CfgProgram &cfg);

    /** @return registers live on entry to block @p bi. */
    const DynBitset &
    liveIn(int bi) const
    {
        return ins[std::size_t(bi)];
    }

    /** @return registers live at the end of block @p bi. */
    const DynBitset &
    liveOut(int bi) const
    {
        return outs[std::size_t(bi)];
    }

    /** @return true when @p reg is live on entry to block @p bi. */
    bool
    isLiveIn(int bi, VReg reg) const
    {
        return reg >= 0 && reg < int(ins[std::size_t(bi)].size()) &&
               ins[std::size_t(bi)].test(std::size_t(reg));
    }

  private:
    std::vector<DynBitset> ins;
    std::vector<DynBitset> outs;
};

} // namespace balance

#endif // BALANCE_CFG_LIVENESS_HH
