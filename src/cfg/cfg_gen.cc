#include "cfg/cfg_gen.hh"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hh"

namespace balance
{

CfgProgram
generateCfg(Rng &rng, const CfgGenParams &params)
{
    int n = int(rng.uniformInt(params.minBlocks, params.maxBlocks));
    CfgProgram cfg;

    int nextReg = 0;
    std::vector<VReg> defined; // registers with at least one def

    for (int bi = 0; bi < n; ++bi) {
        CfgBlock block;
        block.name = "b" + std::to_string(bi);

        int instrs = std::max(1, int(std::llround(rng.logNormal(
                                  params.instrsMu, params.instrsSigma))));
        for (int k = 0; k < instrs; ++k) {
            CfgInstr instr;
            double u = rng.uniformDouble();
            if (u < params.floatFraction) {
                instr.cls = OpClass::FloatAlu;
                instr.latency = rng.bernoulli(0.4)
                    ? Latencies::floatMultiply
                    : Latencies::unit;
            } else if (u < params.floatFraction + params.memFraction) {
                instr.cls = OpClass::Memory;
                if (rng.bernoulli(params.storeFraction)) {
                    instr.isStore = true;
                    instr.latency = Latencies::unit;
                } else {
                    instr.isLoad = true;
                    instr.latency = Latencies::load;
                }
            } else {
                instr.cls = OpClass::IntAlu;
                instr.latency = Latencies::unit;
            }

            // Sources: up to two recently defined registers.
            int nSrcs = int(rng.uniformInt(instr.isStore ? 1 : 0, 2));
            for (int s = 0; s < nSrcs && !defined.empty(); ++s) {
                double v = rng.uniformDouble();
                std::size_t pick = std::size_t(
                    double(defined.size()) * (1.0 - v * v));
                pick = std::min(pick, defined.size() - 1);
                instr.srcs.push_back(defined[pick]);
            }

            // Destination: stores define nothing.
            if (!instr.isStore) {
                if (!defined.empty() &&
                    rng.bernoulli(params.reuseDestProb)) {
                    instr.dest = defined[std::size_t(rng.uniformInt(
                        0, int(defined.size()) - 1))];
                } else {
                    instr.dest = nextReg++;
                    defined.push_back(instr.dest);
                }
            }
            block.instrs.push_back(std::move(instr));
        }

        // Terminator: conditional with a short forward taken edge,
        // except the last block which exits the region.
        bool last = bi + 1 == n;
        if (!last) {
            block.fallthrough = bi + 1;
            if (rng.bernoulli(params.condProb)) {
                int maxTarget = std::min(n - 1, bi + params.maxHop);
                if (maxTarget > bi + 1) {
                    block.takenTarget = int(
                        rng.uniformInt(bi + 2, maxTarget));
                } else {
                    block.takenTarget = noBlock;
                }
                // A taken edge may also leave the region entirely.
                if (block.takenTarget == noBlock ||
                    rng.bernoulli(0.15)) {
                    block.takenTarget = noBlock;
                }
                block.takenProb = rng.uniformDouble(params.takenMin,
                                                    params.takenMax);
                if (!defined.empty()) {
                    block.branchSrcs.push_back(
                        defined[std::size_t(rng.uniformInt(
                            0, int(defined.size()) - 1))]);
                }
            }
        } else if (!defined.empty()) {
            block.branchSrcs.push_back(defined.back());
        }

        cfg.addBlock(std::move(block));
    }

    // Exact profile propagation over the forward edges.
    cfg.blockMut(0).frequency =
        std::max(1.0, rng.logNormal(params.freqMu, params.freqSigma));
    std::vector<double> inflow(std::size_t(n), 0.0);
    for (int bi = 0; bi < n; ++bi) {
        CfgBlock &b = cfg.blockMut(bi);
        if (bi > 0)
            b.frequency = inflow[std::size_t(bi)];
        if (b.takenTarget != noBlock)
            inflow[std::size_t(b.takenTarget)] +=
                b.frequency * b.takenProb;
        if (b.fallthrough != noBlock)
            inflow[std::size_t(b.fallthrough)] +=
                b.frequency * (1.0 - b.takenProb);
    }

    cfg.validate();
    return cfg;
}

} // namespace balance
