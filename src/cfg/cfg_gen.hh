/**
 * @file
 * Synthetic profiled-CFG generation: acyclic single-entry regions
 * with biased conditional branches, register dataflow that exercises
 * flow/anti/output dependences, and memory operations for the
 * ordering rules. Paired with cfg/superblock_form this gives the
 * repository a second, structurally independent way to populate the
 * schedulers (the first being workload/generator's direct DAG
 * synthesis).
 */

#ifndef BALANCE_CFG_CFG_GEN_HH
#define BALANCE_CFG_CFG_GEN_HH

#include "cfg/program.hh"
#include "support/rng.hh"

namespace balance
{

/** Shape parameters for one synthetic region. */
struct CfgGenParams
{
    int minBlocks = 4;
    int maxBlocks = 20;
    /** Lognormal instructions per block: exp(N(mu, sigma)). */
    double instrsMu = 1.5;
    double instrsSigma = 0.5;
    /** Probability a block's terminator is conditional. */
    double condProb = 0.75;
    /** Taken-probability range for conditional terminators. */
    double takenMin = 0.02;
    double takenMax = 0.45;
    /** Maximum forward distance of a taken edge. */
    int maxHop = 6;
    /** Operation class mix (remainder integer). */
    double memFraction = 0.30;
    double floatFraction = 0.02;
    /** Fraction of memory instructions that are stores. */
    double storeFraction = 0.35;
    /** Probability a definition reuses an existing register. */
    double reuseDestProb = 0.25;
    /** Entry frequency: exp(N(mu, sigma)). */
    double freqMu = 4.0;
    double freqSigma = 1.0;
};

/** Generate one region; the result passes CfgProgram::validate(). */
CfgProgram generateCfg(Rng &rng, const CfgGenParams &params = {});

} // namespace balance

#endif // BALANCE_CFG_CFG_GEN_HH
