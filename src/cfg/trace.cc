#include "cfg/trace.hh"

#include <algorithm>
#include <numeric>

#include "support/diagnostics.hh"

namespace balance
{

std::vector<Trace>
selectTraces(const CfgProgram &cfg, const TraceOptions &opts)
{
    int n = cfg.numBlocks();
    std::vector<std::vector<int>> preds = cfg.predecessors();
    std::vector<char> assigned(std::size_t(n), 0);

    // Seeds in decreasing frequency order.
    std::vector<int> order(std::size_t(n), 0);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        double fa = cfg.block(a).frequency;
        double fb = cfg.block(b).frequency;
        if (fa != fb)
            return fa > fb;
        return a < b;
    });

    std::vector<Trace> traces;
    for (int seed : order) {
        if (assigned[std::size_t(seed)])
            continue;
        if (cfg.block(seed).frequency < opts.minSeedFrequency)
            continue;

        Trace trace;
        int cur = seed;
        while (true) {
            trace.blocks.push_back(cur);
            assigned[std::size_t(cur)] = 1;
            if (int(trace.blocks.size()) >= opts.maxBlocks)
                break;

            // Most likely successor edge.
            const CfgBlock &b = cfg.block(cur);
            int next = noBlock;
            double prob = 0.0;
            if (b.takenTarget != noBlock && b.takenProb >= 0.5) {
                next = b.takenTarget;
                prob = b.takenProb;
            } else if (b.fallthrough != noBlock) {
                next = b.fallthrough;
                prob = 1.0 - b.takenProb;
            } else if (b.takenTarget != noBlock) {
                next = b.takenTarget;
                prob = b.takenProb;
            }

            if (next == noBlock || prob < opts.minEdgeProb)
                break;
            if (assigned[std::size_t(next)])
                break;
            if (!opts.emulateTailDuplication &&
                preds[std::size_t(next)].size() > 1) {
                break;
            }
            cur = next;
        }
        traces.push_back(std::move(trace));
    }
    return traces;
}

} // namespace balance
