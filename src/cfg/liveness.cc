#include "cfg/liveness.hh"

#include "support/diagnostics.hh"

namespace balance
{

Liveness::Liveness(const CfgProgram &cfg,
                   const DynBitset &liveOutOfRegion)
{
    std::size_t regs = std::size_t(cfg.numVRegs());
    bsAssert(liveOutOfRegion.size() == regs ||
                 (regs == 0 && liveOutOfRegion.size() == 0),
             "live-out universe mismatch: ", liveOutOfRegion.size(),
             " vs ", regs);

    int n = cfg.numBlocks();
    ins.assign(std::size_t(n), DynBitset(regs));
    outs.assign(std::size_t(n), DynBitset(regs));

    // Per-block use/def (upward-exposed uses).
    std::vector<DynBitset> use{std::size_t(n), DynBitset(regs)};
    std::vector<DynBitset> def{std::size_t(n), DynBitset(regs)};
    for (int bi = 0; bi < n; ++bi) {
        const CfgBlock &b = cfg.block(bi);
        DynBitset &u = use[std::size_t(bi)];
        DynBitset &d = def[std::size_t(bi)];
        for (const CfgInstr &instr : b.instrs) {
            for (VReg s : instr.srcs) {
                if (s >= 0 && !d.test(std::size_t(s)))
                    u.set(std::size_t(s));
            }
            if (instr.dest != noReg)
                d.set(std::size_t(instr.dest));
        }
        for (VReg s : b.branchSrcs) {
            if (s >= 0 && !d.test(std::size_t(s)))
                u.set(std::size_t(s));
        }
    }

    // The CFG is acyclic with forward edges, so one backward sweep
    // reaches the fixpoint.
    for (int bi = n - 1; bi >= 0; --bi) {
        const CfgBlock &b = cfg.block(bi);
        DynBitset out(regs);
        bool exits = false;
        if (b.takenTarget != noBlock)
            out |= ins[std::size_t(b.takenTarget)];
        else if (b.takenProb > 0.0)
            exits = true;
        if (b.fallthrough != noBlock)
            out |= ins[std::size_t(b.fallthrough)];
        else
            exits = true;
        if (exits || (b.takenTarget == noBlock &&
                      b.fallthrough == noBlock)) {
            out |= liveOutOfRegion;
        }
        outs[std::size_t(bi)] = out;

        DynBitset in = out;
        in.subtract(def[std::size_t(bi)]);
        in |= use[std::size_t(bi)];
        ins[std::size_t(bi)] = std::move(in);
    }
}

Liveness
Liveness::allLiveOut(const CfgProgram &cfg)
{
    DynBitset all(std::size_t(cfg.numVRegs()));
    all.setAll();
    return Liveness(cfg, all);
}

} // namespace balance
