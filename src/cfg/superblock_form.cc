#include "cfg/superblock_form.hh"

#include <algorithm>

#include "graph/builder.hh"
#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/** Where a trace block's terminator can leave the trace. */
struct ExitInfo
{
    bool hasExit = false;    //!< some mass leaves the trace here
    double exitProb = 0.0;   //!< conditional on reaching this block
    /** Off-trace CFG targets (region exits excluded). */
    std::vector<int> offTraceTargets;
    bool leavesRegion = false;
};

/**
 * Classify block @p bi's terminator relative to the trace: how much
 * mass continues to @p nextOnTrace and where the rest goes.
 */
ExitInfo
classifyExit(const CfgBlock &b, int nextOnTrace)
{
    ExitInfo info;
    double contProb = 0.0;
    if (b.takenTarget != noBlock && b.takenTarget == nextOnTrace) {
        contProb = b.takenProb;
        if (b.fallthrough != noBlock)
            info.offTraceTargets.push_back(b.fallthrough);
        else
            info.leavesRegion = true;
    } else if (b.fallthrough != noBlock &&
               b.fallthrough == nextOnTrace) {
        contProb = 1.0 - b.takenProb;
        if (b.takenProb > 0.0) {
            if (b.takenTarget != noBlock)
                info.offTraceTargets.push_back(b.takenTarget);
            else
                info.leavesRegion = true;
        }
    } else {
        // Terminator cannot reach the next trace block: everything
        // leaves here (only legal for the last trace block).
        bsAssert(nextOnTrace == noBlock,
                 "trace edge does not exist in the CFG");
        contProb = 0.0;
        if (b.takenTarget != noBlock && b.takenProb > 0.0)
            info.offTraceTargets.push_back(b.takenTarget);
        else if (b.takenProb > 0.0)
            info.leavesRegion = true;
        if (b.fallthrough != noBlock)
            info.offTraceTargets.push_back(b.fallthrough);
        else
            info.leavesRegion = true;
    }
    info.exitProb = 1.0 - contProb;
    info.hasExit = info.exitProb > 1e-12 || nextOnTrace == noBlock;
    return info;
}

/** Registers live on the off-trace side of an exit. */
DynBitset
liveAtExit(const CfgProgram &cfg, const Liveness &live,
           const ExitInfo &info)
{
    DynBitset out(std::size_t(cfg.numVRegs()));
    for (int target : info.offTraceTargets)
        out |= live.liveIn(target);
    if (info.leavesRegion)
        out.setAll(); // conservative: region-escaping values live
    return out;
}

} // namespace

Superblock
formSuperblock(const CfgProgram &cfg, const Trace &trace,
               const Liveness &live, std::string name,
               const FormOptions &opts)
{
    bsAssert(!trace.blocks.empty(), "empty trace");
    SuperblockBuilder builder(std::move(name));
    builder.setFrequency(
        std::max(cfg.block(trace.blocks.front()).frequency, 1.0));

    int regs = cfg.numVRegs();
    std::vector<OpId> lastDef(std::size_t(std::max(regs, 1)), invalidOp);
    std::vector<std::vector<OpId>> readersSinceDef(
        std::size_t(std::max(regs, 1)));
    OpId lastStore = invalidOp;
    std::vector<OpId> loadsSinceStore;

    /** Exits emitted so far with their off-trace live sets. */
    struct EmittedExit
    {
        OpId branch;
        DynBitset liveOff;
    };
    std::vector<EmittedExit> exits;

    // Ops already added, with their defs, for sinking edges.
    struct EmittedOp
    {
        OpId op;
        VReg dest;
        bool isStore;
        int latency;
    };
    std::vector<EmittedOp> ops;

    double reach = 1.0;
    double emitted = 0.0;

    auto addDataEdges = [&](OpId v, const std::vector<VReg> &srcs) {
        for (VReg s : srcs) {
            if (s >= 0 && lastDef[std::size_t(s)] != invalidOp)
                builder.addEdge(lastDef[std::size_t(s)], v);
        }
    };

    auto addSpeculationEdge = [&](OpId v, VReg dest, bool isStore,
                                  bool isLoad) {
        // Find the latest earlier exit v may not be hoisted above;
        // staying below it keeps v below all earlier exits too.
        for (auto it = exits.rbegin(); it != exits.rend(); ++it) {
            bool restricted = false;
            if (isStore) {
                restricted = true;
            } else if (isLoad && !opts.speculateLoads) {
                restricted = true;
            } else if (!opts.renameRegisters && dest != noReg &&
                       it->liveOff.test(std::size_t(dest))) {
                // Without renaming, hoisting would clobber a value
                // the off-trace path still reads; with renaming the
                // definition targets a fresh register and may move.
                restricted = true;
            }
            if (restricted) {
                builder.addEdge(it->branch, v, 1);
                break;
            }
        }
    };

    for (std::size_t t = 0; t < trace.blocks.size(); ++t) {
        int bi = trace.blocks[t];
        const CfgBlock &b = cfg.block(bi);
        bool last = t + 1 == trace.blocks.size();
        int nextOnTrace = last ? noBlock : trace.blocks[t + 1];

        for (const CfgInstr &instr : b.instrs) {
            OpId v = builder.addOp(instr.cls, instr.latency,
                                   instr.name);
            addDataEdges(v, instr.srcs);

            // Memory ordering (no alias analysis).
            if (instr.isMemory()) {
                if (lastStore != invalidOp)
                    builder.addEdge(lastStore, v);
                if (instr.isStore) {
                    for (OpId ld : loadsSinceStore)
                        builder.addEdge(ld, v, 0); // anti
                    loadsSinceStore.clear();
                    lastStore = v;
                } else {
                    loadsSinceStore.push_back(v);
                }
            }

            // Output/anti register dependences; renaming removes
            // them (each definition becomes a fresh register).
            if (instr.dest != noReg) {
                if (!opts.renameRegisters) {
                    OpId prior = lastDef[std::size_t(instr.dest)];
                    if (prior != invalidOp)
                        builder.addEdge(prior, v);
                    for (OpId reader :
                         readersSinceDef[std::size_t(instr.dest)]) {
                        if (reader != v)
                            builder.addEdge(reader, v, 0); // anti
                    }
                }
                readersSinceDef[std::size_t(instr.dest)].clear();
                lastDef[std::size_t(instr.dest)] = v;
            }
            for (VReg s : instr.srcs) {
                if (s >= 0)
                    readersSinceDef[std::size_t(s)].push_back(v);
            }

            addSpeculationEdge(v, instr.dest, instr.isStore,
                               instr.isLoad);
            ops.push_back({v, instr.dest, instr.isStore,
                           instr.latency});
        }

        ExitInfo info = classifyExit(b, nextOnTrace);
        if (!info.hasExit && !last) {
            // Unconditional continuation: the block merges into the
            // next one; no exit op.
            reach *= 1.0; // mass conserved
            continue;
        }

        double prob = last ? std::max(1.0 - emitted, 0.0)
                           : reach * info.exitProb;
        OpId br = builder.addBranch(prob, b.name + ".exit");
        emitted += prob;
        reach *= 1.0 - info.exitProb;
        addDataEdges(br, b.branchSrcs);
        for (VReg s : b.branchSrcs) {
            if (s >= 0)
                readersSinceDef[std::size_t(s)].push_back(br);
        }

        // Sinking: values live on the off-trace path (and all
        // stores) must complete before the exit.
        DynBitset liveOff = liveAtExit(cfg, live, info);
        if (last) {
            // The final exit ends the region: everything computed
            // must be architecturally complete.
            liveOff.setAll();
        }
        for (const EmittedOp &op : ops) {
            bool mustPrecede = op.isStore ||
                (op.dest != noReg &&
                 liveOff.test(std::size_t(op.dest)));
            if (mustPrecede)
                builder.addEdge(op.op, br, op.latency);
        }

        exits.push_back({br, std::move(liveOff)});
    }

    return builder.build(/*anchorLooseOpsToLastExit=*/true);
}

std::vector<Superblock>
formSuperblocks(const CfgProgram &cfg, const std::string &namePrefix,
                const TraceOptions &traceOpts,
                const FormOptions &formOpts)
{
    cfg.validate();
    Liveness live = Liveness::allLiveOut(cfg);
    std::vector<Trace> traces = selectTraces(cfg, traceOpts);

    std::vector<Superblock> out;
    out.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        out.push_back(formSuperblock(
            cfg, traces[i], live,
            namePrefix + ".sb" + std::to_string(i), formOpts));
    }
    return out;
}

} // namespace balance
