/**
 * @file
 * Superblock formation: convert a selected trace of a profiled CFG
 * into the scheduling dependence graph of Section 2, applying the
 * classic superblock code-motion rules:
 *
 *  - data flow: def-use edges over virtual registers, plus
 *    conservative output/anti edges so unrenamed redefinitions keep
 *    program order;
 *  - memory ordering: stores order against later memory operations
 *    and earlier loads (no alias analysis: all may conflict);
 *  - no sinking: an operation whose destination is live at a later
 *    exit (or any store) must complete before that exit;
 *  - restricted speculation: an operation may be hoisted above an
 *    earlier exit only when its destination is dead on the exit's
 *    off-trace path and it is not a store; loads are speculatively
 *    safe (non-faulting speculative loads, standard in the VLIW
 *    literature the paper builds on);
 *  - exits: each trace block whose terminator can leave the trace
 *    contributes a branch with the path-conditional probability;
 *    the final exit absorbs the remaining mass.
 */

#ifndef BALANCE_CFG_SUPERBLOCK_FORM_HH
#define BALANCE_CFG_SUPERBLOCK_FORM_HH

#include <string>
#include <vector>

#include "cfg/liveness.hh"
#include "cfg/trace.hh"
#include "graph/superblock.hh"

namespace balance
{

/** Code-motion policy knobs. */
struct FormOptions
{
    /** Allow loads to be hoisted above earlier exits. */
    bool speculateLoads = true;
    /**
     * Rename registers within the superblock (what IMPACT does
     * before scheduling): anti and output register dependences
     * disappear — each definition behaves like a fresh register,
     * and the per-exit live-out edges already pin the value each
     * exit path needs. Off by default so the unrenamed machine
     * model is also exercised.
     */
    bool renameRegisters = false;
};

/**
 * Form one superblock from @p trace.
 *
 * @param cfg The profiled program.
 * @param trace Blocks in control-flow order (from selectTraces).
 * @param live Liveness over @p cfg (decides sinking/hoisting).
 * @param name Display name for the superblock.
 * @param opts Code-motion policy.
 */
Superblock formSuperblock(const CfgProgram &cfg, const Trace &trace,
                          const Liveness &live, std::string name,
                          const FormOptions &opts = {});

/**
 * Full pipeline: liveness, trace selection, and formation of one
 * superblock per trace (in selection order). Superblocks inherit
 * the head block's execution frequency.
 */
std::vector<Superblock> formSuperblocks(const CfgProgram &cfg,
                                        const std::string &namePrefix,
                                        const TraceOptions &traceOpts = {},
                                        const FormOptions &formOpts = {});

} // namespace balance

#endif // BALANCE_CFG_SUPERBLOCK_FORM_HH
