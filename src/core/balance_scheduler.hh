/**
 * @file
 * The Balance superblock scheduling heuristic (Section 5) and the
 * Help heuristic (the paper's Speculative-Hedge proxy, Section 6.2).
 *
 * Both run the same engine:
 *   1. maintain per-branch dynamic Early/Late bounds and ERCs
 *      (Section 5.1), updated per scheduled operation (or once per
 *      cycle, for the Table 7 ablation), with the cheap light
 *      update where valid;
 *   2. derive each branch's NeedEach/NeedOne sets (Section 5.2);
 *   3. [Balance] select a compatible branch set, reordered by
 *      pairwise tradeoffs (Sections 5.3-5.4);
 *   4. pick one operation by the Speculative Hedge rule
 *      (Section 5.5) from the selected needs (Balance) or from all
 *      ready operations (Help).
 *
 * Help differs from Balance by omitting the EarlyRC/LateRC/Pairwise
 * bounds (it uses dependence-only EarlyDC/LateDC), the compatible-
 * branch selection, and the help/delay distinction — exactly the
 * paper's description of Help. Each omission is an independent
 * switch here, which is what the Table 7 component study sweeps.
 */

#ifndef BALANCE_CORE_BALANCE_SCHEDULER_HH
#define BALANCE_CORE_BALANCE_SCHEDULER_HH

#include <string>

#include "bounds/superblock_bounds.hh"
#include "sched/heuristics.hh"

namespace balance
{

/** Component switches for the Balance engine (Table 7). */
struct BalanceConfig
{
    /** Observation 2: LC-based EarlyRC/LateRC instead of DC bounds. */
    bool useRcBounds = true;
    /** Observation 1: track indirect delays in the pick rule. */
    bool useHlpDel = true;
    /** Observation 3: pairwise branch tradeoffs (needs useRcBounds). */
    bool useTradeoff = true;
    /** Sections 5.3-5.4: compatible-branch selection. */
    bool useSelection = true;
    /** Update dynamic bounds per scheduled op (else per cycle). */
    bool updatePerOp = true;
    /** Use the cheap incremental update when provably valid. */
    bool useLightUpdate = true;
    /** Bound-computation options for the static toolkit. */
    BoundConfig bounds;
    /** Emit per-decision tracing to stderr (debugging aid). */
    bool trace = false;
};

/** The Balance heuristic (full configuration by default). */
class BalanceScheduler : public Scheduler
{
  public:
    explicit BalanceScheduler(BalanceConfig config = {},
                              std::string displayName = "Balance");

    std::string name() const override { return displayName; }
    Schedule run(const GraphContext &ctx, const MachineModel &machine,
                 const ScheduleRequest &req = {}) const override;

    /**
     * Run with a precomputed static toolkit (must match ctx and
     * machine); avoids recomputing EarlyRC/LateRC/Pairwise when the
     * caller already has them for bound evaluation.
     */
    Schedule runWithToolkit(const GraphContext &ctx,
                            const MachineModel &machine,
                            const BoundsToolkit &toolkit,
                            const ScheduleRequest &req = {}) const;

    /** @return the component configuration. */
    const BalanceConfig &config() const { return cfg; }

  private:
    BalanceConfig cfg;
    std::string displayName;
};

/** The Help heuristic: Balance minus bounds, selection, and HlpDel. */
class HelpScheduler : public Scheduler
{
  public:
    HelpScheduler();

    std::string name() const override { return "Help"; }
    Schedule run(const GraphContext &ctx, const MachineModel &machine,
                 const ScheduleRequest &req = {}) const override;

  private:
    BalanceScheduler engine;
};

} // namespace balance

#endif // BALANCE_CORE_BALANCE_SCHEDULER_HH
