/**
 * @file
 * Mutable in-progress scheduling state shared by the Help and
 * Balance heuristics: issue assignments, the ready set, and the
 * current cycle's resource reservations.
 */

#ifndef BALANCE_CORE_SCHED_STATE_HH
#define BALANCE_CORE_SCHED_STATE_HH

#include <vector>

#include "graph/superblock.hh"
#include "machine/machine_model.hh"
#include "machine/resource_state.hh"
#include "sched/schedule.hh"

namespace balance
{

/**
 * Forward list-scheduling state: operations are only ever placed in
 * the current cycle, which advances monotonically.
 */
class SchedState
{
  public:
    SchedState(const Superblock &sb, const MachineModel &machine);

    /** The state keeps pointers: temporaries are a bug. */
    SchedState(Superblock &&, const MachineModel &) = delete;
    SchedState(const Superblock &, MachineModel &&) = delete;
    SchedState(Superblock &&, MachineModel &&) = delete;

    /**
     * Reset to the freshly-constructed state for @p sb on
     * @p machine, reusing the existing buffers. Equivalent to
     * `*this = SchedState(sb, machine)` without the allocations.
     */
    void rebind(const Superblock &sb, const MachineModel &machine);

    /** @return the superblock being scheduled. */
    const Superblock &sb() const { return *block; }

    /** @return the machine model. */
    const MachineModel &machine() const { return *model; }

    /** @return the cycle operations are currently placed into. */
    int cycle() const { return curCycle; }

    /** @return the issue cycle of @p v, or -1. */
    int
    issueOf(OpId v) const
    {
        return issue[std::size_t(v)];
    }

    /** @return true when @p v has been placed. */
    bool
    isScheduled(OpId v) const
    {
        return issue[std::size_t(v)] >= 0;
    }

    /** @return the number of operations placed so far. */
    int scheduledCount() const { return placed; }

    /** @return true when every operation is placed. */
    bool done() const { return placed == block->numOps(); }

    /**
     * @return true when @p v can issue in the current cycle:
     *         unscheduled, all predecessors issued with latencies
     *         elapsed, and a unit of its class free.
     */
    bool canIssueNow(OpId v) const;

    /**
     * @return true when @p v is dependence-ready for the current
     *         cycle (ignores resource availability).
     */
    bool
    isDepReady(OpId v) const
    {
        return !isScheduled(v) && predsLeft[std::size_t(v)] == 0 &&
               readyAt[std::size_t(v)] <= curCycle;
    }

    /** @return all dependence-ready operations, in program order. */
    std::vector<OpId> depReadyOps() const;

    /** @return free units of pool @p r in the current cycle. */
    int
    freeNow(ResourceId r) const
    {
        return table.freePoolSlots(curCycle, r);
    }

    /** Place @p v in the current cycle (must satisfy canIssueNow). */
    void scheduleNow(OpId v);

    /**
     * Advance to the next cycle.
     *
     * @return the per-pool free slots that went unused in the cycle
     *         being left (the "lost" slots of the light update). The
     *         reference points at internal scratch valid until the
     *         next advanceCycle() call.
     */
    const std::vector<int> &advanceCycle();

    /**
     * @return true when some dependence-ready operation can issue in
     *         the current cycle.
     */
    bool anyIssuableNow() const;

    /** Convert to an immutable Schedule (must be done()). */
    Schedule toSchedule() const;

  private:
    const Superblock *block;
    const MachineModel *model;
    ResourceState table;
    std::vector<int> issue;
    std::vector<int> predsLeft;
    std::vector<int> readyAt;
    std::vector<int> lostScratch; //!< advanceCycle() result buffer
    int curCycle = 0;
    int placed = 0;
};

} // namespace balance

#endif // BALANCE_CORE_SCHED_STATE_HH
