#include "core/branch_select.hh"

#include <algorithm>
#include <numeric>

#include "support/diagnostics.hh"

namespace balance
{

bool
BranchNeeds::hasNeeds() const
{
    if (!needEach.empty())
        return true;
    for (const auto &group : needOne) {
        if (!group.empty())
            return true;
    }
    return false;
}

std::vector<OpId>
SelectionResult::candidateOps() const
{
    std::vector<OpId> out = takeEach;
    for (const auto &group : takeOne)
        out.insert(out.end(), group.begin(), group.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

bool
SelectionResult::unconstrained() const
{
    if (!takeEach.empty())
        return false;
    for (const auto &group : takeOne) {
        if (!group.empty())
            return false;
    }
    return true;
}

namespace
{

/** Membership-testable op set with per-pool counts. */
class OpSet
{
  public:
    OpSet(const SchedState &state)
        : state(&state), in(std::size_t(state.sb().numOps()), 0),
          poolCount(std::size_t(state.machine().numResources()), 0)
    {}

    bool contains(OpId v) const { return in[std::size_t(v)]; }

    void
    add(OpId v)
    {
        if (in[std::size_t(v)])
            return;
        in[std::size_t(v)] = 1;
        ops.push_back(v);
        ResourceId r =
            state->machine().poolOf(state->sb().op(v).cls);
        ++poolCount[std::size_t(r)];
    }

    int
    countInPool(ResourceId r) const
    {
        return poolCount[std::size_t(r)];
    }

    const std::vector<OpId> &members() const { return ops; }

  private:
    const SchedState *state;
    std::vector<char> in;
    std::vector<int> poolCount;
    std::vector<OpId> ops;
};

} // namespace

SelectionResult
selectPass(const SchedState &state, const std::vector<BranchNeeds> &needs,
           const std::vector<int> &order)
{
    const MachineModel &machine = state.machine();
    int pools = machine.numResources();

    SelectionResult result;
    result.outcome.assign(needs.size(), BranchOutcome::Ignored);
    result.takeOne.assign(std::size_t(pools), {});

    OpSet takeEach(state);
    // Per pool: the running TakeOne intersection. `active` means the
    // constraint exists and is not yet satisfied by TakeEach.
    std::vector<std::vector<OpId>> takeOne{std::size_t(pools)};
    std::vector<char> takeOneActive(std::size_t(pools), 0);

    auto satisfiedByTakeEach = [&](const std::vector<OpId> &group) {
        return std::any_of(group.begin(), group.end(), [&](OpId v) {
            return takeEach.contains(v);
        });
    };

    for (int idx : order) {
        const BranchNeeds &b = needs[std::size_t(idx)];
        if (!b.hasNeeds()) {
            result.outcome[std::size_t(idx)] = BranchOutcome::Ignored;
            continue;
        }

        // Tentative TakeEach' = TakeEach u NeedEach[b]; all members
        // must be issuable together in the current cycle.
        std::vector<OpId> added;
        bool feasible = true;
        for (OpId v : b.needEach) {
            if (!takeEach.contains(v)) {
                if (!state.isDepReady(v)) {
                    feasible = false;
                    break;
                }
                added.push_back(v);
            }
        }

        // Stage the TakeOne' intersections.
        std::vector<std::vector<OpId>> staged{std::size_t(pools)};
        std::vector<char> stagedSet(std::size_t(pools), 0);

        if (feasible) {
            // Apply the staged TakeEach additions to a scratch set
            // view: pool counts after additions.
            std::vector<int> eachCount(std::size_t(pools), 0);
            for (int r = 0; r < pools; ++r)
                eachCount[std::size_t(r)] = takeEach.countInPool(r);
            auto inTakeEachPrime = [&](OpId v) {
                if (takeEach.contains(v))
                    return true;
                return std::find(added.begin(), added.end(), v) !=
                       added.end();
            };
            for (OpId v : added) {
                ResourceId r = machine.poolOf(state.sb().op(v).cls);
                ++eachCount[std::size_t(r)];
            }

            for (int r = 0; r < pools && feasible; ++r) {
                const std::vector<OpId> &need =
                    b.needOne[std::size_t(r)];
                bool existing = takeOneActive[std::size_t(r)];

                // A constraint met by TakeEach' costs nothing more.
                bool needMet =
                    !need.empty() &&
                    std::any_of(need.begin(), need.end(),
                                inTakeEachPrime);
                bool existingMet =
                    existing && satisfiedByTakeEach(
                                    takeOne[std::size_t(r)]);
                if (!existingMet && existing) {
                    existingMet = std::any_of(
                        takeOne[std::size_t(r)].begin(),
                        takeOne[std::size_t(r)].end(),
                        [&](OpId v) {
                            return std::find(added.begin(), added.end(),
                                             v) != added.end();
                        });
                }

                std::vector<OpId> base;
                bool active = false;
                if (!need.empty() && !needMet) {
                    if (existing && !existingMet) {
                        // Intersection of both constraints.
                        for (OpId v : need) {
                            if (std::find(
                                    takeOne[std::size_t(r)].begin(),
                                    takeOne[std::size_t(r)].end(), v) !=
                                takeOne[std::size_t(r)].end()) {
                                base.push_back(v);
                            }
                        }
                    } else {
                        base = need;
                    }
                    active = true;
                } else if (existing && !existingMet) {
                    base = takeOne[std::size_t(r)];
                    active = true;
                }

                if (active) {
                    // Only ready operations outside TakeEach' count,
                    // and the pool must have a slot left for one of
                    // them after TakeEach'.
                    std::vector<OpId> usable;
                    for (OpId v : base) {
                        if (!inTakeEachPrime(v) && state.isDepReady(v))
                            usable.push_back(v);
                    }
                    if (usable.empty() ||
                        eachCount[std::size_t(r)] + 1 >
                            state.freeNow(r)) {
                        feasible = false;
                        break;
                    }
                    staged[std::size_t(r)] = std::move(usable);
                    stagedSet[std::size_t(r)] = 1;
                } else {
                    // Constraint absent or satisfied by TakeEach':
                    // nothing to stage; the commit step clears a
                    // satisfied existing constraint.
                    staged[std::size_t(r)].clear();
                    stagedSet[std::size_t(r)] = 0;
                }
            }

            // Pool capacity for TakeEach' itself.
            if (feasible) {
                for (int r = 0; r < pools; ++r) {
                    if (eachCount[std::size_t(r)] > state.freeNow(r)) {
                        feasible = false;
                        break;
                    }
                }
            }
        }

        if (!feasible) {
            result.outcome[std::size_t(idx)] = BranchOutcome::Delayed;
            continue;
        }

        // Commit.
        for (OpId v : added)
            takeEach.add(v);
        for (int r = 0; r < pools; ++r) {
            if (stagedSet[std::size_t(r)]) {
                takeOne[std::size_t(r)] = staged[std::size_t(r)];
                takeOneActive[std::size_t(r)] = 1;
            } else if (takeOneActive[std::size_t(r)] &&
                       satisfiedByTakeEach(takeOne[std::size_t(r)])) {
                takeOneActive[std::size_t(r)] = 0;
                takeOne[std::size_t(r)].clear();
            }
        }
        result.outcome[std::size_t(idx)] = BranchOutcome::Selected;
    }

    result.takeEach = takeEach.members();
    for (int r = 0; r < pools; ++r) {
        if (takeOneActive[std::size_t(r)])
            result.takeOne[std::size_t(r)] = takeOne[std::size_t(r)];
    }

    // Rank before tradeoff revision: selected minus delayed.
    result.rank = 0.0;
    for (std::size_t i = 0; i < needs.size(); ++i) {
        switch (result.outcome[i]) {
          case BranchOutcome::Selected:
          case BranchOutcome::DelayedOk:
            result.rank += needs[i].weight;
            break;
          case BranchOutcome::Delayed:
            result.rank -= needs[i].weight;
            break;
          case BranchOutcome::Ignored:
            break;
        }
    }
    return result;
}

namespace
{

/**
 * Revise delayed outcomes to delayedOK where the pairwise bound says
 * the delay is part of the optimal tradeoff, and recompute the rank.
 */
void
applyDelayedOkRevision(const SchedState &state,
                       const std::vector<BranchNeeds> &needs,
                       const TradeoffInputs &tradeoff,
                       SelectionResult &sel,
                       std::vector<SelectionDebug::Note> *notes = nullptr)
{
    if (!tradeoff.pairwise || !tradeoff.earlyRC || !tradeoff.sb)
        return;
    const Superblock &sb = *tradeoff.sb;
    (void)state;
    if (notes)
        notes->clear();

    for (std::size_t i = 0; i < needs.size(); ++i) {
        if (sel.outcome[i] != BranchOutcome::Delayed)
            continue;
        int bi = needs[i].branchIdx;
        OpId opI = sb.branches()[std::size_t(bi)];
        int eI = (*tradeoff.earlyRC)[std::size_t(opI)];
        for (std::size_t j = 0; j < needs.size(); ++j) {
            if (sel.outcome[j] != BranchOutcome::Selected)
                continue;
            int bj = needs[j].branchIdx;
            const PairPoint &pt = bi < bj
                ? tradeoff.pairwise->pair(bi, bj)
                : tradeoff.pairwise->pair(bj, bi);
            int valI = bi < bj ? pt.x : pt.y;
            // The optimal joint solution already delays i, and the
            // one-cycle slip this decision causes stays within it.
            if (valI > eI && needs[i].dynEarly + 1 <= valI) {
                sel.outcome[i] = BranchOutcome::DelayedOk;
                if (notes) {
                    notes->push_back({bi, bj, valI, eI,
                                      needs[i].dynEarly});
                }
                break;
            }
        }
    }

    sel.rank = 0.0;
    for (std::size_t i = 0; i < needs.size(); ++i) {
        switch (sel.outcome[i]) {
          case BranchOutcome::Selected:
          case BranchOutcome::DelayedOk:
            sel.rank += needs[i].weight;
            break;
          case BranchOutcome::Delayed:
            sel.rank -= needs[i].weight;
            break;
          case BranchOutcome::Ignored:
            break;
        }
    }
}

} // namespace

SelectionResult
selectCompatibleBranches(const SchedState &state,
                         const std::vector<BranchNeeds> &needs,
                         const TradeoffInputs &tradeoff,
                         SchedulerStats *stats, SelectionDebug *debug)
{
    // Initial order: decreasing weight, program order on ties.
    std::vector<int> order(needs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (needs[std::size_t(a)].weight != needs[std::size_t(b)].weight)
            return needs[std::size_t(a)].weight >
                   needs[std::size_t(b)].weight;
        return needs[std::size_t(a)].branchIdx <
               needs[std::size_t(b)].branchIdx;
    });

    std::vector<SelectionDebug::Note> passNotes;
    std::vector<SelectionDebug::Note> *notes =
        debug ? &passNotes : nullptr;

    SelectionResult best = selectPass(state, needs, order);
    applyDelayedOkRevision(state, needs, tradeoff, best, notes);
    if (debug) {
        debug->notes = passNotes;
        debug->reorders = 0;
    }
    if (stats) {
        ++stats->selectionPasses;
        stats->loopTrips += (long long)(needs.size());
    }

    if (!tradeoff.pairwise || !tradeoff.earlyRC || !tradeoff.sb)
        return best;
    const Superblock &sb = *tradeoff.sb;

    SelectionResult current = best;
    std::vector<int> curOrder = order;
    for (int round = 0; round < tradeoff.maxReorders; ++round) {
        // Find a (delayed i, selected j) pair where the pairwise
        // bound prefers delaying j and j precedes i in the order.
        int swapI = -1;
        int swapJ = -1;
        for (std::size_t i = 0;
             i < needs.size() && swapI < 0; ++i) {
            if (current.outcome[i] != BranchOutcome::Delayed)
                continue;
            for (std::size_t j = 0; j < needs.size(); ++j) {
                if (current.outcome[j] != BranchOutcome::Selected)
                    continue;
                int bi = needs[i].branchIdx;
                int bj = needs[j].branchIdx;
                OpId opJ = sb.branches()[std::size_t(bj)];
                int eJ = (*tradeoff.earlyRC)[std::size_t(opJ)];
                const PairPoint &pt = bi < bj
                    ? tradeoff.pairwise->pair(bi, bj)
                    : tradeoff.pairwise->pair(bj, bi);
                int valJ = bi < bj ? pt.y : pt.x;
                if (valJ > eJ && needs[j].dynEarly + 1 <= valJ) {
                    auto posI = std::find(curOrder.begin(),
                                          curOrder.end(), int(i));
                    auto posJ = std::find(curOrder.begin(),
                                          curOrder.end(), int(j));
                    if (posJ < posI) {
                        swapI = int(i);
                        swapJ = int(j);
                        break;
                    }
                }
            }
        }
        if (swapI < 0)
            break;

        auto posI = std::find(curOrder.begin(), curOrder.end(), swapI);
        auto posJ = std::find(curOrder.begin(), curOrder.end(), swapJ);
        std::iter_swap(posI, posJ);
        current = selectPass(state, needs, curOrder);
        applyDelayedOkRevision(state, needs, tradeoff, current, notes);
        if (debug)
            ++debug->reorders;
        if (stats) {
            ++stats->selectionPasses;
            stats->loopTrips += (long long)(needs.size());
        }
        if (current.rank > best.rank) {
            best = current;
            if (debug)
                debug->notes = passNotes;
        }
    }
    return best;
}

} // namespace balance
