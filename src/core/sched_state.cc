#include "core/sched_state.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace balance
{

SchedState::SchedState(const Superblock &sb, const MachineModel &machine)
    : block(&sb), model(&machine), table(machine),
      issue(std::size_t(sb.numOps()), -1),
      predsLeft(std::size_t(sb.numOps()), 0),
      readyAt(std::size_t(sb.numOps()), 0)
{
    for (OpId v = 0; v < sb.numOps(); ++v)
        predsLeft[std::size_t(v)] = int(sb.preds(v).size());
}

void
SchedState::rebind(const Superblock &sb, const MachineModel &machine)
{
    block = &sb;
    model = &machine;
    table.rebind(machine);
    issue.assign(std::size_t(sb.numOps()), -1);
    predsLeft.assign(std::size_t(sb.numOps()), 0);
    readyAt.assign(std::size_t(sb.numOps()), 0);
    curCycle = 0;
    placed = 0;
    for (OpId v = 0; v < sb.numOps(); ++v)
        predsLeft[std::size_t(v)] = int(sb.preds(v).size());
}

bool
SchedState::canIssueNow(OpId v) const
{
    return isDepReady(v) && table.hasSlot(curCycle, block->op(v).cls);
}

std::vector<OpId>
SchedState::depReadyOps() const
{
    std::vector<OpId> out;
    for (OpId v = 0; v < block->numOps(); ++v) {
        if (isDepReady(v))
            out.push_back(v);
    }
    return out;
}

void
SchedState::scheduleNow(OpId v)
{
    bsAssert(canIssueNow(v), "op ", v, " cannot issue in cycle ",
             curCycle);
    table.reserve(curCycle, block->op(v).cls);
    issue[std::size_t(v)] = curCycle;
    ++placed;
    for (const Adjacent &e : block->succs(v)) {
        --predsLeft[std::size_t(e.op)];
        // Zero-latency (anti) edges are serialized to the next
        // cycle, the policy shared by every forward scheduler and
        // the exact oracle in this library, so all of them explore
        // the same schedule space.
        readyAt[std::size_t(e.op)] =
            std::max(readyAt[std::size_t(e.op)],
                     curCycle + std::max(e.latency, 1));
    }
}

const std::vector<int> &
SchedState::advanceCycle()
{
    lostScratch.resize(std::size_t(model->numResources()));
    for (int r = 0; r < model->numResources(); ++r)
        lostScratch[std::size_t(r)] = table.freePoolSlots(curCycle, r);
    ++curCycle;
    return lostScratch;
}

bool
SchedState::anyIssuableNow() const
{
    for (OpId v = 0; v < block->numOps(); ++v) {
        if (canIssueNow(v))
            return true;
    }
    return false;
}

Schedule
SchedState::toSchedule() const
{
    bsAssert(done(), "incomplete scheduling state");
    Schedule out(block->numOps());
    for (OpId v = 0; v < block->numOps(); ++v)
        out.setIssue(v, issue[std::size_t(v)]);
    return out;
}

} // namespace balance
