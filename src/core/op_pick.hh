/**
 * @file
 * The final operation-selection rule (Section 5.5), taken from
 * Speculative Hedge: among the candidate operations, pick the one
 * whose issue helps the largest total exit probability; break ties
 * by the number of helped branches, then by the smallest late time,
 * then by program order. With the HlpDel component (Observation 1),
 * branches the operation would indirectly delay subtract their
 * weight.
 */

#ifndef BALANCE_CORE_OP_PICK_HH
#define BALANCE_CORE_OP_PICK_HH

#include <memory>
#include <vector>

#include "core/branch_dynamics.hh"
#include "core/sched_state.hh"

namespace balance
{

/** Knobs for the pick rule. */
struct OpPickConfig
{
    /** Subtract the weight of indirectly delayed branches. */
    bool useHlpDel = false;
};

/**
 * Pick the best candidate operation.
 *
 * @param state Scheduling state.
 * @param dyn Per-branch dynamic bounds (branch order).
 * @param weights Steering weight per branch (branch order).
 * @param candidates Candidate ops; all must satisfy canIssueNow.
 * @param config Pick-rule options.
 * @param stats Optional cost accounting.
 * @return the chosen operation (candidates must be non-empty).
 */
OpId pickBestOp(const SchedState &state,
                const std::vector<std::unique_ptr<BranchDynamics>> &dyn,
                const std::vector<double> &weights,
                const std::vector<OpId> &candidates,
                const OpPickConfig &config = {},
                SchedulerStats *stats = nullptr);

} // namespace balance

#endif // BALANCE_CORE_OP_PICK_HH
