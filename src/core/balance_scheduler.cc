#include "core/balance_scheduler.hh"

#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>

#include "core/branch_select.hh"
#include "core/op_pick.hh"
#include "core/sched_state.hh"
#include "sched/decision_log.hh"
#include "sched/sched_scratch.hh"
#include "support/diagnostics.hh"
#include "support/perf_counters.hh"

namespace balance
{

namespace
{

/** Map the selection outcome onto the decision-log wire enum. */
DecisionOutcome
logOutcome(BranchOutcome o)
{
    switch (o) {
      case BranchOutcome::Selected:
        return DecisionOutcome::Selected;
      case BranchOutcome::Delayed:
        return DecisionOutcome::Delayed;
      case BranchOutcome::DelayedOk:
        return DecisionOutcome::DelayedOk;
      case BranchOutcome::Ignored:
        return DecisionOutcome::Ignored;
    }
    return DecisionOutcome::Ignored;
}

/**
 * Engine working set parked inside the caller's SchedScratch between
 * runs: the scheduling state, the per-branch dynamics objects, and
 * the DC-mode static late buffers all keep their allocations across
 * superblocks and machines (each run rebinds them in O(1) extra
 * memory).
 */
struct EngineScratch final : SchedScratchExtension
{
    std::optional<SchedState> state;
    std::vector<std::unique_ptr<BranchDynamics>> dyn;
    std::vector<std::vector<int>> dcLate;
};

/** The shared Balance/Help engine for one run. */
class Engine
{
  public:
    Engine(const GraphContext &ctx, const MachineModel &machine,
           const BalanceConfig &cfg, const BoundsToolkit *toolkit,
           const ScheduleRequest &req)
        : ctx(ctx), sb(ctx.sb()), cfg(cfg),
          weights(steeringWeights(sb, req)), stats(req.stats),
          log(req.decisionLog)
    {
        // Park the engine working set in the caller's SchedScratch so
        // repeated runs (the evaluation sweeps) stop reallocating it;
        // without a scratch, fall back to engine-owned buffers.
        EngineScratch *es = nullptr;
        if (req.scratch) {
            es = dynamic_cast<EngineScratch *>(
                req.scratch->coreExt.get());
            if (!es) {
                auto fresh = std::make_unique<EngineScratch>();
                es = fresh.get();
                req.scratch->coreExt = std::move(fresh);
            }
        }
        if (es && es->state) {
            es->state->rebind(sb, machine);
            state = &*es->state;
        } else if (es) {
            es->state.emplace(sb, machine);
            state = &*es->state;
        } else {
            ownState.emplace(sb, machine);
            state = &*ownState;
        }

        staticLate.reserve(std::size_t(sb.numBranches()));
        if (cfg.useRcBounds) {
            bsAssert(toolkit, "RC mode requires a bounds toolkit");
            staticEarly = &toolkit->earlyRC();
            for (int bi = 0; bi < sb.numBranches(); ++bi)
                staticLate.push_back(&toolkit->lateRC(bi));
            if (cfg.useTradeoff)
                pairwise = toolkit->pairwise();
        } else {
            staticEarly = &ctx.earlyDC();
            std::vector<std::vector<int>> &dcLate =
                es ? es->dcLate : ownDcLate;
            dcLate.resize(std::size_t(sb.numBranches()));
            for (int bi = 0; bi < sb.numBranches(); ++bi) {
                OpId b = sb.branches()[std::size_t(bi)];
                dcLate[std::size_t(bi)] = computeLateDC(
                    sb, b, ctx.earlyDC()[std::size_t(b)]);
                staticLate.push_back(&dcLate[std::size_t(bi)]);
            }
        }

        std::vector<std::unique_ptr<BranchDynamics>> &pool =
            es ? es->dyn : ownDyn;
        if (int(pool.size()) > sb.numBranches())
            pool.resize(std::size_t(sb.numBranches()));
        for (int bi = 0; bi < sb.numBranches(); ++bi) {
            if (std::size_t(bi) < pool.size()) {
                pool[std::size_t(bi)]->rebind(
                    ctx, machine, bi, *staticEarly,
                    *staticLate[std::size_t(bi)]);
            } else {
                pool.push_back(std::make_unique<BranchDynamics>(
                    ctx, machine, bi, *staticEarly,
                    *staticLate[std::size_t(bi)]));
            }
        }
        dyn = &pool;
    }

    Schedule
    run()
    {
        fullUpdateAll();
        while (!state->done()) {
            if (!state->anyIssuableNow()) {
                const std::vector<int> &lost = state->advanceCycle();
                if (cfg.updatePerOp) {
                    refreshOnCycleAdvance(lost);
                } else {
                    // Once-per-cycle mode (Table 7): this is the one
                    // refresh point, so it is always a full one.
                    fullUpdateAll();
                }
                continue;
            }

            DecisionStep *step =
                log ? &log->beginStep(state->cycle()) : nullptr;
            std::vector<OpId> candidates = chooseCandidates(step);
            OpId pick = pickBestOp(*state, *dyn, weights, candidates,
                                   {cfg.useHlpDel}, stats);
            if (cfg.trace) {
                std::cerr << "cycle " << state->cycle() << ": pick "
                          << pick << " from {";
                for (OpId v : candidates)
                    std::cerr << " " << v;
                std::cerr << " }  dynEarly:";
                for (auto &d : *dyn) {
                    if (!d->retired())
                        std::cerr << " b" << d->branchOp() << "="
                                  << d->dynEarly();
                }
                std::cerr << "\n";
            }
            if (step) {
                step->pick = pick;
                step->candidates = candidates;
            }
            state->scheduleNow(pick);
            if (stats) {
                ++stats->decisions;
                stats->candidatesSum += (long long)(candidates.size());
            }
            if (cfg.updatePerOp) {
                long long f0 = fullUpd;
                long long l0 = lightUpd;
                refreshOnOp(pick);
                if (step) {
                    step->fullUpdates = fullUpd - f0;
                    step->lightUpdates = lightUpd - l0;
                }
            }
        }
        return state->toSchedule();
    }

  private:
    void
    fullUpdateAll()
    {
        for (auto &d : *dyn) {
            d->fullUpdate(*state, stats);
            ++fullUpd;
        }
        if (stats)
            stats->fullUpdates += (long long)(dyn->size());
    }

    void
    refreshOnOp(OpId lastOp)
    {
        for (auto &d : *dyn) {
            if (!cfg.useLightUpdate ||
                !d->lightUpdateOnOp(*state, lastOp, stats)) {
                d->fullUpdate(*state, stats);
                ++fullUpd;
                if (stats)
                    ++stats->fullUpdates;
            } else {
                ++lightUpd;
                if (stats)
                    ++stats->lightUpdates;
            }
        }
    }

    void
    refreshOnCycleAdvance(const std::vector<int> &lost)
    {
        for (auto &d : *dyn) {
            if (!cfg.useLightUpdate ||
                !d->lightUpdateOnCycleAdvance(*state, lost, stats)) {
                d->fullUpdate(*state, stats);
                ++fullUpd;
                if (stats)
                    ++stats->fullUpdates;
            } else {
                ++lightUpd;
                if (stats)
                    ++stats->lightUpdates;
            }
        }
    }

    /** All operations issuable in the current cycle. */
    std::vector<OpId>
    issuableOps() const
    {
        std::vector<OpId> out;
        for (OpId v = 0; v < sb.numOps(); ++v) {
            if (state->canIssueNow(v))
                out.push_back(v);
        }
        return out;
    }

    std::vector<OpId>
    chooseCandidates(DecisionStep *step)
    {
        if (!cfg.useSelection)
            return issuableOps();

        // Gather each unretired branch's needs for this decision.
        std::vector<BranchNeeds> needs;
        for (int bi = 0; bi < sb.numBranches(); ++bi) {
            BranchDynamics &d = *(*dyn)[std::size_t(bi)];
            if (d.retired())
                continue;
            BranchNeeds n;
            n.branchIdx = bi;
            n.weight = weights[std::size_t(bi)];
            n.dynEarly = d.dynEarly();
            n.needEach = d.needEach(*state);
            n.needOne.resize(
                std::size_t(state->machine().numResources()));
            for (int r = 0; r < state->machine().numResources(); ++r)
                n.needOne[std::size_t(r)] = d.needOne(*state, r);
            needs.push_back(std::move(n));
        }
        if (needs.empty())
            return issuableOps();

        TradeoffInputs tradeoff;
        if (cfg.useTradeoff && pairwise) {
            tradeoff.pairwise = pairwise;
            tradeoff.earlyRC = staticEarly;
            tradeoff.sb = &sb;
        }
        SelectionDebug dbg;
        SelectionResult sel = selectCompatibleBranches(
            *state, needs, tradeoff, stats, step ? &dbg : nullptr);
        if (step)
            recordSelection(*step, needs, sel, dbg);

        if (sel.unconstrained())
            return issuableOps();
        std::vector<OpId> cands;
        for (OpId v : sel.candidateOps()) {
            if (state->canIssueNow(v))
                cands.push_back(v);
        }
        if (cands.empty())
            return issuableOps();
        return cands;
    }

    /** Copy one selection's view into the decision log step. */
    static void
    recordSelection(DecisionStep &step,
                    const std::vector<BranchNeeds> &needs,
                    const SelectionResult &sel,
                    const SelectionDebug &dbg)
    {
        step.rank = sel.rank;
        step.reorders = dbg.reorders;
        step.branches.reserve(needs.size());
        for (std::size_t i = 0; i < needs.size(); ++i) {
            DecisionBranch b;
            b.branchIdx = needs[i].branchIdx;
            b.weight = needs[i].weight;
            b.dynEarly = needs[i].dynEarly;
            b.needEach = int(needs[i].needEach.size());
            for (const auto &group : needs[i].needOne)
                b.needOne += int(group.size());
            b.outcome = logOutcome(sel.outcome[i]);
            step.branches.push_back(b);
        }
        step.tradeoffs.reserve(dbg.notes.size());
        for (const SelectionDebug::Note &n : dbg.notes) {
            step.tradeoffs.push_back({n.delayedBranch, n.againstBranch,
                                      n.pairBound, n.staticEarly,
                                      n.dynEarly});
        }
    }

    const GraphContext &ctx;
    const Superblock &sb;
    BalanceConfig cfg;
    std::vector<double> weights;
    SchedulerStats *stats;
    DecisionLog *log;
    /** ERC update tallies (mirrored into stats when present). */
    long long fullUpd = 0;
    long long lightUpd = 0;

    const std::vector<int> *staticEarly = nullptr;
    /** Per-branch static late times; the vectors live in the bounds
     *  toolkit (RC mode) or the dcLate buffer (DC mode). */
    std::vector<const std::vector<int> *> staticLate;
    const PairwiseBounds *pairwise = nullptr;

    /** Scheduling state and per-branch dynamics: pooled in the
     *  request's SchedScratch when one is present, engine-owned
     *  fallbacks otherwise. */
    SchedState *state = nullptr;
    std::vector<std::unique_ptr<BranchDynamics>> *dyn = nullptr;
    std::optional<SchedState> ownState;
    std::vector<std::unique_ptr<BranchDynamics>> ownDyn;
    std::vector<std::vector<int>> ownDcLate;
};

} // namespace

BalanceScheduler::BalanceScheduler(BalanceConfig config,
                                   std::string displayName)
    : cfg(std::move(config)), displayName(std::move(displayName))
{
    // The tradeoff pass consumes pairwise bounds, which only exist
    // in RC mode; make sure the toolkit computes them.
    cfg.bounds.computePairwise = cfg.useRcBounds && cfg.useTradeoff;
}

Schedule
BalanceScheduler::run(const GraphContext &ctx, const MachineModel &machine,
                      const ScheduleRequest &req) const
{
    if (!cfg.useRcBounds) {
        PerfRegion perf(PerfPhase::Balance);
        Engine engine(ctx, machine, cfg, nullptr, req);
        return engine.run();
    }
    BoundsToolkit toolkit(ctx, machine, cfg.bounds);
    return runWithToolkit(ctx, machine, toolkit, req);
}

Schedule
BalanceScheduler::runWithToolkit(const GraphContext &ctx,
                                 const MachineModel &machine,
                                 const BoundsToolkit &toolkit,
                                 const ScheduleRequest &req) const
{
    bsAssert(cfg.useRcBounds,
             "runWithToolkit only applies to RC-bound configurations");
    PerfRegion perf(PerfPhase::Balance);
    BalanceConfig effective = cfg;
    if (cfg.useTradeoff && !toolkit.pairwise()) {
        // The caller's toolkit skipped pairwise bounds; degrade
        // gracefully to the no-tradeoff configuration.
        effective.useTradeoff = false;
    }
    Engine engine(ctx, machine, effective, &toolkit, req);
    return engine.run();
}

HelpScheduler::HelpScheduler()
    : engine(
          [] {
              BalanceConfig cfg;
              cfg.useRcBounds = false;
              cfg.useHlpDel = false;
              cfg.useTradeoff = false;
              cfg.useSelection = false;
              return cfg;
          }(),
          "Help")
{
}

Schedule
HelpScheduler::run(const GraphContext &ctx, const MachineModel &machine,
                   const ScheduleRequest &req) const
{
    return engine.run(ctx, machine, req);
}

} // namespace balance
