#include "core/op_pick.hh"

#include "support/diagnostics.hh"

namespace balance
{

OpId
pickBestOp(const SchedState &state,
           const std::vector<std::unique_ptr<BranchDynamics>> &dyn,
           const std::vector<double> &weights,
           const std::vector<OpId> &candidates,
           const OpPickConfig &config, SchedulerStats *stats)
{
    bsAssert(!candidates.empty(), "no candidate operation to pick");

    OpId best = invalidOp;
    double bestPriority = 0.0;
    int bestHelped = 0;
    int bestLate = 0;

    for (OpId v : candidates) {
        double priority = 0.0;
        int helped = 0;
        int minLate = lateUnconstrained;
        for (std::size_t bi = 0; bi < dyn.size(); ++bi) {
            const BranchDynamics &d = *dyn[bi];
            if (d.retired())
                continue;
            if (stats)
                ++stats->loopTrips;
            if (d.helps(state, v)) {
                priority += weights[bi];
                ++helped;
            } else if (config.useHlpDel && d.wastes(state, v)) {
                priority -= weights[bi];
            }
            if (d.inClosure(v))
                minLate = std::min(minLate, d.lateOf(v));
        }

        bool better;
        if (best == invalidOp) {
            better = true;
        } else if (priority != bestPriority) {
            better = priority > bestPriority;
        } else if (helped != bestHelped) {
            better = helped > bestHelped;
        } else if (minLate != bestLate) {
            better = minLate < bestLate;
        } else {
            better = v < best; // final tie-break: program order
        }
        if (better) {
            best = v;
            bestPriority = priority;
            bestHelped = helped;
            bestLate = minLate;
        }
    }
    return best;
}

} // namespace balance
