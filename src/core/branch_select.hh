/**
 * @file
 * Compatible-branch selection for the Balance heuristic
 * (Sections 5.3 and 5.4).
 *
 * Given each unretired branch's needs in the current scheduling
 * decision — NeedEach (dependence-critical operations that must all
 * issue this cycle) and NeedOne per resource pool (one member of the
 * tightest zero-empty ERC) — branches are admitted one at a time in
 * priority order while their needs stay jointly satisfiable:
 * TakeEach accumulates the union of dependence needs, and TakeOne
 * per pool narrows to the intersection of resource needs.
 *
 * The pairwise tradeoff pass then revises the outcomes: a delayed
 * branch whose pairwise-optimal issue is late anyway becomes
 * "delayedOK", and when the pairwise bound says the selected branch
 * should have yielded instead, the processing order is swapped and
 * the selection re-run. The selection with the highest rank
 * (selected + delayedOK - delayed, weighted) wins.
 */

#ifndef BALANCE_CORE_BRANCH_SELECT_HH
#define BALANCE_CORE_BRANCH_SELECT_HH

#include <vector>

#include "bounds/pairwise.hh"
#include "core/branch_dynamics.hh"
#include "core/sched_state.hh"

namespace balance
{

/** The needs of one branch in the current decision (Section 5.2). */
struct BranchNeeds
{
    int branchIdx = -1;   //!< position in sb().branches()
    double weight = 0.0;  //!< steering weight (exit probability)
    int dynEarly = 0;     //!< current dynamic bound on the branch
    /** Dependence needs: every one must issue this cycle. */
    std::vector<OpId> needEach;
    /** Resource needs per pool: one member must be picked now. */
    std::vector<std::vector<OpId>> needOne;

    /** @return true when the branch needs anything at all. */
    bool hasNeeds() const;
};

/** Outcome of a branch in one selection (Section 5.4). */
enum class BranchOutcome
{
    Selected,  //!< needs are jointly satisfied
    Delayed,   //!< has needs that the selection does not satisfy
    DelayedOk, //!< delayed, but the pairwise tradeoff favors it
    Ignored,   //!< has no needs this decision
};

/** Result of one (possibly reordered) selection. */
struct SelectionResult
{
    /** Outcome per entry of the needs vector. */
    std::vector<BranchOutcome> outcome;
    /** Union of selected branches' dependence needs. */
    std::vector<OpId> takeEach;
    /** Per-pool intersection of selected branches' resource needs. */
    std::vector<std::vector<OpId>> takeOne;
    /** Weighted rank of this selection. */
    double rank = 0.0;

    /** @return takeEach plus all takeOne members, deduplicated. */
    std::vector<OpId> candidateOps() const;

    /** @return true when neither takeEach nor takeOne constrain. */
    bool unconstrained() const;
};

/**
 * One selection pass in the given processing order (Fig. 7).
 *
 * @param state Scheduling state (readiness and free slots).
 * @param needs Per-branch needs.
 * @param order Indices into @p needs, highest priority first.
 */
SelectionResult selectPass(const SchedState &state,
                           const std::vector<BranchNeeds> &needs,
                           const std::vector<int> &order);

/** Inputs enabling the Section 5.4 tradeoff revision. */
struct TradeoffInputs
{
    /** Pairwise bounds; null disables the tradeoff pass. */
    const PairwiseBounds *pairwise = nullptr;
    /** Static EarlyRC per operation. */
    const std::vector<int> *earlyRC = nullptr;
    /** Branch operation ids, branch order. */
    const Superblock *sb = nullptr;
    /** Reorder attempts before keeping the best selection. */
    int maxReorders = 3;
};

/**
 * Optional observability record of one selectCompatibleBranches call
 * (filled only when the Balance decision log is active). The notes
 * belong to the *winning* selection; reorders counts the swap rounds
 * actually executed. Never read back into scheduling decisions.
 */
struct SelectionDebug
{
    /** One delayedOK grant of the winning selection. */
    struct Note
    {
        int delayedBranch = -1; //!< branchIdx revised to delayedOK
        int againstBranch = -1; //!< selected branchIdx justifying it
        int pairBound = 0;      //!< its pairwise-optimal issue cycle
        int staticEarly = 0;    //!< its static EarlyRC
        int dynEarly = 0;       //!< its dynamic bound at this step
    };

    std::vector<Note> notes;
    int reorders = 0;
};

/**
 * Full Section 5.3 + 5.4 selection: initial order by decreasing
 * weight, tradeoff-driven reordering, best rank wins.
 *
 * @param debug Optional observability record; filling it does not
 *        change the returned selection.
 */
SelectionResult selectCompatibleBranches(const SchedState &state,
                                         const std::vector<BranchNeeds>
                                             &needs,
                                         const TradeoffInputs &tradeoff,
                                         SchedulerStats *stats = nullptr,
                                         SelectionDebug *debug = nullptr);

} // namespace balance

#endif // BALANCE_CORE_BRANCH_SELECT_HH
