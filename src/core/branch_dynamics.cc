#include "core/branch_dynamics.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace balance
{

BranchDynamics::BranchDynamics(const GraphContext &ctx,
                               const MachineModel &machine, int branchIdx,
                               const std::vector<int> &staticEarly,
                               const std::vector<int> &staticLate)
    : ctx(&ctx), machine(&machine), branchIdx(branchIdx),
      branch(ctx.sb().branches()[std::size_t(branchIdx)]),
      staticEarly(&staticEarly), staticLate(&staticLate),
      closure(&ctx.closureOps(branchIdx)),
      member(std::size_t(ctx.sb().numOps()), 0),
      early(std::size_t(ctx.sb().numOps()), 0),
      late(std::size_t(ctx.sb().numOps()), lateUnconstrained),
      ercs(std::size_t(machine.numResources())),
      latesByPool(std::size_t(machine.numResources()))
{
    for (OpId v : *closure)
        member[std::size_t(v)] = 1;
}

void
BranchDynamics::rebind(const GraphContext &ctx,
                       const MachineModel &machine, int branchIdx,
                       const std::vector<int> &staticEarly,
                       const std::vector<int> &staticLate)
{
    this->ctx = &ctx;
    this->machine = &machine;
    this->branchIdx = branchIdx;
    branch = ctx.sb().branches()[std::size_t(branchIdx)];
    this->staticEarly = &staticEarly;
    this->staticLate = &staticLate;
    closure = &ctx.closureOps(branchIdx);
    member.assign(std::size_t(ctx.sb().numOps()), 0);
    early.assign(std::size_t(ctx.sb().numOps()), 0);
    late.assign(std::size_t(ctx.sb().numOps()), lateUnconstrained);
    anchor = 0;
    ercs.resize(std::size_t(machine.numResources()));
    for (auto &list : ercs)
        list.clear();
    latesByPool.resize(std::size_t(machine.numResources()));
    for (auto &lates : latesByPool)
        lates.clear();
    isRetired = false;
    for (OpId v : *closure)
        member[std::size_t(v)] = 1;
}

void
BranchDynamics::fullUpdate(const SchedState &state, SchedulerStats *stats)
{
    if (state.isScheduled(branch)) {
        isRetired = true;
        for (auto &list : ercs)
            list.clear();
        return;
    }

    const Superblock &sb = state.sb();
    int cycle = state.cycle();

    // Step 1a: forward dynamic early over the closure.
    for (OpId v : *closure) {
        if (stats)
            ++stats->loopTrips;
        if (state.isScheduled(v)) {
            early[std::size_t(v)] = state.issueOf(v);
            continue;
        }
        int e = std::max((*staticEarly)[std::size_t(v)], cycle);
        for (const Adjacent &p : sb.preds(v)) {
            // Predecessors of closure members are closure members.
            e = std::max(e, early[std::size_t(p.op)] + p.latency);
        }
        early[std::size_t(v)] = e;
    }
    anchor = early[std::size_t(branch)];

    // Step 1b: backward dynamic late from the anchor, tightened by
    // the static (resource-aware) late times shifted to the anchor.
    int staticAnchor = (*staticEarly)[std::size_t(branch)];
    int shift = anchor - staticAnchor;
    int violation = 0;
    for (auto it = closure->rbegin(); it != closure->rend(); ++it) {
        OpId v = *it;
        if (stats)
            ++stats->loopTrips;
        int l;
        if (v == branch) {
            l = anchor;
        } else {
            l = lateUnconstrained;
            for (const Adjacent &s : sb.succs(v)) {
                if (member[std::size_t(s.op)]) {
                    l = std::min(l,
                                 late[std::size_t(s.op)] - s.latency);
                }
            }
        }
        if ((*staticLate)[std::size_t(v)] != lateUnconstrained)
            l = std::min(l, (*staticLate)[std::size_t(v)] + shift);
        late[std::size_t(v)] = l;
        if (!state.isScheduled(v))
            violation = std::max(violation, early[std::size_t(v)] - l);
    }
    if (violation > 0) {
        // Some unscheduled operation got pushed past its window: the
        // branch slips by exactly that amount.
        anchor += violation;
        for (OpId v : *closure)
            late[std::size_t(v)] += violation;
    }

    // Step 2: ERC resource delays per pool (Hu-style counting from
    // the current cycle against the remaining free slots).
    int resourceDelay = 0;
    for (auto &lates : latesByPool)
        lates.clear();
    for (OpId v : *closure) {
        if (state.isScheduled(v))
            continue;
        ResourceId r = machine->poolOf(sb.op(v).cls);
        latesByPool[std::size_t(r)].push_back(late[std::size_t(v)]);
        if (stats)
            ++stats->loopTrips;
    }
    for (int r = 0; r < machine->numResources(); ++r) {
        auto &lates = latesByPool[std::size_t(r)];
        std::sort(lates.begin(), lates.end());
        int width = machine->width(r);
        int freeNow = state.freeNow(r);
        for (std::size_t k = 0; k < lates.size(); ++k) {
            if (stats)
                ++stats->loopTrips;
            int c = lates[k];
            long long need = (long long)(k) + 1;
            long long avail =
                freeNow + (long long)(width) * (c - cycle);
            if (need > avail) {
                int d = int((need - avail + width - 1) / width);
                resourceDelay = std::max(resourceDelay, d);
            }
        }
    }

    // Step 3: commit the more constraining bound.
    if (resourceDelay > 0) {
        anchor += resourceDelay;
        for (OpId v : *closure)
            late[std::size_t(v)] += resourceDelay;
    }

    // Step 4: empty-slot counts per distinct deadline.
    for (int r = 0; r < machine->numResources(); ++r) {
        auto &lates = latesByPool[std::size_t(r)];
        auto &list = ercs[std::size_t(r)];
        list.clear();
        if (lates.empty())
            continue;
        if (resourceDelay > 0) {
            for (int &l : lates)
                l += resourceDelay;
        }
        int width = machine->width(r);
        int freeNow = state.freeNow(r);
        for (std::size_t k = 0; k < lates.size(); ++k) {
            if (stats)
                ++stats->loopTrips;
            int c = lates[k];
            bool lastWithDeadline =
                k + 1 == lates.size() || lates[k + 1] != c;
            if (!lastWithDeadline)
                continue;
            long long need = (long long)(k) + 1;
            long long avail =
                freeNow + (long long)(width) * (c - cycle);
            list.push_back({c, int(avail - need)});
        }
    }
}

bool
BranchDynamics::lightUpdateOnOp(const SchedState &state, OpId lastOp,
                                SchedulerStats *stats)
{
    if (isRetired)
        return true;
    if (lastOp == branch) {
        isRetired = true;
        return true;
    }
    const Superblock &sb = state.sb();
    ResourceId r = machine->poolOf(sb.op(lastOp).cls);
    bool isPred = member[std::size_t(lastOp)];

    if (isPred && state.issueOf(lastOp) > late[std::size_t(lastOp)]) {
        // A needed operation slipped past its window: the branch is
        // delayed and every late time moves.
        return false;
    }
    if (isPred) {
        // The static (LateRC) component of a window is an upper
        // bound on the true latest issue, so even an in-window issue
        // can push a *successor* past its window; one level of
        // look-ahead suffices because the dependence component of
        // the windows is backward-consistent (late[s] >= late[v] +
        // latency along every closure edge).
        for (const Adjacent &e : sb.succs(lastOp)) {
            if (stats)
                ++stats->loopTrips;
            if (member[std::size_t(e.op)] &&
                !state.isScheduled(e.op) &&
                state.issueOf(lastOp) + e.latency >
                    late[std::size_t(e.op)]) {
                return false;
            }
        }
    }

    for (Erc &erc : ercs[std::size_t(r)]) {
        if (stats)
            ++stats->loopTrips;
        // A predecessor inside the ERC consumes a slot *and* leaves
        // the member set, so the empty count is unchanged; any other
        // operation wastes one of the window's slots.
        bool insideErc =
            isPred && late[std::size_t(lastOp)] <= erc.deadline;
        if (!insideErc)
            --erc.empty;
        if (erc.empty < 0)
            return false;
    }
    return true;
}

bool
BranchDynamics::lightUpdateOnCycleAdvance(const SchedState &state,
                                          const std::vector<int> &lostSlots,
                                          SchedulerStats *stats)
{
    if (isRetired)
        return true;

    // Any unscheduled member with a late time before the new cycle
    // means the branch already slipped: recompute.
    for (OpId v : *closure) {
        if (stats)
            ++stats->loopTrips;
        if (!state.isScheduled(v) &&
            late[std::size_t(v)] < state.cycle()) {
            return false;
        }
    }
    for (int r = 0; r < machine->numResources(); ++r) {
        int lost = lostSlots[std::size_t(r)];
        if (lost == 0)
            continue;
        for (Erc &erc : ercs[std::size_t(r)]) {
            if (stats)
                ++stats->loopTrips;
            erc.empty -= lost;
            if (erc.empty < 0)
                return false;
        }
    }
    return true;
}

std::vector<OpId>
BranchDynamics::needEach(const SchedState &state) const
{
    std::vector<OpId> out;
    if (isRetired)
        return out;
    for (OpId v : *closure) {
        if (!state.isScheduled(v) &&
            late[std::size_t(v)] <= state.cycle()) {
            out.push_back(v);
        }
    }
    return out;
}

int
BranchDynamics::tightDeadline(const SchedState &state, ResourceId r) const
{
    // Smallest zero-empty deadline that still has an unscheduled
    // member: under light updates an ERC whose members all issued
    // keeps its (exact) empty count but imposes nothing anymore, so
    // the next tight window takes over (its members are a superset).
    for (const Erc &erc : ercs[std::size_t(r)]) {
        if (erc.empty > 0)
            continue;
        for (OpId v : *closure) {
            if (!state.isScheduled(v) &&
                machine->poolOf(state.sb().op(v).cls) == r &&
                late[std::size_t(v)] <= erc.deadline) {
                return erc.deadline;
            }
        }
    }
    return -1;
}

std::vector<OpId>
BranchDynamics::needOne(const SchedState &state, ResourceId r) const
{
    std::vector<OpId> out;
    if (isRetired)
        return out;
    // With no unit of r free in the current cycle, nothing can be
    // taken from (or wasted against) the window in this decision:
    // the constraint binds again once a slot exists.
    if (state.freeNow(r) == 0)
        return out;
    int deadline = tightDeadline(state, r);
    if (deadline < 0)
        return out;
    const Superblock &sb = state.sb();
    for (OpId v : *closure) {
        if (!state.isScheduled(v) &&
            machine->poolOf(sb.op(v).cls) == r &&
            late[std::size_t(v)] <= deadline) {
            out.push_back(v);
        }
    }
    return out;
}

bool
BranchDynamics::helps(const SchedState &state, OpId v) const
{
    if (isRetired || !member[std::size_t(v)])
        return false;
    if (late[std::size_t(v)] <= state.cycle())
        return true;
    ResourceId r = machine->poolOf(state.sb().op(v).cls);
    int deadline = tightDeadline(state, r);
    return deadline >= 0 && late[std::size_t(v)] <= deadline;
}

bool
BranchDynamics::wastes(const SchedState &state, OpId v) const
{
    if (isRetired)
        return false;
    ResourceId r = machine->poolOf(state.sb().op(v).cls);
    int deadline = tightDeadline(state, r);
    if (deadline < 0)
        return false;
    // Members of the tight ERC help; everything else of the same
    // pool burns one of the slots the branch is counting on.
    return !member[std::size_t(v)] || late[std::size_t(v)] > deadline;
}

bool
BranchDynamics::hasTightErc(const SchedState &state) const
{
    if (isRetired)
        return false;
    for (int r = 0; r < machine->numResources(); ++r) {
        if (tightDeadline(state, r) >= 0)
            return true;
    }
    return false;
}

} // namespace balance
