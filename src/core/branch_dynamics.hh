/**
 * @file
 * Per-branch dynamic bound tracking for the Balance and Help
 * heuristics (Section 5.1 and 5.2):
 *
 *  - Step 1: dynamic Early/Late over the branch's predecessor
 *    closure, seeded with static EarlyRC/LateRC (or EarlyDC/LateDC
 *    for the no-bounds ablation) and the issue times of scheduled
 *    operations;
 *  - Step 2/3: Elementary Resource Constraints (ERCs) per resource
 *    type — Hu-style deadline counting from the current cycle — and
 *    the resulting dynamic delay of the branch;
 *  - Step 4: empty-slot counts per ERC;
 *  - the need sets: NeedEach (dependence-critical in the current
 *    cycle) and NeedOne per resource (one member of the tightest
 *    zero-empty ERC).
 *
 * A cheap "light" update (resource-waste bookkeeping) replaces the
 * full recomputation whenever the branch's late information is
 * provably unchanged, exactly as described at the end of
 * Section 5.1; the caller falls back to fullUpdate() when a light
 * update reports invalidation.
 */

#ifndef BALANCE_CORE_BRANCH_DYNAMICS_HH
#define BALANCE_CORE_BRANCH_DYNAMICS_HH

#include <vector>

#include "core/sched_state.hh"
#include "graph/analysis.hh"
#include "sched/list_scheduler.hh"

namespace balance
{

/** One Elementary Resource Constraint summary. */
struct Erc
{
    int deadline = 0; //!< cycle c: members must issue by c
    int empty = 0;    //!< AvailSlot - NeedSlot over [cycle, c]
};

/** Dynamic bound state for one branch. */
class BranchDynamics
{
  public:
    /**
     * @param ctx Analysis context.
     * @param machine Resource widths.
     * @param branchIdx Position in sb().branches().
     * @param staticEarly Per-operation static early floor (EarlyRC,
     *        or EarlyDC for the ablation); must outlive this object.
     * @param staticLate Per-operation static late times for this
     *        branch, anchored at staticEarly of the branch (LateRC
     *        or anchored LateDC); lateUnconstrained outside the
     *        closure; must outlive this object.
     */
    BranchDynamics(const GraphContext &ctx, const MachineModel &machine,
                   int branchIdx, const std::vector<int> &staticEarly,
                   const std::vector<int> &staticLate);

    /**
     * Reset to the freshly-constructed state for a (possibly
     * different) context, branch, and machine, reusing the existing
     * buffers. Same parameter contract as the constructor.
     */
    void rebind(const GraphContext &ctx, const MachineModel &machine,
                int branchIdx, const std::vector<int> &staticEarly,
                const std::vector<int> &staticLate);

    /** @return the branch's operation id. */
    OpId branchOp() const { return branch; }

    /** @return the branch's index in branch order. */
    int branchIndex() const { return branchIdx; }

    /** @return true once the branch itself has been issued. */
    bool retired() const { return isRetired; }

    /** Full recomputation of Steps 1-4 from @p state. */
    void fullUpdate(const SchedState &state, SchedulerStats *stats);

    /**
     * Cheap update after @p lastOp issued in the current cycle.
     *
     * @return false when the state can no longer be maintained
     *         incrementally (branch got delayed); the caller must
     *         fullUpdate().
     */
    bool lightUpdateOnOp(const SchedState &state, OpId lastOp,
                         SchedulerStats *stats);

    /**
     * Cheap update after the scheduler moved to a new cycle and the
     * previous cycle left @p lostSlots free units per pool unused.
     *
     * @return false when a full update is required.
     */
    bool lightUpdateOnCycleAdvance(const SchedState &state,
                                   const std::vector<int> &lostSlots,
                                   SchedulerStats *stats);

    /** @return the current dynamic lower bound on the branch issue. */
    int dynEarly() const { return anchor; }

    /** @return the dynamic late time of @p v for this branch. */
    int
    lateOf(OpId v) const
    {
        return late[std::size_t(v)];
    }

    /** @return true when @p v precedes (or is) this branch. */
    bool
    inClosure(OpId v) const
    {
        return member[std::size_t(v)];
    }

    /**
     * NeedEach (Section 5.2): unscheduled closure operations whose
     * late time is at or before the current cycle. Every one of them
     * must issue in the current cycle or the branch slips.
     */
    std::vector<OpId> needEach(const SchedState &state) const;

    /**
     * NeedOne for resource pool @p r: the members of the tightest
     * zero-empty ERC, of which one must be chosen in the current
     * scheduling decision. Empty when no ERC of @p r is tight.
     */
    std::vector<OpId> needOne(const SchedState &state,
                              ResourceId r) const;

    /**
     * @return true when some pool has a tight (zero-empty) ERC with
     *         at least one unscheduled member.
     */
    bool hasTightErc(const SchedState &state) const;

    /**
     * Speculative-Hedge help test (Section 5.5): @p v helps this
     * branch when it is dependence-critical (late at or before the
     * current cycle) or a member of a tight ERC of its pool.
     */
    bool helps(const SchedState &state, OpId v) const;

    /**
     * Observation 1: @p v indirectly delays this branch when its
     * pool has a tight ERC but @p v is not one of the needed
     * members — issuing it wastes a critical slot.
     */
    bool wastes(const SchedState &state, OpId v) const;

    /** @return the ERC summaries for pool @p r (sorted by deadline). */
    const std::vector<Erc> &
    ercsOf(ResourceId r) const
    {
        return ercs[std::size_t(r)];
    }

  private:
    /**
     * Deadline of the tightest zero-empty ERC of @p r that still has
     * an unscheduled member, or -1.
     */
    int tightDeadline(const SchedState &state, ResourceId r) const;

    const GraphContext *ctx;
    const MachineModel *machine;
    int branchIdx;
    OpId branch;
    const std::vector<int> *staticEarly;
    const std::vector<int> *staticLate;

    /** Closure members, ascending; owned by the GraphContext cache. */
    const std::vector<OpId> *closure = nullptr;
    std::vector<char> member;       //!< closure membership per op
    std::vector<int> early;         //!< dynamic early per op
    std::vector<int> late;          //!< dynamic late per op
    int anchor = 0;                 //!< dynamic early of the branch
    std::vector<std::vector<Erc>> ercs; //!< per pool, sorted by c
    /** Step 2 scratch: per-pool late times, reused across updates. */
    std::vector<std::vector<int>> latesByPool;
    bool isRetired = false;
};

} // namespace balance

#endif // BALANCE_CORE_BRANCH_DYNAMICS_HH
