/**
 * @file
 * The engine's data-parallel kernels behind one dispatch table.
 *
 * Every SIMD-accelerated inner loop in the bound and scheduler
 * engines goes through a SimdKernels function pointer: the pair and
 * triple sweep compositions, the relaxation table's epoch window
 * scan, the priority-key mapping and blending of the Best combo
 * grid, and the pending-promotion compare of the greedy core. The
 * scalar table below is the reference semantics — plain loops,
 * always compiled — and the AVX2/NEON tables (built per
 * cmake/enable_intrinsics.cmake) must match it bit for bit on every
 * input; tests/support/simd_test.cc and the golden engine tests pin
 * that.
 *
 * Determinism contract (docs/PERFORMANCE.md, "SIMD kernels"):
 *  - integer kernels are min/max/add/compare sweeps whose reductions
 *    are associative, so lane order cannot change results;
 *  - floating-point kernels are purely elementwise with a fixed
 *    association order, (a*cp + b*sr) + c*dh, and the build disables
 *    FP contraction globally, so no path fuses a mul/add pair the
 *    others keep separate;
 *  - the double -> u64 sort-key map is strictly monotone (descending)
 *    after canonicalizing -0.0 via x + 0.0, so sorting the mapped
 *    keys ascending is exactly the (priority desc, id asc) order the
 *    old gather comparator produced. NaN priorities are excluded by
 *    construction (keys are finite sums of finite tables).
 *
 * Dispatch: simdKernels() resolves once per process — the widest
 * table the CPU supports, unless the BALANCE_SIMD environment
 * variable ("scalar", "off", or "0") or forceScalarSimdKernels()
 * demands the scalar fallback. Hot loops fetch the table once per
 * call, not per element.
 */

#ifndef BALANCE_SUPPORT_SIMD_KERNELS_HH
#define BALANCE_SUPPORT_SIMD_KERNELS_HH

#include <bit>
#include <cstdint>

namespace balance
{

/** Which kernel table is active (telemetry / test assertions). */
enum class SimdLevel
{
    Scalar = 0,
    Avx2,
    Neon,
};

/** Reductions of one pair/triple composition pass. */
struct ComposeResult
{
    int cp = 0;     //!< composed critical path
    int minKey = 0; //!< min over emitted keys and 0
    int maxKey = 0; //!< max over emitted keys and 0
};

/**
 * The kernel table. All pointers are non-null in every table; the
 * scalar table is the semantic reference for each entry.
 */
struct SimdKernels
{
    SimdLevel level = SimdLevel::Scalar;
    const char *name = "scalar";

    /**
     * Pair-sweep composition (PairSweepCache::eval): per member m,
     *   h      = hi[m] >= 0 ? max(hSink[m], hi[m] + latency) : hSink[m]
     *   keys[m] = min(-h, relLate[m])
     * reducing cp = max(cp0, max_m early[m] + h) and the min/max of
     * keys[m] against 0.
     */
    ComposeResult (*pairCompose)(const int *hSink, const int *hi,
                                 const int *early, const int *relLate,
                                 int *keys, int n, int latency, int cp0);

    /**
     * Triple-sweep composition (TripleSweepCache::eval): per member,
     *   hjNew = hi[m] >= 0 ? max(hj[m], hi[m] + a) : hj[m]
     *   h     = hjNew >= 0 ? max(hSink[m], hjNew + jToK) : hSink[m]
     * then keys/cp/min/max as pairCompose.
     */
    ComposeResult (*tripleCompose)(const int *hSink, const int *hi,
                                   const int *hj, const int *early,
                                   const int *relLate, int *keys, int n,
                                   int a, int jToK, int cp0);

    /**
     * Relaxation epoch scan (RelaxTable::place): index of the first
     * cycle in [0, count) that is NOT full — stamp[i] != epoch or
     * fill[i] < width — or -1 when all are full. The index equals the
     * popcount of the full-mask bits below it, which is exactly the
     * probe-loop trip count the naive greedy would have burned before
     * landing (Table 2 reconstruction).
     */
    int (*epochScanFirstFree)(const std::uint32_t *stamp,
                              const int *fill, std::uint32_t epoch,
                              int width, int count);

    /** Blend the grid keys: out[i] = (a*cp[i] + b*sr[i]) + c*dh[i]. */
    void (*blendKeys)(double a, const double *cp, double b,
                      const double *sr, double c, const double *dh,
                      double *out, int n);

    /** Map priorities to descending-order u64 sort keys. */
    void (*mapKeysDesc)(const double *pri, std::uint64_t *out, int n);

    /** Fused blendKeys + mapKeysDesc (the grid's per-point pass). */
    void (*blendMapKeysDesc)(double a, const double *cp, double b,
                             const double *sr, double c,
                             const double *dh, std::uint64_t *out,
                             int n);

    /**
     * Pending-promotion compare (rankedCore): set bit i of words iff
     * vals[i] <= threshold; clear all tail bits up to the word
     * boundary. words has (n + 63) / 64 entries.
     */
    void (*maskLE)(const int *vals, int threshold,
                   std::uint64_t *words, int n);
};

namespace detail
{

/**
 * The double -> u64 descending order map shared by every table:
 * strictly monotone (x < y implies key(x) > key(y)) over all finite
 * doubles and infinities, with -0.0 canonicalized to +0.0 by the
 * x + 0.0 (exact for every other value). Sorting keys ascending
 * therefore equals sorting priorities descending, with exactly the
 * same tie classes as operator== on the doubles.
 */
inline std::uint64_t
orderKeyDesc(double x)
{
    std::uint64_t bits = std::bit_cast<std::uint64_t>(x + 0.0);
    std::uint64_t asc = (bits & (std::uint64_t(1) << 63))
                            ? ~bits
                            : bits | (std::uint64_t(1) << 63);
    return ~asc;
}

/** Scalar pairCompose body for one member (shared tail code). */
inline int
pairComposeOne(int hSink, int hi, int latency)
{
    int h = hSink;
    if (hi >= 0)
        h = h > hi + latency ? h : hi + latency;
    return h;
}

/** Scalar tripleCompose body for one member (shared tail code). */
inline int
tripleComposeOne(int hSink, int hi, int hj, int a, int jToK)
{
    int hjNew = hj;
    if (hi >= 0)
        hjNew = hjNew > hi + a ? hjNew : hi + a;
    int h = hSink;
    if (hjNew >= 0)
        h = h > hjNew + jToK ? h : hjNew + jToK;
    return h;
}

} // namespace detail

/** The portable reference table (plain loops, always compiled). */
const SimdKernels &scalarSimdKernels();

/**
 * The table every engine loop should use: the widest implementation
 * this process may run, resolved once (CPUID + BALANCE_SIMD
 * environment override + forceScalarSimdKernels).
 */
const SimdKernels &simdKernels();

/**
 * Test/tool hook: pin dispatch to the scalar table (true) or return
 * to automatic resolution (false). Takes effect on the next
 * simdKernels() call; not meant to be raced against running kernels.
 */
void forceScalarSimdKernels(bool on);

} // namespace balance

#endif // BALANCE_SUPPORT_SIMD_KERNELS_HH
