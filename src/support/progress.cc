#include "support/progress.hh"

#include <bit>

#include "support/json.hh"

namespace balance
{

namespace
{

/** Bit-cast helpers so doubles travel through one atomic word. */
std::uint64_t
doubleBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
doubleFromBits(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

} // namespace

PhaseProgress &
ProgressTracker::phase(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &p : phases) {
        if (p->id == name)
            return *p;
    }
    phases.push_back(std::unique_ptr<PhaseProgress>(
        new PhaseProgress(std::string(name))));
    return *phases.back();
}

void
ProgressTracker::publishBnb(long long nodesExpanded,
                            long long nodesDelta, long long rounds,
                            double incumbent, double floor,
                            bool searchDone)
{
    bnbNodes.store(nodesExpanded, std::memory_order_relaxed);
    bnbNodesTotal.fetch_add(nodesDelta, std::memory_order_relaxed);
    bnbRounds.store(rounds, std::memory_order_relaxed);
    bnbIncumbentBits.store(doubleBits(incumbent),
                           std::memory_order_relaxed);
    bnbFloorBits.store(doubleBits(floor), std::memory_order_relaxed);
    if (searchDone)
        bnbSearches.fetch_add(1, std::memory_order_relaxed);
}

BnbProgress
ProgressTracker::bnbProgress() const
{
    BnbProgress out;
    out.searches = bnbSearches.load(std::memory_order_relaxed);
    out.rounds = bnbRounds.load(std::memory_order_relaxed);
    out.nodesExpanded = bnbNodes.load(std::memory_order_relaxed);
    out.nodesTotal = bnbNodesTotal.load(std::memory_order_relaxed);
    out.incumbent =
        doubleFromBits(bnbIncumbentBits.load(std::memory_order_relaxed));
    out.certifiedFloor =
        doubleFromBits(bnbFloorBits.load(std::memory_order_relaxed));
    return out;
}

void
ProgressTracker::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mutex);
    w.beginObject();
    w.key("enabled").value(enabled());
    w.key("phases").beginArray();
    for (const auto &p : phases) {
        w.beginObject()
            .key("name").value(p->id)
            .key("total").value(p->total())
            .key("done").value(p->done())
            .key("starts").value(p->starts())
            .key("active").value(p->active())
            .endObject();
    }
    w.endArray();
    BnbProgress bnb = bnbProgress();
    w.key("bnb").beginObject()
        .key("searches").value(bnb.searches)
        .key("rounds").value(bnb.rounds)
        .key("nodes_expanded").value(bnb.nodesExpanded)
        .key("nodes_total").value(bnb.nodesTotal)
        .key("incumbent").value(bnb.incumbent)
        .key("certified_floor").value(bnb.certifiedFloor);
    double gap = (bnb.incumbent >= 0.0 && bnb.certifiedFloor >= 0.0)
        ? bnb.incumbent - bnb.certifiedFloor
        : -1.0;
    w.key("certified_gap").value(gap);
    w.endObject();
    w.endObject();
}

std::string
ProgressTracker::snapshotJson() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

void
ProgressTracker::reset()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &p : phases) {
        p->totalItems.store(0, std::memory_order_relaxed);
        p->doneItems.store(0, std::memory_order_relaxed);
        p->generation.store(0, std::memory_order_relaxed);
        p->running.store(false, std::memory_order_relaxed);
    }
    bnbSearches.store(0, std::memory_order_relaxed);
    bnbRounds.store(0, std::memory_order_relaxed);
    bnbNodes.store(0, std::memory_order_relaxed);
    bnbNodesTotal.store(0, std::memory_order_relaxed);
    bnbIncumbentBits.store(doubleBits(-1.0),
                           std::memory_order_relaxed);
    bnbFloorBits.store(doubleBits(-1.0), std::memory_order_relaxed);
}

ProgressTracker &
ProgressTracker::global()
{
    static ProgressTracker *tracker = new ProgressTracker();
    return *tracker;
}

} // namespace balance
