/**
 * @file
 * Minimal JSON emission and validation for machine-readable bench
 * and tool output (BENCH_bounds.json). Deliberately tiny: a writer
 * that tracks nesting and commas, and a validator that checks
 * well-formedness without building a document tree. Not a general
 * JSON library — no parsing into values, no unicode validation
 * beyond structural escapes.
 */

#ifndef BALANCE_SUPPORT_JSON_HH
#define BALANCE_SUPPORT_JSON_HH

#include <string>
#include <string_view>

namespace balance
{

/**
 * Streaming JSON writer. Commas and key/value separators are
 * inserted automatically; calls must still nest correctly (the
 * writer asserts on gross misuse like value() at the top level after
 * the document is complete).
 *
 * @code
 *   JsonWriter w;
 *   w.beginObject().key("runs").beginArray();
 *   w.beginObject().key("name").value("pw").key("ms").value(1.25)
 *       .endObject();
 *   w.endArray().endObject();
 *   writeFile(path, w.str());
 * @endcode
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next call must produce its value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(long long v);
    JsonWriter &value(int v) { return value((long long)(v)); }
    JsonWriter &value(bool v);

    /** @return the document text. */
    const std::string &str() const { return out; }

  private:
    void separator();
    void raw(std::string_view text);
    void quoted(std::string_view v);

    std::string out;
    /** Nesting stack: 'o' = object, 'a' = array. */
    std::string stack;
    /** Whether the current container already has an element. */
    std::string hasElem;
    bool expectValue = false;
};

/**
 * Structural validation: @return true when @p text is exactly one
 * well-formed JSON value (objects, arrays, strings, numbers,
 * true/false/null) with nothing but whitespace around it.
 */
bool jsonLooksValid(std::string_view text);

} // namespace balance

#endif // BALANCE_SUPPORT_JSON_HH
