/**
 * @file
 * JSON emission, validation, and parsing for machine-readable bench
 * and tool output (metrics snapshots, BENCH_bounds.json, decision
 * logs, trace files, run manifests). Three pieces:
 *
 *  - JsonWriter: a streaming writer that tracks nesting and commas;
 *  - jsonLooksValid: structural validation without building a tree;
 *  - JsonValue / parseJson: an owning document tree with precise
 *    error positions, for the report subsystem that reads the
 *    artifacts back (src/report, docs/REPORTING.md).
 *
 * Text encoding: strings are UTF-8. The parser decodes every \uXXXX
 * escape — including surrogate pairs — to UTF-8 bytes (lone or
 * malformed surrogates are a parse error), and the writer escapes
 * every non-ASCII code point back to \uXXXX form, so emitted
 * documents are pure ASCII and therefore always valid UTF-8, and a
 * parse → dump round trip of a document using lowercase \u escapes
 * reproduces the original bytes (docs/REPORTING.md).
 */

#ifndef BALANCE_SUPPORT_JSON_HH
#define BALANCE_SUPPORT_JSON_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace balance
{

/**
 * Streaming JSON writer. Commas and key/value separators are
 * inserted automatically; calls must still nest correctly (the
 * writer asserts on gross misuse like value() at the top level after
 * the document is complete).
 *
 * @code
 *   JsonWriter w;
 *   w.beginObject().key("runs").beginArray();
 *   w.beginObject().key("name").value("pw").key("ms").value(1.25)
 *       .endObject();
 *   w.endArray().endObject();
 *   writeFile(path, w.str());
 * @endcode
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next call must produce its value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(long long v);
    JsonWriter &value(int v) { return value((long long)(v)); }
    JsonWriter &value(bool v);

    /** Emit a JSON null. */
    JsonWriter &null();

    /** @return the document text. */
    const std::string &str() const { return out; }

  private:
    void separator();
    void raw(std::string_view text);
    void quoted(std::string_view v);

    std::string out;
    /** Nesting stack: 'o' = object, 'a' = array. */
    std::string stack;
    /** Whether the current container already has an element. */
    std::string hasElem;
    bool expectValue = false;
};

/**
 * Structural validation: @return true when @p text is exactly one
 * well-formed JSON value (objects, arrays, strings, numbers,
 * true/false/null) with nothing but whitespace around it.
 */
bool jsonLooksValid(std::string_view text);

/**
 * An owning JSON document tree. Numbers keep their integral identity:
 * a token with no fraction or exponent that fits int64 parses as
 * Int (asDouble() still converts), everything else as Double —
 * counters and trip totals round-trip bit for bit.
 *
 * Object member order is preserved exactly as written, so a
 * parse → write round trip of any document this repo emits
 * reproduces the original bytes (pinned by json_parser_test).
 *
 * Accessors panic (bsAssert) on kind mismatch; use the is*() tests
 * or find() when the shape is not guaranteed.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    /** Ordered object members (duplicate keys are a parse error). */
    using Members = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() = default; //!< null

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool v);
    static JsonValue makeInt(long long v);
    static JsonValue makeDouble(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray();
    static JsonValue makeObject();

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isBool() const { return k == Kind::Bool; }
    bool isInt() const { return k == Kind::Int; }
    bool isNumber() const { return k == Kind::Int || k == Kind::Double; }
    bool isString() const { return k == Kind::String; }
    bool isArray() const { return k == Kind::Array; }
    bool isObject() const { return k == Kind::Object; }

    /** @return the boolean payload (panics unless Bool). */
    bool asBool() const;

    /** @return the integral payload (panics unless Int). */
    long long asInt() const;

    /** @return the numeric payload (panics unless Int or Double). */
    double asDouble() const;

    /** @return the string payload (panics unless String). */
    const std::string &asString() const;

    /** @return element / member count (panics unless a container). */
    std::size_t size() const;

    /** @return array element @p i (panics unless Array, in range). */
    const JsonValue &at(std::size_t i) const;

    /** @return the array elements (panics unless Array). */
    const std::vector<JsonValue> &elements() const;

    /** @return ordered object members (panics unless Object). */
    const Members &members() const;

    /** @return the member named @p key, or null when absent. */
    const JsonValue *find(std::string_view key) const;

    /** @return the member named @p key (panics when absent). */
    const JsonValue &get(std::string_view key) const;

    /** Append @p v to an Array (panics unless Array). */
    JsonValue &append(JsonValue v);

    /**
     * Set (insert or overwrite) object member @p key. Tooling hook:
     * the compare tests use this to tamper counters in a snapshot.
     * @return the stored value.
     */
    JsonValue &set(std::string_view key, JsonValue v);

    /** Deep structural equality (Int 3 != Double 3.0). */
    bool operator==(const JsonValue &other) const;

    /** Serialize this tree through @p w. */
    void write(JsonWriter &w) const;

    /** @return the serialized document text. */
    std::string dump() const;

  private:
    Kind k = Kind::Null;
    bool b = false;
    long long i = 0;
    double d = 0.0;
    std::string s;
    std::vector<JsonValue> arr;
    Members obj;
};

/** Where and why a parse failed. */
struct JsonParseError
{
    std::string message;    //!< empty = no error
    std::size_t offset = 0; //!< byte offset into the input
    int line = 1;           //!< 1-based line of the offset
    int column = 1;         //!< 1-based column of the offset

    /** @return "line L, column C: message". */
    std::string describe() const;
};

/** Result of parseJson: a value, or a position-accurate error. */
struct JsonParseResult
{
    JsonValue value;
    JsonParseError error;

    bool ok() const { return error.message.empty(); }
};

/**
 * Parse exactly one JSON document (trailing whitespace allowed,
 * trailing content is an error). Duplicate object keys and nesting
 * deeper than @p maxDepth are rejected.
 */
JsonParseResult parseJson(std::string_view text, int maxDepth = 256);

/**
 * Parse a JSON-lines document (one value per non-empty line, e.g.
 * the Balance decision log). Stops at the first malformed line; the
 * error's line number is absolute within @p text.
 *
 * @param text The full JSON-lines payload.
 * @param error Filled on failure (message empty on success).
 * @return the values parsed so far (complete on success).
 */
std::vector<JsonValue> parseJsonLines(std::string_view text,
                                      JsonParseError *error = nullptr);

} // namespace balance

#endif // BALANCE_SUPPORT_JSON_HH
