/**
 * @file
 * A compact dynamic bitset used for transitive-predecessor masks and
 * operation subsets in subgraph-rooted bound computations.
 *
 * std::vector<bool> lacks word-level union/intersection and popcount;
 * std::bitset needs a compile-time size. Superblocks in this library
 * hold up to a few hundred operations, so a small vector of 64-bit
 * words with explicit bulk operations is both fast and simple.
 */

#ifndef BALANCE_SUPPORT_BITSET_HH
#define BALANCE_SUPPORT_BITSET_HH

#include <cstdint>
#include <cstddef>
#include <vector>

#include "support/diagnostics.hh"

namespace balance
{

/**
 * Fixed-universe dynamic bitset over [0, size()).
 *
 * All binary operations require both operands to share the same
 * universe size; this is asserted, not resized, because mixing masks
 * from different superblocks is always a bug.
 */
class DynBitset
{
  public:
    DynBitset() = default;

    /** Create an all-clear set over a universe of @p n elements. */
    explicit DynBitset(std::size_t n)
        : numBits(n), words((n + 63) / 64, 0)
    {}

    /** @return the universe size (not the population count). */
    std::size_t size() const { return numBits; }

    /** @return true when no bit is set. */
    bool empty() const;

    /** Set bit @p i. */
    void
    set(std::size_t i)
    {
        bsAssert(i < numBits, "bit ", i, " out of range ", numBits);
        words[i >> 6] |= (std::uint64_t{1} << (i & 63));
    }

    /** Clear bit @p i. */
    void
    reset(std::size_t i)
    {
        bsAssert(i < numBits, "bit ", i, " out of range ", numBits);
        words[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    /** @return the value of bit @p i. */
    bool
    test(std::size_t i) const
    {
        bsAssert(i < numBits, "bit ", i, " out of range ", numBits);
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    /** Clear every bit, keeping the universe size. */
    void clearAll();

    /** Set every bit in the universe. */
    void setAll();

    /** @return the number of set bits. */
    std::size_t count() const;

    /** In-place union with @p other (same universe required). */
    DynBitset &operator|=(const DynBitset &other);

    /** In-place intersection with @p other (same universe required). */
    DynBitset &operator&=(const DynBitset &other);

    /** In-place difference: clear the bits set in @p other. */
    DynBitset &subtract(const DynBitset &other);

    /** @return true when this set and @p other share at least one bit. */
    bool intersects(const DynBitset &other) const;

    /** @return true when every bit of this set is also in @p other. */
    bool isSubsetOf(const DynBitset &other) const;

    bool operator==(const DynBitset &other) const;

    /**
     * @return the index of the first set bit at or after @p from,
     *         or size() when none exists.
     */
    std::size_t findFirst(std::size_t from = 0) const;

    /** Collect the indices of all set bits in increasing order. */
    std::vector<std::uint32_t> toIndices() const;

    /**
     * Visit each set bit in increasing order.
     *
     * @param fn Callable taking the bit index as std::size_t.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t w = 0; w < words.size(); ++w) {
            std::uint64_t bits = words[w];
            while (bits) {
                unsigned tz = __builtin_ctzll(bits);
                fn(w * 64 + tz);
                bits &= bits - 1;
            }
        }
    }

  private:
    std::size_t numBits = 0;
    std::vector<std::uint64_t> words;
};

/** Out-of-place union. */
DynBitset operator|(DynBitset lhs, const DynBitset &rhs);

/** Out-of-place intersection. */
DynBitset operator&(DynBitset lhs, const DynBitset &rhs);

} // namespace balance

#endif // BALANCE_SUPPORT_BITSET_HH
