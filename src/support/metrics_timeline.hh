/**
 * @file
 * Periodic MetricRegistry snapshots appended as a JSONL time-series
 * (docs/OBSERVABILITY.md): one line per sample,
 *
 *   {"seq":N,"elapsed_ms":E,"metrics":{...snapshotJson()...}}
 *
 * driven by --metrics-interval on the bench binaries (sampling the
 * global registry next to --metrics-out) and by `report_tool run
 * --metrics-interval` (sampling captureRun's local registry into a
 * manifest-bound metrics.timeline.jsonl). The sampler thread only
 * ever *reads* the registry — the same snapshot path /metrics
 * scrapes — so a timeline run's other artifacts are byte-identical
 * to a run without it.
 *
 * Samples taken mid-run observe the registry's live (monotone,
 * relaxed-atomic) values; the final sample, written by stop(), is
 * taken after the owner has quiesced and therefore matches the
 * at-exit snapshot exactly.
 */

#ifndef BALANCE_SUPPORT_METRICS_TIMELINE_HH
#define BALANCE_SUPPORT_METRICS_TIMELINE_HH

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

namespace balance
{

class MetricRegistry;

/** The periodic sampler (see file comment). */
class MetricsTimeline
{
  public:
    /**
     * Open @p path (truncating) and start sampling @p reg every
     * @p intervalMs milliseconds. The registry must outlive this
     * object. Panics when the file cannot be opened.
     */
    MetricsTimeline(const MetricRegistry &reg, std::string path,
                    long long intervalMs);

    /** stop()s if still running. */
    ~MetricsTimeline();

    MetricsTimeline(const MetricsTimeline &) = delete;
    MetricsTimeline &operator=(const MetricsTimeline &) = delete;

    /**
     * Stop the sampler thread, write one final sample, and flush.
     * Idempotent (the TelemetryFlusher and the destructor may both
     * call it).
     */
    void stop();

    /** @return samples written so far (tests). */
    long long samplesWritten() const;

  private:
    void writeSample();

    const MetricRegistry &registry;
    std::string outPath;
    long long interval;
    std::ofstream out;
    mutable std::mutex mutex;
    std::condition_variable cv;
    bool stopping = false;
    bool stopped = false;
    long long samples = 0;
    std::chrono::steady_clock::time_point epoch;
    std::thread worker;
};

} // namespace balance

#endif // BALANCE_SUPPORT_METRICS_TIMELINE_HH
