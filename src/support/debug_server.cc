#include "support/debug_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "support/http.hh"
#include "support/metrics.hh"
#include "support/perf_counters.hh"
#include "support/progress.hh"
#include "support/prometheus.hh"
#include "support/trace.hh"

namespace balance
{

DebugServer::~DebugServer() { stop(); }

std::string
DebugServer::handlePath(const std::string &path, int &status,
                        std::string &contentType)
{
    status = 200;
    contentType = "text/plain; charset=utf-8";
    if (path == "/healthz")
        return "ok\n";
    if (path == "/metrics") {
        contentType = "text/plain; version=0.0.4; charset=utf-8";
        return renderPrometheusText(MetricRegistry::global());
    }
    if (path == "/progress") {
        contentType = "application/json";
        return ProgressTracker::global().snapshotJson();
    }
    if (path == "/trace") {
        contentType = "application/json";
        return TraceSession::global().toJson();
    }
    if (path == "/hwcounters") {
        contentType = "application/json";
        return PerfProfiler::global().snapshot().toJson();
    }
    status = 404;
    return "not found\n";
}

bool
DebugServer::start(const DebugServerOptions &opts)
{
    if (running.load(std::memory_order_acquire))
        return false;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "debug-server: socket failed: %s\n",
                     std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
    if (::inet_pton(AF_INET, opts.bindAddress.c_str(), &addr.sin_addr) !=
        1) {
        std::fprintf(stderr, "debug-server: bad bind address '%s'\n",
                     opts.bindAddress.c_str());
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        std::fprintf(stderr, "debug-server: bind to %s:%d failed: %s\n",
                     opts.bindAddress.c_str(), opts.port,
                     std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (::listen(fd, 64) < 0) {
        std::fprintf(stderr, "debug-server: listen failed: %s\n",
                     std::strerror(errno));
        ::close(fd);
        return false;
    }

    sockaddr_in bound{};
    socklen_t boundLen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &boundLen) < 0) {
        std::fprintf(stderr, "debug-server: getsockname failed: %s\n",
                     std::strerror(errno));
        ::close(fd);
        return false;
    }

    listenFd = fd;
    boundPort = int(ntohs(bound.sin_port));
    boundAddress =
        "http://" + opts.bindAddress + ":" + std::to_string(boundPort);
    maxQueue = opts.maxQueue > 0 ? opts.maxQueue : 1;
    recvTimeoutMs = opts.recvTimeoutMs;
    stopping.store(false, std::memory_order_release);
    running.store(true, std::memory_order_release);

    // /progress is only useful with the tracker publishing.
    ProgressTracker::global().enable();

    acceptor = std::thread([this] { acceptLoop(); });
    int nHandlers = opts.handlerThreads > 0 ? opts.handlerThreads : 1;
    handlers.reserve(std::size_t(nHandlers));
    for (int i = 0; i < nHandlers; ++i)
        handlers.emplace_back([this] { handlerLoop(); });

    std::printf("debug-server: listening on %s\n", boundAddress.c_str());
    std::fflush(stdout);
    return true;
}

void
DebugServer::stop()
{
    if (!running.exchange(false, std::memory_order_acq_rel))
        return;
    {
        // The store must happen under the queue mutex: a handler
        // that has checked the wait predicate but not yet blocked
        // would otherwise miss this notification forever.
        std::lock_guard<std::mutex> lock(queueMutex);
        stopping.store(true, std::memory_order_release);
    }
    queueCv.notify_all();
    if (acceptor.joinable())
        acceptor.join();
    for (std::thread &t : handlers) {
        if (t.joinable())
            t.join();
    }
    handlers.clear();
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        for (int fd : pending)
            ::close(fd);
        pending.clear();
    }
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
}

void
DebugServer::acceptLoop()
{
    while (!stopping.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        int rc = ::poll(&pfd, 1, 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        bool shed = false;
        {
            std::lock_guard<std::mutex> lock(queueMutex);
            if (int(pending.size()) >= maxQueue)
                shed = true;
            else
                pending.push_back(fd);
        }
        if (shed) {
            writeHttpResponse(fd, 503, "text/plain; charset=utf-8",
                              "overloaded\n");
            ::close(fd);
        } else {
            queueCv.notify_one();
        }
    }
}

void
DebugServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queueMutex);
            queueCv.wait(lock, [this] {
                return stopping.load(std::memory_order_acquire) ||
                       !pending.empty();
            });
            if (stopping.load(std::memory_order_acquire))
                return;
            fd = pending.front();
            pending.pop_front();
        }
        serveConnection(fd);
        ::close(fd);
    }
}

void
DebugServer::serveConnection(int fd)
{
    // Scraper GETs only: no body, tiny head, and a hard deadline so
    // a stalled client frees its handler thread after recvTimeoutMs.
    HttpLimits limits;
    limits.recvTimeoutMs = recvTimeoutMs;
    limits.maxBodyBytes = 0;
    HttpRequest req;
    switch (readHttpRequest(fd, req, limits)) {
      case HttpReadResult::Ok:
        break;
      case HttpReadResult::Closed:
        return;
      case HttpReadResult::Timeout:
        writeHttpResponse(fd, 408, "text/plain; charset=utf-8",
                          "request timeout\n");
        return;
      case HttpReadResult::TooLarge:
        writeHttpResponse(fd, 413, "text/plain; charset=utf-8",
                          "request too large\n");
        return;
      case HttpReadResult::Malformed:
        writeHttpResponse(fd, 400, "text/plain; charset=utf-8",
                          "bad request\n");
        return;
    }
    if (req.method != "GET" && req.method != "HEAD") {
        writeHttpResponse(fd, 405, "text/plain; charset=utf-8",
                          "method not allowed\n");
        return;
    }
    std::string target = req.target;
    std::size_t q = target.find('?');
    if (q != std::string::npos)
        target.resize(q);

    int status = 0;
    std::string contentType;
    std::string body = handlePath(target, status, contentType);
    writeHttpResponse(fd, status, contentType, body,
                      req.method == "HEAD");
}

} // namespace balance
