#include "support/debug_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "support/metrics.hh"
#include "support/perf_counters.hh"
#include "support/progress.hh"
#include "support/prometheus.hh"
#include "support/trace.hh"

namespace balance
{

namespace
{

/** Write all of @p data to @p fd, retrying short writes / EINTR. */
void
writeAll(int fd, const char *data, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return; // peer went away; nothing useful to do
        }
        done += std::size_t(n);
    }
}

const char *
statusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 503:
        return "Service Unavailable";
      default:
        return "Error";
    }
}

void
writeResponse(int fd, int status, const std::string &contentType,
              const std::string &body)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       statusText(status) + "\r\n";
    head += "Content-Type: " + contentType + "\r\n";
    head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    head += "Connection: close\r\n\r\n";
    writeAll(fd, head.data(), head.size());
    writeAll(fd, body.data(), body.size());
}

} // namespace

DebugServer::~DebugServer() { stop(); }

std::string
DebugServer::handlePath(const std::string &path, int &status,
                        std::string &contentType)
{
    status = 200;
    contentType = "text/plain; charset=utf-8";
    if (path == "/healthz")
        return "ok\n";
    if (path == "/metrics") {
        contentType = "text/plain; version=0.0.4; charset=utf-8";
        return renderPrometheusText(MetricRegistry::global());
    }
    if (path == "/progress") {
        contentType = "application/json";
        return ProgressTracker::global().snapshotJson();
    }
    if (path == "/trace") {
        contentType = "application/json";
        return TraceSession::global().toJson();
    }
    if (path == "/hwcounters") {
        contentType = "application/json";
        return PerfProfiler::global().snapshot().toJson();
    }
    status = 404;
    return "not found\n";
}

bool
DebugServer::start(const DebugServerOptions &opts)
{
    if (running.load(std::memory_order_acquire))
        return false;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "debug-server: socket failed: %s\n",
                     std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
    if (::inet_pton(AF_INET, opts.bindAddress.c_str(), &addr.sin_addr) !=
        1) {
        std::fprintf(stderr, "debug-server: bad bind address '%s'\n",
                     opts.bindAddress.c_str());
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        std::fprintf(stderr, "debug-server: bind to %s:%d failed: %s\n",
                     opts.bindAddress.c_str(), opts.port,
                     std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (::listen(fd, 64) < 0) {
        std::fprintf(stderr, "debug-server: listen failed: %s\n",
                     std::strerror(errno));
        ::close(fd);
        return false;
    }

    sockaddr_in bound{};
    socklen_t boundLen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &boundLen) < 0) {
        std::fprintf(stderr, "debug-server: getsockname failed: %s\n",
                     std::strerror(errno));
        ::close(fd);
        return false;
    }

    listenFd = fd;
    boundPort = int(ntohs(bound.sin_port));
    boundAddress =
        "http://" + opts.bindAddress + ":" + std::to_string(boundPort);
    maxQueue = opts.maxQueue > 0 ? opts.maxQueue : 1;
    stopping.store(false, std::memory_order_release);
    running.store(true, std::memory_order_release);

    // /progress is only useful with the tracker publishing.
    ProgressTracker::global().enable();

    acceptor = std::thread([this] { acceptLoop(); });
    int nHandlers = opts.handlerThreads > 0 ? opts.handlerThreads : 1;
    handlers.reserve(std::size_t(nHandlers));
    for (int i = 0; i < nHandlers; ++i)
        handlers.emplace_back([this] { handlerLoop(); });

    std::printf("debug-server: listening on %s\n", boundAddress.c_str());
    std::fflush(stdout);
    return true;
}

void
DebugServer::stop()
{
    if (!running.exchange(false, std::memory_order_acq_rel))
        return;
    {
        // The store must happen under the queue mutex: a handler
        // that has checked the wait predicate but not yet blocked
        // would otherwise miss this notification forever.
        std::lock_guard<std::mutex> lock(queueMutex);
        stopping.store(true, std::memory_order_release);
    }
    queueCv.notify_all();
    if (acceptor.joinable())
        acceptor.join();
    for (std::thread &t : handlers) {
        if (t.joinable())
            t.join();
    }
    handlers.clear();
    {
        std::lock_guard<std::mutex> lock(queueMutex);
        for (int fd : pending)
            ::close(fd);
        pending.clear();
    }
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
}

void
DebugServer::acceptLoop()
{
    while (!stopping.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = listenFd;
        pfd.events = POLLIN;
        int rc = ::poll(&pfd, 1, 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        bool shed = false;
        {
            std::lock_guard<std::mutex> lock(queueMutex);
            if (int(pending.size()) >= maxQueue)
                shed = true;
            else
                pending.push_back(fd);
        }
        if (shed) {
            writeResponse(fd, 503, "text/plain; charset=utf-8",
                          "overloaded\n");
            ::close(fd);
        } else {
            queueCv.notify_one();
        }
    }
}

void
DebugServer::handlerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queueMutex);
            queueCv.wait(lock, [this] {
                return stopping.load(std::memory_order_acquire) ||
                       !pending.empty();
            });
            if (stopping.load(std::memory_order_acquire))
                return;
            fd = pending.front();
            pending.pop_front();
        }
        serveConnection(fd);
        ::close(fd);
    }
}

void
DebugServer::serveConnection(int fd)
{
    // Read until the end of the request head (tiny requests only; a
    // scraper's GET fits in one or two reads).
    std::string req;
    char buf[2048];
    while (req.size() < 16 * 1024 &&
           req.find("\r\n\r\n") == std::string::npos) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break;
        }
        req.append(buf, std::size_t(n));
    }
    std::size_t lineEnd = req.find("\r\n");
    if (lineEnd == std::string::npos)
        return;
    std::string line = req.substr(0, lineEnd);

    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        writeResponse(fd, 404, "text/plain; charset=utf-8",
                      "bad request\n");
        return;
    }
    std::string method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (method != "GET" && method != "HEAD") {
        writeResponse(fd, 405, "text/plain; charset=utf-8",
                      "method not allowed\n");
        return;
    }
    std::size_t q = target.find('?');
    if (q != std::string::npos)
        target.resize(q);

    int status = 0;
    std::string contentType;
    std::string body = handlePath(target, status, contentType);
    if (method == "HEAD")
        body.clear();
    writeResponse(fd, status, contentType, body);
}

} // namespace balance
