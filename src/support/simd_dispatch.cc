/**
 * @file
 * Runtime kernel-table selection (docs/PERFORMANCE.md):
 *
 *   1. forceScalarSimdKernels(true) pins the scalar table (tests);
 *   2. BALANCE_SIMD=scalar|off|0 in the environment pins it too —
 *      the one-flag A/B switch used by tools/profile_bounds.sh and
 *      the CI identical-artifact job;
 *   3. otherwise the widest table compiled into this binary whose
 *      ISA the host supports: AVX2 when CPUID says so on x86-64,
 *      NEON on AArch64 (baseline), scalar everywhere else.
 *
 * Which vector tables exist is decided at configure time
 * (cmake/enable_intrinsics.cmake sets BALANCE_SIMD_HAVE_*); a
 * -DBALANCE_SIMD=OFF build compiles none and every route lands on
 * the scalar table. All tables produce bitwise-identical results,
 * so selection is invisible to everything but the clock.
 */

#include "support/simd_kernels.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace balance
{

#if defined(BALANCE_SIMD_HAVE_AVX2)
const SimdKernels &avx2SimdKernels();
#endif
#if defined(BALANCE_SIMD_HAVE_NEON)
const SimdKernels &neonSimdKernels();
#endif

namespace
{

std::atomic<bool> forceScalar{false};

bool
envForcesScalar()
{
    const char *env = std::getenv("BALANCE_SIMD");
    if (!env)
        return false;
    return std::strcmp(env, "scalar") == 0 ||
           std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0;
}

const SimdKernels &
resolve()
{
    if (envForcesScalar())
        return scalarSimdKernels();
#if defined(BALANCE_SIMD_HAVE_AVX2) && defined(__x86_64__)
    if (__builtin_cpu_supports("avx2"))
        return avx2SimdKernels();
#endif
#if defined(BALANCE_SIMD_HAVE_NEON)
    return neonSimdKernels();
#else
    return scalarSimdKernels();
#endif
}

} // namespace

const SimdKernels &
simdKernels()
{
    if (forceScalar.load(std::memory_order_relaxed))
        return scalarSimdKernels();
    static const SimdKernels &table = resolve();
    return table;
}

void
forceScalarSimdKernels(bool on)
{
    forceScalar.store(on, std::memory_order_relaxed);
}

} // namespace balance
