/**
 * @file
 * In-process diagnostics HTTP server (docs/OBSERVABILITY.md, "Live
 * introspection"). A dependency-free HTTP/1.1 listener — own acceptor
 * thread plus a small bounded handler pool — that serves read-only
 * snapshots of the process's telemetry while a run is in flight:
 *
 *   GET /healthz     -> "ok\n" (liveness)
 *   GET /metrics     -> MetricRegistry::global() in Prometheus text
 *                       exposition format 0.0.4 (support/prometheus.hh)
 *   GET /progress    -> ProgressTracker::global().snapshotJson()
 *   GET /trace       -> TraceSession::global().toJson() (Chrome trace)
 *   GET /hwcounters  -> PerfProfiler::global().snapshot().toJson()
 *
 * Non-perturbation contract: every handler only calls the snapshot
 * paths the at-exit writers already use (mutex-guarded copies of
 * relaxed-atomic monotone values), never a mutating API, so scraping
 * any endpoint at any rate leaves the run's schedules, bounds, and
 * artifact bytes identical to an unobserved run. The server binds
 * 127.0.0.1 by default; port 0 picks an ephemeral port, and the
 * bound address is printed on stdout ("debug-server: listening on
 * http://...") and recorded in the run manifest when one is written.
 *
 * Enabled via --debug-server=PORT on the bench binaries and
 * `report_tool run` (eval/bench_options.hh, bench/report_tool.cc).
 */

#ifndef BALANCE_SUPPORT_DEBUG_SERVER_HH
#define BALANCE_SUPPORT_DEBUG_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace balance
{

/** DebugServer configuration. */
struct DebugServerOptions
{
    /** TCP port to bind; 0 picks an ephemeral port. */
    int port = 0;
    /** Bind address (loopback by default — diagnostics, not public). */
    std::string bindAddress = "127.0.0.1";
    /** Handler pool size. */
    int handlerThreads = 4;
    /** Max accepted-but-unserved connections before 503-shedding. */
    int maxQueue = 64;
    /**
     * Per-connection receive deadline (support/http.hh). A client
     * that connects and stalls gets a 408 after this long instead of
     * pinning a handler thread forever. <= 0 disables the deadline
     * (tests only).
     */
    int recvTimeoutMs = 5000;
};

/** The diagnostics server (see file comment). */
class DebugServer
{
  public:
    DebugServer() = default;
    ~DebugServer();

    DebugServer(const DebugServer &) = delete;
    DebugServer &operator=(const DebugServer &) = delete;

    /**
     * Bind, listen, and start the acceptor + handler threads.
     * Enables ProgressTracker::global() so /progress has data.
     * @return true on success; on failure logs to stderr and leaves
     *         the server inactive.
     */
    bool start(const DebugServerOptions &opts);

    /** Stop all threads and close the socket. Idempotent. */
    void stop();

    /** @return true between a successful start() and stop(). */
    bool active() const { return running.load(std::memory_order_acquire); }

    /** @return the bound port (valid while active). */
    int port() const { return boundPort; }

    /** @return "http://<addr>:<port>" (valid while active). */
    const std::string &address() const { return boundAddress; }

    /**
     * Dispatch one request path to its endpoint. Exposed for tests;
     * @p status receives the HTTP status code and @p contentType the
     * response content type.
     * @return the response body.
     */
    static std::string handlePath(const std::string &path, int &status,
                                  std::string &contentType);

  private:
    void acceptLoop();
    void handlerLoop();
    void serveConnection(int fd);

    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};
    int listenFd = -1;
    int boundPort = 0;
    std::string boundAddress;
    std::thread acceptor;
    std::vector<std::thread> handlers;
    std::mutex queueMutex;
    std::condition_variable queueCv;
    std::deque<int> pending;
    int maxQueue = 64;
    int recvTimeoutMs = 5000;
};

} // namespace balance

#endif // BALANCE_SUPPORT_DEBUG_SERVER_HH
