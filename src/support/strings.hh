/**
 * @file
 * Small string utilities shared by the .sb parser and the table
 * printers. Kept deliberately minimal; nothing here is clever.
 */

#ifndef BALANCE_SUPPORT_STRINGS_HH
#define BALANCE_SUPPORT_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace balance
{

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view s);

/**
 * Split on a delimiter character. Adjacent delimiters produce empty
 * fields; the result never drops fields.
 */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on runs of whitespace; never produces empty fields. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Case-sensitive prefix test. */
bool startsWith(std::string_view s, std::string_view prefix);

/**
 * Parse a decimal integer.
 *
 * @param s Token to parse.
 * @param out Receives the value on success.
 * @return false if @p s is not exactly one integer.
 */
bool parseInt(std::string_view s, long long &out);

/**
 * Parse a floating-point number.
 *
 * @param s Token to parse.
 * @param out Receives the value on success.
 * @return false if @p s is not exactly one number.
 */
bool parseDouble(std::string_view s, double &out);

} // namespace balance

#endif // BALANCE_SUPPORT_STRINGS_HH
