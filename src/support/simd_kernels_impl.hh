/**
 * @file
 * The vector kernel bodies, written once against the portable shim
 * (support/simd.hh) and included by each vector translation unit
 * (simd_kernels_avx2.cc under -mavx2, simd_kernels_neon.cc on
 * AArch64). The TU's compile flags decide the codegen; the source —
 * and therefore the semantics — is identical everywhere.
 *
 * Bitwise-identity notes, kernel by kernel:
 *  - pair/tripleCompose: the main loop runs 8 members per iteration
 *    with masked selects that mirror the scalar branches exactly;
 *    cp/min/max accumulate per lane and reduce horizontally at the
 *    end, which is safe because integer min/max are associative and
 *    commutative. The tail reuses the scalar per-member helpers.
 *  - epochScanFirstFree: "full" lanes (stamp == epoch && fill >=
 *    width) become a movemask; the first zero bit is the answer, and
 *    its index equals the popcount of the full bits below it — the
 *    probe trips the naive loop would have counted.
 *  - blend/map: purely elementwise; the blend keeps the scalar's
 *    (a*cp + b*sr) + c*dh association and the build compiles every
 *    path with -ffp-contract=off, so no FMA fusion can diverge.
 *
 * This header must only be included from a TU that defines
 * BALANCE_SIMD_TABLE_LEVEL / BALANCE_SIMD_TABLE_NAME /
 * BALANCE_SIMD_TABLE_FUNC before the include.
 */

#include <algorithm>
#include <climits>

#include "support/simd.hh"
#include "support/simd_kernels.hh"

namespace balance
{

namespace
{

using simd::F64x4;
using simd::I32x8;
using simd::I64x4;
using simd::U32x8;
using simd::U64x4;

ComposeResult
pairComposeVec(const int *hSink, const int *hi, const int *early,
               const int *relLate, int *keys, int n, int latency,
               int cp0)
{
    ComposeResult r;
    r.cp = cp0;

    const I32x8 vLat = simd::splatI32(latency);
    const I32x8 vZero = simd::splatI32(0);
    I32x8 vCp = simd::splatI32(INT_MIN);
    I32x8 vMin = vZero;
    I32x8 vMax = vZero;

    int m = 0;
    for (; m + simd::i32Lanes <= n; m += simd::i32Lanes) {
        I32x8 h = simd::load<I32x8>(hSink + m);
        I32x8 vhi = simd::load<I32x8>(hi + m);
        I32x8 live = vhi >= vZero;
        h = simd::select(live, simd::max(h, vhi + vLat), h);
        vCp = simd::max(vCp, simd::load<I32x8>(early + m) + h);
        I32x8 key = simd::min(-h, simd::load<I32x8>(relLate + m));
        simd::store(keys + m, key);
        vMin = simd::min(vMin, key);
        vMax = simd::max(vMax, key);
    }
    for (; m < n; ++m) {
        int h = detail::pairComposeOne(hSink[m], hi[m], latency);
        r.cp = std::max(r.cp, early[m] + h);
        int key = std::min(-h, relLate[m]);
        keys[m] = key;
        r.minKey = std::min(r.minKey, key);
        r.maxKey = std::max(r.maxKey, key);
    }

    r.cp = std::max(r.cp, simd::hmax(vCp));
    r.minKey = std::min(r.minKey, simd::hmin(vMin));
    r.maxKey = std::max(r.maxKey, simd::hmax(vMax));
    return r;
}

ComposeResult
tripleComposeVec(const int *hSink, const int *hi, const int *hj,
                 const int *early, const int *relLate, int *keys,
                 int n, int a, int jToK, int cp0)
{
    ComposeResult r;
    r.cp = cp0;

    const I32x8 vA = simd::splatI32(a);
    const I32x8 vFun = simd::splatI32(jToK);
    const I32x8 vZero = simd::splatI32(0);
    I32x8 vCp = simd::splatI32(INT_MIN);
    I32x8 vMin = vZero;
    I32x8 vMax = vZero;

    int m = 0;
    for (; m + simd::i32Lanes <= n; m += simd::i32Lanes) {
        I32x8 vhi = simd::load<I32x8>(hi + m);
        I32x8 hjNew = simd::load<I32x8>(hj + m);
        I32x8 liveI = vhi >= vZero;
        hjNew = simd::select(liveI, simd::max(hjNew, vhi + vA), hjNew);
        I32x8 h = simd::load<I32x8>(hSink + m);
        I32x8 liveJ = hjNew >= vZero;
        h = simd::select(liveJ, simd::max(h, hjNew + vFun), h);
        vCp = simd::max(vCp, simd::load<I32x8>(early + m) + h);
        I32x8 key = simd::min(-h, simd::load<I32x8>(relLate + m));
        simd::store(keys + m, key);
        vMin = simd::min(vMin, key);
        vMax = simd::max(vMax, key);
    }
    for (; m < n; ++m) {
        int h = detail::tripleComposeOne(hSink[m], hi[m], hj[m], a,
                                         jToK);
        r.cp = std::max(r.cp, early[m] + h);
        int key = std::min(-h, relLate[m]);
        keys[m] = key;
        r.minKey = std::min(r.minKey, key);
        r.maxKey = std::max(r.maxKey, key);
    }

    r.cp = std::max(r.cp, simd::hmax(vCp));
    r.minKey = std::min(r.minKey, simd::hmin(vMin));
    r.maxKey = std::max(r.maxKey, simd::hmax(vMax));
    return r;
}

int
epochScanFirstFreeVec(const std::uint32_t *stamp, const int *fill,
                      std::uint32_t epoch, int width, int count)
{
    const U32x8 vEpoch = simd::splatU32(epoch);
    const I32x8 vWidth = simd::splatI32(width);

    int i = 0;
    for (; i + simd::i32Lanes <= count; i += simd::i32Lanes) {
        U32x8 vStamp = simd::load<U32x8>(stamp + i);
        I32x8 vFill = simd::load<I32x8>(fill + i);
        // Full lanes: stamped this epoch AND at width. The compare
        // masks are -1/0 per lane; AND them and movemask.
        I32x8 full = I32x8(vStamp == vEpoch) & (vFill >= vWidth);
        unsigned bits = simd::mask8(full);
        if (bits != 0xffu) {
            // First free lane; its index is also the popcount of the
            // full bits below it — the naive probe trips.
            return i + std::countr_one(bits);
        }
    }
    for (; i < count; ++i) {
        if (stamp[i] != epoch || fill[i] < width)
            return i;
    }
    return -1;
}

void
blendKeysVec(double a, const double *cp, double b, const double *sr,
             double c, const double *dh, double *out, int n)
{
    const F64x4 vA = simd::splatF64(a);
    const F64x4 vB = simd::splatF64(b);
    const F64x4 vC = simd::splatF64(c);
    int i = 0;
    for (; i + simd::f64Lanes <= n; i += simd::f64Lanes) {
        F64x4 v = (vA * simd::load<F64x4>(cp + i) +
                   vB * simd::load<F64x4>(sr + i)) +
                  vC * simd::load<F64x4>(dh + i);
        simd::store(out + i, v);
    }
    for (; i < n; ++i)
        out[i] = a * cp[i] + b * sr[i] + c * dh[i];
}

/** Vector form of detail::orderKeyDesc, lane for lane. */
inline U64x4
orderKeyDescVec(F64x4 v)
{
    const U64x4 vSign = U64x4{1, 1, 1, 1} << 63;
    v = v + simd::splatF64(0.0); // canonicalize -0.0
    U64x4 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    I64x4 neg = I64x4(bits) < I64x4{0, 0, 0, 0};
    U64x4 asc = neg ? ~bits : bits | vSign;
    return ~asc;
}

void
mapKeysDescVec(const double *pri, std::uint64_t *out, int n)
{
    int i = 0;
    for (; i + simd::f64Lanes <= n; i += simd::f64Lanes) {
        U64x4 k = orderKeyDescVec(simd::load<F64x4>(pri + i));
        simd::store(out + i, k);
    }
    for (; i < n; ++i)
        out[i] = detail::orderKeyDesc(pri[i]);
}

void
blendMapKeysDescVec(double a, const double *cp, double b,
                    const double *sr, double c, const double *dh,
                    std::uint64_t *out, int n)
{
    const F64x4 vA = simd::splatF64(a);
    const F64x4 vB = simd::splatF64(b);
    const F64x4 vC = simd::splatF64(c);
    int i = 0;
    for (; i + simd::f64Lanes <= n; i += simd::f64Lanes) {
        F64x4 v = (vA * simd::load<F64x4>(cp + i) +
                   vB * simd::load<F64x4>(sr + i)) +
                  vC * simd::load<F64x4>(dh + i);
        simd::store(out + i, orderKeyDescVec(v));
    }
    for (; i < n; ++i)
        out[i] = detail::orderKeyDesc(a * cp[i] + b * sr[i] +
                                      c * dh[i]);
}

void
maskLEVec(const int *vals, int threshold, std::uint64_t *words, int n)
{
    const I32x8 vThr = simd::splatI32(threshold);
    const int numWords = (n + 63) / 64;
    for (int w = 0; w < numWords; ++w)
        words[w] = 0;
    int i = 0;
    for (; i + simd::i32Lanes <= n; i += simd::i32Lanes) {
        I32x8 le = simd::load<I32x8>(vals + i) <= vThr;
        std::uint64_t bits = simd::mask8(le);
        words[i >> 6] |= bits << (i & 63);
    }
    for (; i < n; ++i) {
        if (vals[i] <= threshold)
            words[i >> 6] |= std::uint64_t(1) << (i & 63);
    }
}

} // namespace

const SimdKernels &
BALANCE_SIMD_TABLE_FUNC()
{
    static const SimdKernels table = {
        BALANCE_SIMD_TABLE_LEVEL,
        BALANCE_SIMD_TABLE_NAME,
        &pairComposeVec,
        &tripleComposeVec,
        &epochScanFirstFreeVec,
        &blendKeysVec,
        &mapKeysDescVec,
        &blendMapKeysDescVec,
        &maskLEVec,
    };
    return table;
}

} // namespace balance
