#include "support/perf_counters.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "support/diagnostics.hh"
#include "support/json.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define BALANCE_HAVE_PERF_EVENT 1
#else
#define BALANCE_HAVE_PERF_EVENT 0
#endif

namespace balance
{

namespace
{

/** @return nanoseconds on the monotonic wall clock. */
std::uint64_t
wallNowNs()
{
    using namespace std::chrono;
    return std::uint64_t(duration_cast<nanoseconds>(
                             steady_clock::now().time_since_epoch())
                             .count());
}

/** @return nanoseconds of CPU time consumed by the calling thread. */
std::uint64_t
threadCpuNowNs()
{
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return std::uint64_t(ts.tv_sec) * 1000000000ull +
           std::uint64_t(ts.tv_nsec);
}

/** @return true when BALANCE_PERF=fallback forbids perf_event use. */
bool
envForcesFallback()
{
    const char *v = std::getenv("BALANCE_PERF");
    return v != nullptr && std::strcmp(v, "fallback") == 0;
}

#if BALANCE_HAVE_PERF_EVENT

/**
 * The counter group, in open order == read order. The leader is a
 * hardware event (a software leader cannot host hardware members on
 * older kernels); task-clock rides along as a software member, which
 * every kernel allows.
 */
struct EventSpec
{
    std::uint32_t type;
    std::uint64_t config;
};

constexpr EventSpec groupEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES}, // leader
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
};

constexpr int numGroupEvents =
    int(sizeof(groupEvents) / sizeof(groupEvents[0]));

int
perfEventOpen(const EventSpec &spec, int groupFd)
{
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = spec.type;
    attr.config = spec.config;
    attr.disabled = groupFd == -1 ? 1 : 0; // leader starts the group
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.inherit = 0; // per-thread; workers open their own groups
    attr.read_format = PERF_FORMAT_GROUP |
                       PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    return int(syscall(__NR_perf_event_open, &attr, 0 /* this thread */,
                       -1 /* any cpu */, groupFd, 0));
}

/** read() layout for PERF_FORMAT_GROUP with both time fields. */
struct GroupReadBuf
{
    std::uint64_t nr;
    std::uint64_t timeEnabled;
    std::uint64_t timeRunning;
    std::uint64_t values[numGroupEvents];
};

#endif // BALANCE_HAVE_PERF_EVENT

} // namespace

const char *
perfTierName(PerfTier tier)
{
    switch (tier) {
    case PerfTier::Disabled:
        return "off";
    case PerfTier::Hardware:
        return "hardware";
    case PerfTier::Fallback:
        return "fallback";
    }
    return "off";
}

const char *
perfPhaseName(PerfPhase phase)
{
    switch (phase) {
    case PerfPhase::PairSweep:
        return "bounds.pair_sweep";
    case PerfPhase::TripleSweep:
        return "bounds.triple_sweep";
    case PerfPhase::RjRelax:
        return "bounds.rj_relax";
    case PerfPhase::ListSched:
        return "sched.list";
    case PerfPhase::BestGrid:
        return "sched.best_grid";
    case PerfPhase::Balance:
        return "sched.balance";
    case PerfPhase::Bnb:
        return "bnb.search";
    case PerfPhase::Count:
        break;
    }
    bsFatal("perfPhaseName: invalid phase ", int(phase));
    return "";
}

PerfCounterValues
PerfCounterValues::delta(const PerfCounterValues &a,
                         const PerfCounterValues &b)
{
    auto sub = [](std::uint64_t x, std::uint64_t y) {
        return x >= y ? x - y : 0;
    };
    PerfCounterValues d;
    d.wallNs = sub(a.wallNs, b.wallNs);
    d.taskClockNs = sub(a.taskClockNs, b.taskClockNs);
    d.cycles = sub(a.cycles, b.cycles);
    d.instructions = sub(a.instructions, b.instructions);
    d.branches = sub(a.branches, b.branches);
    d.branchMisses = sub(a.branchMisses, b.branchMisses);
    d.cacheReferences = sub(a.cacheReferences, b.cacheReferences);
    d.cacheMisses = sub(a.cacheMisses, b.cacheMisses);
    d.enabledNs = sub(a.enabledNs, b.enabledNs);
    d.runningNs = sub(a.runningNs, b.runningNs);
    return d;
}

void
PerfCounterValues::accumulate(const PerfCounterValues &d)
{
    wallNs += d.wallNs;
    taskClockNs += d.taskClockNs;
    cycles += d.cycles;
    instructions += d.instructions;
    branches += d.branches;
    branchMisses += d.branchMisses;
    cacheReferences += d.cacheReferences;
    cacheMisses += d.cacheMisses;
    enabledNs += d.enabledNs;
    runningNs += d.runningNs;
}

PerfSampler::PerfSampler() :
    PerfSampler(envForcesFallback() ? PerfTier::Fallback :
                                      PerfTier::Hardware)
{
}

PerfSampler::PerfSampler(PerfTier forced)
{
    samplerTier = PerfTier::Fallback;
#if BALANCE_HAVE_PERF_EVENT
    if (forced != PerfTier::Hardware)
        return;
    eventFds.reserve(numGroupEvents);
    for (const EventSpec &spec : groupEvents) {
        int fd = perfEventOpen(spec, groupFd);
        if (fd < 0) {
            // Any failure (permission, missing PMU, fd limits)
            // degrades the whole group to the fallback tier: a
            // partial group would silently report zeros for the
            // missing columns and skew the derived rates.
            for (int open : eventFds)
                close(open);
            eventFds.clear();
            groupFd = -1;
            return;
        }
        eventFds.push_back(fd);
        if (groupFd == -1)
            groupFd = fd;
    }
    if (ioctl(groupFd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
        ioctl(groupFd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
        for (int open : eventFds)
            close(open);
        eventFds.clear();
        groupFd = -1;
        return;
    }
    samplerTier = PerfTier::Hardware;
#else
    (void)forced;
#endif
}

PerfSampler::~PerfSampler()
{
#if BALANCE_HAVE_PERF_EVENT
    for (int fd : eventFds)
        close(fd);
#endif
}

PerfCounterValues
PerfSampler::now()
{
    PerfCounterValues v;
    v.wallNs = wallNowNs();
#if BALANCE_HAVE_PERF_EVENT
    if (samplerTier == PerfTier::Hardware) {
        GroupReadBuf buf{};
        ssize_t got = read(groupFd, &buf, sizeof(buf));
        if (got >= ssize_t(sizeof(std::uint64_t) * 3) &&
            buf.nr == std::uint64_t(numGroupEvents)) {
            v.cycles = buf.values[0];
            v.instructions = buf.values[1];
            v.branches = buf.values[2];
            v.branchMisses = buf.values[3];
            v.cacheReferences = buf.values[4];
            v.cacheMisses = buf.values[5];
            v.taskClockNs = buf.values[6]; // task-clock counts ns
            v.enabledNs = buf.timeEnabled;
            v.runningNs = buf.timeRunning;
            return v;
        }
        // A failed read degrades this sample to fallback values; the
        // delta against a healthy earlier sample clamps at zero.
    }
#endif
    v.taskClockNs = threadCpuNowNs();
    return v;
}

bool
PerfSnapshot::multiplexed() const
{
    for (const PerfPhaseTotals &p : phases)
        if (p.v.runningNs < p.v.enabledNs)
            return true;
    return false;
}

namespace
{

/**
 * Multiplexing correction: when the kernel rotated the group off the
 * PMU for part of the interval, extrapolate raw counts by
 * enabled/running, the standard perf(1) scaling. Identity when the
 * group ran the whole time (and in the fallback tier, where both
 * times are zero).
 */
std::uint64_t
scaleCount(std::uint64_t raw, const PerfCounterValues &v)
{
    if (v.runningNs == 0 || v.runningNs >= v.enabledNs)
        return raw;
    double scaled = double(raw) * double(v.enabledNs) / double(v.runningNs);
    return std::uint64_t(scaled + 0.5);
}

/** @return num / den, 0.0 on an empty denominator. */
double
safeRate(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : double(num) / double(den);
}

} // namespace

void
PerfSnapshot::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.key("version").value(1);
    w.key("tier").value(perfTierName(tier));
    w.key("multiplexed").value(multiplexed());
    w.key("phases").beginObject();
    for (int i = 0; i < numPerfPhases; ++i) {
        const PerfPhaseTotals &p = phases[i];
        std::uint64_t cycles = scaleCount(p.v.cycles, p.v);
        std::uint64_t insns = scaleCount(p.v.instructions, p.v);
        std::uint64_t branches = scaleCount(p.v.branches, p.v);
        std::uint64_t bMisses = scaleCount(p.v.branchMisses, p.v);
        std::uint64_t cRefs = scaleCount(p.v.cacheReferences, p.v);
        std::uint64_t cMisses = scaleCount(p.v.cacheMisses, p.v);
        w.key(perfPhaseName(PerfPhase(i))).beginObject();
        w.key("entries").value((long long)p.entries);
        w.key("wall_ns").value((long long)p.v.wallNs);
        w.key("task_clock_ns").value((long long)p.v.taskClockNs);
        w.key("cycles").value((long long)cycles);
        w.key("instructions").value((long long)insns);
        w.key("branches").value((long long)branches);
        w.key("branch_misses").value((long long)bMisses);
        w.key("cache_references").value((long long)cRefs);
        w.key("cache_misses").value((long long)cMisses);
        w.key("time_running_frac")
            .value(p.v.enabledNs == 0 ?
                       1.0 :
                       double(p.v.runningNs) / double(p.v.enabledNs));
        w.key("ipc").value(safeRate(insns, cycles));
        w.key("cpi").value(safeRate(cycles, insns));
        w.key("branch_miss_rate").value(safeRate(bMisses, branches));
        w.key("cache_miss_rate").value(safeRate(cMisses, cRefs));
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

std::string
PerfSnapshot::toJson() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

/**
 * One thread's accumulation lane. Owned by the profiler (worker
 * threads may exit before the snapshot, like trace buffers); the
 * mutex is uncontended in steady state — only the owning thread and
 * the snapshotting thread ever take it.
 */
struct PerfProfiler::ThreadState
{
    explicit ThreadState(PerfTier tier) : sampler(tier) {}

    std::mutex mutex;
    PerfSampler sampler;
    PerfPhaseTotals phases[numPerfPhases];
};

namespace
{

/** Never-reused profiler ids, for the thread-local state cache. */
std::atomic<std::uint64_t> nextProfilerId{1};

} // namespace

void
PerfProfiler::enable()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    if (profilerId == 0)
        profilerId =
            nextProfilerId.fetch_add(1, std::memory_order_relaxed);
    if (resolvedTier == PerfTier::Disabled) {
        if (envForcesFallback()) {
            resolvedTier = PerfTier::Fallback;
        } else {
            // Probe once on this thread; worker threads then open (or
            // skip) their groups at the same tier so one run never
            // mixes measurement quality across threads.
            PerfSampler probe;
            resolvedTier = probe.tier();
        }
    }
    on.store(true, std::memory_order_relaxed);
}

PerfProfiler::ThreadState &
PerfProfiler::localState()
{
    struct Cache
    {
        std::uint64_t id = 0;
        ThreadState *state = nullptr;
    };
    thread_local Cache cache;
    if (cache.id == profilerId && cache.state != nullptr)
        return *cache.state;
    std::lock_guard<std::mutex> lock(registryMutex);
    states.push_back(std::make_unique<ThreadState>(resolvedTier));
    cache.id = profilerId;
    cache.state = states.back().get();
    return *cache.state;
}

PerfSnapshot
PerfProfiler::snapshot()
{
    PerfSnapshot snap;
    std::lock_guard<std::mutex> lock(registryMutex);
    snap.tier = resolvedTier;
    for (const std::unique_ptr<ThreadState> &state : states) {
        std::lock_guard<std::mutex> stateLock(state->mutex);
        for (int i = 0; i < numPerfPhases; ++i) {
            snap.phases[i].entries += state->phases[i].entries;
            snap.phases[i].v.accumulate(state->phases[i].v);
        }
    }
    return snap;
}

void
PerfProfiler::reset()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    for (const std::unique_ptr<ThreadState> &state : states) {
        std::lock_guard<std::mutex> stateLock(state->mutex);
        for (PerfPhaseTotals &p : state->phases)
            p = PerfPhaseTotals{};
    }
}

PerfProfiler &
PerfProfiler::global()
{
    static PerfProfiler *p = new PerfProfiler();
    return *p;
}

PerfRegion::PerfRegion(PerfPhase phase) :
    span(perfPhaseName(phase)), regionPhase(phase)
{
    PerfProfiler &profiler = PerfProfiler::global();
    if (!profiler.enabled())
        return;
    state = &profiler.localState();
    start = state->sampler.now();
}

PerfRegion::~PerfRegion()
{
    if (state == nullptr)
        return;
    PerfCounterValues end = state->sampler.now();
    PerfCounterValues d = PerfCounterValues::delta(end, start);
    std::lock_guard<std::mutex> lock(state->mutex);
    PerfPhaseTotals &totals = state->phases[int(regionPhase)];
    totals.entries += 1;
    totals.v.accumulate(d);
}

} // namespace balance
