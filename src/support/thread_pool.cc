#include "support/thread_pool.hh"

#include <algorithm>
#include <chrono>

#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/** Set while a thread is a worker of some pool, for self-submission. */
thread_local ThreadPool *tlPool = nullptr;
thread_local int tlIndex = -1;

} // namespace

int
ThreadPool::currentWorkerId()
{
    return tlIndex;
}

int
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : int(n);
}

ThreadPool::ThreadPool(int threads)
{
    int n = threads > 0 ? threads : hardwareThreads();
    workers.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        workers.push_back(std::make_unique<Worker>());
    // Deques must be fully constructed before any worker can steal.
    for (int i = 0; i < n; ++i)
        workers[std::size_t(i)]->thread =
            std::thread([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(sleepMutex);
        stopping = true;
    }
    wake.notify_all();
    for (auto &w : workers) {
        if (w->thread.joinable())
            w->thread.join();
    }
}

void
ThreadPool::submit(std::function<void()> fn)
{
    bsAssert(fn, "ThreadPool::submit with empty task");
    Worker *target;
    if (tlPool == this) {
        // A pool task spawning work: keep it on the owner's deque so
        // the back-pop picks it up next (depth-first, cache warm).
        target = workers[std::size_t(tlIndex)].get();
    } else {
        unsigned q = nextQueue.fetch_add(1, std::memory_order_relaxed);
        target = workers[q % workers.size()].get();
    }
    {
        std::lock_guard<std::mutex> lk(target->mutex);
        target->deque.push_back(std::move(fn));
    }
    {
        // Publish under sleepMutex so a worker between its queue scan
        // and its wait cannot miss the wakeup.
        std::lock_guard<std::mutex> lk(sleepMutex);
        ++queued;
    }
    wake.notify_one();
}

bool
ThreadPool::popOwn(int self, std::function<void()> &out)
{
    Worker &w = *workers[std::size_t(self)];
    std::lock_guard<std::mutex> lk(w.mutex);
    if (w.deque.empty())
        return false;
    out = std::move(w.deque.back());
    w.deque.pop_back();
    return true;
}

bool
ThreadPool::stealFrom(int self, std::function<void()> &out)
{
    int n = numThreads();
    for (int k = 1; k <= n; ++k) {
        Worker &w = *workers[std::size_t((self + k) % n)];
        std::lock_guard<std::mutex> lk(w.mutex);
        if (!w.deque.empty()) {
            out = std::move(w.deque.front());
            w.deque.pop_front();
            return true;
        }
    }
    return false;
}

bool
ThreadPool::tryRunOneTask()
{
    std::function<void()> task;
    bool got = tlPool == this ? popOwn(tlIndex, task)
                              : stealFrom(-1, task);
    if (!got && tlPool == this)
        got = stealFrom(tlIndex, task);
    if (!got)
        return false;
    {
        std::lock_guard<std::mutex> lk(sleepMutex);
        --queued;
    }
    task();
    return true;
}

void
ThreadPool::workerLoop(int self)
{
    tlPool = this;
    tlIndex = self;
    while (true) {
        std::function<void()> task;
        if (popOwn(self, task) || stealFrom(self, task)) {
            {
                std::lock_guard<std::mutex> lk(sleepMutex);
                --queued;
            }
            task();
            continue;
        }
        std::unique_lock<std::mutex> lk(sleepMutex);
        wake.wait(lk, [this] { return stopping || queued > 0; });
        if (stopping && queued == 0)
            return;
    }
}

ThreadPool &
ThreadPool::global()
{
    // Leaked on purpose: tests and benches may still submit during
    // static destruction of their own globals.
    static ThreadPool *pool = new ThreadPool();
    return *pool;
}

TaskGroup::~TaskGroup()
{
    if (!pool)
        return;
    try {
        wait();
    } catch (...) {
        // The destructor cannot rethrow; wait() explicitly for errors.
    }
}

void
TaskGroup::run(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lk(doneMutex);
        ++outstanding;
    }
    pool->submit([this, fn = std::move(fn)]() mutable {
        std::exception_ptr err;
        try {
            fn();
        } catch (...) {
            err = std::current_exception();
        }
        std::lock_guard<std::mutex> lk(doneMutex);
        if (err && !firstError)
            firstError = err;
        --outstanding;
        // Notify while still holding doneMutex: wait() can only see
        // outstanding == 0 under the mutex, i.e. strictly after this
        // whole critical section — so the group (and the condition
        // variable) can never be destroyed while a finishing task is
        // still inside notify_all().
        doneCv.notify_all();
    });
}

void
TaskGroup::wait()
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lk(doneMutex);
            if (outstanding == 0)
                break;
        }
        if (pool->tryRunOneTask())
            continue;
        // Nothing stealable: members are running on other threads.
        std::unique_lock<std::mutex> lk(doneMutex);
        doneCv.wait_for(lk, std::chrono::milliseconds(1),
                        [this] { return outstanding == 0; });
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lk(doneMutex);
        err = firstError;
        firstError = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace balance
