/**
 * @file
 * A rewindable scratch arena for hot loops that would otherwise
 * allocate fresh std::vectors per iteration.
 *
 * ScratchArena hands out uninitialized, properly aligned spans of
 * trivial types from geometrically growing blocks. reset() rewinds
 * every block to empty without releasing memory, so a computation
 * that is re-run thousands of times (the bound sweeps) performs
 * allocations only while the arena grows to its high-water mark.
 *
 * The arena is intentionally NOT thread-safe: each worker owns one
 * (the per-thread/per-task BoundScratch pattern used by the bound
 * engine — see bounds/bound_scratch.hh and docs/PERFORMANCE.md).
 */

#ifndef BALANCE_SUPPORT_ARENA_HH
#define BALANCE_SUPPORT_ARENA_HH

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace balance
{

/** Bump allocator over reusable blocks (see file comment). */
class ScratchArena
{
  public:
    /** @param firstBlockBytes Size of the first block on demand. */
    explicit ScratchArena(std::size_t firstBlockBytes = 1 << 14)
        : firstSize(firstBlockBytes < 64 ? 64 : firstBlockBytes)
    {
    }

    /** Rewind all blocks; keeps every byte of capacity. */
    void
    reset()
    {
        if (liveBytes > highWater)
            highWater = liveBytes;
        liveBytes = 0;
        for (Block &b : blocks)
            b.used = 0;
        cur = 0;
    }

    /**
     * Allocate an uninitialized span of @p n elements of trivial
     * type T, aligned for T. Spans stay valid until reset().
     */
    template <typename T>
    std::span<T>
    alloc(std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T> &&
                          std::is_trivially_destructible_v<T>,
                      "arena spans are never constructed or destroyed");
        if (n == 0)
            return {};
        std::size_t bytes = n * sizeof(T);
        void *p = allocBytes(bytes, alignof(T));
        return {static_cast<T *>(p), n};
    }

    /** @return total bytes currently held across all blocks. */
    std::size_t
    capacityBytes() const
    {
        std::size_t total = 0;
        for (const Block &b : blocks)
            total += b.cap;
        return total;
    }

    /**
     * @return the largest number of payload bytes ever live at once
     *         (alignment slack excluded), including the current
     *         not-yet-reset allocations. Telemetry only.
     */
    std::size_t
    highWaterBytes() const
    {
        return liveBytes > highWater ? liveBytes : highWater;
    }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t cap = 0;
        std::size_t used = 0;
    };

    void *
    allocBytes(std::size_t bytes, std::size_t align)
    {
        liveBytes += bytes;
        while (cur < blocks.size()) {
            Block &b = blocks[cur];
            std::size_t at = alignUp(b.used, align);
            if (at + bytes <= b.cap) {
                b.used = at + bytes;
                return b.data.get() + at;
            }
            ++cur;
        }
        // New block: geometric growth, but never smaller than the
        // request (plus alignment slack, as operator new only
        // guarantees max_align_t).
        std::size_t cap = blocks.empty() ? firstSize : blocks.back().cap * 2;
        if (cap < bytes + align)
            cap = bytes + align;
        Block b;
        b.data = std::make_unique<std::byte[]>(cap);
        b.cap = cap;
        std::size_t at =
            alignUp(std::size_t(reinterpret_cast<std::uintptr_t>(
                        b.data.get())),
                    align) -
            std::size_t(reinterpret_cast<std::uintptr_t>(b.data.get()));
        b.used = at + bytes;
        blocks.push_back(std::move(b));
        cur = blocks.size() - 1;
        return blocks.back().data.get() + at;
    }

    static std::size_t
    alignUp(std::size_t v, std::size_t align)
    {
        return (v + align - 1) & ~(align - 1);
    }

    std::vector<Block> blocks;
    std::size_t cur = 0;
    std::size_t firstSize;
    /** Payload bytes allocated since the last reset(). */
    std::size_t liveBytes = 0;
    /** Largest liveBytes value any completed reset cycle reached. */
    std::size_t highWater = 0;
};

} // namespace balance

#endif // BALANCE_SUPPORT_ARENA_HH
