/**
 * @file
 * The crash-safe flight recorder (docs/OBSERVABILITY.md): an
 * always-cheap, lock-free, per-thread ring of structured events
 * (phase enter/leave, superblock ids, branch-and-bound round
 * summaries) plus async-signal-safe fatal-signal handlers that dump
 * every thread's ring, the per-thread active phase, and a backtrace
 * to `crash-<pid>.txt` before re-raising the signal.
 *
 * Design constraints, in order:
 *
 *  1. Recording must be safe from any thread with no locks: each
 *     thread owns one fixed slot (claimed once with a CAS over a
 *     static slot table) and is the only writer to its ring. The
 *     write index is a monotone counter stored with release order so
 *     a dump sees a consistent prefix.
 *  2. The dump must be async-signal-safe: it walks the fixed slot
 *     table (atomic loads only — no registry mutex), formats
 *     integers into a stack buffer by hand, and uses nothing but
 *     write(2)/open(2)/close(2) plus backtrace_symbols_fd. Events
 *     being written at crash time may tear; a best-effort record of
 *     a dying process is the point.
 *  3. When disabled (the default outside the bench binaries), every
 *     record() is one relaxed atomic load and nothing else.
 *
 * Event labels must be string literals (stored by pointer, read at
 * crash time). The recorder never feeds back into any algorithm —
 * results are bitwise identical with it on or off.
 */

#ifndef BALANCE_SUPPORT_FLIGHT_RECORDER_HH
#define BALANCE_SUPPORT_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace balance
{

/** Flight-recorder event types (stable names in dumps). */
enum class FlightEventType : int
{
    PhaseEnter, //!< a = generation / item count, label = phase name
    PhaseLeave, //!< a = items processed, label = phase name
    Superblock, //!< a = op count, b = branch count, label = sb name*
    BnbRound,   //!< a = nodes expanded, b = round number
    Mark,       //!< free-form breadcrumb
};

/** @return the stable dump name ("phase_enter", ...). */
const char *flightEventTypeName(FlightEventType type);

/** One recorded event (PODs only: read from a signal handler). */
struct FlightEvent
{
    std::int64_t tsUs = 0;  //!< microseconds since recorder epoch
    const char *label = nullptr; //!< static string (may be null)
    std::int64_t a = -1;
    std::int64_t b = -1;
    FlightEventType type = FlightEventType::Mark;
};

/** The process-wide recorder (see file comment). */
class FlightRecorder
{
  public:
    /** Events kept per thread (the dump prints the newest first). */
    static constexpr int ringCapacity = 128;
    /** Maximum distinct threads tracked (slots never recycle). */
    static constexpr int maxThreads = 128;
    /** Newest events printed per thread in a crash dump. */
    static constexpr int dumpEventsPerThread = 16;

    FlightRecorder() = default;
    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Start recording. */
    void enable() { on.store(true, std::memory_order_relaxed); }

    /** Stop recording (rings keep their events). */
    void disable() { on.store(false, std::memory_order_relaxed); }

    /** @return true while events are being recorded. */
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /**
     * Record one event on the calling thread's ring. One relaxed
     * load when disabled; lock-free always.
     */
    void record(FlightEventType type, const char *label,
                std::int64_t a = -1, std::int64_t b = -1);

    /**
     * Set the calling thread's active phase (shown in crash dumps;
     * null clears it). @p phase must be a string literal.
     */
    void setThreadPhase(const char *phase);

    /** @return the calling thread's active phase (tests). */
    const char *threadPhase();

    /**
     * Async-signal-safe dump of every thread's slot into @p fd:
     * active phase plus the newest events. Safe to call from a
     * SIGSEGV handler; also used by tests against a plain file.
     */
    void dumpTo(int fd) const;

    /**
     * Copy out every buffered event, slot order then ring order
     * (tests; not signal-safe, call with writers quiesced).
     */
    std::vector<FlightEvent> snapshot() const;

    /** Zero every ring and phase (tests; keeps slot claims). */
    void clear();

    /** The process-wide recorder the crash handlers dump. */
    static FlightRecorder &global();

  private:
    struct alignas(64) Slot
    {
        std::atomic<bool> claimed{false};
        std::atomic<const char *> phase{nullptr};
        std::atomic<std::uint64_t> next{0}; //!< monotone write count
        FlightEvent ring[ringCapacity];
    };

    Slot *localSlot();

    std::atomic<bool> on{false};
    std::atomic<int> slotsUsed{0};
    Slot slots[maxThreads];
};

/**
 * RAII phase scope: sets the calling thread's active phase and
 * records PhaseEnter/PhaseLeave events (restoring the previous
 * phase on exit, so nested scopes behave like a stack). Costs one
 * relaxed load when the recorder is disabled.
 */
class FlightScope
{
  public:
    explicit FlightScope(const char *phase, std::int64_t arg = -1);
    ~FlightScope();
    FlightScope(const FlightScope &) = delete;
    FlightScope &operator=(const FlightScope &) = delete;

  private:
    const char *scopePhase = nullptr; //!< null = recorder was off
    const char *previous = nullptr;
};

/**
 * Install the async-signal-safe SIGSEGV/SIGABRT/SIGBUS handlers
 * that dump the flight recorder and a backtrace to `crash-<pid>.txt`
 * in the working directory, then re-raise with the default
 * disposition (so exit status / core dumps are unchanged). Also
 * enables the global recorder. Idempotent.
 */
void installCrashHandlers();

/** @return true once installCrashHandlers() has run (tests). */
bool crashHandlersInstalled();

} // namespace balance

#endif // BALANCE_SUPPORT_FLIGHT_RECORDER_HH
