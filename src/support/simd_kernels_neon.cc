/**
 * @file
 * The NEON kernel table: the shared vector bodies compiled for
 * AArch64, where 128-bit NEON is baseline — the compiler lowers each
 * 256-bit portable vector to a register pair, so no extra flags and
 * no runtime feature check are needed.
 */

#define BALANCE_SIMD_TABLE_LEVEL SimdLevel::Neon
#define BALANCE_SIMD_TABLE_NAME "neon"
#define BALANCE_SIMD_TABLE_FUNC neonSimdKernels

#include "support/simd_kernels_impl.hh"
