#include "support/metrics_timeline.hh"

#include "support/diagnostics.hh"
#include "support/metrics.hh"

namespace balance
{

MetricsTimeline::MetricsTimeline(const MetricRegistry &reg,
                                 std::string path, long long intervalMs)
    : registry(reg), outPath(std::move(path)),
      interval(intervalMs > 0 ? intervalMs : 1),
      out(outPath, std::ios::trunc), epoch(std::chrono::steady_clock::now())
{
    bsAssert(out.good(), "cannot open metrics timeline file '", outPath,
             "'");
    worker = std::thread([this] {
        std::unique_lock<std::mutex> lock(mutex);
        while (!stopping) {
            cv.wait_for(lock, std::chrono::milliseconds(interval),
                        [this] { return stopping; });
            if (stopping)
                break;
            writeSample();
        }
    });
}

MetricsTimeline::~MetricsTimeline() { stop(); }

void
MetricsTimeline::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (stopped)
            return;
        stopped = true;
        stopping = true;
    }
    cv.notify_all();
    worker.join();
    // Final sample after the worker quiesced: matches the at-exit
    // snapshot exactly since only the owner updates the registry now.
    std::lock_guard<std::mutex> lock(mutex);
    writeSample();
    out.flush();
}

long long
MetricsTimeline::samplesWritten() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return samples;
}

void
MetricsTimeline::writeSample()
{
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - epoch)
                       .count();
    out << "{\"seq\":" << samples << ",\"elapsed_ms\":" << elapsed
        << ",\"metrics\":" << registry.snapshotJson() << "}\n";
    ++samples;
}

} // namespace balance
