/**
 * @file
 * Hardware performance-counter profiling with per-phase attribution
 * (docs/OBSERVABILITY.md). A `PerfRegion` is an RAII scope that
 * charges the cycles, instructions, branches, branch misses, cache
 * references, cache misses, and task-clock it covers to one of a
 * fixed set of engine phases (pair/triple sweeps, RJ relaxation, the
 * rank-permutation list scheduler, the Best combo grid, Balance, and
 * B&B search); the aggregated per-phase totals become the
 * `hwcounters.json` artifact with derived IPC / branch-miss /
 * cache-miss rates per phase.
 *
 * Three tiers, resolved once at enable() time:
 *
 *  - Hardware: one `perf_event_open` counter group per thread
 *    (grouped read, so all seven values come from a single read()
 *    and describe the same interval). Kernel multiplexing is
 *    accounted: the group's enabled/running times ride along and
 *    values are linearly scaled, with the running fraction reported
 *    so a heavily multiplexed measurement is visible as such.
 *  - Fallback: when `perf_event_open` is unavailable or denied
 *    (containers, CI, `kernel.perf_event_paranoid`), regions still
 *    measure wall time (steady_clock) and per-thread CPU time
 *    (CLOCK_THREAD_CPUTIME_ID, the getrusage-equivalent), and the
 *    artifact keeps the full schema with zeroed hardware columns.
 *    `BALANCE_PERF=fallback` in the environment forces this tier,
 *    simulating a perf_event-denied kernel for tests and CI.
 *  - Disabled (the default): a `PerfRegion` is one relaxed atomic
 *    load and nothing else.
 *
 * The profiler follows the telemetry never-perturb rules: counters
 * observe, never steer — no algorithm reads them back — so enabling
 * `--hw-counters` leaves every schedule, bound, trip count, and
 * non-counter telemetry byte bitwise identical for any --threads
 * value (tests/integration/telemetry_determinism_test). Counter
 * *values* are inherently machine- and run-dependent; the artifact's
 * structure (tier, phase set, key order) is deterministic, and the
 * per-phase `entries` counts are exact integral sums, thread-count
 * invariant like every other metric.
 *
 * A `PerfRegion` also embeds a `TraceSpan` named after its phase, so
 * the same scopes appear on the Chrome-trace timeline whenever
 * tracing is enabled — one instrumentation point, both sinks.
 */

#ifndef BALANCE_SUPPORT_PERF_COUNTERS_HH
#define BALANCE_SUPPORT_PERF_COUNTERS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/trace.hh"

namespace balance
{

class JsonWriter;

/** Measurement tier (resolved when the profiler is enabled). */
enum class PerfTier
{
    Disabled, //!< collection off; regions cost one atomic load
    Hardware, //!< perf_event_open counter groups
    Fallback, //!< wall + thread-CPU time only (no perf_event access)
};

/** @return "off" / "hardware" / "fallback". */
const char *perfTierName(PerfTier tier);

/** The attributed engine phases, in artifact order. */
enum class PerfPhase : int
{
    PairSweep,   //!< pairwise bound sweeps
    TripleSweep, //!< triplewise bound enumeration
    RjRelax,     //!< Rim & Jain relaxation
    ListSched,   //!< rank-permutation list-scheduler core
    BestGrid,    //!< Best's combo-grid sweep
    Balance,     //!< the Balance scheduler proper
    Bnb,         //!< branch-and-bound certifier search
    Count,
};

constexpr int numPerfPhases = int(PerfPhase::Count);

/** @return the stable dotted phase name ("bounds.pair_sweep", ...). */
const char *perfPhaseName(PerfPhase phase);

/**
 * One tier-independent counter sample (monotonic totals for a
 * sampler, deltas once subtracted). Hardware columns are zero in the
 * fallback tier.
 */
struct PerfCounterValues
{
    std::uint64_t wallNs = 0;      //!< steady_clock
    std::uint64_t taskClockNs = 0; //!< thread CPU time / sw task-clock
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMisses = 0;
    std::uint64_t cacheReferences = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t enabledNs = 0; //!< group time enabled (multiplexing)
    std::uint64_t runningNs = 0; //!< group time actually on the PMU

    /** Member-wise a - b (callers pass samples from one sampler). */
    static PerfCounterValues delta(const PerfCounterValues &a,
                                   const PerfCounterValues &b);

    /** Member-wise accumulate. */
    void accumulate(const PerfCounterValues &d);
};

/**
 * A standalone per-thread counter sampler for bench harnesses
 * (bench/micro_kernels) that measure explicit intervals instead of
 * attributing phases. Opens its own counter group on construction,
 * honoring the BALANCE_PERF override; now() reads the monotonic
 * totals. Not thread-safe: use from the constructing thread only.
 */
class PerfSampler
{
  public:
    PerfSampler();

    /**
     * As the default constructor, but pin the tier: Fallback skips
     * the perf_event probe entirely (used by the profiler so every
     * thread of a run measures at the same tier).
     */
    explicit PerfSampler(PerfTier forced);

    ~PerfSampler();
    PerfSampler(const PerfSampler &) = delete;
    PerfSampler &operator=(const PerfSampler &) = delete;

    /** @return Hardware or Fallback (never Disabled). */
    PerfTier tier() const { return samplerTier; }

    /** @return current monotonic counter totals. */
    PerfCounterValues now();

  private:
    PerfTier samplerTier = PerfTier::Fallback;
    int groupFd = -1;          //!< leader fd (-1 in fallback)
    std::vector<int> eventFds; //!< every opened fd, leader first
};

/** Aggregated totals for one phase. */
struct PerfPhaseTotals
{
    long long entries = 0; //!< PerfRegion scopes closed
    PerfCounterValues v;   //!< summed deltas (inclusive of nesting)
};

/** The merged profiler state (see PerfProfiler::snapshot). */
struct PerfSnapshot
{
    PerfTier tier = PerfTier::Disabled;
    PerfPhaseTotals phases[numPerfPhases];

    /** @return true when any phase saw runningNs < enabledNs. */
    bool multiplexed() const;

    /**
     * Serialize the artifact document: tier, multiplexing flag, and
     * one object per phase in enum order with raw columns
     * (multiplexing-scaled in the hardware tier) and derived ipc /
     * cpi / branch_miss_rate / cache_miss_rate fields. The key
     * order and phase set are fixed, so the schema is identical on
     * every machine and tier.
     */
    void writeJson(JsonWriter &w) const;

    /** @return writeJson() as a document string. */
    std::string toJson() const;
};

/**
 * The process-wide profiler behind --hw-counters. Off by default;
 * enable() resolves the tier and regions start accumulating into
 * per-thread states owned by the profiler (they survive worker
 * threads that exit, like trace buffers). snapshot() merges all
 * thread states in registration-independent phase order.
 */
class PerfProfiler
{
  public:
    PerfProfiler() = default;
    PerfProfiler(const PerfProfiler &) = delete;
    PerfProfiler &operator=(const PerfProfiler &) = delete;

    /**
     * Turn collection on. Resolves the tier once: Hardware when a
     * probe counter group opens, Fallback otherwise (or when
     * BALANCE_PERF=fallback). Idempotent.
     */
    void enable();

    /** Stop collecting (accumulated totals stay until reset()). */
    void disable() { on.store(false, std::memory_order_relaxed); }

    /** @return true while regions are accumulating. */
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** @return the resolved tier (Disabled before first enable()). */
    PerfTier tier() const { return resolvedTier; }

    /** @return the merged per-phase totals across all threads. */
    PerfSnapshot snapshot();

    /** Zero all accumulators and entry counts (tests). */
    void reset();

    /** The process-wide profiler driven by --hw-counters. */
    static PerfProfiler &global();

  private:
    friend class PerfRegion;
    struct ThreadState;

    ThreadState &localState();

    std::atomic<bool> on{false};
    PerfTier resolvedTier = PerfTier::Disabled;
    std::uint64_t profilerId = 0; //!< lazy unique id for tl caching
    std::mutex registryMutex;
    std::vector<std::unique_ptr<ThreadState>> states;
};

/**
 * RAII phase scope: charges the covered interval to @p phase on the
 * calling thread when the global profiler is enabled, and records a
 * TraceSpan of the phase name whenever tracing is enabled. Regions
 * may nest (inner phases are also counted in the outer phase's
 * totals — attribution is inclusive, like trace spans).
 */
class PerfRegion
{
  public:
    explicit PerfRegion(PerfPhase phase);
    ~PerfRegion();
    PerfRegion(const PerfRegion &) = delete;
    PerfRegion &operator=(const PerfRegion &) = delete;

  private:
    TraceSpan span;
    PerfProfiler::ThreadState *state = nullptr; //!< null = off
    PerfPhase regionPhase;
    PerfCounterValues start;
};

} // namespace balance

#endif // BALANCE_SUPPORT_PERF_COUNTERS_HH
