/**
 * @file
 * The portable scalar kernel table: the reference semantics every
 * vector table must reproduce bit for bit. Plain loops, no vector
 * types, compiled with the project's baseline flags on every target
 * — this is also the table the BALANCE_SIMD=scalar override and the
 * -DBALANCE_SIMD=OFF build select.
 */

#include "support/simd_kernels.hh"

#include <algorithm>

namespace balance
{

namespace
{

ComposeResult
pairComposeScalar(const int *hSink, const int *hi, const int *early,
                  const int *relLate, int *keys, int n, int latency,
                  int cp0)
{
    ComposeResult r;
    r.cp = cp0;
    for (int m = 0; m < n; ++m) {
        int h = detail::pairComposeOne(hSink[m], hi[m], latency);
        r.cp = std::max(r.cp, early[m] + h);
        int key = std::min(-h, relLate[m]);
        keys[m] = key;
        r.minKey = std::min(r.minKey, key);
        r.maxKey = std::max(r.maxKey, key);
    }
    return r;
}

ComposeResult
tripleComposeScalar(const int *hSink, const int *hi, const int *hj,
                    const int *early, const int *relLate, int *keys,
                    int n, int a, int jToK, int cp0)
{
    ComposeResult r;
    r.cp = cp0;
    for (int m = 0; m < n; ++m) {
        int h = detail::tripleComposeOne(hSink[m], hi[m], hj[m], a,
                                         jToK);
        r.cp = std::max(r.cp, early[m] + h);
        int key = std::min(-h, relLate[m]);
        keys[m] = key;
        r.minKey = std::min(r.minKey, key);
        r.maxKey = std::max(r.maxKey, key);
    }
    return r;
}

int
epochScanFirstFreeScalar(const std::uint32_t *stamp, const int *fill,
                         std::uint32_t epoch, int width, int count)
{
    for (int i = 0; i < count; ++i) {
        if (stamp[i] != epoch || fill[i] < width)
            return i;
    }
    return -1;
}

void
blendKeysScalar(double a, const double *cp, double b, const double *sr,
                double c, const double *dh, double *out, int n)
{
    for (int i = 0; i < n; ++i)
        out[i] = a * cp[i] + b * sr[i] + c * dh[i];
}

void
mapKeysDescScalar(const double *pri, std::uint64_t *out, int n)
{
    for (int i = 0; i < n; ++i)
        out[i] = detail::orderKeyDesc(pri[i]);
}

void
blendMapKeysDescScalar(double a, const double *cp, double b,
                       const double *sr, double c, const double *dh,
                       std::uint64_t *out, int n)
{
    for (int i = 0; i < n; ++i)
        out[i] = detail::orderKeyDesc(a * cp[i] + b * sr[i] +
                                      c * dh[i]);
}

void
maskLEScalar(const int *vals, int threshold, std::uint64_t *words,
             int n)
{
    const int numWords = (n + 63) / 64;
    for (int w = 0; w < numWords; ++w)
        words[w] = 0;
    for (int i = 0; i < n; ++i) {
        if (vals[i] <= threshold)
            words[i >> 6] |= std::uint64_t(1) << (i & 63);
    }
}

} // namespace

const SimdKernels &
scalarSimdKernels()
{
    static const SimdKernels table = {
        SimdLevel::Scalar,
        "scalar",
        &pairComposeScalar,
        &tripleComposeScalar,
        &epochScanFirstFreeScalar,
        &blendKeysScalar,
        &mapKeysDescScalar,
        &blendMapKeysDescScalar,
        &maskLEScalar,
    };
    return table;
}

} // namespace balance
