/**
 * @file
 * Portable fixed-width vector shim for the engine's SIMD kernels.
 *
 * The types are GCC/Clang vector extensions at a fixed 256-bit width
 * (8 x i32, 4 x f64) on every target. The compiler lowers them to
 * AVX2 registers when the translation unit is built with -mavx2, to
 * pairs of NEON registers on AArch64, and to scalar code everywhere
 * else — so the *same* kernel source yields every codegen flavor,
 * and lane semantics (hence results) never depend on the target.
 *
 * Only the kernel translation units and their tests include this
 * header. Engine code talks to the kernels through the dispatch
 * table in simd_kernels.hh and never sees a vector type.
 *
 * Conventions:
 *  - loads/stores are unaligned (memcpy-based): callers pass plain
 *    vector<int>/arena spans with no alignment contract;
 *  - comparison results are lane masks (-1 = true, 0 = false), the
 *    vector-extension convention, consumed by select() or mask8();
 *  - horizontal reductions are lane loops: they run once per kernel
 *    call, and integer min/max are associative, so the reduction
 *    order cannot change results.
 */

#ifndef BALANCE_SUPPORT_SIMD_HH
#define BALANCE_SUPPORT_SIMD_HH

#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace balance::simd
{

inline constexpr int i32Lanes = 8; //!< lanes per I32x8 / U32x8
inline constexpr int f64Lanes = 4; //!< lanes per F64x4 / U64x4

typedef std::int32_t I32x8 __attribute__((vector_size(32)));
typedef std::uint32_t U32x8 __attribute__((vector_size(32)));
typedef double F64x4 __attribute__((vector_size(32)));
typedef std::int64_t I64x4 __attribute__((vector_size(32)));
typedef std::uint64_t U64x4 __attribute__((vector_size(32)));

inline I32x8
splatI32(std::int32_t x)
{
    return I32x8{x, x, x, x, x, x, x, x};
}

inline U32x8
splatU32(std::uint32_t x)
{
    return U32x8{x, x, x, x, x, x, x, x};
}

inline F64x4
splatF64(double x)
{
    return F64x4{x, x, x, x};
}

template <typename V>
inline V
load(const void *p)
{
    V v;
    std::memcpy(&v, p, sizeof(V));
    return v;
}

template <typename V>
inline void
store(void *p, V v)
{
    std::memcpy(p, &v, sizeof(V));
}

/** Lane-wise a < b ? a : b. */
inline I32x8
min(I32x8 a, I32x8 b)
{
    return a < b ? a : b;
}

/** Lane-wise a > b ? a : b. */
inline I32x8
max(I32x8 a, I32x8 b)
{
    return a > b ? a : b;
}

/** Lane-wise mask ? a : b (mask lanes are -1/0). */
inline I32x8
select(I32x8 mask, I32x8 a, I32x8 b)
{
    return mask ? a : b;
}

/**
 * Pack the sign bit of each i32 lane into bits [0,8) — the AVX2
 * movemask, with a portable fallback for generic lowering.
 */
inline unsigned
mask8(I32x8 m)
{
#if defined(__AVX2__)
    __m256 f;
    std::memcpy(&f, &m, sizeof(f));
    return unsigned(_mm256_movemask_ps(f));
#else
    unsigned bits = 0;
    for (int i = 0; i < i32Lanes; ++i)
        bits |= unsigned(m[i] < 0) << i;
    return bits;
#endif
}

/** Horizontal minimum of all 8 lanes. */
inline std::int32_t
hmin(I32x8 v)
{
    std::int32_t r = v[0];
    for (int i = 1; i < i32Lanes; ++i)
        r = v[i] < r ? v[i] : r;
    return r;
}

/** Horizontal maximum of all 8 lanes. */
inline std::int32_t
hmax(I32x8 v)
{
    std::int32_t r = v[0];
    for (int i = 1; i < i32Lanes; ++i)
        r = v[i] > r ? v[i] : r;
    return r;
}

} // namespace balance::simd

#endif // BALANCE_SUPPORT_SIMD_HH
