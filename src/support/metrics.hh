/**
 * @file
 * The metrics registry: named counters, gauges, and fixed-bucket
 * histograms for the bound engine, the schedulers, and the eval
 * drivers (see docs/OBSERVABILITY.md for the metric catalog).
 *
 * Counters and histograms are sharded per thread, keyed off the
 * ThreadPool worker id, so concurrent increments never contend on
 * one cache line; all shard values are integral sums, so the merged
 * value is independent of which worker produced which increment and
 * therefore bitwise identical for every --threads value. Gauges are
 * either last-write (serial contexts) or monotonic-max (order
 * independent), preserving the same thread invariance.
 *
 * Snapshots serialize through JsonWriter in registration order, so
 * two runs that register and update the same metrics emit the same
 * bytes. Registration (the name lookup) takes a mutex and may
 * allocate; handles returned by counter()/gauge()/histogram() are
 * stable for the registry's lifetime, so hot paths register once and
 * update lock-free.
 *
 * Telemetry rule (docs/OBSERVABILITY.md): metrics observe, never
 * steer — no algorithm may read a metric back.
 */

#ifndef BALANCE_SUPPORT_METRICS_HH
#define BALANCE_SUPPORT_METRICS_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace balance
{

class JsonWriter;
class MetricRegistry;

namespace detail
{

/** Shard count: slot 0 for external threads, the rest for workers. */
constexpr int metricShards = 33;

/** @return the calling thread's shard slot (worker id keyed). */
int metricShardSlot();

/** One cache-line-padded shard cell. */
struct alignas(64) ShardCell
{
    std::atomic<long long> v{0};
};

} // namespace detail

/** Monotonic event count, sharded per thread. */
class Counter
{
  public:
    /** Tick @p n events (relaxed; any thread). */
    void
    add(long long n = 1)
    {
        shards[std::size_t(detail::metricShardSlot())].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** @return the deterministic merged total (shards in slot order). */
    long long value() const;

    /** @return the registered name. */
    const std::string &name() const { return id; }

  private:
    friend class MetricRegistry;
    explicit Counter(std::string name) : id(std::move(name)) {}

    std::string id;
    detail::ShardCell shards[detail::metricShards];
};

/** Point-in-time value: last-write set() or monotonic observeMax(). */
class Gauge
{
  public:
    /** Overwrite the value (intended for serial reduction code). */
    void
    set(long long v)
    {
        cell.store(v, std::memory_order_relaxed);
    }

    /** Raise the value to at least @p v (order independent). */
    void
    observeMax(long long v)
    {
        long long cur = cell.load(std::memory_order_relaxed);
        while (v > cur &&
               !cell.compare_exchange_weak(cur, v,
                                           std::memory_order_relaxed)) {
        }
    }

    /** @return the current value. */
    long long value() const { return cell.load(std::memory_order_relaxed); }

    /** @return the registered name. */
    const std::string &name() const { return id; }

  private:
    friend class MetricRegistry;
    explicit Gauge(std::string name) : id(std::move(name)) {}

    std::string id;
    std::atomic<long long> cell{0};
};

/**
 * Fixed-bucket histogram over non-negative integers: bucket b counts
 * observations v with bit_width(v) == b (bucket 0 holds v <= 0), so
 * bucket boundaries are the powers of two. Count and sum are
 * tracked alongside; everything is an integral sum sharded per
 * thread, hence thread-count invariant.
 */
class Histogram
{
  public:
    static constexpr int numBuckets = 40;

    /** Record one observation (relaxed; any thread). */
    void observe(long long v);

    /** @return merged per-bucket counts, bucket order. */
    std::vector<long long> buckets() const;

    /** @return merged observation count. */
    long long count() const;

    /** @return merged observation sum. */
    long long sum() const;

    /** @return the registered name. */
    const std::string &name() const { return id; }

    /** @return the bucket index @p v falls into. */
    static int bucketOf(long long v);

    /**
     * Inclusive upper bound of bucket @p b: 0 for bucket 0 (which
     * holds v <= 0), 2^b - 1 otherwise. This is the value the
     * snapshot's derived percentiles report.
     */
    static long long bucketUpperBound(int b);

    /**
     * The @p q quantile (0 < q <= 1) as the upper bound of the
     * bucket containing observation ceil(q * count) in cumulative
     * bucket order; 0 when the histogram is empty. A deterministic
     * function of the merged bucket counts, so snapshots stay
     * byte-stable across equivalent runs (any thread count).
     */
    long long percentile(double q) const;

  private:
    friend class MetricRegistry;
    explicit Histogram(std::string name) : id(std::move(name)) {}

    struct alignas(64) Shard
    {
        std::atomic<long long> bucket[numBuckets] = {};
        std::atomic<long long> n{0};
        std::atomic<long long> total{0};
    };

    std::string id;
    Shard shards[detail::metricShards];
};

/**
 * Plain-data copy of every metric's merged value, each kind in
 * registration order. This is the one snapshot structure shared by
 * the JSON snapshot, the Prometheus exposition renderer
 * (support/prometheus.hh), and the metrics timeline — so every
 * consumer reports the same merged values.
 */
struct MetricSnapshot
{
    /** One histogram's merged state. */
    struct HistogramValues
    {
        std::string name;
        long long count = 0;
        long long sum = 0;
        /** All Histogram::numBuckets buckets, untrimmed. */
        std::vector<long long> buckets;
    };

    std::vector<std::pair<std::string, long long>> counters;
    std::vector<std::pair<std::string, long long>> gauges;
    std::vector<HistogramValues> histograms;
};

/**
 * Registry of named metrics. counter()/gauge()/histogram() return the
 * existing metric when the name is known and create it (in
 * registration order) otherwise; a name registers as exactly one
 * kind, and re-requesting it as another kind panics.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** Zero every metric (tests; keeps registrations). */
    void reset();

    /**
     * Serialize all metrics, grouped by kind, each group in
     * registration order:
     * {"counters":{...},"gauges":{...},"histograms":{...}}.
     */
    void writeJson(JsonWriter &w) const;

    /** @return the writeJson() document as a string. */
    std::string snapshotJson() const;

    /**
     * Copy out every metric's merged value (safe concurrently with
     * updates: values are relaxed-atomic sums, so a mid-run snapshot
     * sees each metric at some recent monotone state).
     */
    MetricSnapshot snapshot() const;

    /**
     * The process-wide registry used by the instrumented layers and
     * dumped by --metrics-out.
     */
    static MetricRegistry &global();

  private:
    /** Registered metrics of one kind, registration order. */
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };
    struct Entry
    {
        Kind kind;
        std::size_t index; //!< into the kind's vector
    };

    const Entry *find(std::string_view name) const;

    mutable std::mutex mutex;
    std::vector<std::pair<std::string, Entry>> names;
    std::vector<std::unique_ptr<Counter>> counters;
    std::vector<std::unique_ptr<Gauge>> gauges;
    std::vector<std::unique_ptr<Histogram>> histograms;
};

} // namespace balance

#endif // BALANCE_SUPPORT_METRICS_HH
