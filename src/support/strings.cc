#include "support/strings.hh"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace balance
{

std::string
trim(std::string_view s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return std::string(s.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            return out;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string>
splitWhitespace(std::string_view s)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
parseInt(std::string_view s, long long &out)
{
    const char *begin = s.data();
    const char *end = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(begin, end, out);
    return ec == std::errc() && ptr == end;
}

bool
parseDouble(std::string_view s, double &out)
{
    // std::from_chars for double is not universally available; strtod
    // on a NUL-terminated copy is portable and exact enough here.
    std::string copy(s);
    if (copy.empty())
        return false;
    char *endp = nullptr;
    out = std::strtod(copy.c_str(), &endp);
    return endp == copy.c_str() + copy.size();
}

} // namespace balance
