#include "support/diagnostics.hh"

#include <cstdlib>
#include <iostream>

namespace balance
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

} // namespace balance
