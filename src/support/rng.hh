/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * Experiments must be exactly reproducible across platforms and
 * standard-library versions, so we implement our own generator
 * (xoshiro256**) and our own distributions instead of relying on
 * std::*_distribution, whose outputs are implementation-defined.
 */

#ifndef BALANCE_SUPPORT_RNG_HH
#define BALANCE_SUPPORT_RNG_HH

#include <cstdint>
#include <vector>

namespace balance
{

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Satisfies enough of UniformRandomBitGenerator to be used directly,
 * but all sampling in this library goes through the member helpers so
 * that the bit-to-variate mapping is pinned down.
 */
class Rng
{
  public:
    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(std::uint64_t seed);

    /** @return the next raw 64-bit output. */
    std::uint64_t next();

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return a uniform double in [0, 1). */
    double uniformDouble();

    /** @return a uniform double in [lo, hi). */
    double uniformDouble(double lo, double hi);

    /** @return true with probability @p p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /**
     * @return a geometrically distributed count of failures before the
     *         first success, with success probability @p p in (0, 1].
     */
    std::int64_t geometric(double p);

    /** @return a standard normal variate (Box-Muller, deterministic). */
    double normal();

    /** @return a normal variate with the given mean and stddev. */
    double normal(double mean, double stddev);

    /** @return exp(normal(mu, sigma)): a lognormal variate. */
    double logNormal(double mu, double sigma);

    /**
     * Sample an index according to non-negative weights.
     *
     * @param weights Per-index weights; must contain a positive entry.
     * @return an index in [0, weights.size()).
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Shuffle @p values in place (Fisher-Yates). */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = std::size_t(uniformInt(0, std::int64_t(i) - 1));
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Derive an independent child generator (for per-item streams). */
    Rng fork();

    /**
     * Deterministic per-instance stream for parallel work: the
     * stream depends only on (@p seed, @p instance), never on which
     * thread draws from it or how many instances ran before, so a
     * task can be evaluated on any worker in any order and still see
     * exactly the bits a serial run would. The instance id is
     * golden-ratio scrambled before being folded into the seed so
     * consecutive ids land in unrelated SplitMix64 orbits.
     */
    static Rng stream(std::uint64_t seed, std::uint64_t instance);

  private:
    std::uint64_t s[4];
    bool haveSpareNormal = false;
    double spareNormal = 0.0;
};

} // namespace balance

#endif // BALANCE_SUPPORT_RNG_HH
