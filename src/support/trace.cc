#include "support/trace.hh"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"

namespace balance
{

namespace
{

std::chrono::steady_clock::time_point
sessionEpoch()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

TraceSession::TraceSession()
{
    static std::atomic<std::uint64_t> nextId{1};
    sessionId = nextId.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t
TraceSession::nowUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - sessionEpoch())
        .count();
}

TraceSession::Buffer &
TraceSession::localBuffer()
{
    // One buffer per (session, thread). The session owns the buffer
    // so events outlive short-lived worker threads; the thread_local
    // cache maps never-reused session ids to buffers, so an entry
    // can never accidentally match a different session allocated at
    // a dead session's address.
    thread_local std::vector<std::pair<std::uint64_t, Buffer *>> cache;
    for (const auto &[id, buf] : cache) {
        if (id == sessionId)
            return *buf;
    }

    std::lock_guard<std::mutex> lock(registryMutex);
    auto buffer = std::make_unique<Buffer>();
    buffer->ring.resize(ringCapacity);
    buffer->tid = int(buffers.size());
    buffer->workerId = ThreadPool::currentWorkerId();
    buffers.push_back(std::move(buffer));
    cache.emplace_back(sessionId, buffers.back().get());
    return *buffers.back();
}

void
TraceSession::record(const char *name, std::int64_t tsUs,
                     std::int64_t durUs, std::int64_t arg)
{
    Buffer &b = localBuffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    TraceEvent &slot = b.ring[b.next];
    if (b.count == ringCapacity) {
        ++b.dropped; // overwriting the oldest event
        // Mirror drops into the metric registry so a truncated
        // trace is detectable from the snapshot alone, without
        // parsing the trace file (report_tool gates on this). The
        // handle is registry-lifetime stable, so the lookup happens
        // once per process.
        static Counter &dropCounter =
            MetricRegistry::global().counter("trace.ring_dropped");
        dropCounter.add(1);
    } else {
        ++b.count;
    }
    slot.name = name;
    slot.tsUs = tsUs;
    slot.durUs = durUs;
    slot.arg = arg;
    b.next = (b.next + 1) % ringCapacity;
}

std::string
TraceSession::toJson()
{
    std::lock_guard<std::mutex> lock(registryMutex);

    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();

    for (const auto &bptr : buffers) {
        Buffer &b = *bptr;
        std::lock_guard<std::mutex> bufLock(b.mutex);

        // Thread lane label: worker id when the buffer belongs to a
        // pool worker, "external" otherwise (main thread, tests).
        std::string lane = b.workerId >= 0
            ? "worker-" + std::to_string(b.workerId)
            : "external-" + std::to_string(b.tid);
        w.beginObject()
            .key("name").value("thread_name")
            .key("ph").value("M")
            .key("pid").value(1)
            .key("tid").value(b.tid)
            .key("args").beginObject()
            .key("name").value(lane)
            .endObject()
            .endObject();

        // Oldest-first: the ring's oldest live event sits at `next`
        // once the buffer has wrapped, at 0 otherwise.
        std::size_t start =
            b.count == ringCapacity ? b.next : 0;
        for (std::size_t i = 0; i < b.count; ++i) {
            const TraceEvent &e =
                b.ring[(start + i) % ringCapacity];
            w.beginObject()
                .key("name").value(e.name)
                .key("ph").value("X")
                .key("pid").value(1)
                .key("tid").value(b.tid)
                .key("ts").value(static_cast<long long>(e.tsUs))
                .key("dur").value(static_cast<long long>(e.durUs));
            if (e.arg >= 0) {
                w.key("args").beginObject()
                    .key("arg").value(static_cast<long long>(e.arg))
                    .endObject();
            }
            w.endObject();
        }

        if (b.dropped > 0) {
            w.beginObject()
                .key("name").value("trace_ring_dropped")
                .key("ph").value("M")
                .key("pid").value(1)
                .key("tid").value(b.tid)
                .key("args").beginObject()
                .key("dropped").value(b.dropped)
                .endObject()
                .endObject();
        }
    }

    w.endArray().endObject();
    return w.str();
}

void
TraceSession::writeTo(const std::string &path)
{
    std::string doc = toJson();
    bsAssert(jsonLooksValid(doc), "trace session emitted invalid JSON");
    std::ofstream out(path);
    bsAssert(out.good(), "cannot open trace output '", path, "'");
    out << doc << "\n";
}

void
TraceSession::clear()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    for (const auto &bptr : buffers) {
        Buffer &b = *bptr;
        std::lock_guard<std::mutex> bufLock(b.mutex);
        b.next = 0;
        b.count = 0;
        b.dropped = 0;
    }
}

std::size_t
TraceSession::bufferedEvents()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    std::size_t total = 0;
    for (const auto &bptr : buffers) {
        std::lock_guard<std::mutex> bufLock(bptr->mutex);
        total += bptr->count;
    }
    return total;
}

long long
TraceSession::droppedEvents()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    long long total = 0;
    for (const auto &bptr : buffers) {
        std::lock_guard<std::mutex> bufLock(bptr->mutex);
        total += bptr->dropped;
    }
    return total;
}

TraceSession &
TraceSession::global()
{
    static TraceSession *session = new TraceSession();
    return *session;
}

} // namespace balance
