#include "support/http.hh"

#include <poll.h>
#include <sys/socket.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace balance
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Milliseconds left until @p deadline, clamped at 0. */
int
remainingMs(Clock::time_point deadline)
{
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    return left < 0 ? 0 : int(left > 1 << 30 ? 1 << 30 : left);
}

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = char(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t'))
        ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t'))
        --e;
    return s.substr(b, e - b);
}

/** recv() against an absolute deadline (infinite when @p infinite). */
ssize_t
recvUntil(int fd, void *buf, std::size_t len, bool infinite,
          Clock::time_point deadline)
{
    for (;;) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        int waitMs = infinite ? -1 : remainingMs(deadline);
        if (!infinite && waitMs == 0)
            return -2;
        int rc = ::poll(&pfd, 1, waitMs);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (rc == 0)
            return -2; // deadline expired
        ssize_t n = ::recv(fd, buf, len, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return n;
    }
}

} // namespace

const std::string *
HttpRequest::header(const std::string &nameLower) const
{
    for (const auto &[name, value] : headers) {
        if (name == nameLower)
            return &value;
    }
    return nullptr;
}

ssize_t
recvWithDeadline(int fd, void *buf, std::size_t len, int deadlineMs)
{
    bool infinite = deadlineMs <= 0;
    return recvUntil(fd, buf, len, infinite,
                     Clock::now() +
                         std::chrono::milliseconds(
                             infinite ? 0 : deadlineMs));
}

HttpReadResult
readHttpRequest(int fd, HttpRequest &out, const HttpLimits &limits)
{
    out = HttpRequest{};
    bool infinite = limits.recvTimeoutMs <= 0;
    Clock::time_point deadline =
        Clock::now() +
        std::chrono::milliseconds(infinite ? 0 : limits.recvTimeoutMs);

    // Accumulate until the head terminator; anything past it is the
    // start of the body.
    std::string data;
    char buf[4096];
    std::size_t headEnd;
    for (;;) {
        headEnd = data.find("\r\n\r\n");
        if (headEnd != std::string::npos)
            break;
        if (data.size() > limits.maxHeadBytes)
            return HttpReadResult::TooLarge;
        ssize_t n = recvUntil(fd, buf, sizeof(buf), infinite, deadline);
        if (n == -2)
            return HttpReadResult::Timeout;
        if (n < 0)
            return HttpReadResult::Malformed;
        if (n == 0) {
            return data.empty() ? HttpReadResult::Closed
                                : HttpReadResult::Malformed;
        }
        data.append(buf, std::size_t(n));
    }

    // Request line: METHOD SP TARGET SP HTTP/x.y
    std::size_t lineEnd = data.find("\r\n");
    std::string line = data.substr(0, lineEnd);
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        sp1 == 0 || sp2 == sp1 + 1)
        return HttpReadResult::Malformed;
    out.method = line.substr(0, sp1);
    out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    out.version = line.substr(sp2 + 1);
    if (out.version.rfind("HTTP/", 0) != 0 || out.target.empty())
        return HttpReadResult::Malformed;

    // Header block.
    std::size_t pos = lineEnd + 2;
    while (pos < headEnd) {
        std::size_t end = data.find("\r\n", pos);
        std::string header = data.substr(pos, end - pos);
        pos = end + 2;
        std::size_t colon = header.find(':');
        if (colon == std::string::npos || colon == 0)
            return HttpReadResult::Malformed;
        out.headers.emplace_back(toLower(trim(header.substr(0, colon))),
                                 trim(header.substr(colon + 1)));
    }

    // Body: Content-Length only. Chunked encoding is out of scope —
    // reject it rather than silently misread the framing.
    if (out.header("transfer-encoding"))
        return HttpReadResult::Malformed;
    std::size_t bodyLen = 0;
    if (const std::string *cl = out.header("content-length")) {
        errno = 0;
        char *endp = nullptr;
        unsigned long long v = std::strtoull(cl->c_str(), &endp, 10);
        if (errno != 0 || endp == cl->c_str() || *endp != '\0')
            return HttpReadResult::Malformed;
        if (v > limits.maxBodyBytes)
            return HttpReadResult::TooLarge;
        bodyLen = std::size_t(v);
    }
    out.body = data.substr(headEnd + 4);
    if (out.body.size() > bodyLen)
        return HttpReadResult::Malformed; // bytes beyond the declared body
    while (out.body.size() < bodyLen) {
        ssize_t n = recvUntil(fd, buf, sizeof(buf), infinite, deadline);
        if (n == -2)
            return HttpReadResult::Timeout;
        if (n <= 0)
            return HttpReadResult::Malformed; // truncated body
        out.body.append(buf, std::size_t(n));
        if (out.body.size() > bodyLen)
            return HttpReadResult::Malformed;
    }
    return HttpReadResult::Ok;
}

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 408:
        return "Request Timeout";
      case 413:
        return "Payload Too Large";
      case 429:
        return "Too Many Requests";
      case 500:
        return "Internal Server Error";
      case 503:
        return "Service Unavailable";
      default:
        return "Error";
    }
}

bool
writeAllFd(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    std::size_t done = 0;
    while (done < len) {
        ssize_t n = ::send(fd, p + done, len - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false; // peer went away; nothing useful to do
        }
        done += std::size_t(n);
    }
    return true;
}

void
writeHttpResponse(int fd, int status, const std::string &contentType,
                  const std::string &body, bool headOnly)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       httpStatusText(status) + "\r\n";
    head += "Content-Type: " + contentType + "\r\n";
    head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    head += "Connection: close\r\n\r\n";
    if (!writeAllFd(fd, head.data(), head.size()))
        return;
    if (!headOnly)
        writeAllFd(fd, body.data(), body.size());
}

} // namespace balance
