#include "support/json.hh"

#include <cctype>
#include <cstdio>

#include "support/diagnostics.hh"

namespace balance
{

void
JsonWriter::separator()
{
    if (expectValue) {
        // Value for a pending key: the ':' was already written.
        expectValue = false;
        return;
    }
    if (!stack.empty() && hasElem.back() == '1')
        out += ',';
    if (!stack.empty())
        hasElem.back() = '1';
}

void
JsonWriter::raw(std::string_view text)
{
    out.append(text.data(), text.size());
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    stack += 'o';
    hasElem += '0';
    out += '{';
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    bsAssert(!stack.empty() && stack.back() == 'o' && !expectValue,
             "endObject outside an object");
    stack.pop_back();
    hasElem.pop_back();
    out += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    stack += 'a';
    hasElem += '0';
    out += '[';
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    bsAssert(!stack.empty() && stack.back() == 'a' && !expectValue,
             "endArray outside an array");
    stack.pop_back();
    hasElem.pop_back();
    out += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    bsAssert(!stack.empty() && stack.back() == 'o' && !expectValue,
             "key outside an object");
    separator();
    quoted(k);
    out += ':';
    expectValue = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separator();
    quoted(v);
    return *this;
}

void
JsonWriter::quoted(std::string_view v)
{
    out += '"';
    for (char c : v) {
        switch (c) {
          case '"': raw("\\\""); break;
          case '\\': raw("\\\\"); break;
          case '\n': raw("\\n"); break;
          case '\r': raw("\\r"); break;
          case '\t': raw("\\t"); break;
          default:
            if ((unsigned char)(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                raw(buf);
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    char buf[40];
    // %.12g round-trips every quantity we emit (timings, ratios,
    // bound values) without trailing noise digits.
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    raw(buf);
    return *this;
}

JsonWriter &
JsonWriter::value(long long v)
{
    separator();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    raw(buf);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    raw(v ? "true" : "false");
    return *this;
}

namespace
{

/** Recursive-descent structural checker over @p text. */
struct Checker
{
    std::string_view text;
    std::size_t at = 0;
    int depth = 0;
    static constexpr int maxDepth = 256;

    bool atEnd() const { return at >= text.size(); }
    char peek() const { return text[at]; }

    void
    skipWs()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r'))
            ++at;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(at, word.size()) != word)
            return false;
        at += word.size();
        return true;
    }

    bool
    string()
    {
        if (atEnd() || peek() != '"')
            return false;
        ++at;
        while (!atEnd() && peek() != '"') {
            // RFC 8259: control characters (U+0000..U+001F) must be
            // escaped; a raw one makes the document invalid.
            if ((unsigned char)(peek()) < 0x20)
                return false;
            if (peek() == '\\') {
                ++at;
                if (atEnd())
                    return false;
                char e = peek();
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++at;
                        if (atEnd() || !std::isxdigit(
                                           (unsigned char)(peek())))
                            return false;
                    }
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++at;
        }
        if (atEnd())
            return false;
        ++at; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = at;
        if (!atEnd() && peek() == '-')
            ++at;
        // Integer part: "0" alone or a nonzero-led digit run (JSON
        // forbids leading zeros).
        if (atEnd() || !std::isdigit((unsigned char)(peek())))
            return false;
        if (peek() == '0') {
            ++at;
        } else {
            while (!atEnd() && std::isdigit((unsigned char)(peek())))
                ++at;
        }
        if (!atEnd() && peek() == '.') {
            ++at;
            std::size_t frac = at;
            while (!atEnd() && std::isdigit((unsigned char)(peek())))
                ++at;
            if (at == frac)
                return false;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++at;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++at;
            std::size_t exp = at;
            while (!atEnd() && std::isdigit((unsigned char)(peek())))
                ++at;
            if (at == exp)
                return false;
        }
        return at > start;
    }

    bool
    value()
    {
        skipWs();
        if (atEnd() || ++depth > maxDepth)
            return false;
        bool ok = false;
        char c = peek();
        if (c == '{')
            ok = object();
        else if (c == '[')
            ok = array();
        else if (c == '"')
            ok = string();
        else if (c == 't')
            ok = literal("true");
        else if (c == 'f')
            ok = literal("false");
        else if (c == 'n')
            ok = literal("null");
        else
            ok = number();
        --depth;
        return ok;
    }

    bool
    object()
    {
        ++at; // '{'
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++at;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (atEnd() || peek() != ':')
                return false;
            ++at;
            if (!value())
                return false;
            skipWs();
            if (atEnd())
                return false;
            if (peek() == '}') {
                ++at;
                return true;
            }
            if (peek() != ',')
                return false;
            ++at;
        }
    }

    bool
    array()
    {
        ++at; // '['
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++at;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (atEnd())
                return false;
            if (peek() == ']') {
                ++at;
                return true;
            }
            if (peek() != ',')
                return false;
            ++at;
        }
    }
};

} // namespace

bool
jsonLooksValid(std::string_view text)
{
    Checker c{text};
    if (!c.value())
        return false;
    c.skipWs();
    return c.atEnd();
}

} // namespace balance
