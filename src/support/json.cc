#include "support/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/** Append the UTF-8 encoding of @p cp (a valid scalar value). */
void
appendUtf8(std::string &out, unsigned cp)
{
    if (cp < 0x80) {
        out += char(cp);
    } else if (cp < 0x800) {
        out += char(0xc0 | (cp >> 6));
        out += char(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
        out += char(0xe0 | (cp >> 12));
        out += char(0x80 | ((cp >> 6) & 0x3f));
        out += char(0x80 | (cp & 0x3f));
    } else {
        out += char(0xf0 | (cp >> 18));
        out += char(0x80 | ((cp >> 12) & 0x3f));
        out += char(0x80 | ((cp >> 6) & 0x3f));
        out += char(0x80 | (cp & 0x3f));
    }
}

/**
 * Decode one UTF-8 sequence starting at @p v[i]. On success stores
 * the code point and the sequence length; rejects overlong forms,
 * surrogates, and values beyond U+10FFFF so the writer never emits
 * an escape the parser would refuse.
 */
bool
decodeUtf8(std::string_view v, std::size_t i, unsigned *cp,
           std::size_t *len)
{
    auto cont = [&](std::size_t k) {
        return i + k < v.size() &&
               ((unsigned char)(v[i + k]) & 0xc0) == 0x80;
    };
    unsigned b0 = (unsigned char)(v[i]);
    if (b0 >= 0xc2 && b0 <= 0xdf && cont(1)) {
        *cp = ((b0 & 0x1f) << 6) | ((unsigned char)(v[i + 1]) & 0x3f);
        *len = 2;
        return true;
    }
    if (b0 >= 0xe0 && b0 <= 0xef && cont(1) && cont(2)) {
        unsigned c = ((b0 & 0x0f) << 12) |
                     (((unsigned char)(v[i + 1]) & 0x3f) << 6) |
                     ((unsigned char)(v[i + 2]) & 0x3f);
        if (c < 0x800 || (c >= 0xd800 && c <= 0xdfff))
            return false;
        *cp = c;
        *len = 3;
        return true;
    }
    if (b0 >= 0xf0 && b0 <= 0xf4 && cont(1) && cont(2) && cont(3)) {
        unsigned c = ((b0 & 0x07) << 18) |
                     (((unsigned char)(v[i + 1]) & 0x3f) << 12) |
                     (((unsigned char)(v[i + 2]) & 0x3f) << 6) |
                     ((unsigned char)(v[i + 3]) & 0x3f);
        if (c < 0x10000 || c > 0x10ffff)
            return false;
        *cp = c;
        *len = 4;
        return true;
    }
    return false;
}

} // namespace

void
JsonWriter::separator()
{
    if (expectValue) {
        // Value for a pending key: the ':' was already written.
        expectValue = false;
        return;
    }
    if (!stack.empty() && hasElem.back() == '1')
        out += ',';
    if (!stack.empty())
        hasElem.back() = '1';
}

void
JsonWriter::raw(std::string_view text)
{
    out.append(text.data(), text.size());
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    stack += 'o';
    hasElem += '0';
    out += '{';
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    bsAssert(!stack.empty() && stack.back() == 'o' && !expectValue,
             "endObject outside an object");
    stack.pop_back();
    hasElem.pop_back();
    out += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    stack += 'a';
    hasElem += '0';
    out += '[';
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    bsAssert(!stack.empty() && stack.back() == 'a' && !expectValue,
             "endArray outside an array");
    stack.pop_back();
    hasElem.pop_back();
    out += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    bsAssert(!stack.empty() && stack.back() == 'o' && !expectValue,
             "key outside an object");
    separator();
    quoted(k);
    out += ':';
    expectValue = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separator();
    quoted(v);
    return *this;
}

void
JsonWriter::quoted(std::string_view v)
{
    out += '"';
    for (std::size_t i = 0; i < v.size();) {
        char c = v[i];
        switch (c) {
          case '"': raw("\\\""); ++i; continue;
          case '\\': raw("\\\\"); ++i; continue;
          case '\n': raw("\\n"); ++i; continue;
          case '\r': raw("\\r"); ++i; continue;
          case '\t': raw("\\t"); ++i; continue;
        }
        unsigned char b = (unsigned char)(c);
        if (b < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            raw(buf);
            ++i;
        } else if (b < 0x80) {
            out += c;
            ++i;
        } else {
            // Non-ASCII: escape the UTF-8 sequence so the document
            // stays pure ASCII (astral planes as surrogate pairs).
            // A byte that is not valid UTF-8 passes through raw —
            // the repo never emits one, and dropping it would break
            // the parse/dump identity of whatever produced it.
            unsigned cp = 0;
            std::size_t len = 0;
            if (decodeUtf8(v, i, &cp, &len)) {
                char buf[16];
                if (cp < 0x10000) {
                    std::snprintf(buf, sizeof(buf), "\\u%04x", cp);
                } else {
                    unsigned rest = cp - 0x10000;
                    std::snprintf(buf, sizeof(buf), "\\u%04x\\u%04x",
                                  0xd800 + (rest >> 10),
                                  0xdc00 + (rest & 0x3ff));
                }
                raw(buf);
                i += len;
            } else {
                out += c;
                ++i;
            }
        }
    }
    out += '"';
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    // JSON has no inf/nan literals; null is the one portable stand-in.
    if (!std::isfinite(v)) {
        raw("null");
        return *this;
    }
    char buf[40];
    // %.12g keeps the common quantities we emit (timings, ratios,
    // bound values) free of trailing noise digits, but is lossy for
    // doubles that need up to 17 significant digits. Parse the
    // rendering back: when it is not bit-equal, pay the extra digits
    // so parse -> dump round-trips exactly.
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    if (std::strtod(buf, nullptr) != v)
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    raw(buf);
    return *this;
}

JsonWriter &
JsonWriter::value(long long v)
{
    separator();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    raw(buf);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    raw(v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separator();
    raw("null");
    return *this;
}

namespace
{

/** Recursive-descent structural checker over @p text. */
struct Checker
{
    std::string_view text;
    std::size_t at = 0;
    int depth = 0;
    static constexpr int maxDepth = 256;

    bool atEnd() const { return at >= text.size(); }
    char peek() const { return text[at]; }

    void
    skipWs()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r'))
            ++at;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(at, word.size()) != word)
            return false;
        at += word.size();
        return true;
    }

    /** Consume "XXXX" after a \u (at on the 'u'); false on bad hex. */
    bool
    hex4(unsigned *code)
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            ++at;
            if (atEnd() || !std::isxdigit((unsigned char)(peek())))
                return false;
            char h = peek();
            v = v * 16 +
                (unsigned)(h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
        }
        *code = v;
        return true;
    }

    /**
     * Consume a \u escape body ("uXXXX", plus the mandatory trailing
     * "\uXXXX" low half when XXXX is a high surrogate), leaving at on
     * the last consumed character. Lone surrogates are invalid.
     */
    bool
    unicodeEscape()
    {
        unsigned code = 0;
        if (!hex4(&code))
            return false;
        if (code >= 0xdc00 && code <= 0xdfff)
            return false;
        if (code >= 0xd800 && code <= 0xdbff) {
            if (at + 2 >= text.size() || text[at + 1] != '\\' ||
                text[at + 2] != 'u')
                return false;
            at += 2;
            unsigned low = 0;
            if (!hex4(&low))
                return false;
            if (low < 0xdc00 || low > 0xdfff)
                return false;
        }
        return true;
    }

    bool
    string()
    {
        if (atEnd() || peek() != '"')
            return false;
        ++at;
        while (!atEnd() && peek() != '"') {
            // RFC 8259: control characters (U+0000..U+001F) must be
            // escaped; a raw one makes the document invalid.
            if ((unsigned char)(peek()) < 0x20)
                return false;
            if (peek() == '\\') {
                ++at;
                if (atEnd())
                    return false;
                char e = peek();
                if (e == 'u') {
                    if (!unicodeEscape())
                        return false;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return false;
                }
            }
            ++at;
        }
        if (atEnd())
            return false;
        ++at; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = at;
        if (!atEnd() && peek() == '-')
            ++at;
        // Integer part: "0" alone or a nonzero-led digit run (JSON
        // forbids leading zeros).
        if (atEnd() || !std::isdigit((unsigned char)(peek())))
            return false;
        if (peek() == '0') {
            ++at;
        } else {
            while (!atEnd() && std::isdigit((unsigned char)(peek())))
                ++at;
        }
        if (!atEnd() && peek() == '.') {
            ++at;
            std::size_t frac = at;
            while (!atEnd() && std::isdigit((unsigned char)(peek())))
                ++at;
            if (at == frac)
                return false;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            ++at;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++at;
            std::size_t exp = at;
            while (!atEnd() && std::isdigit((unsigned char)(peek())))
                ++at;
            if (at == exp)
                return false;
        }
        return at > start;
    }

    bool
    value()
    {
        skipWs();
        if (atEnd() || ++depth > maxDepth)
            return false;
        bool ok = false;
        char c = peek();
        if (c == '{')
            ok = object();
        else if (c == '[')
            ok = array();
        else if (c == '"')
            ok = string();
        else if (c == 't')
            ok = literal("true");
        else if (c == 'f')
            ok = literal("false");
        else if (c == 'n')
            ok = literal("null");
        else
            ok = number();
        --depth;
        return ok;
    }

    bool
    object()
    {
        ++at; // '{'
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++at;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (atEnd() || peek() != ':')
                return false;
            ++at;
            if (!value())
                return false;
            skipWs();
            if (atEnd())
                return false;
            if (peek() == '}') {
                ++at;
                return true;
            }
            if (peek() != ',')
                return false;
            ++at;
        }
    }

    bool
    array()
    {
        ++at; // '['
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++at;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (atEnd())
                return false;
            if (peek() == ']') {
                ++at;
                return true;
            }
            if (peek() != ',')
                return false;
            ++at;
        }
    }
};

} // namespace

bool
jsonLooksValid(std::string_view text)
{
    Checker c{text};
    if (!c.value())
        return false;
    c.skipWs();
    return c.atEnd();
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue out;
    out.k = Kind::Bool;
    out.b = v;
    return out;
}

JsonValue
JsonValue::makeInt(long long v)
{
    JsonValue out;
    out.k = Kind::Int;
    out.i = v;
    return out;
}

JsonValue
JsonValue::makeDouble(double v)
{
    JsonValue out;
    out.k = Kind::Double;
    out.d = v;
    return out;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue out;
    out.k = Kind::String;
    out.s = std::move(v);
    return out;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue out;
    out.k = Kind::Array;
    return out;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue out;
    out.k = Kind::Object;
    return out;
}

bool
JsonValue::asBool() const
{
    bsAssert(k == Kind::Bool, "JsonValue: not a bool");
    return b;
}

long long
JsonValue::asInt() const
{
    bsAssert(k == Kind::Int, "JsonValue: not an integer");
    return i;
}

double
JsonValue::asDouble() const
{
    bsAssert(k == Kind::Int || k == Kind::Double,
             "JsonValue: not a number");
    return k == Kind::Int ? double(i) : d;
}

const std::string &
JsonValue::asString() const
{
    bsAssert(k == Kind::String, "JsonValue: not a string");
    return s;
}

std::size_t
JsonValue::size() const
{
    bsAssert(k == Kind::Array || k == Kind::Object,
             "JsonValue: not a container");
    return k == Kind::Array ? arr.size() : obj.size();
}

const JsonValue &
JsonValue::at(std::size_t idx) const
{
    bsAssert(k == Kind::Array, "JsonValue: not an array");
    bsAssert(idx < arr.size(), "JsonValue: index ", idx,
             " out of range ", arr.size());
    return arr[idx];
}

const std::vector<JsonValue> &
JsonValue::elements() const
{
    bsAssert(k == Kind::Array, "JsonValue: not an array");
    return arr;
}

const JsonValue::Members &
JsonValue::members() const
{
    bsAssert(k == Kind::Object, "JsonValue: not an object");
    return obj;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    bsAssert(k == Kind::Object, "JsonValue: not an object");
    for (const auto &[name, value] : obj) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const JsonValue &
JsonValue::get(std::string_view key) const
{
    const JsonValue *v = find(key);
    bsAssert(v != nullptr, "JsonValue: missing member '",
             std::string(key), "'");
    return *v;
}

JsonValue &
JsonValue::append(JsonValue v)
{
    bsAssert(k == Kind::Array, "JsonValue: not an array");
    arr.push_back(std::move(v));
    return arr.back();
}

JsonValue &
JsonValue::set(std::string_view key, JsonValue v)
{
    bsAssert(k == Kind::Object, "JsonValue: not an object");
    for (auto &[name, value] : obj) {
        if (name == key) {
            value = std::move(v);
            return value;
        }
    }
    obj.emplace_back(std::string(key), std::move(v));
    return obj.back().second;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (k != other.k)
        return false;
    switch (k) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return b == other.b;
      case Kind::Int:
        return i == other.i;
      case Kind::Double:
        return d == other.d;
      case Kind::String:
        return s == other.s;
      case Kind::Array:
        return arr == other.arr;
      case Kind::Object:
        return obj == other.obj;
    }
    return false;
}

void
JsonValue::write(JsonWriter &w) const
{
    switch (k) {
      case Kind::Null:
        // JsonWriter has no null(); emit through the raw-value path
        // a bool would use. Null never appears in repo documents,
        // but the DOM must round-trip anything it parsed.
        w.null();
        break;
      case Kind::Bool:
        w.value(b);
        break;
      case Kind::Int:
        w.value(i);
        break;
      case Kind::Double:
        w.value(d);
        break;
      case Kind::String:
        w.value(s);
        break;
      case Kind::Array:
        w.beginArray();
        for (const JsonValue &e : arr)
            e.write(w);
        w.endArray();
        break;
      case Kind::Object:
        w.beginObject();
        for (const auto &[name, value] : obj) {
            w.key(name);
            value.write(w);
        }
        w.endObject();
        break;
    }
}

std::string
JsonValue::dump() const
{
    JsonWriter w;
    write(w);
    return w.str();
}

std::string
JsonParseError::describe() const
{
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column) + ": " + message;
}

namespace
{

/**
 * Recursive-descent parser building a JsonValue tree. Mirrors the
 * Checker grammar above exactly, so parseJson accepts precisely the
 * documents jsonLooksValid accepts (modulo the duplicate-key and
 * depth rules, which the structural checker does not enforce).
 */
struct Parser
{
    std::string_view text;
    std::size_t at = 0;
    int depth = 0;
    int maxDepth = 256;
    JsonParseError err;

    bool atEnd() const { return at >= text.size(); }
    char peek() const { return text[at]; }

    bool
    fail(std::string message)
    {
        // Keep the earliest failure: nested productions unwind
        // through their callers, which must not overwrite the
        // position of the original error.
        if (err.message.empty()) {
            err.message = std::move(message);
            err.offset = at;
        }
        return false;
    }

    void
    skipWs()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r'))
            ++at;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(at, word.size()) != word)
            return fail("invalid literal");
        at += word.size();
        return true;
    }

    /**
     * Consume "XXXX" after a \u (at on the 'u'), leaving at on the
     * last hex digit. Sets *code; fails on short or non-hex input.
     */
    bool
    hex4(unsigned *code)
    {
        unsigned v = 0;
        for (int n = 0; n < 4; ++n) {
            ++at;
            if (atEnd() || !std::isxdigit((unsigned char)(peek())))
                return fail("bad \\u escape");
            char h = peek();
            v = v * 16 +
                (unsigned)(h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
        }
        *code = v;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (atEnd() || peek() != '"')
            return fail("expected string");
        ++at;
        out.clear();
        while (!atEnd() && peek() != '"') {
            char c = peek();
            if ((unsigned char)(c) < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++at;
                if (atEnd())
                    return fail("truncated escape");
                char e = peek();
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    unsigned code = 0;
                    if (!hex4(&code))
                        return false;
                    if (code >= 0xdc00 && code <= 0xdfff)
                        return fail("unpaired low surrogate");
                    if (code >= 0xd800 && code <= 0xdbff) {
                        // A high surrogate is only meaningful as the
                        // first half of a \uXXXX\uXXXX pair.
                        if (at + 2 >= text.size() ||
                            text[at + 1] != '\\' || text[at + 2] != 'u')
                            return fail("high surrogate not followed "
                                        "by \\u escape");
                        at += 2;
                        unsigned low = 0;
                        if (!hex4(&low))
                            return false;
                        if (low < 0xdc00 || low > 0xdfff)
                            return fail("high surrogate not followed "
                                        "by low surrogate");
                        code = 0x10000 + ((code - 0xd800) << 10) +
                               (low - 0xdc00);
                    }
                    appendUtf8(out, code);
                    break;
                  }
                  default:
                    return fail("invalid escape character");
                }
                ++at;
            } else {
                out += c;
                ++at;
            }
        }
        if (atEnd())
            return fail("unterminated string");
        ++at; // closing quote
        return true;
    }

    bool
    number(JsonValue &out)
    {
        std::size_t start = at;
        bool integral = true;
        if (!atEnd() && peek() == '-')
            ++at;
        if (atEnd() || !std::isdigit((unsigned char)(peek())))
            return fail("invalid number");
        if (peek() == '0') {
            ++at;
        } else {
            while (!atEnd() && std::isdigit((unsigned char)(peek())))
                ++at;
        }
        if (!atEnd() && peek() == '.') {
            integral = false;
            ++at;
            std::size_t frac = at;
            while (!atEnd() && std::isdigit((unsigned char)(peek())))
                ++at;
            if (at == frac)
                return fail("digits required after decimal point");
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            integral = false;
            ++at;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                ++at;
            std::size_t exp = at;
            while (!atEnd() && std::isdigit((unsigned char)(peek())))
                ++at;
            if (at == exp)
                return fail("digits required in exponent");
        }
        std::string token(text.substr(start, at - start));
        if (integral) {
            errno = 0;
            char *end = nullptr;
            long long v = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0') {
                out = JsonValue::makeInt(v);
                return true;
            }
            // Out of int64 range: fall through to double.
        }
        out = JsonValue::makeDouble(std::strtod(token.c_str(), nullptr));
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (atEnd())
            return fail("unexpected end of input");
        if (++depth > maxDepth) {
            fail("nesting deeper than " + std::to_string(maxDepth));
            --depth;
            return false;
        }
        bool ok = false;
        char c = peek();
        if (c == '{') {
            ok = object(out);
        } else if (c == '[') {
            ok = array(out);
        } else if (c == '"') {
            std::string s;
            ok = string(s);
            if (ok)
                out = JsonValue::makeString(std::move(s));
        } else if (c == 't') {
            ok = literal("true");
            if (ok)
                out = JsonValue::makeBool(true);
        } else if (c == 'f') {
            ok = literal("false");
            if (ok)
                out = JsonValue::makeBool(false);
        } else if (c == 'n') {
            ok = literal("null");
            if (ok)
                out = JsonValue::makeNull();
        } else {
            ok = number(out);
        }
        --depth;
        return ok;
    }

    bool
    object(JsonValue &out)
    {
        ++at; // '{'
        out = JsonValue::makeObject();
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++at;
            return true;
        }
        while (true) {
            skipWs();
            std::size_t keyAt = at;
            std::string key;
            if (!string(key))
                return false;
            if (out.find(key)) {
                at = keyAt;
                return fail("duplicate key '" + key + "'");
            }
            skipWs();
            if (atEnd() || peek() != ':')
                return fail("expected ':' after key");
            ++at;
            JsonValue member;
            if (!value(member))
                return false;
            out.set(key, std::move(member));
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == '}') {
                ++at;
                return true;
            }
            if (peek() != ',')
                return fail("expected ',' or '}' in object");
            ++at;
        }
    }

    bool
    array(JsonValue &out)
    {
        ++at; // '['
        out = JsonValue::makeArray();
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++at;
            return true;
        }
        while (true) {
            JsonValue element;
            if (!value(element))
                return false;
            out.append(std::move(element));
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ']') {
                ++at;
                return true;
            }
            if (peek() != ',')
                return fail("expected ',' or ']' in array");
            ++at;
        }
    }
};

/** Fill line/column of @p err from its byte offset into @p text. */
void
locate(std::string_view text, JsonParseError &err)
{
    int line = 1;
    int column = 1;
    std::size_t stop = err.offset < text.size() ? err.offset
                                                : text.size();
    for (std::size_t i = 0; i < stop; ++i) {
        if (text[i] == '\n') {
            ++line;
            column = 1;
        } else {
            ++column;
        }
    }
    err.line = line;
    err.column = column;
}

} // namespace

JsonParseResult
parseJson(std::string_view text, int maxDepth)
{
    JsonParseResult result;
    Parser p;
    p.text = text;
    p.maxDepth = maxDepth;
    if (p.value(result.value)) {
        p.skipWs();
        if (!p.atEnd())
            p.fail("trailing content after document");
    }
    if (!p.err.message.empty()) {
        result.error = p.err;
        locate(text, result.error);
        result.value = JsonValue();
    }
    return result;
}

std::vector<JsonValue>
parseJsonLines(std::string_view text, JsonParseError *error)
{
    if (error)
        *error = JsonParseError{};
    std::vector<JsonValue> out;
    int lineNo = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        std::string_view line = eol == std::string_view::npos
            ? text.substr(pos)
            : text.substr(pos, eol - pos);
        ++lineNo;
        bool blank = true;
        for (char c : line) {
            if (c != ' ' && c != '\t' && c != '\r')
                blank = false;
        }
        if (!blank) {
            JsonParseResult r = parseJson(line);
            if (!r.ok()) {
                if (error) {
                    *error = r.error;
                    error->line = lineNo;
                }
                return out;
            }
            out.push_back(std::move(r.value));
        }
        if (eol == std::string_view::npos)
            break;
        pos = eol + 1;
    }
    return out;
}

} // namespace balance
