/**
 * @file
 * Live run-progress tracking for the diagnostics server's /progress
 * endpoint (docs/OBSERVABILITY.md): per-phase completed/total
 * superblock counts for the eval and capture sweeps, plus the most
 * recent branch-and-bound round summary (nodes expanded, incumbent,
 * certified floor), published between rounds only.
 *
 * Like every telemetry layer in this repo, progress observes and
 * never steers: no algorithm reads a progress value back, so
 * enabling the tracker leaves every schedule, bound, and artifact
 * byte identical to a run with it off. The tracker is off by
 * default; when off, every instrumented call site pays exactly one
 * relaxed atomic load (the enabled() check) and nothing else — no
 * registration, no allocation, no contended writes.
 *
 * Updates are plain relaxed atomics: scrapers see values that are
 * individually consistent and monotone within a phase generation,
 * but a snapshot taken mid-update may pair a phase's counter with a
 * neighbour's slightly older one. That is the intended contract for
 * a live view; the authoritative numbers remain the post-run
 * artifacts.
 */

#ifndef BALANCE_SUPPORT_PROGRESS_HH
#define BALANCE_SUPPORT_PROGRESS_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <memory>
#include <mutex>
#include <vector>

namespace balance
{

class JsonWriter;

/**
 * One named phase's live counters. Handles are stable for the
 * tracker's lifetime (register once, update lock-free), mirroring
 * the MetricRegistry handle contract.
 */
class PhaseProgress
{
  public:
    /** Begin (or restart) the phase with @p total work items. */
    void
    start(long long total)
    {
        totalItems.store(total, std::memory_order_relaxed);
        doneItems.store(0, std::memory_order_relaxed);
        generation.fetch_add(1, std::memory_order_relaxed);
        running.store(true, std::memory_order_relaxed);
    }

    /** Mark @p n items complete (any thread; relaxed). */
    void
    tick(long long n = 1)
    {
        doneItems.fetch_add(n, std::memory_order_relaxed);
    }

    /** Mark the phase finished (completed stays at its final value). */
    void finish() { running.store(false, std::memory_order_relaxed); }

    long long total() const
    {
        return totalItems.load(std::memory_order_relaxed);
    }
    long long done() const
    {
        return doneItems.load(std::memory_order_relaxed);
    }
    /** @return how many times this phase has started. */
    long long starts() const
    {
        return generation.load(std::memory_order_relaxed);
    }
    bool active() const
    {
        return running.load(std::memory_order_relaxed);
    }

    /** @return the registered name. */
    const std::string &name() const { return id; }

  private:
    friend class ProgressTracker;
    explicit PhaseProgress(std::string name) : id(std::move(name)) {}

    std::string id;
    std::atomic<long long> totalItems{0};
    std::atomic<long long> doneItems{0};
    std::atomic<long long> generation{0};
    std::atomic<bool> running{false};
};

/** Last-published branch-and-bound search summary (see snapshot()). */
struct BnbProgress
{
    long long searches = 0;  //!< bnbSchedule calls that published
    long long rounds = 0;    //!< rounds of the most recent publisher
    long long nodesExpanded = 0; //!< nodes of the most recent publisher
    long long nodesTotal = 0;    //!< cumulative nodes across searches
    double incumbent = -1.0; //!< current incumbent WCT (-1 = none)
    double certifiedFloor = -1.0; //!< proven lower bound (-1 = none)
};

/**
 * The process-wide tracker behind /progress. Phase registration
 * takes a mutex and may allocate; instrumented hot paths check
 * enabled() first, so a disabled tracker costs one relaxed load per
 * would-be update.
 */
class ProgressTracker
{
  public:
    ProgressTracker() = default;
    ProgressTracker(const ProgressTracker &) = delete;
    ProgressTracker &operator=(const ProgressTracker &) = delete;

    /** Start publishing (the debug server enables this on start). */
    void enable() { on.store(true, std::memory_order_relaxed); }

    /** Stop publishing; registered phases and values remain. */
    void disable() { on.store(false, std::memory_order_relaxed); }

    /** @return true when instrumentation should publish. */
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /**
     * Register-or-get the phase named @p name. Call only after an
     * enabled() check: registration is mutexed and allocating.
     */
    PhaseProgress &phase(std::string_view name);

    /**
     * Publish one branch-and-bound round summary. Written between
     * rounds only (never mid-round), so every published tuple is a
     * value the deterministic search actually held. Concurrent
     * searches (the eval driver runs one certifier per superblock)
     * interleave last-write; nodesTotal alone is cumulative.
     *
     * @param nodesExpanded Nodes expanded so far in this search.
     * @param nodesDelta Nodes newly expanded since the last publish
     *        (accumulated into nodesTotal).
     * @param rounds Rounds completed so far in this search.
     * @param incumbent Current incumbent WCT (< 0 = none yet).
     * @param floor Best proven lower bound (< 0 = unknown).
     * @param searchDone True when this search just finished.
     */
    void publishBnb(long long nodesExpanded, long long nodesDelta,
                    long long rounds, double incumbent, double floor,
                    bool searchDone);

    /** @return the last-published B&B summary. */
    BnbProgress bnbProgress() const;

    /**
     * Serialize the live view: {"phases":[{name,total,done,starts,
     * active}...],"bnb":{...}} with phases in registration order.
     */
    void writeJson(JsonWriter &w) const;

    /** @return writeJson() as a document string. */
    std::string snapshotJson() const;

    /** Reset all phases and the B&B summary (tests). */
    void reset();

    /** The process-wide tracker served by /progress. */
    static ProgressTracker &global();

  private:
    std::atomic<bool> on{false};
    mutable std::mutex mutex; //!< guards registration only
    std::vector<std::unique_ptr<PhaseProgress>> phases;

    std::atomic<long long> bnbSearches{0};
    std::atomic<long long> bnbRounds{0};
    std::atomic<long long> bnbNodes{0};
    std::atomic<long long> bnbNodesTotal{0};
    std::atomic<std::uint64_t> bnbIncumbentBits{
        std::bit_cast<std::uint64_t>(-1.0)};
    std::atomic<std::uint64_t> bnbFloorBits{
        std::bit_cast<std::uint64_t>(-1.0)};
};

} // namespace balance

#endif // BALANCE_SUPPORT_PROGRESS_HH
