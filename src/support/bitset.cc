#include "support/bitset.hh"

#include <bit>

namespace balance
{

bool
DynBitset::empty() const
{
    for (auto w : words) {
        if (w)
            return false;
    }
    return true;
}

void
DynBitset::clearAll()
{
    for (auto &w : words)
        w = 0;
}

void
DynBitset::setAll()
{
    if (numBits == 0)
        return;
    for (auto &w : words)
        w = ~std::uint64_t{0};
    // Mask off the bits beyond the universe in the last word.
    std::size_t tail = numBits & 63;
    if (tail)
        words.back() &= (std::uint64_t{1} << tail) - 1;
}

std::size_t
DynBitset::count() const
{
    std::size_t n = 0;
    for (auto w : words)
        n += std::popcount(w);
    return n;
}

DynBitset &
DynBitset::operator|=(const DynBitset &other)
{
    bsAssert(numBits == other.numBits, "bitset universe mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] |= other.words[i];
    return *this;
}

DynBitset &
DynBitset::operator&=(const DynBitset &other)
{
    bsAssert(numBits == other.numBits, "bitset universe mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] &= other.words[i];
    return *this;
}

DynBitset &
DynBitset::subtract(const DynBitset &other)
{
    bsAssert(numBits == other.numBits, "bitset universe mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] &= ~other.words[i];
    return *this;
}

bool
DynBitset::intersects(const DynBitset &other) const
{
    bsAssert(numBits == other.numBits, "bitset universe mismatch");
    for (std::size_t i = 0; i < words.size(); ++i) {
        if (words[i] & other.words[i])
            return true;
    }
    return false;
}

bool
DynBitset::isSubsetOf(const DynBitset &other) const
{
    bsAssert(numBits == other.numBits, "bitset universe mismatch");
    for (std::size_t i = 0; i < words.size(); ++i) {
        if (words[i] & ~other.words[i])
            return false;
    }
    return true;
}

bool
DynBitset::operator==(const DynBitset &other) const
{
    return numBits == other.numBits && words == other.words;
}

std::size_t
DynBitset::findFirst(std::size_t from) const
{
    if (from >= numBits)
        return numBits;
    std::size_t w = from >> 6;
    std::uint64_t bits = words[w] & (~std::uint64_t{0} << (from & 63));
    while (true) {
        if (bits)
            return w * 64 + std::countr_zero(bits);
        if (++w >= words.size())
            return numBits;
        bits = words[w];
    }
}

std::vector<std::uint32_t>
DynBitset::toIndices() const
{
    std::vector<std::uint32_t> out;
    out.reserve(count());
    forEach([&](std::size_t i) { out.push_back(std::uint32_t(i)); });
    return out;
}

DynBitset
operator|(DynBitset lhs, const DynBitset &rhs)
{
    lhs |= rhs;
    return lhs;
}

DynBitset
operator&(DynBitset lhs, const DynBitset &rhs)
{
    lhs &= rhs;
    return lhs;
}

} // namespace balance
