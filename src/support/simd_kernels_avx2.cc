/**
 * @file
 * The AVX2 kernel table: the shared vector bodies compiled with
 * -mavx2 (set per-source by cmake/enable_intrinsics.cmake). Only the
 * dispatcher calls avx2SimdKernels(), and only after CPUID confirms
 * the host supports AVX2, so no AVX2 instruction ever executes on a
 * host without it.
 */

#define BALANCE_SIMD_TABLE_LEVEL SimdLevel::Avx2
#define BALANCE_SIMD_TABLE_NAME "avx2"
#define BALANCE_SIMD_TABLE_FUNC avx2SimdKernels

#include "support/simd_kernels_impl.hh"
