/**
 * @file
 * Scoped-span tracing in the Chrome trace-event format (load the
 * emitted file in chrome://tracing or https://ui.perfetto.dev).
 *
 * A TraceSpan is an RAII guard: construction samples the clock, the
 * destructor records one complete ("ph":"X") event into the calling
 * thread's ring buffer. When tracing is disabled (the default) the
 * guard reduces to one relaxed atomic load and never allocates, so
 * instrumented hot paths cost nothing measurable; when enabled,
 * recording is an uncontended per-thread mutex plus a ring-slot
 * write — still allocation-free after the buffer's first use.
 *
 * Ring buffers are fixed-capacity and overwrite the oldest events on
 * wrap (the dropped count is reported in the flush banner). Buffers
 * are owned by the session, not the thread, so events survive worker
 * threads that exit before the flush (e.g. dedicated parallelFor
 * pools). Span names must be string literals (or otherwise outlive
 * the session): buffers store the pointer.
 *
 * Tracing records wall-clock behavior only — it never feeds back
 * into any algorithm, so schedules, bounds, and counters are bitwise
 * identical with tracing on or off.
 */

#ifndef BALANCE_SUPPORT_TRACE_HH
#define BALANCE_SUPPORT_TRACE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace balance
{

/** One completed span (internal; exposed for tests). */
struct TraceEvent
{
    const char *name = nullptr;
    std::int64_t tsUs = 0;  //!< start, microseconds since session epoch
    std::int64_t durUs = 0; //!< duration, microseconds
    std::int64_t arg = -1;  //!< optional payload (-1 = none)
};

/** Process-wide trace recorder (see file comment). */
class TraceSession
{
  public:
    TraceSession();
    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Start recording spans. */
    void enable() { on.store(true, std::memory_order_relaxed); }

    /** Stop recording; buffered events stay until clear(). */
    void disable() { on.store(false, std::memory_order_relaxed); }

    /** @return true while spans are being recorded. */
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Record one completed span on the calling thread's buffer. */
    void record(const char *name, std::int64_t tsUs, std::int64_t durUs,
                std::int64_t arg);

    /** @return microseconds since the session epoch. */
    std::int64_t nowUs() const;

    /**
     * Merge every thread's buffer into one Chrome trace-event JSON
     * document ({"traceEvents":[...]}), events ordered by start time.
     */
    std::string toJson();

    /** toJson() into @p path (panics when the file cannot open). */
    void writeTo(const std::string &path);

    /** Drop all buffered events and dropped counts (tests). */
    void clear();

    /** @return events recorded and still buffered, across threads. */
    std::size_t bufferedEvents();

    /** @return events lost to ring wrap-around, across threads. */
    long long droppedEvents();

    /** Ring capacity per thread buffer. */
    static constexpr std::size_t ringCapacity = 1 << 15;

    /** The process-wide session driven by --trace-out. */
    static TraceSession &global();

  private:
    struct Buffer
    {
        std::mutex mutex;
        std::vector<TraceEvent> ring;
        std::size_t next = 0;    //!< write cursor (mod capacity)
        std::size_t count = 0;   //!< valid events, <= capacity
        long long dropped = 0;   //!< overwritten events
        int tid = 0;             //!< stable per-thread lane id
        int workerId = -1;       //!< ThreadPool worker id at creation
    };

    Buffer &localBuffer();

    /** Unique per session object, never reused (cache safety). */
    std::uint64_t sessionId;
    std::atomic<bool> on{false};
    std::mutex registryMutex;
    std::vector<std::unique_ptr<Buffer>> buffers;
};

/** RAII scoped span against the global session. */
class TraceSpan
{
  public:
    /**
     * @param name Span label; must be a string literal (stored by
     *        pointer).
     * @param arg Optional integral payload shown as args.arg.
     */
    explicit TraceSpan(const char *name, std::int64_t arg = -1)
    {
        TraceSession &s = TraceSession::global();
        if (s.enabled()) {
            spanName = name;
            spanArg = arg;
            startUs = s.nowUs();
        }
    }

    ~TraceSpan()
    {
        if (spanName) {
            TraceSession &s = TraceSession::global();
            s.record(spanName, startUs, s.nowUs() - startUs, spanArg);
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *spanName = nullptr; //!< null = tracing was off
    std::int64_t spanArg = -1;
    std::int64_t startUs = 0;
};

} // namespace balance

#endif // BALANCE_SUPPORT_TRACE_HH
