/**
 * @file
 * Fixed-width ASCII table formatting for the benchmark harnesses.
 * Every bench binary prints paper-style tables through this class so
 * that all reproduced tables share one layout.
 */

#ifndef BALANCE_SUPPORT_TABLE_HH
#define BALANCE_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace balance
{

/**
 * Column-aligned text table. Columns are sized to their widest cell;
 * the first row added via setHeader() is separated from the body by a
 * rule. Numeric formatting is the caller's job (use fmtDouble /
 * fmtPercent below for consistency).
 */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append one body row. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal rule between body rows. */
    void addRule();

    /** Render the table; each line is newline-terminated. */
    std::string render() const;

  private:
    std::vector<std::string> header;
    /** Body rows; an empty vector encodes a rule. */
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with @p digits fraction digits (fixed notation). */
std::string fmtDouble(double v, int digits = 2);

/** Format @p v as a percentage with @p digits fraction digits. */
std::string fmtPercent(double v, int digits = 2);

/** Format an integer with thousands separators for readability. */
std::string fmtCount(long long v);

/**
 * Render @p values as a text sparkline: one of eight block glyphs
 * (U+2581..U+2588) per value, scaled so the largest value maps to
 * the full block; zero and negative values render as the lowest
 * block. An all-zero or empty input yields a flat line. Used by the
 * run reports for gap histograms (docs/REPORTING.md).
 */
std::string sparkline(const std::vector<long long> &values);

} // namespace balance

#endif // BALANCE_SUPPORT_TABLE_HH
