#include "support/metrics.hh"

#include <algorithm>
#include <bit>

#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/thread_pool.hh"

namespace balance
{

namespace detail
{

int
metricShardSlot()
{
    int worker = ThreadPool::currentWorkerId();
    if (worker < 0)
        return 0;
    return 1 + worker % (metricShards - 1);
}

} // namespace detail

long long
Counter::value() const
{
    long long total = 0;
    for (const detail::ShardCell &s : shards)
        total += s.v.load(std::memory_order_relaxed);
    return total;
}

int
Histogram::bucketOf(long long v)
{
    if (v <= 0)
        return 0;
    int b = std::bit_width(static_cast<unsigned long long>(v));
    return b < numBuckets ? b : numBuckets - 1;
}

void
Histogram::observe(long long v)
{
    Shard &s = shards[std::size_t(detail::metricShardSlot())];
    s.bucket[std::size_t(bucketOf(v))].fetch_add(
        1, std::memory_order_relaxed);
    s.n.fetch_add(1, std::memory_order_relaxed);
    s.total.fetch_add(v, std::memory_order_relaxed);
}

std::vector<long long>
Histogram::buckets() const
{
    std::vector<long long> out(std::size_t(numBuckets), 0);
    for (const Shard &s : shards)
        for (int b = 0; b < numBuckets; ++b)
            out[std::size_t(b)] +=
                s.bucket[std::size_t(b)].load(std::memory_order_relaxed);
    return out;
}

long long
Histogram::count() const
{
    long long total = 0;
    for (const Shard &s : shards)
        total += s.n.load(std::memory_order_relaxed);
    return total;
}

long long
Histogram::sum() const
{
    long long total = 0;
    for (const Shard &s : shards)
        total += s.total.load(std::memory_order_relaxed);
    return total;
}

long long
Histogram::bucketUpperBound(int b)
{
    if (b <= 0)
        return 0;
    return (1LL << b) - 1;
}

long long
Histogram::percentile(double q) const
{
    std::vector<long long> counts = buckets();
    long long n = 0;
    for (long long c : counts)
        n += c;
    if (n <= 0)
        return 0;
    // Rank of the q-quantile observation, 1-based: ceil(q * n),
    // clamped into [1, n] so q == 0 and q == 1 stay well defined.
    long long rank = (long long)(q * double(n) + 0.9999999999);
    rank = std::max(1LL, std::min(n, rank));
    long long seen = 0;
    for (int b = 0; b < numBuckets; ++b) {
        seen += counts[std::size_t(b)];
        if (seen >= rank)
            return bucketUpperBound(b);
    }
    return bucketUpperBound(numBuckets - 1);
}

const MetricRegistry::Entry *
MetricRegistry::find(std::string_view name) const
{
    for (const auto &[n, e] : names) {
        if (n == name)
            return &e;
    }
    return nullptr;
}

Counter &
MetricRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (const Entry *e = find(name)) {
        bsAssert(e->kind == Kind::Counter, "metric '", std::string(name),
                 "' already registered as a different kind");
        return *counters[e->index];
    }
    counters.push_back(
        std::unique_ptr<Counter>(new Counter(std::string(name))));
    names.emplace_back(std::string(name),
                       Entry{Kind::Counter, counters.size() - 1});
    return *counters.back();
}

Gauge &
MetricRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (const Entry *e = find(name)) {
        bsAssert(e->kind == Kind::Gauge, "metric '", std::string(name),
                 "' already registered as a different kind");
        return *gauges[e->index];
    }
    gauges.push_back(std::unique_ptr<Gauge>(new Gauge(std::string(name))));
    names.emplace_back(std::string(name),
                       Entry{Kind::Gauge, gauges.size() - 1});
    return *gauges.back();
}

Histogram &
MetricRegistry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (const Entry *e = find(name)) {
        bsAssert(e->kind == Kind::Histogram, "metric '",
                 std::string(name),
                 "' already registered as a different kind");
        return *histograms[e->index];
    }
    histograms.push_back(
        std::unique_ptr<Histogram>(new Histogram(std::string(name))));
    names.emplace_back(std::string(name),
                       Entry{Kind::Histogram, histograms.size() - 1});
    return *histograms.back();
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (auto &c : counters)
        for (detail::ShardCell &s : c->shards)
            s.v.store(0, std::memory_order_relaxed);
    for (auto &g : gauges)
        g->cell.store(0, std::memory_order_relaxed);
    for (auto &h : histograms) {
        for (Histogram::Shard &s : h->shards) {
            for (int b = 0; b < Histogram::numBuckets; ++b)
                s.bucket[std::size_t(b)].store(
                    0, std::memory_order_relaxed);
            s.n.store(0, std::memory_order_relaxed);
            s.total.store(0, std::memory_order_relaxed);
        }
    }
}

void
MetricRegistry::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mutex);
    w.beginObject();

    w.key("counters").beginObject();
    for (const auto &[name, e] : names) {
        if (e.kind == Kind::Counter)
            w.key(name).value(counters[e.index]->value());
    }
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[name, e] : names) {
        if (e.kind == Kind::Gauge)
            w.key(name).value(gauges[e.index]->value());
    }
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, e] : names) {
        if (e.kind != Kind::Histogram)
            continue;
        const Histogram &h = *histograms[e.index];
        w.key(name).beginObject();
        w.key("count").value(h.count());
        w.key("sum").value(h.sum());
        // Derived percentiles (upper bound of the containing
        // power-of-two bucket) so report tooling never re-derives
        // them from the buckets; registration-order stable like
        // every other field.
        w.key("p50").value(h.percentile(0.50));
        w.key("p90").value(h.percentile(0.90));
        w.key("p99").value(h.percentile(0.99));
        w.key("p999").value(h.percentile(0.999));
        w.key("buckets").beginArray();
        // Trailing zero buckets are elided so documents stay small;
        // bucket b spans [2^(b-1), 2^b) with bucket 0 holding v <= 0.
        std::vector<long long> buckets = h.buckets();
        std::size_t last = buckets.size();
        while (last > 0 && buckets[last - 1] == 0)
            --last;
        for (std::size_t b = 0; b < last; ++b)
            w.value(buckets[b]);
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
}

MetricSnapshot
MetricRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex);
    MetricSnapshot snap;
    for (const auto &[name, e] : names) {
        switch (e.kind) {
          case Kind::Counter:
            snap.counters.emplace_back(name,
                                       counters[e.index]->value());
            break;
          case Kind::Gauge:
            snap.gauges.emplace_back(name, gauges[e.index]->value());
            break;
          case Kind::Histogram: {
            const Histogram &h = *histograms[e.index];
            MetricSnapshot::HistogramValues hv;
            hv.name = name;
            hv.count = h.count();
            hv.sum = h.sum();
            hv.buckets = h.buckets();
            snap.histograms.push_back(std::move(hv));
            break;
          }
        }
    }
    return snap;
}

std::string
MetricRegistry::snapshotJson() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

MetricRegistry &
MetricRegistry::global()
{
    static MetricRegistry *registry = new MetricRegistry();
    return *registry;
}

} // namespace balance
