/**
 * @file
 * Work-stealing thread pool for the experiment runners.
 *
 * Each worker owns a deque: the owner pushes and pops at the back
 * (LIFO, cache-friendly for nested task trees) while idle workers
 * steal from the front (FIFO, takes the oldest and therefore
 * typically largest subtree). External submissions are distributed
 * round-robin across the worker deques.
 *
 * TaskGroup is the structured-concurrency handle: tasks spawned
 * through a group can be waited on collectively, and a waiting
 * thread *helps* execute pending tasks instead of blocking, so
 * nested submission (a pool task spawning and waiting on subtasks)
 * cannot deadlock even on a single-worker pool.
 *
 * Determinism contract: the pool itself promises nothing about
 * execution order. Deterministic parallelism is layered on top (see
 * parallel_for.hh) by giving every task its own result slot and
 * reducing in index order.
 */

#ifndef BALANCE_SUPPORT_THREAD_POOL_HH
#define BALANCE_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace balance
{

class TaskGroup;

/** Fixed-size work-stealing thread pool. */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers; 0 means hardwareThreads(). The pool
     * joins its workers (after draining queued tasks) on destruction.
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return the number of worker threads. */
    int numThreads() const { return int(workers.size()); }

    /** @return std::thread::hardware_concurrency(), at least 1. */
    static int hardwareThreads();

    /**
     * @return the calling thread's worker index within its pool, or
     *         -1 for threads that are not pool workers (main thread,
     *         external submitters). Keys the per-thread metric
     *         shards and trace lanes (support/metrics.hh).
     */
    static int currentWorkerId();

    /**
     * Schedule @p fn on some worker. Safe to call from pool workers
     * (the task lands on the caller's own deque) and from any number
     * of external threads concurrently.
     */
    void submit(std::function<void()> fn);

    /**
     * Run one pending task on the calling thread, if any is queued.
     * Used by waiting TaskGroups to help instead of blocking.
     *
     * @return true when a task was executed.
     */
    bool tryRunOneTask();

    /**
     * Process-wide pool, created on first use with hardwareThreads()
     * workers. Never destroyed before static teardown.
     */
    static ThreadPool &global();

  private:
    friend class TaskGroup;

    /** One worker: its deque and the thread draining it. */
    struct Worker
    {
        std::deque<std::function<void()>> deque;
        std::mutex mutex;
        std::thread thread;
    };

    void workerLoop(int self);
    bool popOwn(int self, std::function<void()> &out);
    bool stealFrom(int self, std::function<void()> &out);

    std::vector<std::unique_ptr<Worker>> workers;
    /** Guards `queued` and the sleep/wake handshake. */
    std::mutex sleepMutex;
    std::condition_variable wake;
    /** Tasks pushed but not yet popped, guarded by sleepMutex. */
    long queued = 0;
    bool stopping = false;
    /** Round-robin cursor for external submissions. */
    std::atomic<unsigned> nextQueue{0};
};

/**
 * A set of tasks that can be waited on together. wait() helps the
 * pool execute pending work while the group is unfinished and
 * rethrows the first exception any task threw. The destructor
 * waits (and swallows exceptions) if wait() was never called.
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool)
        : pool(&pool)
    {}
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Spawn @p fn as a member of this group. */
    void run(std::function<void()> fn);

    /**
     * Block until every task spawned through this group finished,
     * executing pending pool tasks on this thread while waiting.
     * Rethrows the first exception thrown by a member task.
     */
    void wait();

  private:
    ThreadPool *pool;
    std::mutex doneMutex;
    std::condition_variable doneCv;
    /** Members spawned but not yet finished, guarded by doneMutex. */
    long outstanding = 0;
    std::exception_ptr firstError;
};

} // namespace balance

#endif // BALANCE_SUPPORT_THREAD_POOL_HH
