#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hh"

namespace balance
{

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x;
}

double
RunningStat::mean() const
{
    return n ? total / double(n) : 0.0;
}

double
RunningStat::min() const
{
    return n ? lo : 0.0;
}

double
RunningStat::max() const
{
    return n ? hi : 0.0;
}

void
SampleStat::add(double x)
{
    values.push_back(x);
    sorted = false;
}

double
SampleStat::sum() const
{
    double s = 0.0;
    for (double v : values)
        s += v;
    return s;
}

double
SampleStat::mean() const
{
    return values.empty() ? 0.0 : sum() / double(values.size());
}

double
SampleStat::max() const
{
    if (values.empty())
        return 0.0;
    ensureSorted();
    return values.back();
}

double
SampleStat::median() const
{
    return percentile(50.0);
}

double
SampleStat::percentile(double p) const
{
    bsAssert(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (values.empty())
        return 0.0;
    ensureSorted();
    // Nearest-rank definition: rank = ceil(p/100 * n), 1-based.
    std::size_t n = values.size();
    std::size_t rank = std::size_t(std::ceil(p / 100.0 * double(n)));
    if (rank == 0)
        rank = 1;
    return values[rank - 1];
}

void
SampleStat::ensureSorted() const
{
    if (!sorted) {
        std::sort(values.begin(), values.end());
        sorted = true;
    }
}

void
SurvivalCurve::add(double value, double weight)
{
    bsAssert(weight >= 0.0, "negative weight in SurvivalCurve");
    points.emplace_back(value, weight);
    total += weight;
    sorted = false;
}

std::vector<double>
SurvivalCurve::fractionAtOrBelow(const std::vector<double> &thresholds) const
{
    if (!sorted) {
        std::sort(points.begin(), points.end());
        sorted = true;
    }
    // Prefix weights over the sorted points.
    std::vector<double> prefix(points.size() + 1, 0.0);
    for (std::size_t i = 0; i < points.size(); ++i)
        prefix[i + 1] = prefix[i] + points[i].second;

    std::vector<double> out;
    out.reserve(thresholds.size());
    for (double t : thresholds) {
        // Count weight of points with value <= t.
        auto it = std::upper_bound(
            points.begin(), points.end(), t,
            [](double v, const std::pair<double, double> &pt) {
                return v < pt.first;
            });
        std::size_t idx = std::size_t(it - points.begin());
        out.push_back(total > 0.0 ? prefix[idx] / total : 0.0);
    }
    return out;
}

} // namespace balance
