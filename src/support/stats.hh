/**
 * @file
 * Statistics accumulators used by the experiment drivers: running
 * summaries (count/mean/max), exact percentile accumulators, and a
 * survival-curve builder for Figure-8-style CDF plots.
 */

#ifndef BALANCE_SUPPORT_STATS_HH
#define BALANCE_SUPPORT_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace balance
{

/**
 * Streaming summary of a sequence of doubles: count, sum, mean,
 * min and max. O(1) space; no percentiles.
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** @return the number of observations so far. */
    std::size_t count() const { return n; }

    /** @return the sum of observations (0 when empty). */
    double sum() const { return total; }

    /** @return the arithmetic mean (0 when empty). */
    double mean() const;

    /** @return the smallest observation (0 when empty). */
    double min() const;

    /** @return the largest observation (0 when empty). */
    double max() const;

  private:
    std::size_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Exact sample accumulator: stores all observations and answers
 * median / arbitrary percentile queries. O(n) space.
 */
class SampleStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** @return the number of observations. */
    std::size_t count() const { return values.size(); }

    /** @return the sum of observations (0 when empty). */
    double sum() const;

    /** @return the arithmetic mean (0 when empty). */
    double mean() const;

    /** @return the largest observation (0 when empty). */
    double max() const;

    /** @return the median (0 when empty). */
    double median() const;

    /**
     * @param p Percentile in [0, 100].
     * @return the nearest-rank percentile (0 when empty).
     */
    double percentile(double p) const;

  private:
    /** Sort the backing store if new values arrived since last query. */
    void ensureSorted() const;

    mutable std::vector<double> values;
    mutable bool sorted = true;
};

/**
 * Builder for survival curves such as the paper's Figure 8: given a
 * population of (value, weight) points, reports the weighted fraction
 * of the population with value <= x for a series of thresholds.
 */
class SurvivalCurve
{
  public:
    /** Add one population member with the given weight (default 1). */
    void add(double value, double weight = 1.0);

    /**
     * Evaluate the weighted CDF at each threshold.
     *
     * @param thresholds Query points, in any order.
     * @return fraction of total weight with value <= threshold,
     *         matching the order of @p thresholds.
     */
    std::vector<double> fractionAtOrBelow(
        const std::vector<double> &thresholds) const;

    /** @return total accumulated weight. */
    double totalWeight() const { return total; }

  private:
    mutable std::vector<std::pair<double, double>> points;
    mutable bool sorted = true;
    double total = 0.0;
};

} // namespace balance

#endif // BALANCE_SUPPORT_STATS_HH
