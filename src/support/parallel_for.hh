/**
 * @file
 * Deterministic parallel iteration on top of the work-stealing pool.
 *
 * parallelFor(n, fn, threads) runs fn(0) … fn(n-1) with dynamic
 * load balancing: `threads` self-scheduling loop tasks share an
 * atomic cursor, so a worker that drew a cheap index immediately
 * takes the next one. The *execution* order is nondeterministic,
 * but callers obtain bitwise-deterministic results by making fn(i)
 * a pure function that writes only into its own pre-sized slot i
 * and reducing the slots in index order afterwards — the pattern
 * every eval driver in this library follows. With threads == 1 (or
 * n <= 1) the loop runs inline on the caller, which is the identity
 * the determinism tests pin: any thread count must reproduce the
 * single-thread bytes.
 */

#ifndef BALANCE_SUPPORT_PARALLEL_FOR_HH
#define BALANCE_SUPPORT_PARALLEL_FOR_HH

#include <atomic>
#include <cstddef>
#include <memory>

#include "support/thread_pool.hh"

namespace balance
{

/**
 * Apply @p fn to every index in [0, n), using up to @p threads
 * concurrent executors (0 means ThreadPool::hardwareThreads()).
 *
 * @param n Iteration count.
 * @param fn Callable taking a std::size_t index. Must not touch
 *        shared mutable state except through its own slot.
 * @param threads Concurrency cap; 0 = hardware, 1 = inline serial.
 * @param pool Pool to run on; nullptr = ThreadPool::global() (or a
 *        dedicated pool when @p threads exceeds the global size).
 *
 * Exceptions thrown by @p fn propagate to the caller (first one
 * wins); remaining indices may or may not run.
 */
template <typename Fn>
void
parallelFor(std::size_t n, Fn &&fn, int threads = 0,
            ThreadPool *pool = nullptr)
{
    if (threads <= 0)
        threads = ThreadPool::hardwareThreads();
    if (std::size_t(threads) > n)
        threads = int(n);
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::unique_ptr<ThreadPool> owned;
    if (!pool) {
        if (threads <= ThreadPool::global().numThreads()) {
            pool = &ThreadPool::global();
        } else {
            owned = std::make_unique<ThreadPool>(threads);
            pool = owned.get();
        }
    }

    std::atomic<std::size_t> next{0};
    TaskGroup group(*pool);
    for (int t = 0; t < threads; ++t) {
        group.run([&] {
            for (std::size_t i;
                 (i = next.fetch_add(1, std::memory_order_relaxed)) < n;)
                fn(i);
        });
    }
    group.wait();
}

} // namespace balance

#endif // BALANCE_SUPPORT_PARALLEL_FOR_HH
