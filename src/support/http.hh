/**
 * @file
 * Minimal dependency-free socket/HTTP-1.1 plumbing shared by the
 * diagnostics server (support/debug_server.hh) and the scheduling
 * service (service/server.hh). Everything here is blocking I/O with
 * an explicit poll()-based deadline: a client that connects and then
 * stalls can hold a handler thread for at most `recvTimeoutMs`, never
 * forever.
 *
 * The request reader understands exactly the subset both servers
 * need — a request line, headers, and an optional Content-Length
 * body — and classifies every failure (peer closed, deadline
 * expired, head/body over limit, unparseable framing) so callers can
 * map each one to the right HTTP status (408 / 413 / 400).
 */

#ifndef BALANCE_SUPPORT_HTTP_HH
#define BALANCE_SUPPORT_HTTP_HH

#include <sys/types.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace balance
{

/** Read limits for one connection. */
struct HttpLimits
{
    /**
     * Deadline in milliseconds for receiving the complete request
     * (head and body share one budget). <= 0 means wait forever —
     * only sensible in tests.
     */
    int recvTimeoutMs = 5000;
    /** Max bytes of request line + headers. */
    std::size_t maxHeadBytes = 16 * 1024;
    /** Max bytes of declared Content-Length body. */
    std::size_t maxBodyBytes = 1 << 20;
};

/** One parsed HTTP/1.1 request. */
struct HttpRequest
{
    std::string method;  ///< "GET", "POST", ... (verbatim)
    std::string target;  ///< request target incl. any query string
    std::string version; ///< "HTTP/1.1"
    /** Headers in arrival order; names lower-cased, values trimmed. */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body; ///< Content-Length bytes (empty if none)

    /** @return the first header named @p nameLower, or nullptr. */
    const std::string *header(const std::string &nameLower) const;
};

/** Outcome of readHttpRequest (see the status mapping in the file
 *  comment). */
enum class HttpReadResult
{
    Ok,        ///< request fully read and parsed
    Closed,    ///< peer closed before sending anything
    Timeout,   ///< deadline expired mid-request (-> 408)
    TooLarge,  ///< head or declared body over limit (-> 413)
    Malformed, ///< framing or header syntax error (-> 400)
};

/**
 * recv() with a deadline. Retries EINTR; polls until data, close, or
 * the deadline.
 * @return >0 bytes read, 0 peer closed, -1 socket error, -2 deadline
 *         expired.
 */
ssize_t recvWithDeadline(int fd, void *buf, std::size_t len,
                         int deadlineMs);

/**
 * Read and parse one HTTP request from @p fd (blocking, deadline
 * from @p limits). On Ok, @p out is fully populated; on any other
 * result its contents are unspecified.
 */
HttpReadResult readHttpRequest(int fd, HttpRequest &out,
                               const HttpLimits &limits = {});

/** @return the canonical reason phrase for @p status. */
const char *httpStatusText(int status);

/**
 * Write all of @p len bytes, retrying short writes / EINTR.
 * @return false if the peer went away.
 */
bool writeAllFd(int fd, const void *data, std::size_t len);

/**
 * Serialize and send a complete "Connection: close" HTTP response.
 * @p headOnly sends the header block with the real Content-Length
 * but no body bytes (HEAD semantics).
 */
void writeHttpResponse(int fd, int status,
                       const std::string &contentType,
                       const std::string &body, bool headOnly = false);

} // namespace balance

#endif // BALANCE_SUPPORT_HTTP_HH
