/**
 * @file
 * Process-level telemetry wiring shared by every bench binary: the
 * --metrics-out / --trace-out / --decision-log flags, the global
 * on/off switches the instrumented layers consult, and the at-exit
 * writers that dump the metric registry snapshot and the Chrome
 * trace once main() returns.
 *
 * The switches are plain process-global state (set once during
 * argument parsing, before any worker thread starts) because the
 * whole point is observing existing call trees without threading a
 * context object through every layer. Telemetry never feeds back:
 * with every switch on, schedules, bounds, and Table 2 trip counts
 * are bitwise identical to a run with them off.
 */

#ifndef BALANCE_SUPPORT_TELEMETRY_HH
#define BALANCE_SUPPORT_TELEMETRY_HH

#include <functional>
#include <string>
#include <string_view>

namespace balance
{

/** Parsed telemetry flags (all empty = telemetry off). */
struct TelemetryOptions
{
    std::string metricsOut;    //!< metrics snapshot JSON path
    std::string traceOut;      //!< Chrome trace JSON path
    std::string decisionLogOut; //!< Balance decision log path
    std::string hwCountersOut; //!< per-phase hw-counter JSON path
    /**
     * --debug-server argument: a port number as text ("0" = pick an
     * ephemeral port); empty = no diagnostics server. Kept as a
     * string so "off" and "port 0" stay distinguishable.
     */
    std::string debugServer;
    /** --metrics-interval in milliseconds; 0 = no timeline. */
    long long metricsIntervalMs = 0;
    /**
     * Install the SIGINT/SIGTERM watcher that flushes telemetry and
     * exits. Long-running daemons (bench/balance_serviced) set this
     * false and own signal handling themselves — two sigwait
     * watchers would race for the same signal — calling
     * TelemetryFlusher::flushAll() on their shutdown path instead.
     */
    bool manageSignals = true;
};

/**
 * Try to consume one telemetry argument. Accepts both "--flag value"
 * and "--flag=value" spellings of --metrics-out, --trace-out,
 * --decision-log, --hw-counters, --debug-server, and
 * --metrics-interval.
 *
 * @param arg The current argv token.
 * @param next Callback producing the following token (only invoked
 *        for the space-separated spelling).
 * @param out Updated on a match.
 * @return true when @p arg was a telemetry flag.
 */
bool parseTelemetryFlag(std::string_view arg,
                        const std::function<std::string()> &next,
                        TelemetryOptions &out);

/** Usage lines for the three flags (printed by bench --help). */
const char *telemetryUsage();

/**
 * Activate the requested sinks: enables tracing and metrics
 * collection, opens the decision log, starts the diagnostics server
 * and the metrics timeline when asked, and registers
 * TelemetryFlusher::flushAll with both process exit and a
 * SIGINT/SIGTERM watcher so every sink is written no matter how the
 * run ends. Also installs the crash-safe flight-recorder signal
 * handlers (support/flight_recorder.hh) unconditionally — crash
 * forensics should not depend on telemetry flags. Call at most once,
 * after argument parsing and before any evaluation (the signal mask
 * for the SIGINT watcher must be set before worker threads exist).
 */
void initTelemetry(const TelemetryOptions &opts);

/**
 * The single owner of "write out every pending telemetry sink":
 * stops the metrics timeline (final sample), stops the diagnostics
 * server, writes the metrics snapshot / trace / hw-counter files,
 * and flushes the decision log. Normal exit (std::atexit), the
 * SIGINT/SIGTERM watcher, and tests all route through flushAll(),
 * which runs the sequence exactly once — later calls are no-ops.
 */
class TelemetryFlusher
{
  public:
    /** Flush every pending sink; idempotent and thread-safe. */
    static void flushAll();
};

/**
 * @return "http://<addr>:<port>" of the running diagnostics server,
 *         or an empty string when --debug-server was not given (or
 *         startup failed). Recorded into the run manifest by
 *         captureRun.
 */
const std::string &debugServerAddress();

/**
 * @return the metrics-timeline interval in ms requested via
 *         --metrics-interval (0 = none). captureRun uses this to
 *         sample its local registry into the run directory.
 */
long long metricsIntervalMs();

/**
 * @return true when per-superblock metrics should be collected (set
 *         by initTelemetry with --metrics-out, or by tests via
 *         setMetricsCollection). The eval layers skip their stats
 *         plumbing entirely when this is off.
 */
bool metricsCollectionEnabled();

/** Toggle metrics collection (tests). */
void setMetricsCollection(bool on);

/** @return true when the Balance decision log is being captured. */
bool decisionLogEnabled();

/** @return true when the decision log output format is JSON lines. */
bool decisionLogIsJson();

/**
 * Turn decision-log capture on or off without a file sink (tests);
 * @p json selects the serialization format.
 */
void setDecisionLogCapture(bool on, bool json = false);

/**
 * Append one superblock's rendered decision log to the sink opened
 * by initTelemetry, if any. Must be called from serial reduction
 * code only (suite order = file order = deterministic bytes).
 */
void appendDecisionLog(const std::string &text);

} // namespace balance

#endif // BALANCE_SUPPORT_TELEMETRY_HH
