/**
 * @file
 * Process-level telemetry wiring shared by every bench binary: the
 * --metrics-out / --trace-out / --decision-log flags, the global
 * on/off switches the instrumented layers consult, and the at-exit
 * writers that dump the metric registry snapshot and the Chrome
 * trace once main() returns.
 *
 * The switches are plain process-global state (set once during
 * argument parsing, before any worker thread starts) because the
 * whole point is observing existing call trees without threading a
 * context object through every layer. Telemetry never feeds back:
 * with every switch on, schedules, bounds, and Table 2 trip counts
 * are bitwise identical to a run with them off.
 */

#ifndef BALANCE_SUPPORT_TELEMETRY_HH
#define BALANCE_SUPPORT_TELEMETRY_HH

#include <functional>
#include <string>
#include <string_view>

namespace balance
{

/** Parsed telemetry flags (all empty = telemetry off). */
struct TelemetryOptions
{
    std::string metricsOut;    //!< metrics snapshot JSON path
    std::string traceOut;      //!< Chrome trace JSON path
    std::string decisionLogOut; //!< Balance decision log path
    std::string hwCountersOut; //!< per-phase hw-counter JSON path
};

/**
 * Try to consume one telemetry argument. Accepts both "--flag value"
 * and "--flag=value" spellings of --metrics-out, --trace-out,
 * --decision-log, and --hw-counters.
 *
 * @param arg The current argv token.
 * @param next Callback producing the following token (only invoked
 *        for the space-separated spelling).
 * @param out Updated on a match.
 * @return true when @p arg was a telemetry flag.
 */
bool parseTelemetryFlag(std::string_view arg,
                        const std::function<std::string()> &next,
                        TelemetryOptions &out);

/** Usage lines for the three flags (printed by bench --help). */
const char *telemetryUsage();

/**
 * Activate the requested sinks: enables tracing and metrics
 * collection, opens the decision log, and registers a process-exit
 * hook that writes the metrics snapshot and the trace file. Call at
 * most once, after argument parsing and before any evaluation.
 */
void initTelemetry(const TelemetryOptions &opts);

/**
 * @return true when per-superblock metrics should be collected (set
 *         by initTelemetry with --metrics-out, or by tests via
 *         setMetricsCollection). The eval layers skip their stats
 *         plumbing entirely when this is off.
 */
bool metricsCollectionEnabled();

/** Toggle metrics collection (tests). */
void setMetricsCollection(bool on);

/** @return true when the Balance decision log is being captured. */
bool decisionLogEnabled();

/** @return true when the decision log output format is JSON lines. */
bool decisionLogIsJson();

/**
 * Turn decision-log capture on or off without a file sink (tests);
 * @p json selects the serialization format.
 */
void setDecisionLogCapture(bool on, bool json = false);

/**
 * Append one superblock's rendered decision log to the sink opened
 * by initTelemetry, if any. Must be called from serial reduction
 * code only (suite order = file order = deterministic bytes).
 */
void appendDecisionLog(const std::string &text);

} // namespace balance

#endif // BALANCE_SUPPORT_TELEMETRY_HH
