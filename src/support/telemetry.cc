#include "support/telemetry.hh"

#include <cstdlib>
#include <fstream>
#include <memory>

#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/perf_counters.hh"
#include "support/trace.hh"

namespace balance
{

namespace
{

struct TelemetryState
{
    bool collectMetrics = false;
    bool captureDecisions = false;
    bool decisionsJson = false;
    std::string metricsPath;
    std::string tracePath;
    std::string hwCountersPath;
    std::unique_ptr<std::ofstream> decisionStream;
};

TelemetryState &
state()
{
    static TelemetryState *s = new TelemetryState();
    return *s;
}

/** @return true when @p path asks for JSON-lines output. */
bool
wantsJson(const std::string &path)
{
    return path.ends_with(".json") || path.ends_with(".jsonl");
}

void
atExitFlush()
{
    TelemetryState &s = state();
    if (!s.metricsPath.empty()) {
        std::string doc = MetricRegistry::global().snapshotJson();
        bsAssert(jsonLooksValid(doc),
                 "metrics snapshot emitted invalid JSON");
        std::ofstream out(s.metricsPath);
        if (!out.good()) {
            warn("cannot open metrics output '" + s.metricsPath + "'");
        } else {
            out << doc << "\n";
        }
    }
    if (!s.tracePath.empty()) {
        TraceSession &session = TraceSession::global();
        session.disable();
        if (long long dropped = session.droppedEvents())
            warn("trace ring dropped " + std::to_string(dropped) +
                 " events; earliest spans are missing");
        session.writeTo(s.tracePath);
    }
    if (!s.hwCountersPath.empty()) {
        PerfProfiler &profiler = PerfProfiler::global();
        profiler.disable();
        std::string doc = profiler.snapshot().toJson();
        bsAssert(jsonLooksValid(doc),
                 "hw-counter snapshot emitted invalid JSON");
        std::ofstream out(s.hwCountersPath);
        if (!out.good()) {
            warn("cannot open hw-counter output '" + s.hwCountersPath +
                 "'");
        } else {
            out << doc << "\n";
        }
    }
    if (s.decisionStream)
        s.decisionStream->flush();
}

/**
 * Match "--name value" / "--name=value".
 * @return true on match, with @p value filled.
 */
bool
matchFlag(std::string_view arg, std::string_view flag,
          const std::function<std::string()> &next, std::string &value)
{
    if (arg == flag) {
        value = next();
        return true;
    }
    if (arg.size() > flag.size() + 1 &&
        arg.substr(0, flag.size()) == flag && arg[flag.size()] == '=') {
        value = std::string(arg.substr(flag.size() + 1));
        return true;
    }
    return false;
}

} // namespace

bool
parseTelemetryFlag(std::string_view arg,
                   const std::function<std::string()> &next,
                   TelemetryOptions &out)
{
    return matchFlag(arg, "--metrics-out", next, out.metricsOut) ||
           matchFlag(arg, "--trace-out", next, out.traceOut) ||
           matchFlag(arg, "--decision-log", next, out.decisionLogOut) ||
           matchFlag(arg, "--hw-counters", next, out.hwCountersOut);
}

const char *
telemetryUsage()
{
    return "  --metrics-out <f>  write a metrics-registry JSON\n"
           "                 snapshot at exit\n"
           "  --trace-out <f>  record Chrome trace-event spans\n"
           "                 (open in chrome://tracing or Perfetto)\n"
           "  --decision-log <f>  capture the per-superblock Balance\n"
           "                 decision log (.json/.jsonl = JSON lines,\n"
           "                 otherwise text)\n"
           "  --hw-counters <f>  attribute hardware counters (cycles,\n"
           "                 IPC, branch/cache misses) to engine\n"
           "                 phases; falls back to CPU-time-only when\n"
           "                 perf_event is denied (BALANCE_PERF=\n"
           "                 fallback forces that tier)\n";
}

void
initTelemetry(const TelemetryOptions &opts)
{
    TelemetryState &s = state();
    if (opts.metricsOut.empty() && opts.traceOut.empty() &&
        opts.decisionLogOut.empty() && opts.hwCountersOut.empty())
        return;

    s.metricsPath = opts.metricsOut;
    s.tracePath = opts.traceOut;
    s.hwCountersPath = opts.hwCountersOut;
    if (!opts.hwCountersOut.empty())
        PerfProfiler::global().enable();
    if (!opts.metricsOut.empty()) {
        s.collectMetrics = true;
        // Register the trace-drop counter up front: drops happen at
        // nondeterministic times, and lazy registration would make
        // the snapshot's registration order depend on when the ring
        // first wrapped.
        MetricRegistry::global().counter("trace.ring_dropped");
    }
    if (!opts.traceOut.empty())
        TraceSession::global().enable();
    if (!opts.decisionLogOut.empty()) {
        s.captureDecisions = true;
        s.decisionsJson = wantsJson(opts.decisionLogOut);
        s.decisionStream =
            std::make_unique<std::ofstream>(opts.decisionLogOut);
        if (!s.decisionStream->good())
            bsFatal("cannot open decision log '", opts.decisionLogOut,
                    "'");
    }
    std::atexit(atExitFlush);
}

bool
metricsCollectionEnabled()
{
    return state().collectMetrics;
}

void
setMetricsCollection(bool on)
{
    state().collectMetrics = on;
}

bool
decisionLogEnabled()
{
    return state().captureDecisions;
}

bool
decisionLogIsJson()
{
    return state().decisionsJson;
}

void
setDecisionLogCapture(bool on, bool json)
{
    state().captureDecisions = on;
    state().decisionsJson = json;
}

void
appendDecisionLog(const std::string &text)
{
    TelemetryState &s = state();
    if (s.decisionStream)
        *s.decisionStream << text;
}

} // namespace balance
