#include "support/telemetry.hh"

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "support/debug_server.hh"
#include "support/diagnostics.hh"
#include "support/flight_recorder.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/metrics_timeline.hh"
#include "support/perf_counters.hh"
#include "support/trace.hh"

namespace balance
{

namespace
{

struct TelemetryState
{
    bool collectMetrics = false;
    bool captureDecisions = false;
    bool decisionsJson = false;
    std::string metricsPath;
    std::string tracePath;
    std::string hwCountersPath;
    std::string serverAddress;
    long long intervalMs = 0;
    std::mutex decisionMutex;
    std::unique_ptr<std::ofstream> decisionStream;
    std::unique_ptr<DebugServer> server;
    std::unique_ptr<MetricsTimeline> timeline;
};

TelemetryState &
state()
{
    static TelemetryState *s = new TelemetryState();
    return *s;
}

/** @return true when @p path asks for JSON-lines output. */
bool
wantsJson(const std::string &path)
{
    return path.ends_with(".json") || path.ends_with(".jsonl");
}

/** @return the timeline path derived from the --metrics-out path. */
std::string
timelinePathFor(const std::string &metricsPath)
{
    if (metricsPath.empty())
        return "metrics.timeline.jsonl";
    std::string base = metricsPath;
    if (base.ends_with(".json"))
        base.resize(base.size() - 5);
    return base + ".timeline.jsonl";
}

void
atExitFlush()
{
    TelemetryFlusher::flushAll();
}

/**
 * Match "--name value" / "--name=value".
 * @return true on match, with @p value filled.
 */
bool
matchFlag(std::string_view arg, std::string_view flag,
          const std::function<std::string()> &next, std::string &value)
{
    if (arg == flag) {
        value = next();
        return true;
    }
    if (arg.size() > flag.size() + 1 &&
        arg.substr(0, flag.size()) == flag && arg[flag.size()] == '=') {
        value = std::string(arg.substr(flag.size() + 1));
        return true;
    }
    return false;
}

/**
 * Block SIGINT/SIGTERM in the calling thread (all future threads
 * inherit the mask) and hand them to a watcher thread that flushes
 * telemetry and exits. A dedicated sigwait thread — not a signal
 * handler — because the flush path (ofstream, malloc, mutexes) is
 * nowhere near async-signal-safe.
 */
void
installSignalFlush()
{
    static std::atomic<bool> installed{false};
    if (installed.exchange(true))
        return;
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
    // A background job of a non-interactive shell ("bench &" in a
    // script) inherits SIGINT as SIG_IGN, and an ignored signal is
    // discarded at generation even while blocked — sigwait would
    // never see it. Restore the default disposition: the signal
    // then stays pending (every thread blocks it) until the watcher
    // dequeues it.
    struct sigaction dfl = {};
    dfl.sa_handler = SIG_DFL;
    ::sigaction(SIGINT, &dfl, nullptr);
    ::sigaction(SIGTERM, &dfl, nullptr);
    std::thread([set] {
        int sig = 0;
        if (sigwait(&set, &sig) != 0)
            return;
        warn(std::string("caught ") +
             (sig == SIGINT ? "SIGINT" : "SIGTERM") +
             "; flushing telemetry");
        TelemetryFlusher::flushAll();
        // atexit handlers must not run again (flushAll is idempotent
        // but other libraries' handlers are not shutdown-safe while
        // worker threads still run), so exit without them.
        std::_Exit(128 + sig);
    }).detach();
}

} // namespace

void
TelemetryFlusher::flushAll()
{
    static std::atomic<bool> flushed{false};
    if (flushed.exchange(true))
        return;

    TelemetryState &s = state();
    // Order: stop the samplers/server first so the files below see
    // the final state and nothing scrapes half-written artifacts.
    if (s.timeline)
        s.timeline->stop();
    if (s.server)
        s.server->stop();
    if (!s.metricsPath.empty()) {
        std::string doc = MetricRegistry::global().snapshotJson();
        bsAssert(jsonLooksValid(doc),
                 "metrics snapshot emitted invalid JSON");
        std::ofstream out(s.metricsPath);
        if (!out.good()) {
            warn("cannot open metrics output '" + s.metricsPath + "'");
        } else {
            out << doc << "\n";
        }
    }
    if (!s.tracePath.empty()) {
        TraceSession &session = TraceSession::global();
        session.disable();
        if (long long dropped = session.droppedEvents())
            warn("trace ring dropped " + std::to_string(dropped) +
                 " events; earliest spans are missing");
        session.writeTo(s.tracePath);
    }
    if (!s.hwCountersPath.empty()) {
        PerfProfiler &profiler = PerfProfiler::global();
        profiler.disable();
        std::string doc = profiler.snapshot().toJson();
        bsAssert(jsonLooksValid(doc),
                 "hw-counter snapshot emitted invalid JSON");
        std::ofstream out(s.hwCountersPath);
        if (!out.good()) {
            warn("cannot open hw-counter output '" + s.hwCountersPath +
                 "'");
        } else {
            out << doc << "\n";
        }
    }
    {
        std::lock_guard<std::mutex> lock(s.decisionMutex);
        if (s.decisionStream)
            s.decisionStream->flush();
    }
}

const std::string &
debugServerAddress()
{
    return state().serverAddress;
}

long long
metricsIntervalMs()
{
    return state().intervalMs;
}

bool
parseTelemetryFlag(std::string_view arg,
                   const std::function<std::string()> &next,
                   TelemetryOptions &out)
{
    std::string interval;
    if (matchFlag(arg, "--metrics-interval", next, interval)) {
        out.metricsIntervalMs = std::atoll(interval.c_str());
        if (out.metricsIntervalMs <= 0)
            bsFatal("--metrics-interval wants a positive millisecond "
                    "count, got '",
                    interval, "'");
        return true;
    }
    return matchFlag(arg, "--metrics-out", next, out.metricsOut) ||
           matchFlag(arg, "--trace-out", next, out.traceOut) ||
           matchFlag(arg, "--decision-log", next, out.decisionLogOut) ||
           matchFlag(arg, "--hw-counters", next, out.hwCountersOut) ||
           matchFlag(arg, "--debug-server", next, out.debugServer);
}

const char *
telemetryUsage()
{
    return "  --metrics-out <f>  write a metrics-registry JSON\n"
           "                 snapshot at exit\n"
           "  --trace-out <f>  record Chrome trace-event spans\n"
           "                 (open in chrome://tracing or Perfetto)\n"
           "  --decision-log <f>  capture the per-superblock Balance\n"
           "                 decision log (.json/.jsonl = JSON lines,\n"
           "                 otherwise text)\n"
           "  --hw-counters <f>  attribute hardware counters (cycles,\n"
           "                 IPC, branch/cache misses) to engine\n"
           "                 phases; falls back to CPU-time-only when\n"
           "                 perf_event is denied (BALANCE_PERF=\n"
           "                 fallback forces that tier)\n"
           "  --debug-server <port>  serve live diagnostics over HTTP\n"
           "                 on 127.0.0.1 (/metrics /progress /trace\n"
           "                 /hwcounters /healthz); port 0 picks an\n"
           "                 ephemeral port, printed on stdout\n"
           "  --metrics-interval <ms>  sample the metric registry\n"
           "                 every <ms> ms into a JSONL time-series\n"
           "                 next to --metrics-out\n";
}

void
initTelemetry(const TelemetryOptions &opts)
{
    // Crash forensics are unconditional: the flight-recorder signal
    // handlers cost nothing until a fatal signal fires, and a crash
    // report is exactly as valuable on an un-instrumented run.
    installCrashHandlers();

    TelemetryState &s = state();
    if (opts.metricsOut.empty() && opts.traceOut.empty() &&
        opts.decisionLogOut.empty() && opts.hwCountersOut.empty() &&
        opts.debugServer.empty() && opts.metricsIntervalMs <= 0)
        return;

    // Before any telemetry thread exists: the server / timeline
    // threads below must inherit the blocked mask, or a
    // process-directed SIGINT/SIGTERM could be delivered to one of
    // them (default action, no flush) instead of the watcher.
    if (opts.manageSignals)
        installSignalFlush();

    s.metricsPath = opts.metricsOut;
    s.tracePath = opts.traceOut;
    s.hwCountersPath = opts.hwCountersOut;
    s.intervalMs = opts.metricsIntervalMs;
    if (!opts.hwCountersOut.empty())
        PerfProfiler::global().enable();
    if (!opts.metricsOut.empty()) {
        s.collectMetrics = true;
        // Register the trace-drop counter up front: drops happen at
        // nondeterministic times, and lazy registration would make
        // the snapshot's registration order depend on when the ring
        // first wrapped.
        MetricRegistry::global().counter("trace.ring_dropped");
    }
    if (!opts.traceOut.empty())
        TraceSession::global().enable();
    if (!opts.decisionLogOut.empty()) {
        s.captureDecisions = true;
        s.decisionsJson = wantsJson(opts.decisionLogOut);
        s.decisionStream =
            std::make_unique<std::ofstream>(opts.decisionLogOut);
        if (!s.decisionStream->good())
            bsFatal("cannot open decision log '", opts.decisionLogOut,
                    "'");
    }
    if (!opts.debugServer.empty()) {
        DebugServerOptions serverOpts;
        serverOpts.port = std::atoi(opts.debugServer.c_str());
        if (serverOpts.port < 0 || serverOpts.port > 65535)
            bsFatal("--debug-server wants a port in [0, 65535], got '",
                    opts.debugServer, "'");
        s.server = std::make_unique<DebugServer>();
        if (s.server->start(serverOpts))
            s.serverAddress = s.server->address();
        else
            s.server.reset();
    }
    if (opts.metricsIntervalMs > 0) {
        s.timeline = std::make_unique<MetricsTimeline>(
            MetricRegistry::global(), timelinePathFor(opts.metricsOut),
            opts.metricsIntervalMs);
    }
    std::atexit(atExitFlush);
}

bool
metricsCollectionEnabled()
{
    return state().collectMetrics;
}

void
setMetricsCollection(bool on)
{
    state().collectMetrics = on;
}

bool
decisionLogEnabled()
{
    return state().captureDecisions;
}

bool
decisionLogIsJson()
{
    return state().decisionsJson;
}

void
setDecisionLogCapture(bool on, bool json)
{
    state().captureDecisions = on;
    state().decisionsJson = json;
}

void
appendDecisionLog(const std::string &text)
{
    TelemetryState &s = state();
    std::lock_guard<std::mutex> lock(s.decisionMutex);
    if (s.decisionStream)
        *s.decisionStream << text;
}

} // namespace balance
