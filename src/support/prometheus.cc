#include "support/prometheus.hh"

namespace balance
{

std::string
promMetricName(std::string_view name)
{
    std::string out = "balance_";
    out.reserve(out.size() + name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string
promEscapeHelp(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

std::string
promEscapeLabel(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

std::string
renderPrometheusText(const MetricSnapshot &snap)
{
    std::string out;

    auto scalar = [&out](const std::string &dotted, long long value,
                         const char *type, const char *kindWord) {
        std::string name = promMetricName(dotted);
        out += "# HELP " + name + " " + kindWord + " " +
               promEscapeHelp(dotted) + "\n";
        out += "# TYPE " + name + " " + type + "\n";
        out += name + " " + std::to_string(value) + "\n";
    };

    for (const auto &[dotted, value] : snap.counters)
        scalar(dotted, value, "counter", "Counter");
    for (const auto &[dotted, value] : snap.gauges)
        scalar(dotted, value, "gauge", "Gauge");

    for (const MetricSnapshot::HistogramValues &h : snap.histograms) {
        std::string name = promMetricName(h.name);
        out += "# HELP " + name + " Histogram " +
               promEscapeHelp(h.name) + "\n";
        out += "# TYPE " + name + " histogram\n";
        // Cumulative buckets over the power-of-two boundaries. The
        // +Inf bucket and _count both come from this one bucket-copy
        // total, so the series is monotone and self-consistent even
        // when the underlying shards are being updated concurrently.
        long long cumulative = 0;
        int lastNonZero = -1;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (h.buckets[b] != 0)
                lastNonZero = int(b);
        }
        for (int b = 0; b <= lastNonZero; ++b) {
            cumulative += h.buckets[std::size_t(b)];
            out += name + "_bucket{le=\"" +
                   std::to_string(Histogram::bucketUpperBound(b)) +
                   "\"} " + std::to_string(cumulative) + "\n";
        }
        for (int b = lastNonZero + 1; b < int(h.buckets.size()); ++b)
            cumulative += h.buckets[std::size_t(b)];
        out += name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cumulative) + "\n";
        out += name + "_sum " + std::to_string(h.sum) + "\n";
        out += name + "_count " + std::to_string(cumulative) + "\n";
    }
    return out;
}

std::string
renderPrometheusText(const MetricRegistry &reg)
{
    return renderPrometheusText(reg.snapshot());
}

} // namespace balance
