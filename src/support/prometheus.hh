/**
 * @file
 * Prometheus text exposition rendering for the /metrics endpoint of
 * the diagnostics server (docs/OBSERVABILITY.md). Renders a
 * MetricSnapshot as exposition format version 0.0.4:
 *
 *  - counters  -> `# TYPE <name> counter` + one sample;
 *  - gauges    -> `# TYPE <name> gauge` + one sample;
 *  - histograms -> cumulative `<name>_bucket{le="..."}` lines over
 *    the registry's power-of-two buckets (le = each bucket's
 *    inclusive upper bound), a `le="+Inf"` line, then `_sum` and
 *    `_count`.
 *
 * Metric names are the registry's dotted names with every character
 * outside [a-zA-Z0-9_:] mapped to '_' and a "balance_" prefix (dots
 * are namespace separators here, underscores there); the original
 * dotted name is preserved in the `# HELP` line, escaped per the
 * exposition rules.
 *
 * Internal consistency under concurrent updates: `_count` and the
 * `+Inf` bucket are both derived from the same bucket-count copy,
 * so every rendered histogram is monotone and self-consistent even
 * when scraped mid-run (a fresh observation may land between the
 * bucket read and the sum read; the next scrape catches up).
 */

#ifndef BALANCE_SUPPORT_PROMETHEUS_HH
#define BALANCE_SUPPORT_PROMETHEUS_HH

#include <string>
#include <string_view>

#include "support/metrics.hh"

namespace balance
{

/**
 * @return @p name mapped to a valid Prometheus metric name:
 *         "balance_" + name with every character outside
 *         [a-zA-Z0-9_:] replaced by '_'.
 */
std::string promMetricName(std::string_view name);

/**
 * Escape @p text for a `# HELP` line: backslash -> `\\`, newline ->
 * `\n` (exposition format rules).
 */
std::string promEscapeHelp(std::string_view text);

/**
 * Escape @p text for a label value: backslash -> `\\`, double quote
 * -> `\"`, newline -> `\n`.
 */
std::string promEscapeLabel(std::string_view text);

/** Render @p snap as exposition text (see file comment). */
std::string renderPrometheusText(const MetricSnapshot &snap);

/** Convenience: snapshot @p reg and render it. */
std::string renderPrometheusText(const MetricRegistry &reg);

} // namespace balance

#endif // BALANCE_SUPPORT_PROMETHEUS_HH
