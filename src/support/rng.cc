#include "support/rng.hh"

#include <cmath>

#include "support/diagnostics.hh"

namespace balance
{

namespace
{

/** SplitMix64 step, used only for seeding the main generator state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
    // An all-zero state would lock the generator at zero; SplitMix64
    // cannot produce four zero outputs in a row from any seed, but we
    // keep the guard explicit.
    if (!(s[0] | s[1] | s[2] | s[3]))
        s[0] = 1;
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    bsAssert(lo <= hi, "uniformInt bounds inverted: ", lo, " > ", hi);
    std::uint64_t range = std::uint64_t(hi - lo) + 1;
    if (range == 0) // full 64-bit range
        return std::int64_t(next());
    // Rejection sampling for exact uniformity.
    std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
    std::uint64_t r;
    do {
        r = next();
    } while (r >= limit && limit != 0);
    return lo + std::int64_t(r % range);
}

double
Rng::uniformDouble()
{
    // 53 high-quality bits into [0, 1).
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformDouble(double lo, double hi)
{
    return lo + (hi - lo) * uniformDouble();
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformDouble() < p;
}

std::int64_t
Rng::geometric(double p)
{
    bsAssert(p > 0.0 && p <= 1.0, "geometric p out of range: ", p);
    if (p >= 1.0)
        return 0;
    double u = uniformDouble();
    // Guard against u == 0, where log would be -inf.
    if (u <= 0.0)
        u = 0x1.0p-53;
    return std::int64_t(std::floor(std::log(u) / std::log1p(-p)));
}

double
Rng::normal()
{
    if (haveSpareNormal) {
        haveSpareNormal = false;
        return spareNormal;
    }
    double u1 = uniformDouble();
    double u2 = uniformDouble();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    double radius = std::sqrt(-2.0 * std::log(u1));
    double angle = 2.0 * M_PI * u2;
    spareNormal = radius * std::sin(angle);
    haveSpareNormal = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        bsAssert(w >= 0.0, "negative weight in weightedIndex");
        total += w;
    }
    bsAssert(total > 0.0, "weightedIndex requires a positive weight");
    double target = uniformDouble() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (target < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

Rng
Rng::stream(std::uint64_t seed, std::uint64_t instance)
{
    // instance+1 keeps stream(seed, 0) distinct from Rng(seed).
    return Rng(seed ^ ((instance + 1) * 0x9e3779b97f4a7c15ULL));
}

} // namespace balance
